"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the regenerated rows next to the paper's numbers.
"""

import pytest

from repro.core import Flay, FlayOptions
from repro.programs import registry
from repro.runtime.fuzzer import EntryFuzzer


def heading(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


@pytest.fixture(scope="session")
def corpus_programs():
    """Parsed corpus programs, shared across benches."""
    return {name: registry.load(name) for name in registry.CORPUS}


def make_flay(program, bus=None, **options) -> Flay:
    return Flay(program, FlayOptions(target="none", **options), bus=bus)


def representative_config(flay: Flay, tables, seed: int = 7):
    """Updates exercising every action of the given tables."""
    fuzzer = EntryFuzzer(flay.model, seed=seed)
    updates = []
    for table in tables:
        updates.extend(fuzzer.representative_updates(table))
    return updates
