"""Ablations of the design choices DESIGN.md calls out.

1. **Taint-directed re-querying** vs re-evaluating every program point on
   each update (the naive alternative to Fig. 2 step 2).
2. **Interval pre-check** in the solver vs bit-blasting everything.
3. **State merging** keeps analysis cost polynomial while the number of
   control paths grows exponentially (§4.2's complexity observation).
4. **Batched re-encoding** vs per-update encoding for bursts.
"""

import time

import pytest

from conftest import heading, make_flay
from repro.analysis import analyze
from repro.ir import measure
from repro.p4.parser import parse_program
from repro.programs import registry
from repro.runtime.fuzzer import EntryFuzzer
from repro.runtime.semantics import Update, INSERT
from repro.smt import Solver, Substitution, terms as T


class TestTaintAblation:
    def test_taint_directed_vs_full_requery(self, benchmark, corpus_programs):
        """Re-evaluating only tainted points beats re-evaluating all of
        them — the gap grows with program size."""
        flay = make_flay(corpus_programs["scion"])
        fuzzer = EntryFuzzer(flay.model, seed=5)
        flay.process_batch(fuzzer.representative_updates("ScionIngress.ipv4_forward"))
        updates = iter(fuzzer.insert_burst("ScionIngress.ipv4_forward", 500))

        def taint_directed():
            return flay.process_update(next(updates))

        benchmark(taint_directed)

        # Full re-query baseline, measured once.
        substitution = Substitution(flay.runtime.mapping)
        start = time.perf_counter()
        memo = {}
        for point in flay.model.points.values():
            flay.runtime.engine.point_verdict(point, substitution, memo)
        full_ms = (time.perf_counter() - start) * 1000

        info = flay.model.table("ScionIngress.ipv4_forward")
        affected = flay.model.points_for_control_vars(info.control_var_names())
        heading("Ablation: taint-directed re-query vs full re-query (scion)")
        print(f"points checked per update: {len(affected)} / {flay.model.point_count}")
        print(f"full re-query of all points: {full_ms:.1f} ms")
        assert len(affected) < flay.model.point_count


class TestIntervalAblation:
    def test_interval_precheck_reduces_sat_calls(self, benchmark):
        """Field-vs-constant queries are decided by the interval domain
        without ever bit-blasting."""
        x = T.data_var("ab_x", 32)
        queries = [
            T.eq(T.bv_and(x, T.bv_const(0xFF, 32)), T.bv_const(0x1FF, 32)),
            T.ult(T.lshr(x, T.bv_const(24, 32)), T.bv_const(256, 32)),
            T.eq(T.bv_and(x, T.bv_const(0xF0, 32)), T.bv_const(0x30, 32)),
        ] * 10

        def with_precheck():
            solver = Solver(use_interval_precheck=True)
            for q in queries:
                solver.check_sat(q)
            return solver.stats

        stats = benchmark(with_precheck)

        solver_no = Solver(use_interval_precheck=False)
        start = time.perf_counter()
        for q in queries:
            solver_no.check_sat(q)
        no_precheck_ms = (time.perf_counter() - start) * 1000

        heading("Ablation: interval pre-check in the solver")
        print(f"with pre-check:  {stats.by_interval} of {stats.total} queries "
              f"decided without SAT")
        print(f"without pre-check: all {solver_no.stats.by_sat} queries bit-blasted "
              f"({no_precheck_ms:.1f} ms)")
        assert stats.by_interval > 0
        assert stats.by_sat < solver_no.stats.by_sat


def _branchy_program(num_ifs: int) -> str:
    body = "\n".join(
        f"        if (hdr.h.f{i % 4} == {i}) {{ meta.m = {i % 250}; }}"
        for i in range(num_ifs)
    )
    return f"""
header h_t {{ bit<8> f0; bit<8> f1; bit<8> f2; bit<8> f3; }}
struct headers_t {{ h_t h; }}
struct meta_t {{ bit<8> m; }}
parser P(inout headers_t hdr, inout meta_t meta) {{
    state start {{ pkt_extract(hdr.h); transition accept; }}
}}
control C(inout headers_t hdr, inout meta_t meta) {{
    apply {{
{body}
    }}
}}
Pipeline(P(), C()) main;
"""


class TestStateMergingAblation:
    @pytest.mark.parametrize("num_ifs", (4, 8, 16, 32))
    def test_analysis_scales_with_branches(self, benchmark, num_ifs):
        """Path counts double per if; state-merging analysis does not."""
        program = parse_program(_branchy_program(num_ifs))
        paths = measure(program).control_paths
        model = benchmark(analyze, program)
        benchmark.extra_info["control_paths"] = paths
        benchmark.extra_info["points"] = model.point_count
        print(f"\n[Ablation] {num_ifs} ifs: {paths} control paths, "
              f"{model.point_count} program points")
        # Points grow linearly even though paths grow exponentially.
        assert model.point_count <= 4 * num_ifs + 8


class TestBatchAblation:
    def test_batched_vs_per_update_burst(self, benchmark, corpus_programs):
        """Re-encoding the table once per burst (batch path) beats
        re-encoding on every single update."""
        program = corpus_programs["middleblock"]
        from repro.programs.middleblock import PRE_INGRESS_ACL

        flay = make_flay(program, use_solver=False)
        fuzzer = EntryFuzzer(flay.model, seed=3)
        entries = fuzzer.unique_entries(PRE_INGRESS_ACL, 80)
        prototype = [Update(PRE_INGRESS_ACL, INSERT, e) for e in entries]

        def batched():
            try:
                return flay.process_batch(prototype)
            finally:
                flay.runtime.state.table_state(PRE_INGRESS_ACL).clear()

        decision = benchmark.pedantic(batched, rounds=3, iterations=1)
        batched_ms = decision.elapsed_ms

        # Per-update baseline.
        flay2 = make_flay(program, use_solver=False)
        start = time.perf_counter()
        for update in prototype:
            flay2.process_update(update)
        per_update_ms = (time.perf_counter() - start) * 1000

        heading("Ablation: batched vs per-update burst processing (80 ACL entries)")
        print(f"batched:    {batched_ms:.1f} ms")
        print(f"per-update: {per_update_ms:.1f} ms")
        assert batched_ms < per_update_ms
