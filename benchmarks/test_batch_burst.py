"""Batch-scheduler burst replay: coalesced, conflict-grouped warm path.

Replays a SCION burst that sprays inserts across four independent
per-interface MAC-rewrite tables (each its own conflict group under the
taint partition) and compares the sequential per-update warm path against
``apply_batch`` at worker counts 1, 2, and 4.

The speedup is algorithmic, not parallel: the per-update path re-encodes
the growing table and re-verdicts its tainted points once per insert
(O(n) each as the table grows), while the batch path pays one encode and
one verdict sweep per conflict group.  The worker pool adds determinism-
preserving concurrency structure on top; on a single-CPU runner it does
not add cycles, which is why the acceptance bar (≥2× at 4 workers) is
set against the sequential baseline, not against workers=1.

Set ``BATCH_BENCH_JSON=/path/out.json`` to dump the measured numbers
(CI uploads that file as an artifact).
"""

import json
import os
import time

from conftest import heading, make_flay
from repro.runtime.fuzzer import EntryFuzzer
from repro.runtime.semantics import INSERT, Update

TABLES = [f"ScionEgress.rewrite_mac_if{i}" for i in range(4)]
WARM_PER_ACTION = 3
BURST_PER_TABLE = 60


def _unique_inserts(flay, fuzzer, table, count, seen, action=None):
    info = flay.model.table(table)
    updates = []
    while len(updates) < count:
        entry = fuzzer.entry(table, action=action)
        key = entry.match_key()
        if key in seen:
            continue
        seen.add(key)
        updates.append(Update(info.name, INSERT, entry))
    return updates


def _workload(corpus_programs, seed=7):
    """A saturated engine plus a 240-update burst over four independent
    tables.  One match-key dedup scope per table spans warmup and burst,
    so the stream replays cleanly."""
    flay = make_flay(corpus_programs["scion"])
    fuzzer = EntryFuzzer(flay.model, seed=seed)
    warmup, burst = [], []
    for table in TABLES:
        seen = set()
        for action in flay.model.table(table).action_order:
            warmup.extend(
                _unique_inserts(
                    flay, fuzzer, table, WARM_PER_ACTION, seen, action=action
                )
            )
        burst.extend(
            _unique_inserts(flay, fuzzer, table, BURST_PER_TABLE, seen)
        )
    flay.process_batch(warmup)
    return flay, burst


def test_batch_scheduler_burst_speedup(benchmark, corpus_programs):
    timings = {}

    flay, burst = _workload(corpus_programs)
    start = time.perf_counter()
    for update in burst:
        decision = flay.process_update(update)
        assert decision.forwarded
    timings["sequential_ms"] = (time.perf_counter() - start) * 1000
    sequential_verdicts = dict(flay.runtime.point_verdicts)
    sequential_source = flay.specialized_source()

    reports = {}
    for workers in (1, 2, 4):
        flay, burst = _workload(corpus_programs)
        report = flay.apply_batch(burst, workers=workers)
        reports[workers] = report
        timings[f"batch_w{workers}_ms"] = report.elapsed_ms
        assert report.forwarded
        assert report.group_count == len(TABLES)
        # Batched output == sequential output, whatever the pool width.
        assert flay.runtime.point_verdicts == sequential_verdicts
        assert flay.specialized_source() == sequential_source

    # Register the 4-worker batch with pytest-benchmark's statistics.
    benchmark.pedantic(
        lambda: _batched(corpus_programs, 4), rounds=3, iterations=1
    )

    speedup = timings["sequential_ms"] / timings["batch_w4_ms"]
    timings["speedup_w4"] = speedup
    timings["updates"] = len(burst)
    timings["groups"] = reports[4].group_count
    timings["coalesced"] = reports[4].coalesced_count

    heading("Batch scheduler: 240-insert burst over 4 independent SCION tables")
    print(f"sequential warm path:  {timings['sequential_ms']:8.1f} ms")
    for workers in (1, 2, 4):
        print(f"apply_batch workers={workers}: {timings[f'batch_w{workers}_ms']:8.1f} ms")
    print(f"speedup at 4 workers:  {speedup:8.1f}x  (bar: >= 2x)")

    out_path = os.environ.get("BATCH_BENCH_JSON")
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(timings, handle, indent=2, sort_keys=True)
        print(f"wrote {out_path}")

    assert speedup >= 2.0


def _batched(corpus_programs, workers):
    flay, burst = _workload(corpus_programs)
    return flay.apply_batch(burst, workers=workers)


def test_batch_coalescing_collapses_churn(benchmark, corpus_programs):
    """A flap-heavy burst (insert/modify/delete churn on the same keys)
    coalesces to a fraction of its submitted size before any analysis.

    Runs against a cold (un-warmed) engine so the fuzzer's fresh live-key
    tracking cannot collide with previously installed entries."""
    flay = make_flay(corpus_programs["scion"])
    fuzzer = EntryFuzzer(flay.model, seed=31)
    table = TABLES[0]
    churn = fuzzer.update_stream(
        tables=[table], count=200, modify_fraction=0.45, delete_fraction=0.35
    )

    def run():
        report = flay.apply_batch(churn, workers=2)
        # Reset: undo the batch's net effect so every round replays cleanly.
        state = flay.runtime.state.table_state(table)
        survivors = {u.entry.match_key() for u in churn}
        for entry in list(state.entries()):
            if entry.match_key() in survivors:
                state.apply("delete", entry)
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    heading("Batch scheduler: coalescing a 200-update churn stream")
    print(
        f"submitted {report.update_count}, net {report.coalesced_count} "
        f"({report.update_count - report.coalesced_count} folded away)"
    )
    assert report.coalesced_count < report.update_count
