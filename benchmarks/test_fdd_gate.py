"""The match-space FDD verdict gate: gated vs ungated warm verdicts.

The common control-plane update lands in key space disjoint from every
tainted path and changes no verdict.  The ungated engine still pays
substitution + simplification + (for residual MAYBEs) a CDCL probe per
executability point; the gate answers the same queries from witness
fingerprints — a handful of FDD lookups per point.  This bench measures
exactly that regime on the ``switch`` program: saturate a few tables so
their dependent points go MAYBE and harvest witnesses, then time the
verdict phase of a disjoint-heavy insert stream with the gate on and
off.  A scion stream rides along for the cross-program picture: its
value points carry monster rewrite terms past the hunt cap, so the gate
used to regress there (0.70× in the ISSUE 6 artifact) until the tier-2b
pool harvest gave hunt-retired points solver-seeded witness pairs — now
both programs must be a win.

Acceptance (ISSUE 6, floors raised by ISSUE 10): gated verdict
throughput ≥ 5× ungated on the disjoint switch stream with ≥ 80% of
screens solver-free, and ≥ 1.2× on the scion stream.

Set ``GATE_BENCH_JSON=/path/out.json`` to dump the measured numbers and
per-layer gate counters (CI uploads that file as an artifact).
"""

import json
import os
import time

from conftest import heading, make_flay
from repro.runtime.fuzzer import EntryFuzzer

# Tracked acceptance floors (validated again offline by
# ``tools/check_bench.py`` against the committed BENCH_6.json).
SWITCH_SPEEDUP_FLOOR = 5.0
SWITCH_SOLVER_FREE_FLOOR = 0.8
# Scion's hot value points are monster rewrite terms the probe-pattern
# hunt retires; the tier-2b pool (entry-directed solver seeding) turns
# them into witness replays, so the gate must now *win* on scion too —
# the floor pins the win, not mere neutrality.
SCION_SPEEDUP_FLOOR = 1.2

SWITCH_TABLES = [
    "SwitchIngress.nat_table",
    "SwitchIngress.ipv4_multicast",
    "SwitchIngress.ipv6_multicast",
]
SCION_TABLES = [f"ScionEgress.rewrite_mac_if{i}" for i in range(4)]
WARMUP_SEED = 5
STREAM_SEED = 17
STREAM_COUNT = 200


def instrument_verdicts(flay):
    """Shadow ``point_verdict`` with a timing wrapper; returns the box.

    The verdict phase is where the gate lives — batching the measurement
    there keeps table maintenance, lowering, and printing (identical in
    both configurations) out of the comparison.
    """
    qe = flay.runtime.ctx.query_engine
    box = {"seconds": 0.0, "calls": 0}
    original = qe.point_verdict

    def timed(*args, **kwargs):
        start = time.perf_counter()
        try:
            return original(*args, **kwargs)
        finally:
            box["seconds"] += time.perf_counter() - start
            box["calls"] += 1

    qe.point_verdict = timed
    return box


def warmup_updates(flay, seed=WARMUP_SEED):
    """One representative entry per action of every table: dependent
    points go MAYBE and the gate harvests their witnesses."""
    fuzzer = EntryFuzzer(flay.model, seed=seed)
    updates = []
    for table in sorted(flay.model.tables):
        updates.extend(fuzzer.representative_updates(table, per_action=1))
    return updates


def disjoint_stream(flay, tables, seed=STREAM_SEED, count=STREAM_COUNT):
    """Insert-only churn over random (disjoint-heavy) match keys."""
    return EntryFuzzer(flay.model, seed=seed).update_stream(
        tables=tables, count=count, modify_fraction=0.0, delete_fraction=0.0
    )


def run_config(program, tables, gated):
    """(verdict_ms, calls, warmup delta, measured delta, flay) for one run.

    The gate-stat deltas are split at the warmup/measured boundary:
    witness harvesting mostly happens while warmup saturates the tables
    (the measured disjoint stream then *replays*), so folding both phases
    into one delta is how the harvest counters read zero in ISSUE 6's
    artifact.
    """
    flay = make_flay(program, fdd_gate=gated)
    start = flay.gate_stats() if gated else None
    for update in warmup_updates(flay):
        flay.process_update(update)
    warm = flay.gate_stats().since(start) if gated else None
    stream = disjoint_stream(flay, tables)
    box = instrument_verdicts(flay)
    before = flay.gate_stats() if gated else None
    for update in stream:
        flay.process_update(update)
    delta = flay.gate_stats().since(before) if gated else None
    return box["seconds"] * 1000, box["calls"], warm, delta, flay


def layer_counts(delta):
    """Per-layer resolution counts: how many verdict queries each tier
    of the stack absorbed (the ISSUE's interval / FDD / CDCL split)."""
    return {
        "fdd_witness_replays": delta.witness_hits + delta.witness_evals,
        "interval_screen": delta.interval_decided,
        "exec_cache": delta.exec_cache_hits,
        "cdcl_probes": delta.solver_fallbacks,
    }


def bench_program(name, program, tables, timings):
    gated_ms, gated_calls, warm, delta, gated_flay = run_config(
        program, tables, True
    )
    ungated_ms, ungated_calls, _, _, ungated_flay = run_config(
        program, tables, False
    )
    # The ablation contract, checked on the bench workload itself.
    assert gated_flay.specialized_source() == ungated_flay.specialized_source()
    assert (
        gated_flay.runtime.point_verdicts == ungated_flay.runtime.point_verdicts
    )

    speedup = ungated_ms / gated_ms if gated_ms else float("inf")
    solver_free_rate = delta.solver_free / max(delta.screened, 1)
    timings[f"{name}_gated_verdict_ms"] = gated_ms
    timings[f"{name}_ungated_verdict_ms"] = ungated_ms
    timings[f"{name}_verdict_speedup"] = speedup
    timings[f"{name}_verdict_calls_gated"] = gated_calls
    timings[f"{name}_verdict_calls_ungated"] = ungated_calls
    timings[f"{name}_screens"] = delta.screened
    timings[f"{name}_solver_free_rate"] = solver_free_rate
    # Harvest counters, split by phase: warmup is where tables saturate
    # and most witnesses are mined; the measured stream reports its own
    # (usually small) top-up plus the tier-2b lazy borrows.
    timings[f"{name}_witness_harvested_warmup"] = warm.harvested
    timings[f"{name}_witness_harvested"] = delta.harvested
    timings[f"{name}_lazy_harvested_warmup"] = warm.lazy_harvests
    timings[f"{name}_lazy_harvested"] = delta.lazy_harvests
    # Structural table-verdict memo traffic during the measured stream.
    timings[f"{name}_table_verdict_hits"] = delta.table_verdict_hits
    timings[f"{name}_table_verdict_misses"] = delta.table_verdict_misses
    for layer, count in layer_counts(delta).items():
        timings[f"{name}_layer_{layer}"] = count

    print(f"{name}: {STREAM_COUNT} disjoint-heavy inserts into {len(tables)} tables")
    print(f"  ungated verdict phase: {ungated_ms:8.1f} ms ({ungated_calls} queries)")
    print(f"  gated verdict phase:   {gated_ms:8.1f} ms ({gated_calls} queries)")
    print(f"  speedup:               {speedup:8.2f}x")
    print(
        f"  layers: witness {timings[f'{name}_layer_fdd_witness_replays']}, "
        f"interval {timings[f'{name}_layer_interval_screen']}, "
        f"cached {timings[f'{name}_layer_exec_cache']}, "
        f"cdcl {timings[f'{name}_layer_cdcl_probes']}"
    )
    print(
        f"  solver-free: {delta.solver_free}/{delta.screened} screens "
        f"({100 * solver_free_rate:.1f}%)"
    )
    print(
        f"  harvests: warmup {warm.harvested}+{warm.lazy_harvests} lazy, "
        f"measured {delta.harvested}+{delta.lazy_harvests} lazy; "
        f"table verdicts {delta.table_verdict_hits} memo hits / "
        f"{delta.table_verdict_misses} misses"
    )
    return speedup, solver_free_rate


def test_gate_speedup_on_disjoint_stream(benchmark, corpus_programs):
    timings = {
        "stream_count": STREAM_COUNT,
        "warmup_seed": WARMUP_SEED,
        "stream_seed": STREAM_SEED,
        "switch_verdict_speedup_floor": SWITCH_SPEEDUP_FLOOR,
        "switch_solver_free_rate_floor": SWITCH_SOLVER_FREE_FLOOR,
        "scion_verdict_speedup_floor": SCION_SPEEDUP_FLOOR,
    }

    heading("FDD verdict gate: gated vs ungated warm verdict phase")
    switch_speedup, switch_rate = bench_program(
        "switch", corpus_programs["switch"], SWITCH_TABLES, timings
    )
    scion_speedup, _ = bench_program(
        "scion", corpus_programs["scion"], SCION_TABLES, timings
    )
    print(f"acceptance: switch speedup {switch_speedup:.2f}x (bar: >= 5x), "
          f"solver-free {100 * switch_rate:.1f}% (bar: >= 80%)")

    # Register the gated switch verdict phase with pytest-benchmark.
    def gated_run():
        run_config(corpus_programs["switch"], SWITCH_TABLES, True)

    benchmark.pedantic(gated_run, rounds=1, iterations=1)
    benchmark.extra_info["switch_verdict_speedup"] = round(switch_speedup, 2)
    benchmark.extra_info["scion_verdict_speedup"] = round(scion_speedup, 2)
    benchmark.extra_info["scion_verdict_speedup_floor"] = SCION_SPEEDUP_FLOOR

    out_path = os.environ.get("GATE_BENCH_JSON")
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(timings, handle, indent=2, sort_keys=True)
        print(f"wrote {out_path}")

    assert switch_speedup >= SWITCH_SPEEDUP_FLOOR
    assert switch_rate >= SWITCH_SOLVER_FREE_FLOOR
    # The scion stream must be a real win now that tier-2b pool harvest
    # covers its hunt-retired monster points (see SCION_SPEEDUP_FLOOR).
    assert scion_speedup >= SCION_SPEEDUP_FLOOR
