"""Fig. 1 — the rate-of-change spread of a network program's inputs.

The figure's claim: program source changes over days/weeks, control-plane
policy daily, routes/NAT/firewall state in (bursty) seconds, packets in
nanoseconds.  We regenerate it by measuring synthetic traces of each class.
"""

from conftest import heading
from repro.runtime.trace import (
    PACKET_ARRIVAL,
    POLICY_CHANGE,
    ROUTE_CHANGE,
    SOURCE_CHANGE,
    control_plane_trace,
    measure_classes,
)


def _human_interval(seconds: float) -> str:
    if seconds >= 86400:
        return f"{seconds / 86400:.1f} days"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f} h"
    if seconds >= 1:
        return f"{seconds:.1f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.1f} us"
    return f"{seconds * 1e9:.1f} ns"


def test_fig1_rate_spread(benchmark):
    stats = benchmark(measure_classes)
    heading("Fig. 1: rate of change of network program inputs")
    print(f"{'Input class':<28} {'mean interval':>14} {'rate (Hz)':>12} {'burstiness':>11}")
    by_kind = {s.kind: s for s in stats}
    for kind in (SOURCE_CHANGE, POLICY_CHANGE, ROUTE_CHANGE, PACKET_ARRIVAL):
        s = by_kind[kind]
        print(
            f"{kind:<28} {_human_interval(s.mean_interval):>14} "
            f"{s.rate_hz:>12.3g} {s.cv_interval:>11.2f}"
        )
    # The figure's ordering and its >12-orders-of-magnitude spread.
    assert (
        by_kind[SOURCE_CHANGE].rate_hz
        < by_kind[POLICY_CHANGE].rate_hz
        < by_kind[ROUTE_CHANGE].rate_hz
        < by_kind[PACKET_ARRIVAL].rate_hz
    )
    assert by_kind[PACKET_ARRIVAL].rate_hz / by_kind[SOURCE_CHANGE].rate_hz > 1e12
    # Routing updates arrive in bursts (§1); packets are Poisson-smooth.
    assert by_kind[ROUTE_CHANGE].cv_interval > by_kind[PACKET_ARRIVAL].cv_interval


def test_fig1_burst_structure(benchmark):
    """One hour of control-plane activity: route updates cluster in bursts
    of hundreds of rules — the pattern that motivates batch processing."""
    events = benchmark(control_plane_trace, 3600.0, 200, 1)
    from collections import Counter

    route_bursts = Counter(
        e.burst_id for e in events if e.kind == ROUTE_CHANGE
    )
    if route_bursts:
        biggest = max(route_bursts.values())
        print(f"\n[Fig 1] route bursts in 1 h: {len(route_bursts)}, "
              f"largest burst {biggest} rules")
        assert biggest >= 100
