"""Fig. 2 — the control-plane-triggered incremental pipeline.

The figure's four panels: (1) an update arrives at the specializing
compiler, (2) the affected components are identified via taint, (3) their
behaviour is checked, (4) no-change updates are forwarded; changes trigger
recompilation of the affected component.

The bench drives the pipeline through both outcomes and measures the
per-update fast path.
"""

from conftest import heading, make_flay
from repro.programs import registry
from repro.runtime.entries import TableEntry, TernaryMatch
from repro.runtime.semantics import INSERT, Update

FULL48 = (1 << 48) - 1


def _entry(value, type_arg, priority):
    return TableEntry((TernaryMatch(value, FULL48),), "set", (type_arg,), priority)


def test_fig2_forward_path(benchmark, corpus_programs):
    """Steps (1)-(4), no-change outcome: the measured fast path."""
    flay = make_flay(corpus_programs["fig3"])
    flay.process_update(Update("eth_table", INSERT, _entry(0x10, 0x800, 10)))
    flay.process_update(Update("eth_table", INSERT, _entry(0x11, 0x801, 11)))

    counter = [0x100]

    def forward_one():
        counter[0] += 1
        return flay.process_update(
            Update("eth_table", INSERT, _entry(counter[0], 0x900, counter[0]))
        )

    decision = benchmark(forward_one)
    heading("Fig. 2: incremental pipeline — forward path")
    print(f"affected points checked: {decision.affected_points}")
    print(f"decision: {decision.describe()}")
    assert decision.forwarded and not decision.recompiled


def test_fig2_recompile_path(benchmark, corpus_programs):
    """Steps (1)-(4), behaviour-change outcome: respecialize + recompile."""
    program = corpus_programs["fig3"]

    def first_entry_changes_everything():
        flay = make_flay(program)
        return flay.process_update(
            Update("eth_table", INSERT, _entry(0x10, 0x800, 10))
        )

    decision = benchmark(first_entry_changes_everything)
    print(f"\n[Fig 2] recompile path: {decision.describe()}")
    assert decision.recompiled


def test_fig2_taint_narrows_work(corpus_programs, benchmark):
    """Step (2): the taint map confines the check to the updated table's
    program points, not the whole program."""
    flay = make_flay(corpus_programs["scion"])
    total_points = flay.model.point_count
    info = flay.model.table("ScionIngress.bfd_sessions")
    affected = benchmark(
        flay.model.points_for_control_vars, info.control_var_names()
    )
    print(f"\n[Fig 2] taint: {len(affected)}/{total_points} points affected "
          f"by a bfd_sessions update")
    assert len(affected) < total_points / 4
