"""Fig. 3 — one table's implementation evolving across updates 1-5.

Regenerates the figure as a transition table: for each control-plane
update, the decision (recompile/forward) and the resulting implementation
(removed / inlined / exact / ternary), checked against the paper's A-D.
"""

from conftest import heading, make_flay
from repro.p4 import ast_nodes as ast
from repro.runtime.entries import TableEntry, TernaryMatch
from repro.runtime.semantics import DELETE, INSERT, Update

FULL48 = (1 << 48) - 1


def _impl(flay) -> str:
    control = flay.specialized_program.find("Fig3Ingress")
    table = None
    for local in control.locals:
        if isinstance(local, ast.TableDecl) and local.name == "eth_table":
            table = local
    if table is None:
        text = flay.specialized_source()
        if "hdr.eth.type = " in text:
            return "inlined-action"
        return "removed (impl A)"
    kind = table.keys[0].match_kind
    actions = ",".join(a.name for a in table.actions)
    label = {"exact": "exact (impl B)", "ternary": "ternary (impl C/D)"}[kind]
    return f"{label} actions=[{actions}]"


STEPS = [
    ("(2) insert [0x1/0x0] -> set(0x800)",
     Update("eth_table", INSERT, TableEntry((TernaryMatch(0x1, 0x0),), "set", (0x800,), 10))),
    ("(3a) delete entry 1",
     Update("eth_table", DELETE, TableEntry((TernaryMatch(0x1, 0x0),), "set", (0x800,), 10))),
    ("(3b) insert [0x2/full] -> set(0x900)",
     Update("eth_table", INSERT, TableEntry((TernaryMatch(0x2, FULL48),), "set", (0x900,), 10))),
    ("(4) insert [0x5/0x8] -> set(0x700)",
     Update("eth_table", INSERT, TableEntry((TernaryMatch(0x5, 0x8),), "set", (0x700,), 9))),
    ("(5) insert [0x6/0x7] -> set(0x200)",
     Update("eth_table", INSERT, TableEntry((TernaryMatch(0x6, 0x7),), "set", (0x200,), 8))),
]


def test_fig3_evolution(benchmark, corpus_programs):
    program = corpus_programs["fig3"]

    def run_sequence():
        flay = make_flay(program)
        rows = [("(1) initial: empty table", None, _impl(flay))]
        for label, update in STEPS:
            decision = flay.process_update(update)
            rows.append((label, decision, _impl(flay)))
        return rows

    rows = benchmark(run_sequence)
    heading("Fig. 3: eth_table implementation across control-plane updates")
    print(f"{'update':<40} {'decision':<10} implementation")
    for label, decision, impl in rows:
        verdict = "-" if decision is None else ("RECOMPILE" if decision.recompiled else "forward")
        print(f"{label:<40} {verdict:<10} {impl}")

    impls = [impl for _, _, impl in rows]
    assert impls[0].startswith("removed")            # impl A
    assert impls[1] == "inlined-action"              # inline set(0x800)
    assert impls[3].startswith("exact")              # impl B
    assert "drop" not in impls[3]                    # unused action removed
    assert impls[4].startswith("ternary")            # impl C
    assert impls[5] == impls[4]                      # impl D: unchanged
    decisions = [d.recompiled for _, d, _ in rows[1:]]
    assert decisions == [True, True, True, True, False]
