"""Fig. 5 — Flay's symbolic representation of ``egress_port``.

Regenerates the figure: the general data-plane model (block A), the value
under the initial empty configuration (block B), and the value after
inserting ``[key: 0xDEADBEEFF00D] -> set(0x01)`` (block C).
"""

from conftest import heading
from repro.analysis import analyze
from repro.runtime.entries import ExactMatch, TableEntry
from repro.runtime.semantics import ControlPlaneState, INSERT, Update, encode_table
from repro.smt import Substitution, simplify, terms as T, to_string


def _setup(corpus_programs):
    model = analyze(corpus_programs["fig5"])
    state = ControlPlaneState(model)
    info = model.table("port_table")
    final = model.final_store["meta.egress_port"]
    return model, state, info, final


def test_fig5_blocks(benchmark, corpus_programs):
    model, state, info, final = _setup(corpus_programs)

    heading("Fig. 5: symbolic value of egress_port at line 12")
    print("block A (data-plane model):")
    print("   ", to_string(final))

    empty = encode_table(info, state.table_state("port_table"))
    block_b = simplify(Substitution(empty.mapping).apply(final))
    print("block B (initial configuration: empty table):")
    print("   ", to_string(block_b))
    assert block_b is T.bv_const(0, 9)  # paper: egress_port evaluates to 0

    state.apply_update(
        Update(
            "port_table",
            INSERT,
            TableEntry((ExactMatch(0xDEADBEEFF00D),), "set", (0x01,)),
        )
    )
    configured = encode_table(info, state.table_state("port_table"))

    def substitute_block_c():
        return simplify(Substitution(configured.mapping).apply(final))

    block_c = benchmark(substitute_block_c)
    print("block C (after [key: 0xDEADBEEFF00D] -> set(0x01)):")
    print("   ", to_string(block_c))
    rendered = to_string(block_c)
    assert "@hdr.eth.dst@" in rendered and "0xdeadbeeff00d" in rendered
    # Two possible outcomes, 0 and 1 (the paper's closing observation).
    assert T.evaluate(block_c, {"hdr.eth.dst": 0xDEADBEEFF00D}) == 1
    assert T.evaluate(block_c, {"hdr.eth.dst": 0}) == 0


def test_fig5_assignments(benchmark, corpus_programs):
    """The control-plane assignment itself (below the dotted line)."""
    model, state, info, _ = _setup(corpus_programs)
    state.apply_update(
        Update(
            "port_table",
            INSERT,
            TableEntry((ExactMatch(0xDEADBEEFF00D),), "set", (0x01,)),
        )
    )
    assignment = benchmark(encode_table, info, state.table_state("port_table"))
    print("\n[Fig 5] control-plane assignments:")
    for var, term in assignment.mapping.items():
        print(f"    {to_string(var)} := {to_string(term)}")
    selector = assignment.mapping[info.selector_var]
    key_name = info.keys[0].term.name
    assert T.evaluate(selector, {key_name: 0xDEADBEEFF00D}) == info.action_codes["set"]
    assert T.evaluate(selector, {key_name: 0x1}) == info.action_codes["noop"]
