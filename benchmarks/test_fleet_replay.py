"""Fleet-scale replay: CNF dedup, recompile-storm latency, warm failover.

Eight simulated switches run the ``scion`` program (the solver-heavy
corpus member — toy programs decide every query before blasting, so
their CNF footprint is zero) with divergent table configurations under
one highly-correlated churn trace: every burst is a recompile storm
sweeping most of the fleet.  Measured:

* **fleet_dedup_ratio** — CNF fragments held by 8 isolated engines over
  fragments held with the content-addressed shared store (all switches
  probe one encoder, so the ratio approaches the fleet size);
* **storm p50/p99** — per-burst apply latency percentiles during the
  storm, shared-store fleet (the differential against the isolated
  fleet is asserted, not timed: identical per-switch lowered output);
* **cold vs restored warm-up** — rebuilding a failed switch the only
  way possible without snapshots (cold pipeline + replay of its entire
  update history) versus restoring the warm state from its snapshot
  blob; an empty cold build is recorded alongside for scale.

Set ``FLEET_BENCH_JSON=/path/out.json`` to dump the measured numbers
(CI uploads that file as an artifact; ``tools/check_bench.py``
validates the committed copy against the floors below).
"""

import json
import os
import pickle
import time

from conftest import heading
from repro.engine.context import EngineOptions
from repro.engine.engine import Engine
from repro.fleet import FleetSimulator
from repro.fleet.sim import dedup_ratio
from repro.programs import registry

SWITCHES = 8
SEED = 9
# Tracked acceptance floors (validated offline against BENCH_9.json).
DEDUP_RATIO_FLOOR = 4.0  # 8 isolated CNF copies collapse to ~1 shared
RESTORE_SPEEDUP_FLOOR = 3.0  # failover beats cold rebuild + full replay

FLEET_KW = dict(
    switches=SWITCHES,
    seed=SEED,
    duration=90.0,
    mean_interval=12.0,
    correlation=0.9,  # storms: most bursts sweep most of the fleet
    updates_per_burst=4,
    divergent_prefix=4,
)


def build_and_run(source, shared):
    options = EngineOptions(target="none")
    sim = FleetSimulator(source, options=options, shared_store=shared, **FLEET_KW)
    start = time.perf_counter()
    report = sim.run()
    elapsed = time.perf_counter() - start
    return sim, report, elapsed * 1000


def test_fleet_replay_dedup_and_failover(benchmark):
    source = registry.get("scion").source()
    timings = {
        "switches": SWITCHES,
        "seed": SEED,
        "correlation": FLEET_KW["correlation"],
        "fleet_dedup_ratio_floor": DEDUP_RATIO_FLOOR,
        "restore_speedup_vs_cold_floor": RESTORE_SPEEDUP_FLOOR,
    }

    heading("Fleet replay: 8 scion switches, correlated recompile storms")
    shared_sim, shared_report, shared_ms = build_and_run(source, shared=True)
    isolated_sim, isolated_report, isolated_ms = build_and_run(
        source, shared=False
    )

    # Soundness first: sharing must not change a single lowered byte.
    assert shared_report.lowered_traces() == isolated_report.lowered_traces()
    assert (
        shared_report.specialized_sources()
        == isolated_report.specialized_sources()
    )

    ratio = dedup_ratio(isolated_report, shared_report)
    timings["fleet_dedup_ratio"] = ratio
    timings["shared_cnf_fragments"] = shared_report.fragment_footprint
    timings["isolated_cnf_fragments"] = isolated_report.fragment_footprint
    timings["shared_encoder_vars"] = shared_report.encoder_vars
    timings["isolated_encoder_vars"] = isolated_report.encoder_vars
    timings["store_hits"] = shared_report.store_hits
    timings["bursts"] = shared_report.bursts
    timings["updates"] = shared_report.summary["updates"]
    timings["storm_p50_ms"] = shared_report.latency_quantile(0.5)
    timings["storm_p99_ms"] = shared_report.latency_quantile(0.99)
    timings["storm_p50_ms_isolated"] = isolated_report.latency_quantile(0.5)
    timings["storm_p99_ms_isolated"] = isolated_report.latency_quantile(0.99)
    timings["shared_replay_ms"] = shared_ms
    timings["isolated_replay_ms"] = isolated_ms

    print(f"bursts: {shared_report.bursts} arrivals, "
          f"{timings['updates']} updates across {SWITCHES} switches")
    print(f"  CNF fragments: {isolated_report.fragment_footprint} isolated "
          f"vs {shared_report.fragment_footprint} shared "
          f"-> dedup ratio {ratio:.2f}x")
    print(f"  storm latency (shared):   p50 {timings['storm_p50_ms']:7.2f} ms, "
          f"p99 {timings['storm_p99_ms']:7.2f} ms")
    print(f"  storm latency (isolated): p50 {timings['storm_p50_ms_isolated']:7.2f} ms, "
          f"p99 {timings['storm_p99_ms_isolated']:7.2f} ms")

    # Failover: snapshot the busiest switch, then compare a cold build
    # against restoring its full warm state from the pickled blob.
    busiest = max(
        range(SWITCHES), key=lambda s: shared_report.switches[s].updates
    )
    result = shared_report.switches[busiest]
    blob = pickle.dumps(shared_sim.engines[busiest].snapshot())
    timings["snapshot_bytes"] = len(blob)

    start = time.perf_counter()
    cold = Engine(source=source, options=EngineOptions(target="none"))
    cold_ms = (time.perf_counter() - start) * 1000
    assert cold.specialized_program is not None

    # The no-snapshot failover path: cold pipeline, then replay the
    # switch's entire deterministic update history (regenerated from
    # the fleet seeds) to reach the same warm state.
    from repro.runtime.fuzzer import EntryFuzzer

    start = time.perf_counter()
    replica = Engine(source=source, options=EngineOptions(target="none"))
    prefix_fuzzer = EntryFuzzer(
        replica.model, seed=shared_sim._switch_seed(busiest, 1)
    )
    for update in prefix_fuzzer.update_stream(
        count=FLEET_KW["divergent_prefix"] + busiest
    ):
        replica.process_update(update)
    burst_fuzzer = EntryFuzzer(
        replica.model, seed=shared_sim._switch_seed(busiest, 2)
    )
    for _ in range(result.bursts):
        for update in burst_fuzzer.update_stream(
            count=FLEET_KW["updates_per_burst"]
        ):
            replica.process_update(update)
    cold_replay_ms = (time.perf_counter() - start) * 1000

    # Standalone restore (fresh host, no store): pays the program-pure
    # passes again, but never replays the update history.
    start = time.perf_counter()
    restored_standalone = Engine.restore(pickle.loads(blob))
    restore_standalone_ms = (time.perf_counter() - start) * 1000

    # Fleet failover restore: the replacement host already runs other
    # switches of this program, so the shared store supplies the parsed
    # AST, model, and encoder — only the warm-state splice remains.
    start = time.perf_counter()
    restored = Engine.restore(pickle.loads(blob), store=shared_sim.store)
    restore_ms = (time.perf_counter() - start) * 1000

    live = shared_sim.engines[busiest]
    assert restored.point_verdicts == live.point_verdicts
    assert restored_standalone.point_verdicts == live.point_verdicts
    assert replica.point_verdicts == live.point_verdicts
    restore_speedup = (
        cold_replay_ms / restore_ms if restore_ms else float("inf")
    )
    timings["cold_build_ms"] = cold_ms
    timings["cold_replay_ms"] = cold_replay_ms
    timings["restore_standalone_ms"] = restore_standalone_ms
    timings["restore_ms"] = restore_ms
    timings["restore_speedup_vs_cold"] = restore_speedup

    print(f"  failover (switch {busiest}, {result.updates} updates warm): "
          f"cold+replay {cold_replay_ms:.1f} ms vs restore {restore_ms:.1f} ms "
          f"-> {restore_speedup:.2f}x")
    print(f"  (standalone restore {restore_standalone_ms:.1f} ms, "
          f"empty cold build {cold_ms:.1f} ms)")
    print(f"acceptance: dedup {ratio:.2f}x (bar: >= {DEDUP_RATIO_FLOOR}x), "
          f"restore speedup {restore_speedup:.2f}x "
          f"(bar: >= {RESTORE_SPEEDUP_FLOOR}x)")

    # Register the shared-fleet replay with pytest-benchmark.
    def shared_run():
        build_and_run(source, shared=True)

    benchmark.pedantic(shared_run, rounds=1, iterations=1)
    benchmark.extra_info["fleet_dedup_ratio"] = round(ratio, 2)
    benchmark.extra_info["storm_p99_ms"] = round(timings["storm_p99_ms"], 2)
    benchmark.extra_info["restore_speedup_vs_cold"] = round(restore_speedup, 2)

    out_path = os.environ.get("FLEET_BENCH_JSON")
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(timings, handle, indent=2, sort_keys=True)
        print(f"wrote {out_path}")

    assert ratio >= DEDUP_RATIO_FLOOR
    assert restore_speedup >= RESTORE_SPEEDUP_FLOOR
