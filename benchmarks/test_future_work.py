"""Benches for the paper's §6 future-work directions, built on Flay.

1. **Incremental device recompilation**: when respecialization is needed,
   recompile only the tables whose implementation changed instead of the
   whole program (modeled per-module compiler vs the monolithic Table 1
   model).
2. **Specialization quality vs time**: the effort knob none/dce/full,
   trading residual program size (pipeline stages) against
   respecialization latency.
"""

import time

import pytest

from conftest import heading, make_flay
from repro.core import EFFORT_DCE, EFFORT_FULL, EFFORT_NONE, Flay, FlayOptions
from repro.programs import registry, scion
from repro.runtime.entries import ExactMatch, TableEntry
from repro.runtime.fuzzer import EntryFuzzer
from repro.runtime.semantics import INSERT, Update
from repro.targets.tofino import allocate
from repro.targets.tofino.incremental import IncrementalTofinoCompiler


def _scion_config(flay):
    fuzzer = EntryFuzzer(flay.model, seed=7)
    updates = [
        Update(
            "ScionIngress.underlay_map",
            INSERT,
            TableEntry((ExactMatch(0x0800),), "underlay_v4", ()),
        )
    ]
    for table in scion.ipv4_config_tables():
        updates.extend(fuzzer.representative_updates(table))
    return updates


class TestIncrementalRecompilation:
    def test_incremental_vs_monolithic_compile(self, benchmark, corpus_programs):
        """After the IPv4-only specialization, enable IPv6: the modular
        compiler pays for the tables that changed, not the whole program."""
        program = corpus_programs["scion"]
        compiler = IncrementalTofinoCompiler(program_name="scion")
        flay = Flay(program, FlayOptions(target="none"))
        flay.runtime.device_compiler = compiler
        compiler.compile(flay.specialized_program)  # baseline artifact

        flay.process_batch(_scion_config(flay))
        report = compiler.reports[-1]

        heading("§6 future work: incremental device recompilation (scion)")
        print(f"respecialization delta: {report.delta.describe()}")
        print(f"incremental compile:    {report.modeled_seconds:.1f} s")
        print(f"monolithic compile:     {report.monolithic_seconds:.1f} s")
        print(f"speedup:                {report.speedup:.1f}x")
        assert report.speedup > 1.5

        def diff_again():
            from repro.targets.tofino.incremental import diff_programs

            return diff_programs(program, flay.specialized_program)

        delta = benchmark(diff_again)
        assert delta.touched > 0


class TestEffortTradeoff:
    @pytest.mark.parametrize("effort", (EFFORT_NONE, EFFORT_DCE, EFFORT_FULL))
    def test_effort_levels(self, benchmark, corpus_programs, effort):
        """Respecialization latency and residual stage demand per effort."""
        program = corpus_programs["scion"]
        flay = Flay(program, FlayOptions(target="none", effort=effort))
        flay.process_batch(_scion_config(flay))

        def respecialize():
            return flay.runtime.specializer.specialize(
                flay.runtime.point_verdicts, flay.runtime.table_verdicts
            )

        specialized, _report = benchmark(respecialize)
        stages = allocate(specialized).stages_used
        benchmark.extra_info["stages"] = stages
        benchmark.extra_info["effort"] = effort
        print(f"\n[§6] effort={effort}: residual stage demand {stages}")

    def test_effort_summary(self, benchmark, corpus_programs):
        program = corpus_programs["scion"]

        def sweep():
            rows = []
            for effort in (EFFORT_NONE, EFFORT_DCE, EFFORT_FULL):
                flay = Flay(program, FlayOptions(target="none", effort=effort))
                flay.process_batch(_scion_config(flay))
                start = time.perf_counter()
                specialized, _ = flay.runtime.specializer.specialize(
                    flay.runtime.point_verdicts, flay.runtime.table_verdicts
                )
                respec_ms = (time.perf_counter() - start) * 1000
                rows.append((effort, respec_ms, allocate(specialized).stages_used))
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        heading("§6 future work: specialization time vs quality (scion, IPv4 config)")
        print(f"{'effort':<8} {'respecialize (ms)':>18} {'stage demand':>13}")
        for effort, respec_ms, stages in rows:
            print(f"{effort:<8} {respec_ms:>18.1f} {stages:>13}")
        by_effort = {r[0]: r for r in rows}
        # More effort buys more stages back, and never for free.
        assert by_effort[EFFORT_FULL][2] <= by_effort[EFFORT_DCE][2] <= by_effort[EFFORT_NONE][2]
        assert by_effort[EFFORT_FULL][2] < by_effort[EFFORT_NONE][2]
        assert by_effort[EFFORT_NONE][1] <= by_effort[EFFORT_FULL][1]
