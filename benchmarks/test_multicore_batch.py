"""Executor matrix: serial vs thread vs process pools over real bursts.

Two workloads, each run through every executor at worker counts 1 and 4:

* **scion burst** — the saturated 240-insert spray over four independent
  per-interface MAC-rewrite tables from ``test_batch_burst`` (four
  conflict groups, the best case for pool parallelism);
* **switch disjoint stream** — warm up every table with one entry per
  action, then a 200-insert disjoint-heavy stream over the three NAT /
  multicast tables from ``test_fdd_gate`` (gate-friendly, fewer groups).

What this bench *asserts* is the transport contract, not a speedup:
output (verdicts + specialized source) is byte-identical across every
cell of the matrix, and every merge passes the double-counting tripwire
(``schedule_batch`` checks it on each batch).  What it *records* is the
honest wall-clock picture for the machine it ran on, including
``cpu_count``: on a single-CPU container the process executor cannot
win — it pays fork + arena-pickle overhead with no parallel cycles
available — and the numbers say so.  The GIL-escape claim is only
testable on a multi-core runner (CI uploads this file's JSON as the
BENCH_7 artifact from a matrix cell; read it next to ``cpu_count``).

Set ``MULTICORE_BENCH_JSON=/path/out.json`` to dump the measured numbers.
"""

import json
import os

from conftest import heading, make_flay
from test_batch_burst import _workload as scion_workload
from test_fdd_gate import SWITCH_TABLES, disjoint_stream, warmup_updates

EXECUTORS = ("serial", "thread", "process")
WORKER_COUNTS = (1, 4)


def switch_workload(corpus_programs, seed=11):
    """A warmed switch engine plus a 200-insert disjoint-heavy stream."""
    flay = make_flay(corpus_programs["switch"])
    flay.process_batch(warmup_updates(flay))
    stream = disjoint_stream(flay, SWITCH_TABLES, seed=seed)
    return flay, stream


def run_matrix(results, name, build):
    """Run every executor × worker cell of one workload; record timings
    and check byte-identical output against the serial baseline."""
    baseline = None
    for executor in EXECUTORS:
        for workers in WORKER_COUNTS:
            flay, burst = build()
            report = flay.apply_batch(burst, workers=workers, executor=executor)
            results[f"{name}_{executor}_w{workers}_ms"] = report.elapsed_ms
            output = (
                dict(flay.runtime.point_verdicts),
                flay.specialized_source(),
            )
            if baseline is None:
                baseline = output
                results[f"{name}_updates"] = report.update_count
                results[f"{name}_groups"] = report.group_count
            else:
                assert output == baseline, (
                    f"{name}: {executor}/w{workers} diverged from serial"
                )
    serial = results[f"{name}_serial_w1_ms"]
    for executor in ("thread", "process"):
        results[f"{name}_{executor}_w4_speedup_vs_serial"] = (
            serial / results[f"{name}_{executor}_w4_ms"]
        )


def test_executor_matrix(benchmark, corpus_programs):
    results = {"cpu_count": os.cpu_count() or 1}

    run_matrix(
        results, "scion", lambda: scion_workload(corpus_programs)
    )
    run_matrix(
        results, "switch", lambda: switch_workload(corpus_programs)
    )

    # Register the process-pool scion cell with pytest-benchmark's stats.
    def process_cell():
        flay, burst = scion_workload(corpus_programs)
        return flay.apply_batch(burst, workers=4, executor="process")

    benchmark.pedantic(process_cell, rounds=3, iterations=1)

    heading("Executor matrix: serial / thread / process × workers 1 / 4")
    print(f"cpu_count: {results['cpu_count']}")
    for name in ("scion", "switch"):
        print(
            f"{name}: {results[f'{name}_updates']} updates, "
            f"{results[f'{name}_groups']} conflict groups"
        )
        for executor in EXECUTORS:
            row = "  ".join(
                f"w{w}: {results[f'{name}_{executor}_w{w}_ms']:8.1f} ms"
                for w in WORKER_COUNTS
            )
            print(f"  {executor:<8} {row}")

    out_path = os.environ.get("MULTICORE_BENCH_JSON")
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"wrote {out_path}")
