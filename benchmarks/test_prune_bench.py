"""BENCH_8: the prune ablation and the dependency-precision measurement.

Two questions, answered with honest numbers:

* **What does ``--no-prune`` change?**  Cold pipeline wall-clock and the
  CNF the query engine built, on scion and switch_kitchen_sink.  The
  differential harness already pins that specialized *output* is
  byte-identical either way; this bench records the *cost* side.  On
  this corpus the CNF sizes come out identical — the symbolic executor
  short-circuits the same constant branches the prune pass deletes — and
  pruning pays its own abstract-interpretation run up front, so the
  ablation documents overhead, not savings.  The assertion layer pins
  the identity (output and CNF), not a speedup.

* **Does flow-sensitive dependency precision shrink conflict groups?**
  Strict conflict components (taint ∪ dependency edges) under the
  historical syntactic walk vs the flow-sensitive effects analysis, next
  to the taint-only partition the scheduler actually uses, on the scion
  240-insert burst and on switch.  Measured result: the flow refinement
  tightens per-action effect sets and edge kinds but never connectivity
  on this corpus (a killed read always implies the killing write, which
  keeps a write-write edge) — the partitions coincide, and the bench
  records that parity explicitly as ``*_parity: true``.

Set ``PRUNE_BENCH_JSON=/path/out.json`` to dump the measured numbers
(CI uploads it as the BENCH_8 artifact).
"""

import json
import os
import time

from conftest import heading, make_flay

from repro.engine.batch import conflict_components
from repro.ir.deps import PRECISION_FLOW, PRECISION_SYNTACTIC

from test_batch_burst import _workload as scion_burst_workload

COLD_PROGRAMS = ("scion", "switch")


def _cnf_counts(flay):
    encoder = flay.runtime.ctx.query_engine.solver._encoder
    fragments = list(encoder._bool_frags.values()) + list(
        encoder._bv_frags.values()
    )
    return encoder.var_count, sum(len(f._ends) for f in fragments)


def _cold_run(program, prune):
    from repro.core import Flay, FlayOptions

    start = time.perf_counter()
    flay = Flay(program, FlayOptions(target="tofino", prune=prune))
    source = flay.specialized_source()
    elapsed_ms = (time.perf_counter() - start) * 1000
    variables, clauses = _cnf_counts(flay)
    return {
        "ms": elapsed_ms,
        "cnf_variables": variables,
        "cnf_clauses": clauses,
        "source": source,
        "report": flay.prune_report,
    }


def _component_count(components):
    return len(set(components.values()))


def test_prune_ablation_and_dependency_precision(benchmark, corpus_programs):
    results = {}

    # -- prune ablation: cold pipeline with and without the pass --------
    for name in COLD_PROGRAMS:
        pruned = _cold_run(corpus_programs[name], prune=True)
        unpruned = _cold_run(corpus_programs[name], prune=False)
        # The ablation's contract: identical output, identical CNF.
        assert pruned["source"] == unpruned["source"]
        assert pruned["cnf_variables"] == unpruned["cnf_variables"]
        assert pruned["cnf_clauses"] == unpruned["cnf_clauses"]
        results[f"{name}_cold_pruned_ms"] = pruned["ms"]
        results[f"{name}_cold_no_prune_ms"] = unpruned["ms"]
        results[f"{name}_cnf_variables"] = pruned["cnf_variables"]
        results[f"{name}_cnf_clauses"] = pruned["cnf_clauses"]
        results[f"{name}_removed_branches"] = pruned["report"].removed_branches
        results[f"{name}_folded_constants"] = pruned["report"].folded_constants

    # -- dependency precision: strict components, both walks ------------
    for name in COLD_PROGRAMS:
        flay = make_flay(corpus_programs[name])
        taint_only = conflict_components(flay.model)
        syntactic = conflict_components(
            flay.model,
            flay.program,
            flay.env,
            strict=True,
            precision=PRECISION_SYNTACTIC,
        )
        flow = conflict_components(
            flay.model,
            flay.program,
            flay.env,
            strict=True,
            precision=PRECISION_FLOW,
        )
        results[f"{name}_taint_components"] = _component_count(taint_only)
        results[f"{name}_strict_syntactic_components"] = _component_count(
            syntactic
        )
        results[f"{name}_strict_flow_components"] = _component_count(flow)
        results[f"{name}_strict_parity"] = _component_count(
            syntactic
        ) == _component_count(flow)

    # -- the scion 240-insert burst through the real scheduler ----------
    def burst_cell():
        flay, burst = scion_burst_workload(corpus_programs)
        return flay, flay.apply_batch(burst, workers=2)

    flay, report = burst_cell()
    results["scion_burst_updates"] = report.update_count
    results["scion_burst_groups"] = report.group_count
    results["scion_burst_ms"] = report.elapsed_ms
    benchmark.pedantic(lambda: burst_cell()[1], rounds=3, iterations=1)

    heading("BENCH_8: prune ablation + dependency precision")
    for name in COLD_PROGRAMS:
        print(
            f"{name}: cold {results[f'{name}_cold_pruned_ms']:.0f} ms pruned / "
            f"{results[f'{name}_cold_no_prune_ms']:.0f} ms --no-prune, "
            f"CNF {results[f'{name}_cnf_variables']} vars / "
            f"{results[f'{name}_cnf_clauses']} clauses (identical both ways), "
            f"{results[f'{name}_removed_branches']} branches removed"
        )
        print(
            f"{name}: components taint={results[f'{name}_taint_components']} "
            f"strict/syntactic={results[f'{name}_strict_syntactic_components']} "
            f"strict/flow={results[f'{name}_strict_flow_components']} "
            f"(parity={results[f'{name}_strict_parity']})"
        )
    print(
        f"scion burst: {results['scion_burst_updates']} updates in "
        f"{results['scion_burst_groups']} groups, "
        f"{results['scion_burst_ms']:.0f} ms"
    )

    out_path = os.environ.get("PRUNE_BENCH_JSON")
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"wrote {out_path}")
