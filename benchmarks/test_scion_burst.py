"""§4.2 burst experiment — 1000 fuzzer-generated IPv4 entries.

Paper: "Flay can determine within a second that the batch of updates does
not require program recompilation."  Then an IPv6-enabling batch triggers
respecialization.
"""

from conftest import heading, make_flay
from repro.programs import registry, scion
from repro.runtime.entries import ExactMatch, TableEntry
from repro.runtime.fuzzer import EntryFuzzer, ipv4_route_entries
from repro.runtime.semantics import INSERT, Update


def _configured(corpus_programs):
    flay = make_flay(corpus_programs["scion"])
    fuzzer = EntryFuzzer(flay.model, seed=7)
    updates = [
        Update(
            "ScionIngress.underlay_map",
            INSERT,
            TableEntry((ExactMatch(0x0800),), "underlay_v4", ()),
        )
    ]
    for table in scion.ipv4_config_tables():
        updates.extend(fuzzer.representative_updates(table))
    flay.process_batch(updates)
    return flay


def test_scion_1000_entry_burst(benchmark, corpus_programs):
    flay = _configured(corpus_programs)
    entries = list(
        ipv4_route_entries(
            flay.model, "ScionIngress.ipv4_forward", 1000, "deliver_local_v4", seed=23
        )
    )
    batches = [entries]

    def process_burst():
        burst = batches.pop() if batches else entries
        try:
            return flay.process_batch(
                [Update("ScionIngress.ipv4_forward", INSERT, e) for e in burst]
            )
        finally:
            # Reset for the next benchmark round.
            flay.runtime.state.table_state("ScionIngress.ipv4_forward").clear()

    decision = benchmark.pedantic(process_burst, rounds=3, iterations=1)
    heading("§4.2: burst of 1000 unique IPv4 entries into the SCION forwarding table")
    print(decision.describe())
    print(f"(paper: decided 'no recompilation' within a second)")
    assert decision.updates == 1000
    assert not decision.recompiled
    assert decision.elapsed_ms < 5000


def test_scion_ipv6_batch_triggers_recompile(benchmark, corpus_programs):
    def enable_ipv6():
        flay = _configured(corpus_programs)
        fuzzer = EntryFuzzer(flay.model, seed=9)
        updates = [
            Update(
                "ScionIngress.underlay_map",
                INSERT,
                TableEntry((ExactMatch(0x86DD),), "underlay_v6", ()),
            )
        ]
        for table in scion.IPV6_ONLY_TABLES:
            updates.extend(fuzzer.representative_updates(table))
        return flay.process_batch(updates)

    decision = benchmark.pedantic(enable_ipv6, rounds=1, iterations=1)
    print(f"\n[§4.2] IPv6-enabling batch: {decision.describe()}")
    assert decision.recompiled
