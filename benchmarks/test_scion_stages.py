"""§4.2 "Can specialization save resources?" — SCION stage usage.

Paper: the unspecialized SCION program needs the maximum number of Tofino-2
stages; specialized against the supplied IPv4-only configuration it needs
20% fewer; after enabling IPv6 it is back at the maximum.
"""

from conftest import heading, make_flay
from repro.programs import registry, scion
from repro.runtime.entries import ExactMatch, TableEntry
from repro.runtime.fuzzer import EntryFuzzer
from repro.runtime.semantics import INSERT, Update
from repro.targets.tofino import TOFINO2, allocate


def _ipv4_config(flay):
    fuzzer = EntryFuzzer(flay.model, seed=7)
    updates = [
        Update(
            "ScionIngress.underlay_map",
            INSERT,
            TableEntry((ExactMatch(0x0800),), "underlay_v4", ()),
        )
    ]
    for table in scion.ipv4_config_tables():
        updates.extend(fuzzer.representative_updates(table))
    return updates


def _ipv6_enable(flay):
    fuzzer = EntryFuzzer(flay.model, seed=9)
    updates = [
        Update(
            "ScionIngress.underlay_map",
            INSERT,
            TableEntry((ExactMatch(0x86DD),), "underlay_v6", ()),
        )
    ]
    for table in scion.IPV6_ONLY_TABLES:
        updates.extend(fuzzer.representative_updates(table))
    return updates


def test_scion_stage_savings(benchmark, corpus_programs):
    program = corpus_programs["scion"]
    flay = make_flay(program)
    flay.process_batch(_ipv4_config(flay))

    specialized_report = benchmark(allocate, flay.specialized_program)
    original_report = allocate(program)

    heading("§4.2: SCION stage usage on Tofino 2 (max = "
            f"{TOFINO2.num_stages} stages)")
    print(f"unspecialized:            {original_report.stages_used} stages")
    print(f"IPv4-only specialized:    {specialized_report.stages_used} stages")
    saving = 1 - specialized_report.stages_used / original_report.stages_used
    print(f"saving:                   {saving:.0%}  (paper: 20%)")

    assert original_report.stages_used == TOFINO2.num_stages
    assert 0.15 <= saving <= 0.25

    # Enable IPv6: all program paths used again -> back to the maximum.
    decision = flay.process_batch(_ipv6_enable(flay))
    assert decision.recompiled
    restored = allocate(flay.specialized_program)
    print(f"after enabling IPv6:      {restored.stages_used} stages")
    assert restored.stages_used >= original_report.stages_used - 1


def test_scion_specialization_report(benchmark, corpus_programs):
    """What the IPv4-only specialization actually removed."""
    program = corpus_programs["scion"]

    def specialize():
        flay = make_flay(program)
        flay.process_batch(_ipv4_config(flay))
        return flay

    flay = benchmark.pedantic(specialize, rounds=1, iterations=1)
    print("\n[§4.2] specializations applied:")
    print("   ", flay.report.summary()[:400])
    text = flay.specialized_source()
    for dead in ("acl_v6", "ipv6_forward", "next_hop_mac_v6"):
        assert dead not in text
    for alive in ("acl_v4", "ipv4_forward", "hop_forward", "path_step3"):
        assert alive in text
