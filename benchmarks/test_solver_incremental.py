"""Incremental CDCL session: cold blast vs warm assumption probes.

The paper leans on an incremental SMT solver (Z3) so that each update's
queries reuse the work of all earlier ones.  This bench replays that
trade-off at the SAT layer: the verdict queries a 1000-entry SCION update
stream actually sends to the solver (and the ``switch`` program's cold
specialization set) are swept through three solver configurations:

* **cold blast** — fresh encoder and solver per sweep: every query pays
  full Tseitin encoding plus a from-scratch search,
* **cone replay** — the pre-session architecture (PR 3 baseline): shared
  CNF fragment cache, but each query replays its cone into a throw-away
  solver, paying O(cone) clause construction per verdict,
* **warm probe** — the persistent :class:`~repro.smt.session.SolverSession`:
  each query is one ``solve(assumptions=[act])`` probe against the
  already-loaded clause database, deciding only the query's own cone.

The acceptance bar is warm probes ≥ 2× faster than the replay baseline
on the SCION stream's query set.

Set ``SOLVER_BENCH_JSON=/path/out.json`` to dump the measured numbers and
solver counters (CI uploads that file as an artifact).
"""

import json
import os
import time

from conftest import heading, make_flay
from repro.runtime.fuzzer import EntryFuzzer
from repro.runtime.semantics import INSERT, Update
from repro.smt import interval
from repro.smt.solver import Solver

SCION_TABLES = [f"ScionEgress.rewrite_mac_if{i}" for i in range(4)]
STREAM_ENTRIES = 1000
SWEEPS = 5


def _scion_stream(flay, count=STREAM_ENTRIES, seed=7):
    """``count`` unique inserts spread over four independent tables."""
    fuzzer = EntryFuzzer(flay.model, seed=seed)
    per_table = count // len(SCION_TABLES)
    updates = []
    for table in SCION_TABLES:
        info = flay.model.table(table)
        seen = set()
        while len(seen) < per_table:
            entry = fuzzer.entry(table)
            key = entry.match_key()
            if key in seen:
                continue
            seen.add(key)
            updates.append(Update(info.name, INSERT, entry))
    return updates


def _harvest_sat_terms(flay):
    """The queries that actually reached the SAT layer: every memoized
    simplified term minus the ones the interval pre-check decides."""
    return [
        term
        for term in flay.runtime.ctx.query_engine.solver._results
        if interval.eval_bool(term)
        not in (interval.DEFINITELY_TRUE, interval.DEFINITELY_FALSE)
    ]


def _sweep(solver, terms, rounds):
    """Mean seconds per sweep of every term through ``_check_sat_blasted``
    (the layer below the result memo — exactly the per-verdict SAT cost)."""
    start = time.perf_counter()
    for _ in range(rounds):
        for term in terms:
            solver._check_sat_blasted(term)
    return (time.perf_counter() - start) / rounds


def _measure(terms):
    """(cold_ms, replay_ms, warm_probe_ms, session_solver) for a term set."""
    cold = Solver(share_encodings=False)
    cold_s = _sweep(cold, terms, 1)

    replay = Solver(incremental=False)
    _sweep(replay, terms, 1)  # warm the fragment cache
    replay_s = _sweep(replay, terms, SWEEPS)

    session = Solver(incremental=True)
    _sweep(session, terms, 1)  # load every cone into the session
    session_s = _sweep(session, terms, SWEEPS)

    # The architectures must be answer-equivalent.
    for term in terms:
        assert (
            session._check_sat_blasted(term).satisfiable
            == replay._check_sat_blasted(term).satisfiable
        )
    return cold_s * 1000, replay_s * 1000, session_s * 1000, session


def _report(name, terms, results, timings):
    cold_ms, replay_ms, probe_ms, session = results
    stats = session.stats
    timings[f"{name}_terms"] = len(terms)
    timings[f"{name}_cold_blast_ms"] = cold_ms
    timings[f"{name}_cone_replay_ms"] = replay_ms
    timings[f"{name}_warm_probe_ms"] = probe_ms
    timings[f"{name}_replay_over_probe"] = replay_ms / probe_ms
    timings[f"{name}_conflicts"] = stats.search.conflicts
    timings[f"{name}_learned_clauses"] = stats.search.learned
    timings[f"{name}_propagations"] = stats.search.propagations
    timings[f"{name}_probe_p50_us"] = stats.probe_latency_us(0.5)
    timings[f"{name}_probe_p99_us"] = stats.probe_latency_us(0.99)
    print(f"{name}: {len(terms)} SAT-layer queries")
    print(f"  cold blast:       {cold_ms:8.2f} ms/sweep")
    print(f"  cone replay:      {replay_ms:8.2f} ms/sweep  (PR 3 baseline)")
    print(f"  warm probe:       {probe_ms:8.2f} ms/sweep")
    print(f"  replay / probe:   {replay_ms / probe_ms:8.2f}x  (bar: >= 2x)")
    print(
        f"  search: {stats.search.conflicts} conflicts, "
        f"{stats.search.learned} learned, "
        f"p50 {stats.probe_latency_us(0.5):.0f} us, "
        f"p99 {stats.probe_latency_us(0.99):.0f} us"
    )


def test_warm_probe_beats_cone_replay(benchmark, corpus_programs):
    timings = {}

    # SCION: the paper's 1000-entry burst scenario.  The stream grows the
    # tables past the overapproximation threshold; the engine's verdict
    # queries along the way are the SAT workload.
    flay = make_flay(corpus_programs["scion"])
    stream = _scion_stream(flay)
    stream_start = time.perf_counter()
    for update in stream:
        flay.process_update(update)
    timings["scion_stream_ms"] = (time.perf_counter() - stream_start) * 1000
    timings["scion_stream_updates"] = len(stream)
    # Per-layer verdict resolution over the stream: how many queries the
    # witness/FDD tiers, the interval screen, and the CDCL probe pair each
    # absorbed before the SAT workload below was ever reached.
    gate = flay.gate_stats()
    timings["scion_layer_fdd_witness_replays"] = (
        gate.witness_hits + gate.witness_evals
    )
    timings["scion_layer_interval_screen"] = gate.interval_decided
    timings["scion_layer_exec_cache"] = gate.exec_cache_hits
    timings["scion_layer_cdcl_probes"] = gate.solver_fallbacks
    scion_terms = _harvest_sat_terms(flay)
    scion_results = _measure(scion_terms)

    # switch: the biggest corpus program's cold-specialization query set.
    switch_flay = make_flay(corpus_programs["switch"])
    switch_terms = _harvest_sat_terms(switch_flay)
    switch_results = _measure(switch_terms)

    # Register the scion warm sweep with pytest-benchmark's statistics.
    session = scion_results[3]
    benchmark.pedantic(
        lambda: _sweep(session, scion_terms, 1), rounds=3, iterations=1
    )

    heading(
        "Incremental solver: warm assumption probes vs per-query cone replay"
    )
    print(
        f"scion stream: {len(stream)} updates in "
        f"{timings['scion_stream_ms']:.0f} ms"
    )
    print(
        "scion verdict layers: "
        f"witness {timings['scion_layer_fdd_witness_replays']}, "
        f"interval {timings['scion_layer_interval_screen']}, "
        f"cached {timings['scion_layer_exec_cache']}, "
        f"cdcl {timings['scion_layer_cdcl_probes']}"
    )
    _report("scion", scion_terms, scion_results, timings)
    _report("switch", switch_terms, switch_results, timings)

    out_path = os.environ.get("SOLVER_BENCH_JSON")
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(timings, handle, indent=2, sort_keys=True)
        print(f"wrote {out_path}")

    assert timings["scion_replay_over_probe"] >= 2.0
    assert timings["switch_replay_over_probe"] >= 2.0


def test_session_survives_update_stream_with_learning(corpus_programs):
    """End-to-end sanity: a full engine run with the incremental session
    produces the same specialization as the replay baseline, and the
    session's clause database kept every probe's encoding loaded once."""
    session_flay = make_flay(corpus_programs["scion"], incremental_solver=True)
    replay_flay = make_flay(corpus_programs["scion"], incremental_solver=False)
    stream = _scion_stream(session_flay, count=200, seed=11)
    for update in stream:
        a = session_flay.process_update(update)
        b = replay_flay.process_update(update)
        assert a.forwarded == b.forwarded
        assert a.recompiled == b.recompiled
    assert (
        session_flay.specialized_source() == replay_flay.specialized_source()
    )
    session = session_flay.runtime.ctx.query_engine.solver.session
    assert session.probed_terms == session_flay.solver_stats().by_sat
