"""Table 1 — bf-p4c compile times for Tofino P4 programs.

Paper row:  switch 106 s | scion 38 s | Beaucoup 22 s | ACCTurbo 28 s | DTA 25 s

We regenerate the table with the calibrated device-compiler model: the
*modeled* seconds are what a monolithic from-scratch compile would cost,
the benchmarked time is what our whole-program pipeline (dependency
analysis + stage allocation + metrics) actually takes.
"""

import pytest

from conftest import heading
from repro.programs import registry
from repro.targets.tofino import TofinoCompiler


@pytest.mark.parametrize("name", registry.TABLE1_PROGRAMS)
def test_table1_compile(benchmark, corpus_programs, name):
    program = corpus_programs[name]
    compiler = TofinoCompiler(program_name=name)
    report = benchmark(compiler.compile, program)
    paper = registry.get(name).paper_compile_seconds
    benchmark.extra_info["modeled_seconds"] = round(report.modeled_seconds, 1)
    benchmark.extra_info["paper_seconds"] = paper
    print(
        f"\n[Table 1] {name:<12} modeled {report.modeled_seconds:6.1f} s "
        f"(paper {paper:5.1f} s) — {report.statements} stmts, "
        f"{report.resources.stages_used} stages"
    )


def test_table1_summary(benchmark, corpus_programs):
    """Print the whole regenerated table and check its shape."""

    def regenerate():
        return {
            name: TofinoCompiler(program_name=name)
            .compile(corpus_programs[name])
            .modeled_seconds
            for name in registry.TABLE1_PROGRAMS
        }

    modeled = benchmark(regenerate)
    heading("Table 1: device-compiler (bf-p4c model) compile times, from scratch")
    print(f"{'Program':<12} {'modeled (s)':>12} {'paper (s)':>10}")
    for name in registry.TABLE1_PROGRAMS:
        paper = registry.get(name).paper_compile_seconds
        print(f"{name:<12} {modeled[name]:>12.1f} {paper:>10.1f}")
    # Shape: switch dominates; scion second; sketches cluster at 20-30 s.
    assert modeled["switch"] > modeled["scion"]
    assert modeled["scion"] > max(modeled["beaucoup"], modeled["accturbo"], modeled["dta"])
    for sketch in ("beaucoup", "accturbo", "dta"):
        assert 15 <= modeled[sketch] <= 35
