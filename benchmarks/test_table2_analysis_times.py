"""Table 2 — Flay evaluation times per program.

Paper row (program, statements, compile, data-plane analysis, update
analysis): scion 582/38s/2s/90ms — switch 786/106s/9s/90ms — middleblock
346/2s/0.6s/5ms — dash 509/2s/1.5s/12ms.

We regenerate every column: statements from our metrics, compile from the
calibrated device model (scion/switch target Tofino; middleblock/dash
target BMv2, hence the paper's 2 s), analysis and update times measured
live on this machine.
"""

import statistics

import pytest

from conftest import heading, make_flay
from repro.analysis import analyze
from repro.ir import measure
from repro.programs import registry
from repro.runtime.fuzzer import EntryFuzzer
from repro.targets.bmv2 import Bmv2Compiler
from repro.targets.tofino import TofinoCompiler

#: Which device compiler each Table 2 program targets in the paper.
TARGETS = {"scion": "tofino", "switch": "tofino", "middleblock": "bmv2", "dash": "bmv2"}

#: A populated table to poke for the update-analysis column.
UPDATE_TABLES = {
    "scion": "ScionIngress.ipv4_forward",
    "switch": "SwitchIngress.ipv4_lpm",
    "middleblock": "MiddleblockIngress.ipv4_route",
    "dash": "DashIngress.outbound_routing",
}


@pytest.mark.parametrize("name", registry.TABLE2_PROGRAMS)
def test_table2_analysis_time(benchmark, corpus_programs, name):
    """Column 4: the one-time data-plane analysis."""
    entry = registry.get(name)
    program = corpus_programs[name]
    model = benchmark(analyze, program, None, entry.skip_parser)
    benchmark.extra_info["paper_seconds"] = entry.paper_analysis_seconds
    benchmark.extra_info["points"] = model.point_count
    print(f"\n[Table 2] {name}: data-plane analysis over {model.point_count} points "
          f"(paper: {entry.paper_analysis_seconds} s on their machine)")


@pytest.mark.parametrize("name", registry.TABLE2_PROGRAMS)
def test_table2_update_time(benchmark, corpus_programs, name):
    """Column 5: per-update analysis on the live incremental runtime."""
    entry = registry.get(name)
    flay = make_flay(corpus_programs[name], skip_parser=entry.skip_parser)
    fuzzer = EntryFuzzer(flay.model, seed=13)
    table = UPDATE_TABLES[name]
    flay.process_batch(fuzzer.representative_updates(table, per_action=3))
    updates = iter(fuzzer.insert_burst(table, 400))

    def one_update():
        return flay.process_update(next(updates))

    # Fixed round count: each round consumes one unique entry.
    benchmark.pedantic(one_update, rounds=15, iterations=1)
    benchmark.extra_info["paper_ms"] = entry.paper_update_ms
    print(f"\n[Table 2] {name}: update analysis "
          f"(paper: {entry.paper_update_ms} ms)")


def test_table2_summary(benchmark, corpus_programs):
    """Regenerate the full table in one shot."""

    def regenerate():
        rows = []
        for name in registry.TABLE2_PROGRAMS:
            entry = registry.get(name)
            program = corpus_programs[name]
            statements = measure(program).statements
            if TARGETS[name] == "tofino":
                compile_s = TofinoCompiler(program_name=name).compile(program).modeled_seconds
            else:
                compile_s = Bmv2Compiler(program_name=name).compile(program).modeled_seconds
            flay = make_flay(program, skip_parser=entry.skip_parser)
            analysis_s = flay.timings.data_plane_analysis_seconds
            fuzzer = EntryFuzzer(flay.model, seed=13)
            table = UPDATE_TABLES[name]
            flay.process_batch(fuzzer.representative_updates(table, per_action=3))
            times = []
            for update in fuzzer.insert_burst(table, 10):
                times.append(flay.process_update(update).elapsed_ms)
            rows.append((name, statements, compile_s, analysis_s, statistics.median(times)))
        return rows

    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    heading("Table 2: Flay evaluation times")
    print(f"{'Program':<12} {'stmts':>6} {'compile(s)':>11} {'analysis(s)':>12} {'update(ms)':>11}"
          f"   | paper: stmts/compile/analysis/update")
    for name, stmts, compile_s, analysis_s, update_ms in rows:
        entry = registry.get(name)
        print(
            f"{name:<12} {stmts:>6} {compile_s:>11.1f} {analysis_s:>12.2f} {update_ms:>11.2f}"
            f"   | {entry.paper_statements}/{entry.paper_compile_seconds}s"
            f"/{entry.paper_analysis_seconds}s/{entry.paper_update_ms}ms"
        )

    by_name = {r[0]: r for r in rows}
    # Statement counts match the paper within 5%.
    for name, stmts, *_ in rows:
        paper = registry.get(name).paper_statements
        assert abs(stmts - paper) <= 0.05 * paper
    # Update analysis is orders of magnitude below compile time, and stays
    # in the paper's "generally below 100 ms" regime.
    for name, _, compile_s, analysis_s, update_ms in rows:
        assert update_ms / 1000 < analysis_s < compile_s
        assert update_ms < 100
