"""Table 3 — update-analysis time vs installed entries (middleblock ACL).

Paper rows (analysis time for 1 incoming update):

    installed | precise   | overapproximate (>100 entries)
            1 |    ~1 ms  | -
           10 |    ~5 ms  | -
          100 |  ~100 ms  | ~1 ms
         1000 | ~4000 ms  | ~1 ms
        10000 | ~265319 ms| ~1 ms

The precise encoding evaluates all entries against the complex 7-field
ternary key, so it grows superlinearly; the overapproximation is O(1).
Our absolute numbers differ (pure-Python engine), the crossover shape is
the result.
"""

import time

import pytest

from conftest import heading, make_flay
from repro.programs import registry
from repro.programs.middleblock import PRE_INGRESS_ACL
from repro.runtime.fuzzer import EntryFuzzer
from repro.runtime.semantics import INSERT, Update

SIZES = (1, 10, 100, 1000)


def _flay_with_entries(program, installed, threshold):
    flay = make_flay(
        program, overapprox_threshold=threshold, use_solver=False
    )
    fuzzer = EntryFuzzer(flay.model, seed=3)
    entries = fuzzer.unique_entries(PRE_INGRESS_ACL, installed + 64)
    flay.process_batch(
        [Update(PRE_INGRESS_ACL, INSERT, e) for e in entries[:installed]]
    )
    return flay, entries[installed:]


@pytest.mark.parametrize("installed", SIZES)
def test_table3_precise(benchmark, corpus_programs, installed):
    flay, spare = _flay_with_entries(corpus_programs["middleblock"], installed, None)
    spare_iter = iter(spare)

    def one_update():
        return flay.process_update(Update(PRE_INGRESS_ACL, INSERT, next(spare_iter)))

    decision = benchmark.pedantic(one_update, rounds=min(10, len(spare) - 2), iterations=1)
    benchmark.extra_info["installed"] = installed
    benchmark.extra_info["mode"] = "precise"
    print(f"\n[Table 3] precise, {installed} installed: {decision.elapsed_ms:.2f} ms")


@pytest.mark.parametrize("installed", SIZES + (10000,))
def test_table3_overapproximate(benchmark, corpus_programs, installed):
    flay, spare = _flay_with_entries(corpus_programs["middleblock"], installed, 100)
    spare_iter = iter(spare)

    def one_update():
        return flay.process_update(Update(PRE_INGRESS_ACL, INSERT, next(spare_iter)))

    decision = benchmark.pedantic(one_update, rounds=min(10, len(spare) - 2), iterations=1)
    benchmark.extra_info["installed"] = installed
    benchmark.extra_info["mode"] = "overapprox(>100)"
    print(
        f"\n[Table 3] overapprox, {installed} installed: "
        f"{decision.elapsed_ms:.2f} ms (overapproximated={decision.overapproximated})"
    )


def test_table3_summary(benchmark, corpus_programs):
    """Regenerate the whole table and assert its shape."""
    program = corpus_programs["middleblock"]

    def regenerate():
        rows = []
        for installed in SIZES:
            timings = {}
            for mode, threshold in (("precise", None), ("overapprox", 100)):
                flay, spare = _flay_with_entries(program, installed, threshold)
                start = time.perf_counter()
                flay.process_update(Update(PRE_INGRESS_ACL, INSERT, spare[0]))
                timings[mode] = (time.perf_counter() - start) * 1000
            rows.append((installed, timings["precise"], timings["overapprox"]))
        return rows

    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    heading("Table 3: update analysis time vs installed entries (middleblock ACL)")
    print(f"{'installed':>10} {'precise (ms)':>14} {'overapprox (ms)':>16}")
    for installed, precise, overapprox in rows:
        over = f"{overapprox:.2f}" if installed >= 100 else "-"
        print(f"{installed:>10} {precise:>14.2f} {over:>16}")

    by_size = {r[0]: r for r in rows}
    # Superlinear growth of the precise mode (shape of the paper's column).
    # The cross-update caches flatten the small-size step — the measured
    # update rides on the state left by the install batch — but precise
    # cost still grows with the entry count while overapprox stays flat.
    assert by_size[100][1] > 3 * by_size[10][1]
    assert by_size[1000][1] > 5 * by_size[100][1]
    # Overapproximation stays flat and cheap past the threshold.
    assert by_size[1000][2] < by_size[1000][1] / 50
    assert by_size[1000][2] < 20  # ~millisecond scale
