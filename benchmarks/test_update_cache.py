"""Cold vs warm update processing — the cross-update evaluation cache.

An update stream that revisits control-plane states (route flaps, ACL
churn) re-derives the same substituted expressions and satisfiability
queries over and over.  The cache stack (delta substitution, solver
verdict memo, CNF fragment reuse, incremental active-entry maintenance)
answers the repeats without recomputation.  This bench drives a flap
workload through a warm pipeline and checks that every layer is actually
absorbing work, then replays the solver's query log to show the verdict
memo answering at a 100% hit rate.
"""

import time

from conftest import heading, make_flay
from repro.engine import EventBus, UpdateProcessed
from repro.runtime.fuzzer import EntryFuzzer
from repro.runtime.semantics import DELETE, INSERT, Update

TABLE = "MiddleblockIngress.port_profile0_conf"
ENTRIES = 12
FLAPS = 3


def test_flap_workload_cache_hits(benchmark, corpus_programs):
    bus = EventBus()
    log = bus.attach_log()
    flay = make_flay(corpus_programs["middleblock"], bus=bus)
    fuzzer = EntryFuzzer(flay.model, seed=3)
    entries = fuzzer.unique_entries(TABLE, ENTRIES)

    # Cold pass: first time any of these states is seen.
    start = time.perf_counter()
    for entry in entries:
        flay.process_update(Update(TABLE, INSERT, entry))
    cold_ms = (time.perf_counter() - start) * 1000

    def flap_cycle():
        for entry in entries:
            flay.process_update(Update(TABLE, DELETE, entry))
        for entry in entries:
            flay.process_update(Update(TABLE, INSERT, entry))

    benchmark.pedantic(flap_cycle, rounds=FLAPS, iterations=1)
    warm_ms = cold_ms and (flay.runtime.mean_update_ms() * 2 * ENTRIES)

    stats = flay.cache_stats()
    gate = flay.gate_stats()
    outcomes = log.of_type(UpdateProcessed)
    forwarded = sum(1 for o in outcomes if o.forwarded)
    heading("Update cache: flap workload (middleblock port profile)")
    print(stats.describe())
    print(
        "verdict layers: "
        f"witness {gate.witness_hits + gate.witness_evals}, "
        f"interval {gate.interval_decided}, cached {gate.exec_cache_hits}, "
        f"cdcl {gate.solver_fallbacks}"
    )
    print(
        f"cold install: {cold_ms:.1f} ms for {ENTRIES} updates; "
        f"mean warm flap cycle ≈ {warm_ms:.1f} ms"
    )
    print(f"outcomes: {forwarded}/{len(outcomes)} forwarded")
    benchmark.extra_info["cold_install_ms"] = round(cold_ms, 2)
    benchmark.extra_info["layer_fdd_witness_replays"] = (
        gate.witness_hits + gate.witness_evals
    )
    benchmark.extra_info["layer_interval_screen"] = gate.interval_decided
    benchmark.extra_info["layer_cdcl_probes"] = gate.solver_fallbacks

    # The engine reported every update on the event bus.
    assert len(outcomes) == ENTRIES + FLAPS * 2 * ENTRIES

    # Every cache layer must be absorbing repeated work.
    assert stats.get("substitution").hits > 0
    assert stats.get("active-entries").hits > 0
    assert stats.get("cnf-fragments").hits > 0
    # The executability layer *is* the solver verdict memo seen by the
    # pipeline: repeated guards never reach the solver again.
    assert stats.get("executability").hits > 0


def test_solver_verdict_memo_replay(corpus_programs):
    """Re-issuing every satisfiability query the pipeline ever asked is
    answered entirely from the solver's verdict memo (hit rate 1.0)."""
    flay = make_flay(corpus_programs["middleblock"])
    fuzzer = EntryFuzzer(flay.model, seed=3)
    for entry in fuzzer.unique_entries(TABLE, ENTRIES):
        flay.process_update(Update(TABLE, INSERT, entry))

    solver = flay.runtime.engine.solver
    answered = list(solver._results)
    assert answered, "workload never reached the solver"
    baseline = solver.cache_counter.snapshot()
    for term in answered:
        solver.check_sat(term)
    replay = solver.cache_counter.since(baseline)
    heading("Solver verdict memo: query-log replay")
    print(replay.describe())
    assert replay.hits == len(answered)
    assert replay.misses == 0
    assert replay.hit_rate == 1.0
