#!/usr/bin/env python3
"""Control-plane churn at realistic rates (Fig. 1) against the middleblock.

Generates an hour-long synthetic control-plane trace — occasional policy
changes, routing updates arriving in bursts of hundreds — and replays it
through Flay's incremental runtime, reporting how many updates were
forwarded untouched vs how many forced a recompile, and how the
overapproximation threshold keeps the big ACL cheap.

Run:  python examples/burst_updates.py
"""

from collections import Counter

from repro.core import Flay, FlayOptions
from repro.programs import middleblock, registry
from repro.runtime import EntryFuzzer
from repro.runtime.trace import ROUTE_CHANGE, control_plane_trace


def banner(title: str) -> None:
    print()
    print("#" * 70)
    print(f"# {title}")
    print("#" * 70)


def main() -> None:
    banner("Loading Google's middleblock model")
    flay = Flay.from_source(
        registry.get("middleblock").source(), FlayOptions(target="bmv2")
    )
    print(f"{flay.model.point_count} program points, "
          f"{len(flay.model.tables)} tables")

    # Baseline config: routes + ACL entries exercising every action.
    fuzzer = EntryFuzzer(flay.model, seed=17)
    config = []
    for table in (
        "MiddleblockIngress.ipv4_route",
        "MiddleblockIngress.acl_ingress",
        middleblock.PRE_INGRESS_ACL,
    ):
        config.extend(fuzzer.representative_updates(table))
    flay.process_batch(config)
    print(f"baseline config installed "
          f"({flay.runtime.state.update_count} entries)")

    banner("Replaying one hour of synthetic control-plane activity")
    events = control_plane_trace(duration=3600.0, route_burst_size=120, seed=3)
    by_kind = Counter(e.kind for e in events)
    print({kind: count for kind, count in by_kind.items()})

    # Group routing events into their bursts (the realistic arrival unit).
    bursts: dict[tuple, list] = {}
    for event in events:
        if event.kind == ROUTE_CHANGE:
            bursts.setdefault(event.burst_id, []).append(event)

    route_updates = iter(
        fuzzer.insert_burst("MiddleblockIngress.ipv4_route", sum(by_kind.values()))
    )

    total_ms = 0.0
    recompiles = 0
    forwarded = 0
    for burst_id, burst_events in sorted(bursts.items()):
        batch = [next(route_updates) for _ in burst_events]
        decision = flay.process_batch(batch)
        total_ms += decision.elapsed_ms
        if decision.recompiled:
            recompiles += 1
        else:
            forwarded += len(batch)

    banner("Results")
    print(f"route bursts replayed:   {len(bursts)}")
    print(f"updates forwarded:       {forwarded}")
    print(f"bursts forcing recompile: {recompiles}")
    print(f"total decision time:     {total_ms:.0f} ms for "
          f"{sum(len(b) for b in bursts.values())} updates")
    print(f"mean batch decision:     {total_ms / max(1, len(bursts)):.1f} ms")
    print()
    print("The big routing table crosses the overapproximation threshold")
    print("early; from then on, bursts cost well under a millisecond per")
    print("update — the shim never becomes the controller-device bottleneck.")


if __name__ == "__main__":
    main()
