#!/usr/bin/env python3
"""Flay generalized to eBPF/XDP (§4: "we believe that Flay can generalize
to packet-processing environments such as restricted C for eBPF").

An XDP firewall/router whose control plane is its maps: a `blocked`
hash map, a `routes` LPM map, and a `rate_limits` array map.  Map
operations go through the bpf(2)-style API; Flay decides per operation
whether the JIT'd program must change — the Morpheus use case, but
incremental.

Run:  python examples/ebpf_xdp_firewall.py
"""

from repro.ebpf import (
    Assign,
    EbpfFlay,
    If,
    Lookup,
    Return,
    XDP_DROP,
    XDP_PASS,
    XDP_REDIRECT,
    XdpProgram,
)


def banner(title: str) -> None:
    print()
    print("#" * 70)
    print(f"# {title}")
    print("#" * 70)


def build_program() -> XdpProgram:
    prog = XdpProgram("xdp_router")
    prog.hash_map("blocked", key=[("saddr", 32)], value=[("reason", 8)])
    prog.lpm_map("routes", key=[("daddr", 32)], value=[("ifindex", 16)])
    prog.array_map("rate_limits", key=[("qid", 8)], value=[("kbps", 32)], max_entries=16)
    prog.body = [
        If(
            "ctx.ip.isValid()",
            then=(
                Lookup("blocked", ("ctx.ip.saddr",), hit=(Return(XDP_DROP),)),
                Lookup(
                    "rate_limits",
                    ("ctx.ip.tos",),
                    hit=(Assign("meta.rate_limits_kbps", "meta.rate_limits_kbps"),),
                ),
                Lookup(
                    "routes",
                    ("ctx.ip.daddr",),
                    hit=(
                        Assign("ctx.ip.ttl", "ctx.ip.ttl - 1"),
                        Return(XDP_REDIRECT, "meta.routes_ifindex"),
                    ),
                    miss=(Return(XDP_PASS),),
                ),
            ),
        ),
    ]
    return prog


def show_body(flay: EbpfFlay) -> None:
    text = flay.specialized_source()
    start = text.index("control XdpMain")
    end = text.index("Pipeline(")
    print(text[start:end].rstrip())


def main() -> None:
    banner("Empty maps: the entire XDP body folds to `return XDP_PASS`")
    flay = EbpfFlay(build_program())
    show_body(flay)

    banner("bpf_map_update_elem(blocked, 10.0.0.1): the drop path appears")
    result = flay.map_update_elem("blocked", 0x0A000001, 1)
    print(result.describe())
    show_body(flay)

    banner("More blocked IPs: forwarded without recompilation")
    for ip in (0x0A000002, 0x0A000003, 0x0A000004):
        result = flay.map_update_elem("blocked", ip, 1)
        print(result.describe())

    banner("First route (10.0.0.0/8 -> if3): the forwarding path appears")
    result = flay.map_update_elem("routes", 0x0A000000, 3, prefix_len=8)
    print(result.describe())
    show_body(flay)

    banner("A second route with a different ifindex: constant dematerialized")
    result = flay.map_update_elem("routes", 0x0B000000, 4, prefix_len=8)
    print(result.describe())

    banner("Route churn from now on: pure forwards")
    for i, prefix in enumerate((0x0C000000, 0x0D000000, 0x0E000000)):
        result = flay.map_update_elem("routes", prefix, 4 + i, prefix_len=8)
        print(result.describe())

    banner("Deleting the last blocked IP... still cheap")
    for ip in (0x0A000002, 0x0A000003, 0x0A000004):
        result = flay.map_delete_elem("blocked", ip)
        print(result.describe())
    result = flay.map_delete_elem("blocked", 0x0A000001)
    print(result.describe())
    print("\n(the final delete empties the map: the drop path vanishes again)")
    show_body(flay)

    banner("Summary")
    print(flay.summary())


if __name__ == "__main__":
    main()
