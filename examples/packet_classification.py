#!/usr/bin/env python3
"""§3's packet-classification specialization: pick the data structure the
*installed rules* actually need, and revisit the choice only when the rule
pattern changes.

A TCAM supports arbitrary masks but is the most expensive structure per
bit.  When the active configuration only uses exact matches, a hash table
does the same job at a fraction of the footprint; prefix-only rule sets fit
an LPM trie; a handful of distinct masks fit a Semi-TCAM (STCAM).

Run:  python examples/packet_classification.py
"""

import random

from repro.classify import ClassifierChooser, Rule, RulePattern

WIDTH = 32
FULL = (1 << WIDTH) - 1


def banner(title: str) -> None:
    print()
    print("#" * 70)
    print(f"# {title}")
    print("#" * 70)


def kib(bits: int) -> str:
    return f"{bits / 8 / 1024:.2f} KiB"


def show_choice(chooser, rules, label):
    chosen, report = chooser.choose(rules)
    print(f"\n{label}: {len(rules)} rules, "
          f"{report.pattern.distinct_masks} distinct masks")
    for name, bits in report.alternatives.items():
        marker = " <== chosen" if name == report.chosen else ""
        if bits is None:
            print(f"    {name:<10} not representable")
        else:
            print(f"    {name:<10} {kib(bits):>12}{marker}")
    print(f"    saving vs TCAM: {report.savings_vs_tcam():.0%}")
    return chosen, report


def main() -> None:
    rng = random.Random(42)
    chooser = ClassifierChooser(WIDTH, stcam_max_masks=8)

    banner("Phase 1: host ACL — exact /32 rules only")
    exact_rules = [
        Rule(rng.randrange(1 << WIDTH), FULL, priority=1, action=f"permit{i}")
        for i in range(500)
    ]
    _, report1 = show_choice(chooser, exact_rules, "exact-only config")
    pattern1 = report1.pattern

    banner("Phase 2: routes arrive — prefix rules join")
    prefix_rules = []
    for i in range(300):
        length = rng.choice([8, 16, 24])
        mask = ((1 << length) - 1) << (WIDTH - length)
        prefix_rules.append(
            Rule(rng.randrange(1 << WIDTH) & mask, mask, priority=length, action=f"fwd{i}")
        )
    mixed = exact_rules + prefix_rules
    _, report2 = show_choice(chooser, mixed, "exact + prefix config")
    pattern2 = report2.pattern

    changed = chooser.pattern_changed(pattern1, pattern2)
    print(f"\nincremental trigger: pattern changed -> re-choose? {changed}")

    banner("Phase 3: one rule with an arbitrary bitmask forces the TCAM back")
    weird = mixed + [Rule(0x0A0B0C0D, 0x00FF00FF, priority=99, action="weird")]
    _, report3 = show_choice(chooser, weird, "config with scattered mask")
    print(f"\nincremental trigger: pattern changed -> re-choose? "
          f"{chooser.pattern_changed(pattern2, report3.pattern)}")

    banner("Phase 4: growth without a pattern change is free")
    more_exact = mixed + [
        Rule(rng.randrange(1 << WIDTH), FULL, priority=1, action="x")
        for _ in range(100)
    ]
    pattern4 = RulePattern.of(more_exact, WIDTH)
    print(f"added 100 exact rules: pattern changed -> re-choose? "
          f"{chooser.pattern_changed(pattern2, pattern4)}")
    print("(an incremental compiler forwards these inserts to the existing")
    print(" structure without revisiting the choice)")

    banner("Sanity: the chosen structures classify identically")
    chosen, _ = chooser.choose(mixed)
    from repro.classify import TcamClassifier

    tcam = TcamClassifier(WIDTH)
    tcam.install(mixed)
    agree = 0
    for _ in range(2000):
        key = rng.randrange(1 << WIDTH)
        a = tcam.lookup(key)
        b = chosen.lookup(key)
        if (a is None) == (b is None) and (a is None or a.priority == b.priority):
            agree += 1
    print(f"agreement on 2000 random keys: {agree}/2000")
    assert agree == 2000


if __name__ == "__main__":
    main()
