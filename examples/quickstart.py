#!/usr/bin/env python3
"""Quickstart: incremental specialization of a tiny P4 program.

Walks the paper's Fig. 3 scenario: a single ternary table whose
implementation evolves as control-plane entries arrive, with Flay deciding
per update whether the device needs to be recompiled.

Run:  python examples/quickstart.py
"""

from repro.core import Flay, FlayOptions
from repro.programs.fig3 import source
from repro.runtime import DELETE, INSERT, TableEntry, TernaryMatch, Update

FULL_MASK = (1 << 48) - 1


def banner(title: str) -> None:
    print()
    print("#" * 70)
    print(f"# {title}")
    print("#" * 70)


def show(flay: Flay, decision=None) -> None:
    if decision is not None:
        print(f"decision: {decision.describe()}")
    print("-- specialized program " + "-" * 40)
    # Show just the ingress control, the part that changes.
    text = flay.specialized_source()
    start = text.index("control Fig3Ingress")
    end = text.index("Pipeline(")
    print(text[start:end].rstrip())


def main() -> None:
    banner("1. Load the program; the table is empty, so it disappears")
    flay = Flay.from_source(source(), FlayOptions(target="tofino"))
    show(flay)
    print(f"\ninitial specializations: {flay.report.summary()}")

    banner("2. Insert [key 0x1, mask 0x0] -> set(0x800): inline the action")
    decision = flay.process_update(
        Update(
            "eth_table",
            INSERT,
            TableEntry((TernaryMatch(0x1, 0x0),), "set", (0x800,), priority=10),
        )
    )
    show(flay, decision)

    banner("3. Replace with [key 0x2, full mask]: an exact-match table")
    flay.process_update(
        Update(
            "eth_table",
            DELETE,
            TableEntry((TernaryMatch(0x1, 0x0),), "set", (0x800,), priority=10),
        )
    )
    decision = flay.process_update(
        Update(
            "eth_table",
            INSERT,
            TableEntry((TernaryMatch(0x2, FULL_MASK),), "set", (0x900,), priority=10),
        )
    )
    show(flay, decision)
    print("\nnote: the key became `exact` (TCAM freed) and the unused")
    print("`drop` action is gone from the table.")

    banner("4. Insert [key 0x5, mask 0x8]: back to a ternary table")
    decision = flay.process_update(
        Update(
            "eth_table",
            INSERT,
            TableEntry((TernaryMatch(0x5, 0x8),), "set", (0x700,), priority=9),
        )
    )
    show(flay, decision)

    banner("5. Insert [key 0x6, mask 0x7]: no behaviour change -> forwarded")
    decision = flay.process_update(
        Update(
            "eth_table",
            INSERT,
            TableEntry((TernaryMatch(0x6, 0x7),), "set", (0x200,), priority=8),
        )
    )
    print(f"decision: {decision.describe()}")
    print("\nThe update was forwarded straight to the device — no recompile.")

    banner("Summary")
    print(flay.summary())
    if flay.compile_reports:
        last = flay.compile_reports[-1]
        print(f"\nlast device compile: {last.describe()}")


if __name__ == "__main__":
    main()
