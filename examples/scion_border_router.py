#!/usr/bin/env python3
"""The §4.2 SCION border-router scenario, end to end.

* Load the SCION program (it needs every Tofino-2 stage unspecialized).
* Install the representative IPv4-only configuration; Flay removes all
  IPv6 paths, saving ~20% of the pipeline stages.
* Throw a burst of 1000 route updates at it: one fast "no recompilation"
  decision.
* Enable IPv6: Flay respecializes, the program grows back to full size.

Run:  python examples/scion_border_router.py
"""

import time

from repro.core import Flay, FlayOptions
from repro.programs import scion
from repro.runtime import EntryFuzzer, ExactMatch, INSERT, TableEntry, Update
from repro.runtime.fuzzer import ipv4_route_entries
from repro.targets.tofino import TOFINO2, allocate


def banner(title: str) -> None:
    print()
    print("#" * 70)
    print(f"# {title}")
    print("#" * 70)


def main() -> None:
    banner("Loading the SCION border router")
    start = time.perf_counter()
    flay = Flay.from_source(scion.source(), FlayOptions(target="none"))
    print(f"parsed + analyzed in {time.perf_counter() - start:.2f} s "
          f"({flay.model.point_count} program points, "
          f"{len(flay.model.tables)} tables)")

    original = allocate(flay.runtime.program)
    print(f"unspecialized stage demand: {original.stages_used} "
          f"(Tofino 2 max: {TOFINO2.num_stages})")

    banner("Installing the representative IPv4-only configuration")
    fuzzer = EntryFuzzer(flay.model, seed=7)
    updates = [
        Update(
            "ScionIngress.underlay_map",
            INSERT,
            TableEntry((ExactMatch(0x0800),), "underlay_v4", ()),
        )
    ]
    for table in scion.ipv4_config_tables():
        updates.extend(fuzzer.representative_updates(table))
    decision = flay.process_batch(updates)
    print(f"config batch: {decision.describe()}")

    specialized = allocate(flay.specialized_program)
    saving = 1 - specialized.stages_used / original.stages_used
    print(f"specialized stage demand: {specialized.stages_used} "
          f"({saving:.0%} fewer — the paper reports 20%)")
    print(f"specializations: {flay.report.summary()[:300]}")

    banner("Burst: 1000 unique IPv4 routes")
    routes = list(
        ipv4_route_entries(
            flay.model, "ScionIngress.ipv4_forward", 1000, "deliver_local_v4", seed=23
        )
    )
    decision = flay.process_batch(
        [Update("ScionIngress.ipv4_forward", INSERT, e) for e in routes]
    )
    print(f"burst: {decision.describe()}")
    assert not decision.recompiled

    banner("Enabling IPv6")
    enable = [
        Update(
            "ScionIngress.underlay_map",
            INSERT,
            TableEntry((ExactMatch(0x86DD),), "underlay_v6", ()),
        )
    ]
    for table in scion.IPV6_ONLY_TABLES:
        enable.extend(fuzzer.representative_updates(table))
    decision = flay.process_batch(enable)
    print(f"enable-IPv6 batch: {decision.describe()}")
    restored = allocate(flay.specialized_program)
    print(f"stage demand after enabling IPv6: {restored.stages_used} "
          f"(back near the maximum)")


if __name__ == "__main__":
    main()
