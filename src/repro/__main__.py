"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``stats <prog.p4>`` — program metrics (statements, tables, paths).
* ``analyze <prog.p4>`` — run the data-plane analysis, print point counts
  and timings (optionally dump the annotated points).
* ``specialize <prog.p4> [--config cfg.json] [--batch --workers N
  --executor thread|process|serial]`` — specialize against a JSON
  control-plane configuration and print (or write) the result;
  ``--batch`` routes the configuration through the coalescing,
  conflict-group-parallel batch scheduler.
* ``compile <prog.p4> [--target tofino|bmv2]`` — device-compile and print
  the resource/time report.
* ``lint <prog.p4> [--fail-on error|warning|info]`` — positioned static
  diagnostics (uninitialized header reads, unreachable branches, shadowed
  cases, width truncation, dead actions, write-after-write).
* ``corpus`` — list the bundled evaluation programs.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import analyze
from repro.core import Flay, FlayOptions
from repro.engine.events import EventBus
from repro.errors import FlayError
from repro.ir import measure
from repro.p4.parser import parse_program
from repro.p4.printer import print_program
from repro.runtime import config as config_mod
from repro.smt import to_string
from repro.targets.base import available_targets, create_target


def _load_program(path: str):
    if path.startswith("corpus:"):
        from repro.programs import registry

        return registry.load(path.split(":", 1)[1])
    with open(path) as handle:
        return parse_program(handle.read())


def _load_source(path: str) -> str:
    """The program's canonical source text (content-addressing needs text)."""
    if path.startswith("corpus:"):
        from repro.programs import registry

        return registry.get(path.split(":", 1)[1]).source()
    with open(path) as handle:
        return handle.read()


def cmd_stats(args) -> int:
    program = _load_program(args.program)
    metrics = measure(program)
    print(f"statements:     {metrics.statements}")
    print(f"tables:         {metrics.tables}")
    print(f"actions:        {metrics.actions}")
    print(f"keys:           {metrics.keys}")
    print(f"if statements:  {metrics.if_statements}")
    print(f"parser states:  {metrics.parser_states}")
    print(f"registers:      {metrics.registers}")
    print(f"control paths:  {metrics.control_paths}")
    print(f"mccabe:         {metrics.mccabe}")
    return 0


def cmd_analyze(args) -> int:
    program = _load_program(args.program)
    model = analyze(program, skip_parser=args.skip_parser)
    print(f"program points:   {model.point_count}")
    print(f"tables:           {len(model.tables)}")
    print(f"value sets:       {len(model.value_sets)}")
    print(f"tainted symbols:  {len(model.taint)}")
    print(f"expression nodes: {model.total_expression_size()}")
    print(f"analysis time:    {model.analysis_seconds * 1000:.1f} ms")
    if args.dump_points:
        for pid, point in model.points.items():
            print(f"\n[{point.kind}] {pid}")
            print(f"    {to_string(point.expr, max_depth=12)}")
    return 0


def cmd_specialize(args) -> int:
    program = _load_program(args.program)
    options = FlayOptions(
        target=args.target,
        skip_parser=args.skip_parser,
        effort=args.effort,
        fdd_gate=not args.no_fdd_gate,
        table_verdict_cache=not args.no_table_verdict_cache,
        prune=not args.no_prune,
    )
    bus = EventBus()
    log = bus.attach_log() if args.stats else None
    flay = Flay(program, options, bus=bus)
    if args.config:
        configuration = config_mod.load(args.config)
        if args.batch:
            decision = flay.apply_batch(
                configuration.updates(),
                workers=args.workers,
                executor=args.executor,
            )
        else:
            decision = flay.process_batch(configuration.updates())
        print(f"# config: {decision.describe()}", file=sys.stderr)
    if flay.prune_report is not None:
        print(f"# {flay.prune_report.summary()}", file=sys.stderr)
    print(f"# specializations: {flay.report.summary()}", file=sys.stderr)
    if args.stats:
        print(f"# pipeline events: {log.summary()}", file=sys.stderr)
        print("# cache statistics:", file=sys.stderr)
        for line in flay.cache_stats().describe().splitlines():
            print(f"#   {line}", file=sys.stderr)
        print("# solver statistics:", file=sys.stderr)
        for line in flay.solver_stats().describe().splitlines():
            print(f"#   {line}", file=sys.stderr)
        gate_stats = flay.gate_stats()
        if gate_stats is not None:
            print("# gate statistics:", file=sys.stderr)
            for line in gate_stats.describe().splitlines():
                print(f"#   {line}", file=sys.stderr)
    text = flay.specialized_source()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"# wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def cmd_compile(args) -> int:
    # Resolve the backend before parsing the program: an unknown --target
    # fails immediately with the registered names.
    target = create_target(args.target, program_name=args.program)
    if target is None:
        print(f"nothing to do: --target {args.target}", file=sys.stderr)
        return 0
    program = _load_program(args.program)
    report = target.compile(program)
    print(report.describe())
    resources = getattr(report, "resources", None)
    if args.stages and resources is not None:
        for stage in resources.stage_usages:
            names = ", ".join(stage.tables[:6])
            more = "..." if len(stage.tables) > 6 else ""
            print(f"  stage {stage.index:>2}: {stage.table_count} tables, "
                  f"{stage.gateways} gateways — {names}{more}")
    return 0


def cmd_lint(args) -> int:
    from repro.analysis.lint import SEVERITY_RANK, lint_program

    program = _load_program(args.program)
    report = lint_program(program, skip_parser=args.skip_parser)
    for diag in report.diagnostics:
        print(f"{args.program}:{diag.render()}")
    print(f"# {report.summary()}", file=sys.stderr)
    worst = report.max_severity()
    if worst is not None and SEVERITY_RANK[worst] >= SEVERITY_RANK[args.fail_on]:
        return 1
    return 0


def cmd_fleet_replay(args) -> int:
    import json

    from repro.fleet import FleetSimulator
    from repro.fleet.sim import dedup_ratio

    source = _load_source(args.program)
    options = FlayOptions(
        target=args.target,
        skip_parser=args.skip_parser,
        fdd_gate=not args.no_fdd_gate,
        table_verdict_cache=not args.no_table_verdict_cache,
    )
    kwargs = dict(
        switches=args.switches,
        options=options,
        seed=args.seed,
        duration=args.duration,
        mean_interval=args.mean_interval,
        correlation=args.correlation,
        updates_per_burst=args.updates_per_burst,
        divergent_prefix=args.divergent_prefix,
        workers=args.workers,
        executor=args.executor,
    )
    sim = FleetSimulator(source, shared_store=not args.no_shared_store, **kwargs)
    report = sim.run()
    mode = "shared store" if report.shared else "isolated"
    print(
        f"# fleet: {args.switches} switches ({mode}), {report.events} burst "
        f"arrivals, {report.summary['updates']} updates",
        file=sys.stderr,
    )
    print(
        f"# latency: p50 {report.latency_quantile(0.5):.2f} ms, "
        f"p99 {report.latency_quantile(0.99):.2f} ms; "
        f"{report.summary['recompilations']} recompilations",
        file=sys.stderr,
    )
    if sim.store is not None:
        print(f"# {sim.store.describe()}", file=sys.stderr)
    ratio = None
    exit_code = 0
    if args.check_isolated:
        isolated = FleetSimulator(source, shared_store=False, **kwargs)
        isolated_report = isolated.run()
        if (
            report.lowered_traces() != isolated_report.lowered_traces()
            or report.specialized_sources()
            != isolated_report.specialized_sources()
        ):
            print(
                "# DIFFERENTIAL FAILURE: shared-store replay diverges from "
                "isolated engines",
                file=sys.stderr,
            )
            exit_code = 1
        else:
            ratio = dedup_ratio(isolated_report, report)
            print(
                f"# differential OK; CNF dedup ratio "
                f"{ratio:.2f}x ({isolated_report.fragment_footprint} isolated "
                f"fragments vs {report.fragment_footprint} shared)",
                file=sys.stderr,
            )
    if args.snapshot_dir:
        paths = sim.save_snapshots(args.snapshot_dir)
        print(f"# wrote {len(paths)} snapshots to {args.snapshot_dir}", file=sys.stderr)
    if args.json:
        payload = {
            "switches": args.switches,
            "shared_store": report.shared,
            "events": report.events,
            "updates": report.summary["updates"],
            "recompilations": report.summary["recompilations"],
            "p50_ms": report.latency_quantile(0.5),
            "p99_ms": report.latency_quantile(0.99),
            "fragment_footprint": report.fragment_footprint,
            "dedup_ratio": ratio,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"# wrote {args.json}", file=sys.stderr)
    return exit_code


def cmd_corpus(_args) -> int:
    from repro.programs import registry

    print(f"{'name':<14} {'stmts':>6}  paper reference")
    for name in sorted(registry.CORPUS):
        entry = registry.get(name)
        stmts = measure(entry.parse()).statements
        notes = []
        if entry.paper_statements:
            notes.append(f"{entry.paper_statements} stmts")
        if entry.paper_compile_seconds:
            notes.append(f"{entry.paper_compile_seconds:g}s compile")
        print(f"{name:<14} {stmts:>6}  {', '.join(notes) or '-'}")
    print("\nuse `corpus:<name>` anywhere a program path is expected")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Flay: incremental specialization of network programs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="program metrics")
    p_stats.add_argument("program")
    p_stats.set_defaults(func=cmd_stats)

    p_analyze = sub.add_parser("analyze", help="run the data-plane analysis")
    p_analyze.add_argument("program")
    p_analyze.add_argument("--skip-parser", action="store_true")
    p_analyze.add_argument("--dump-points", action="store_true")
    p_analyze.set_defaults(func=cmd_analyze)

    p_spec = sub.add_parser("specialize", help="specialize against a config")
    p_spec.add_argument("program")
    p_spec.add_argument("--config", help="JSON control-plane configuration")
    p_spec.add_argument("--output", "-o", help="write the result here")
    p_spec.add_argument("--skip-parser", action="store_true")
    p_spec.add_argument(
        "--effort", choices=("none", "dce", "full"), default="full"
    )
    p_spec.add_argument(
        "--stats",
        action="store_true",
        help="print pipeline events and cache hit/miss statistics to stderr",
    )
    p_spec.add_argument(
        "--no-fdd-gate",
        action="store_true",
        help="disable the tiered pre-solver verdict gate (ablation; "
        "output is byte-identical, only slower)",
    )
    p_spec.add_argument(
        "--no-table-verdict-cache",
        action="store_true",
        help="disable the structural table-verdict memo (ablation; "
        "verdicts are byte-identical, every warm re-verdict just "
        "recomputes feasible actions and param constancy from scratch)",
    )
    p_spec.add_argument(
        "--no-prune",
        action="store_true",
        help="disable the abstract-interpretation prune pass between "
        "typecheck and analysis (ablation; output is byte-identical, "
        "the cold pipeline just analyzes dead paths it could skip)",
    )
    p_spec.add_argument(
        "--batch",
        action="store_true",
        help="apply the --config updates through the batch scheduler "
        "(coalescing + conflict-group parallelism)",
    )
    p_spec.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker-pool width for --batch; 0 (the default) auto-detects "
        "the machine's CPU count via os.cpu_count()",
    )
    p_spec.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default=None,
        help="batch executor strategy: worker threads, forked worker "
        "processes (escapes the GIL), or forced-inline serial; unset "
        "falls back to the FLAY_EXECUTOR environment variable, then "
        "the engine default (thread). Output is byte-identical across "
        "all three.",
    )
    p_spec.add_argument(
        "--target",
        default="none",
        help=f"device backend: {', '.join(available_targets())}, or none",
    )
    p_spec.set_defaults(func=cmd_specialize)

    p_compile = sub.add_parser("compile", help="device-compile a program")
    p_compile.add_argument("program")
    p_compile.add_argument(
        "--target",
        default="tofino",
        help=f"device backend: {', '.join(available_targets())}",
    )
    p_compile.add_argument("--stages", action="store_true", help="per-stage detail")
    p_compile.set_defaults(func=cmd_compile)

    p_lint = sub.add_parser("lint", help="positioned static diagnostics")
    p_lint.add_argument("program")
    p_lint.add_argument("--skip-parser", action="store_true")
    p_lint.add_argument(
        "--fail-on",
        choices=["error", "warning", "info"],
        default="error",
        help="exit non-zero when a finding at or above this severity "
        "exists (default: error)",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_fleet = sub.add_parser(
        "fleet-replay",
        help="replay correlated churn over a multi-switch fleet",
    )
    p_fleet.add_argument("program")
    p_fleet.add_argument("--switches", type=int, default=8)
    p_fleet.add_argument("--seed", type=int, default=0)
    p_fleet.add_argument(
        "--duration", type=float, default=120.0, help="trace length, seconds"
    )
    p_fleet.add_argument(
        "--mean-interval",
        type=float,
        default=10.0,
        help="mean seconds between churn bursts (Poisson)",
    )
    p_fleet.add_argument(
        "--correlation",
        type=float,
        default=0.7,
        help="probability a burst reaches each other switch (0..1)",
    )
    p_fleet.add_argument("--updates-per-burst", type=int, default=6)
    p_fleet.add_argument(
        "--divergent-prefix",
        type=int,
        default=10,
        help="per-switch config prefix length (switch i gets prefix+i updates)",
    )
    p_fleet.add_argument(
        "--no-shared-store",
        action="store_true",
        help="run every switch fully isolated (the sharing ablation)",
    )
    p_fleet.add_argument(
        "--check-isolated",
        action="store_true",
        help="also run the isolated fleet and fail unless per-switch "
        "lowered output is identical (reports the CNF dedup ratio)",
    )
    p_fleet.add_argument(
        "--snapshot-dir", help="write per-switch warm snapshots here"
    )
    p_fleet.add_argument("--json", help="write a JSON summary here")
    p_fleet.add_argument("--skip-parser", action="store_true")
    p_fleet.add_argument("--no-fdd-gate", action="store_true")
    p_fleet.add_argument("--no-table-verdict-cache", action="store_true")
    p_fleet.add_argument("--workers", type=int, default=1)
    p_fleet.add_argument(
        "--executor", choices=("serial", "thread", "process"), default=None
    )
    p_fleet.add_argument(
        "--target",
        default="tofino",
        help=f"device backend: {', '.join(available_targets())}, or none",
    )
    p_fleet.set_defaults(func=cmd_fleet_replay)

    p_corpus = sub.add_parser("corpus", help="list bundled programs")
    p_corpus.set_defaults(func=cmd_corpus)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FlayError as exc:
        print(f"error: {exc.describe()}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
