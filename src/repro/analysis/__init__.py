"""Data-plane analysis: state-merging symbolic execution over the P4 AST."""

from repro.analysis.model import (
    DataPlaneModel,
    KIND_ACTION_VALUE,
    KIND_ASSIGN,
    KIND_IF,
    KIND_SELECT,
    KIND_TABLE,
    KeyInfo,
    ProgramPoint,
    TableInfo,
    ValueSetInfo,
)
from repro.analysis.state import SymbolicStore, merge_stores
from repro.analysis.symexec import (
    DROP_PATH,
    PARSER_ERROR_PATH,
    VALID_SUFFIX,
    AnalysisError,
    SymbolicExecutor,
    analyze,
)
