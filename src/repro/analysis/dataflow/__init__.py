"""Abstract-interpretation framework over the parsed program.

Pieces:

* :mod:`~repro.analysis.dataflow.lattice` — pluggable lattices
  (three-valued booleans, intervals, taint sets, the symbolic constant
  domain) and the generic worklist :func:`fixpoint` driver.
* :mod:`~repro.analysis.dataflow.engine` — the
  :class:`AbstractInterpreter`, a join-based re-execution of the whole
  pipeline in the symbolic constant domain, mirroring the symbolic
  executor's transfer functions rule for rule.
* :mod:`~repro.analysis.dataflow.effects` — flow-sensitive read/write
  sets (the taint-domain client feeding :mod:`repro.ir.deps`).
* :mod:`~repro.analysis.dataflow.prune` — the output-preserving
  dead-path prune / constant-fold pass for the cold pipeline.
"""

from repro.analysis.dataflow.effects import (
    DeadWrite,
    Effects,
    action_effects,
    block_effects,
    dead_writes,
)
from repro.analysis.dataflow.engine import AbstractInterpreter, FoldFact, Observer
from repro.analysis.dataflow.lattice import (
    Bool3,
    IntervalLattice,
    TaintLattice,
    fixpoint,
    term_join,
)
from repro.analysis.dataflow.prune import PruneReport, prune_program

__all__ = [
    "AbstractInterpreter",
    "Bool3",
    "DeadWrite",
    "Effects",
    "FoldFact",
    "IntervalLattice",
    "Observer",
    "PruneReport",
    "TaintLattice",
    "action_effects",
    "block_effects",
    "dead_writes",
    "fixpoint",
    "prune_program",
    "term_join",
]
