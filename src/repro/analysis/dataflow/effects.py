"""Flow-sensitive read/write effect analysis over statement blocks.

This is the :class:`~repro.analysis.dataflow.lattice.TaintLattice` client
of the dataflow framework: abstract facts are sets of flattened field
paths, joined by union (reads, may-writes) and intersection
(must-writes).  Compared to the syntactic walk in :mod:`repro.ir.deps`
(``_action_effects``), this analysis is

* **more precise on reads** — a field read only *after* a definite write
  in the same block never escapes as a read (the incoming value is dead),
  which is what removes spurious match dependencies between tables that
  each rebuild a scratch field before using it; and
* **sound on extern writes** — ``hash(dst, ...)``, ``update_checksum``
  and ``register.read(dst, idx)`` destinations count as writes (the
  syntactic walk files the first two under "reads all args").

Field naming matches :mod:`repro.ir.deps` exactly (flattened lvalue
paths, bare identifiers for locals, ``<header>.$valid`` for validity
bits, ``std.drop`` for the drop flag) so the two analyses are directly
comparable — the regression suite pins their agreement on the aliased
table corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.p4 import ast_nodes as ast
from repro.p4.types import lvalue_path

#: Destination-writing externs: the first argument is assigned, the rest
#: are read.  ``register.read`` is target-dispatched; ``hash`` and
#: ``update_checksum`` are free-standing.
_DST_WRITE_METHODS = ("read", "hash", "update_checksum")

#: Stateful externs whose arguments are only read.
_READ_ONLY_METHODS = ("count", "execute", "write")


@dataclass(frozen=True)
class Effects:
    """Read/write summary of one block (or action body)."""

    reads: frozenset[str]
    writes: frozenset[str]  # may-writes
    must_writes: frozenset[str]  # definite writes on every path


@dataclass(frozen=True)
class DeadWrite:
    """A write whose value is definitely overwritten before any read."""

    first: ast.AssignStmt
    second: object  # the overwriting statement
    path: str


class _State:
    __slots__ = ("reads", "may", "must")

    def __init__(
        self,
        reads: Optional[set[str]] = None,
        may: Optional[set[str]] = None,
        must: Optional[set[str]] = None,
    ) -> None:
        self.reads: set[str] = set() if reads is None else reads
        self.may: set[str] = set() if may is None else may
        self.must: set[str] = set() if must is None else must

    def copy(self) -> "_State":
        return _State(set(self.reads), set(self.may), set(self.must))


def action_effects(action: ast.ActionDecl) -> Effects:
    """Flow-sensitive effects of one action body."""
    params = frozenset(p.name for p in action.params)
    return block_effects(action.body, params)


def block_effects(block: ast.Block, params: frozenset[str]) -> Effects:
    state = _State()
    _flow_block(block, params, state)
    return Effects(
        reads=frozenset(state.reads),
        writes=frozenset(state.may),
        must_writes=frozenset(state.must),
    )


def _flow_block(block: ast.Block, params: frozenset[str], state: _State) -> None:
    for stmt in block.statements:
        _flow_stmt(stmt, params, state)


def _flow_stmt(stmt: object, params: frozenset[str], state: _State) -> None:
    if isinstance(stmt, ast.AssignStmt):
        _read_expr(stmt.rhs, params, state)
        if isinstance(stmt.lhs, ast.Slice):
            # A partial write composes with the old value: it both reads
            # and (fully re-)defines the field.
            path = _maybe_path(stmt.lhs.expr)
            if path is not None and path not in params:
                _read_field(path, state)
                state.may.add(path)
                state.must.add(path)
            return
        path = _maybe_path(stmt.lhs)
        if path is not None and path not in params:
            state.may.add(path)
            state.must.add(path)
        return
    if isinstance(stmt, ast.VarDeclStmt):
        if stmt.init is not None:
            _read_expr(stmt.init, params, state)
        state.may.add(stmt.name)
        state.must.add(stmt.name)
        return
    if isinstance(stmt, ast.IfStmt):
        _read_expr(stmt.cond, params, state)
        then_state = state.copy()
        _flow_block(stmt.then, params, then_state)
        else_state = state.copy()
        if stmt.orelse is not None:
            _flow_block(stmt.orelse, params, else_state)
        state.reads = then_state.reads | else_state.reads
        state.may = then_state.may | else_state.may
        state.must = then_state.must & else_state.must
        return
    if isinstance(stmt, ast.SwitchStmt):
        # Arm bodies are alternatives; none is guaranteed to run (the
        # selected action may not be labeled), so must-writes are the
        # pre-switch ones.
        pre_must = set(state.must)
        reads = set(state.reads)
        may = set(state.may)
        for case in stmt.cases:
            arm = _State(set(state.reads), set(state.may), set(pre_must))
            _flow_block(case.body, params, arm)
            reads |= arm.reads
            may |= arm.may
        state.reads = reads
        state.may = may
        state.must = pre_must
        return
    if isinstance(stmt, ast.MethodCallStmt):
        _flow_call(stmt.call, params, state)
        return
    # exit / return: no data effects.


def _flow_call(call: ast.MethodCall, params: frozenset[str], state: _State) -> None:
    method = call.method
    if method == "mark_to_drop":
        state.may.add("std.drop")
        state.must.add("std.drop")
        return
    if method in ("setValid", "setInvalid") and call.target is not None:
        path = _maybe_path(call.target)
        if path is not None:
            state.may.add(path + ".$valid")
            state.must.add(path + ".$valid")
        return
    if method in _DST_WRITE_METHODS and call.args:
        for arg in call.args[1:]:
            _read_expr(arg, params, state)
        path = _maybe_path(call.args[0])
        if path is not None and path not in params:
            state.may.add(path)
            state.must.add(path)
        return
    for arg in call.args:
        _read_expr(arg, params, state)


def _read_expr(expr: object, params: frozenset[str], state: _State) -> None:
    for field in _expr_fields(expr):
        if field not in params:
            _read_field(field, state)


def _read_field(field: str, state: _State) -> None:
    """A read only escapes when the incoming value can still be live."""
    if field not in state.must:
        state.reads.add(field)


def _expr_fields(expr: object) -> set[str]:
    fields: set[str] = set()
    _collect_fields(expr, fields)
    return fields


def _collect_fields(expr: object, out: set[str]) -> None:
    if isinstance(expr, ast.Member):
        path = _maybe_path(expr)
        if path is not None:
            out.add(path)
            return
        _collect_fields(expr.expr, out)
    elif isinstance(expr, ast.Ident):
        out.add(expr.name)
    elif isinstance(expr, (ast.Unary, ast.Cast, ast.Slice)):
        _collect_fields(expr.expr, out)
    elif isinstance(expr, ast.Binary):
        _collect_fields(expr.left, out)
        _collect_fields(expr.right, out)
    elif isinstance(expr, ast.Ternary):
        _collect_fields(expr.cond, out)
        _collect_fields(expr.then, out)
        _collect_fields(expr.orelse, out)
    elif isinstance(expr, ast.MethodCall):
        if expr.target is not None and expr.method == "isValid":
            path = _maybe_path(expr.target)
            if path is not None:
                out.add(path + ".$valid")
                return
        for arg in expr.args:
            _collect_fields(arg, out)


def _maybe_path(expr: object) -> Optional[str]:
    try:
        return lvalue_path(expr)
    except Exception:
        return None


# ---------------------------------------------------------------------------
# Dead (overwritten-before-read) writes, for the lint client
# ---------------------------------------------------------------------------


def dead_writes(
    block: ast.Block, params: frozenset[str] = frozenset()
) -> list[DeadWrite]:
    """Writes whose value is provably overwritten before any read.

    The walk is intentionally conservative: any branch, table apply, or
    unresolvable call acts as a barrier that forgets pending writes, so
    every report is a straight-line certainty.
    """
    found: list[DeadWrite] = []
    _dead_walk(block, params, {}, found)
    return found


def _dead_walk(
    block: ast.Block,
    params: frozenset[str],
    pending: dict[str, ast.AssignStmt],
    found: list[DeadWrite],
) -> None:
    for stmt in block.statements:
        if isinstance(stmt, ast.AssignStmt):
            _forget_reads(_expr_fields(stmt.rhs), pending)
            if isinstance(stmt.lhs, ast.Slice):
                path = _maybe_path(stmt.lhs.expr)
                if path is not None:
                    pending.pop(path, None)
                continue
            path = _maybe_path(stmt.lhs)
            if path is None or path in params:
                continue
            previous = pending.get(path)
            if previous is not None:
                found.append(DeadWrite(previous, stmt, path))
            pending[path] = stmt
        elif isinstance(stmt, ast.IfStmt):
            _forget_reads(_expr_fields(stmt.cond), pending)
            _dead_walk(stmt.then, params, {}, found)
            if stmt.orelse is not None:
                _dead_walk(stmt.orelse, params, {}, found)
            pending.clear()
        elif isinstance(stmt, ast.SwitchStmt):
            for case in stmt.cases:
                _dead_walk(case.body, params, {}, found)
            pending.clear()
        elif isinstance(stmt, ast.MethodCallStmt):
            call = stmt.call
            if call.method in ("setValid", "setInvalid", "mark_to_drop"):
                continue
            if call.method in _DST_WRITE_METHODS and call.args:
                for arg in call.args[1:]:
                    _forget_reads(_expr_fields(arg), pending)
                path = _maybe_path(call.args[0])
                if path is not None:
                    pending.pop(path, None)
                continue
            if call.method in _READ_ONLY_METHODS:
                for arg in call.args:
                    _forget_reads(_expr_fields(arg), pending)
                continue
            # Table applies and direct action calls read and write
            # unknown state: barrier.
            pending.clear()
        elif isinstance(stmt, (ast.ExitStmt, ast.ReturnStmt)):
            pending.clear()
        else:
            pending.clear()


def _forget_reads(fields: Iterable[str], pending: dict[str, ast.AssignStmt]) -> None:
    for field in fields:
        pending.pop(field, None)
