"""Abstract interpretation over the parsed program.

:class:`AbstractInterpreter` re-executes the whole pipeline in the
*symbolic constant domain*: the abstract store is a real
:class:`~repro.analysis.state.SymbolicStore` whose values are hash-consed
terms — literal constants, the executor's own initial data symbols, or
opaque placeholder variables standing for "some unknown value".
Expressions are translated by the *same* ``to_term`` machinery the
symbolic executor uses and reduced by the *same* simplifier, so every
definite fact the interpreter derives (a condition folding to literal
true/false, a store slot holding a literal constant) is a fact the
downstream pipeline derives on the σ-image of the same terms.  That
subset property is the soundness argument for the prune client: see
DESIGN.md ("Static analysis: the dataflow framework").

Differences from the symbolic executor, all precision-losing and
therefore safe:

* Control-plane outcomes (table hit bits, action selectors, action data,
  value-set membership) are opaque placeholders instead of control
  symbols — nothing control-plane-dependent is ever "definite" here.
* The parser is solved as a worklist fixpoint over the state graph
  (linear in states, via :func:`repro.analysis.dataflow.lattice.fixpoint`)
  instead of the executor's per-path recursion; entry stores join at
  shared states through memoized per-state placeholders, which is what
  bounds the iteration.
* No program points, no taint, no model — the outputs are the
  ``decisions`` (if-conditions that folded to a literal), ``folds``
  (store slots holding literal constants after an assignment), and
  whatever a client :class:`Observer` collected along the way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.state import SymbolicStore, merge_stores
from repro.analysis.symexec import (
    DROP_PATH,
    PARSER_ERROR_PATH,
    VALID_SUFFIX,
    AnalysisError,
    SymbolicExecutor,
    _Context,
    _find_local,
    _Unit,
)
from repro.p4 import ast_nodes as ast
from repro.p4.types import TypeEnv, eval_const_expr, lvalue_path
from repro.smt import simplify, terms as T
from repro.smt.simplify import constant_value
from repro.smt.terms import Term

from repro.analysis.dataflow.lattice import fixpoint

#: Synthetic sink node joining the accept and reject exits of the parser.
_FINAL = "$final"

#: Selector width must mirror TableInfo.SELECTOR_WIDTH without importing
#: the model layer (kept in sync by tests/analysis/test_dataflow.py).
_SELECTOR_WIDTH = 8


@dataclass(frozen=True)
class FoldFact:
    """A store slot held a literal constant right after an assignment."""

    value: int
    width: int


class Observer:
    """Client hooks; the default implementation observes nothing.

    ``ctx`` arguments are live interpreter state — observers must read,
    never mutate.
    """

    def enter_stmt(self, stmt: object, unit: _Unit, ctx: _Context) -> None:
        pass

    def enter_state(self, state: ast.ParserState, ctx: _Context) -> None:
        pass

    def on_decision(self, stmt: ast.IfStmt, unit: _Unit, value: bool) -> None:
        pass

    def on_table_apply(
        self, qualified: str, decl: ast.TableDecl, unit: _Unit, ctx: _Context
    ) -> None:
        pass


class AbstractInterpreter:
    """One abstract execution of a program; see the module docstring."""

    def __init__(
        self,
        program: ast.Program,
        env: Optional[TypeEnv] = None,
        skip_parser: bool = False,
        observer: Optional[Observer] = None,
    ) -> None:
        self.program = program
        self.env = env if env is not None else TypeEnv(program)
        self.skip_parser = skip_parser
        self.observer = observer if observer is not None else Observer()
        # The executor instance supplies to_term/_infer_width/_initial_store;
        # those methods only touch self.env and the ctx/unit we pass in.
        self._sx = SymbolicExecutor(program, self.env, skip_parser)
        self.decisions: dict[int, bool] = {}
        self.folds: dict[int, FoldFact] = {}
        # Node ids whose repeated executions disagreed (parser fixpoint
        # iterations, shared action bodies, duplicated pipeline stages).
        # They mirror the specializer's conflicting-verdict drop: once a
        # node has been seen undecided or with two different outcomes, no
        # fact may be reported for it.
        self._decision_conflicts: set[int] = set()
        self._fold_conflicts: set[int] = set()
        self.applied_tables: set[str] = set()
        self._table_selectors: dict[str, Term] = {}
        self._table_codes: dict[str, dict[str, int]] = {}
        self._fresh_counter = 0
        self._state_placeholders: dict[tuple[str, str], Term] = {}

    # -- public API ---------------------------------------------------------

    def run(self) -> _Context:
        pipeline = self.program.pipeline
        ctx = _Context(
            store=self._sx._initial_store(), exited=T.FALSE, path_cond=T.TRUE
        )
        parser_decl = self.program.find(pipeline.parser)
        if not isinstance(parser_decl, ast.ParserDecl):
            raise AnalysisError(f"{pipeline.parser!r} is not a parser")
        if self.skip_parser:
            self._sx._assume_all_headers_valid(ctx)
        else:
            ctx = self._run_parser(parser_decl, ctx)
        for control_name in pipeline.controls:
            control = self.program.find(control_name)
            if not isinstance(control, ast.ControlDecl):
                raise AnalysisError(f"{control_name!r} is not a control")
            ctx = self._run_control(control, ctx)
        return ctx

    # -- placeholders -------------------------------------------------------

    def _fresh_bv(self, width: int) -> Term:
        self._fresh_counter += 1
        return T.data_var(f"$abs{self._fresh_counter}", width)

    def _fresh_bool(self) -> Term:
        self._fresh_counter += 1
        return T.bool_var(f"$abs{self._fresh_counter}")

    def _opaque_like(self, term: Term) -> Term:
        if term.is_bool:
            return self._fresh_bool()
        return self._fresh_bv(term.width)

    # -- parser fixpoint ----------------------------------------------------

    def _run_parser(self, decl: ast.ParserDecl, ctx: _Context) -> _Context:
        unit = _Unit(decl.name, decl)
        states = {state.name: state for state in decl.states}
        entry: dict[str, _Context] = {}

        def successors(name: str) -> list[str]:
            if name in (ast.ACCEPT, ast.REJECT):
                return [_FINAL]
            if name == _FINAL:
                return []
            state = states.get(name)
            if state is None:
                raise AnalysisError(f"unknown parser state {name!r}")
            transition = state.transition
            if isinstance(transition, ast.TransitionDirect):
                return [transition.state]
            # Every select case is treated as reachable, plus the
            # implicit no-match reject edge.
            succ = [case.state for case in transition.cases]
            succ.append(ast.REJECT)
            return succ

        def join_into(name: str, incoming: _Context) -> bool:
            current = entry.get(name)
            if current is None:
                entry[name] = incoming.fork()
                return True
            changed = False
            for path, value in incoming.store.items():
                if not current.store.has(path):
                    current.store.write(path, value)
                    changed = True
                    continue
                old = current.store.read(path)
                if old is value:
                    continue
                placeholder = self._state_placeholder(name, path, old)
                if old is not placeholder:
                    current.store.write(path, placeholder)
                    changed = True
            if incoming.exited is not current.exited:
                placeholder = self._state_placeholder(name, "$exited", T.TRUE)
                if current.exited is not placeholder:
                    current.exited = placeholder
                    changed = True
            return changed

        def transfer(name: str, fact: _Context) -> _Context:
            out = fact.fork()
            if name == ast.REJECT:
                self._write(out, PARSER_ERROR_PATH, T.TRUE)
                self._write(out, DROP_PATH, T.TRUE)
                return out
            if name in (ast.ACCEPT, _FINAL):
                return out
            state = states[name]
            self.observer.enter_state(state, out)
            for stmt in state.statements:
                self._exec_stmt(stmt, unit, out)
            return out

        fixpoint(
            successors,
            {"start": ctx},
            transfer,
            join_into,
            lambda name: entry[name],
        )
        final = entry.get(_FINAL)
        if final is None:
            # Parser with no path to accept or reject; keep the entry state.
            return ctx
        return transfer(_FINAL, final)

    def _state_placeholder(self, state: str, path: str, like: Term) -> Term:
        key = (state, path)
        cached = self._state_placeholders.get(key)
        if cached is None:
            cached = self._opaque_like(like)
            self._state_placeholders[key] = cached
        return cached

    # -- statements (mirrors SymbolicExecutor rule for rule) ----------------

    def _write(self, ctx: _Context, path: str, value: Term) -> None:
        if ctx.exited is T.FALSE:
            ctx.store.write(path, simplify(value))
            return
        old = ctx.store.read(path) if ctx.store.has(path) else value
        ctx.store.write(path, simplify(T.ite(ctx.exited, old, value)))

    def _exec_block(self, block: ast.Block, unit: _Unit, ctx: _Context) -> None:
        for stmt in block.statements:
            self._exec_stmt(stmt, unit, ctx)

    def _exec_stmt(self, stmt: object, unit: _Unit, ctx: _Context) -> None:
        self.observer.enter_stmt(stmt, unit, ctx)
        if isinstance(stmt, ast.AssignStmt):
            self._exec_assign(stmt, unit, ctx)
        elif isinstance(stmt, ast.VarDeclStmt):
            width = self.env.width_of(stmt.type)
            path = f"{unit.name}.{stmt.name}"
            if stmt.init is not None:
                value = self._sx.to_term(stmt.init, unit, ctx, width)
            else:
                value = T.bv_const(0, width)
            ctx.store.write(path, simplify(value))
        elif isinstance(stmt, ast.IfStmt):
            self._exec_if(stmt, unit, ctx)
        elif isinstance(stmt, ast.MethodCallStmt):
            self._exec_call(stmt.call, unit, ctx)
        elif isinstance(stmt, ast.ExitStmt):
            ctx.exited = T.TRUE
        elif isinstance(stmt, ast.ReturnStmt):
            pass
        elif isinstance(stmt, ast.SwitchStmt):
            self._exec_switch(stmt, unit, ctx)
        else:
            raise AnalysisError(f"cannot execute statement {stmt!r}")

    def _exec_assign(self, stmt: ast.AssignStmt, unit: _Unit, ctx: _Context) -> None:
        if isinstance(stmt.lhs, ast.Slice):
            self._exec_slice_assign(stmt, unit, ctx)
            return
        path = lvalue_path(stmt.lhs)
        if not ctx.store.has(path):
            qualified = f"{unit.name}.{path}"
            if ctx.store.has(qualified):
                path = qualified
            else:
                raise AnalysisError(f"assignment to unknown path {path!r}")
        old = ctx.store.read(path)
        width = old.width
        value = self._sx.to_term(stmt.rhs, unit, ctx, width)
        self._write(ctx, path, value)
        written = ctx.store.read(path)
        folded = constant_value(written)
        if folded is not None and not written.is_bool:
            self._record_fold(id(stmt), FoldFact(folded, written.width))
        else:
            self._fold_conflicts.add(id(stmt))
            self.folds.pop(id(stmt), None)

    def _record_fold(self, node_id: int, fact: FoldFact) -> None:
        if node_id in self._fold_conflicts:
            return
        previous = self.folds.get(node_id)
        if previous is not None and previous != fact:
            self._fold_conflicts.add(node_id)
            del self.folds[node_id]
            return
        self.folds[node_id] = fact

    def _record_decision(self, stmt: ast.IfStmt, unit: _Unit, value: bool) -> None:
        self.observer.on_decision(stmt, unit, value)
        node_id = id(stmt)
        if node_id in self._decision_conflicts:
            return
        previous = self.decisions.get(node_id)
        if previous is not None and previous != value:
            self._decision_conflicts.add(node_id)
            del self.decisions[node_id]
            return
        self.decisions[node_id] = value

    def _exec_slice_assign(
        self, stmt: ast.AssignStmt, unit: _Unit, ctx: _Context
    ) -> None:
        lhs = stmt.lhs
        assert isinstance(lhs, ast.Slice)
        path = lvalue_path(lhs.expr)
        old = ctx.store.read(path)
        width = old.width
        piece = self._sx.to_term(stmt.rhs, unit, ctx, lhs.hi - lhs.lo + 1)
        parts: list[Term] = []
        if lhs.hi < width - 1:
            parts.append(T.extract(old, width - 1, lhs.hi + 1))
        parts.append(piece)
        if lhs.lo > 0:
            parts.append(T.extract(old, lhs.lo - 1, 0))
        value = parts[0]
        for part in parts[1:]:
            value = T.concat(value, part)
        self._write(ctx, path, value)

    def _exec_if(self, stmt: ast.IfStmt, unit: _Unit, ctx: _Context) -> None:
        cond = simplify(self._cond_term(stmt.cond, unit, ctx))
        if cond is T.TRUE:
            self._record_decision(stmt, unit, True)
            self._exec_block(stmt.then, unit, ctx)
            return
        if cond is T.FALSE:
            self._record_decision(stmt, unit, False)
            if stmt.orelse is not None:
                self._exec_block(stmt.orelse, unit, ctx)
            return
        self._decision_conflicts.add(id(stmt))
        self.decisions.pop(id(stmt), None)
        then_ctx = ctx.fork()
        self._exec_block(stmt.then, unit, then_ctx)
        else_ctx = ctx.fork()
        if stmt.orelse is not None:
            self._exec_block(stmt.orelse, unit, else_ctx)
        ctx.store = merge_stores(cond, then_ctx.store, else_ctx.store)
        ctx.exited = simplify(T.ite(cond, then_ctx.exited, else_ctx.exited))

    def _cond_term(self, expr: ast.Expr, unit: _Unit, ctx: _Context) -> Term:
        if (
            isinstance(expr, ast.Member)
            and expr.name in ("hit", "miss")
            and isinstance(expr.expr, ast.MethodCall)
            and expr.expr.method == "apply"
        ):
            table_name = lvalue_path(expr.expr.target)
            hit = self._apply_table(table_name, unit, ctx)
            return hit if expr.name == "hit" else T.bool_not(hit)
        if isinstance(expr, ast.Unary) and expr.op == "!":
            return T.bool_not(self._cond_term(expr.expr, unit, ctx))
        return self._sx.to_term(expr, unit, ctx)

    def _exec_switch(self, stmt: ast.SwitchStmt, unit: _Unit, ctx: _Context) -> None:
        self._apply_table(stmt.table, unit, ctx)
        qualified = f"{unit.name}.{stmt.table}"
        selector = self._table_selectors[qualified]
        codes = self._table_codes[qualified]
        arms: list[tuple[Term, ast.Block]] = []
        default_body: Optional[ast.Block] = None
        for case in stmt.cases:
            if case.action is None:
                default_body = case.body
                continue
            code = codes[case.action]
            arms.append(
                (T.eq(selector, T.bv_const(code, _SELECTOR_WIDTH)), case.body)
            )
        self._exec_arm_chain(arms, default_body, unit, ctx)

    def _exec_arm_chain(
        self,
        arms: list[tuple[Term, ast.Block]],
        default_body: Optional[ast.Block],
        unit: _Unit,
        ctx: _Context,
    ) -> None:
        if not arms:
            if default_body is not None:
                self._exec_block(default_body, unit, ctx)
            return
        cond, body = arms[0]
        then_ctx = ctx.fork()
        self._exec_block(body, unit, then_ctx)
        else_ctx = ctx.fork()
        self._exec_arm_chain(arms[1:], default_body, unit, else_ctx)
        ctx.store = merge_stores(cond, then_ctx.store, else_ctx.store)
        ctx.exited = simplify(T.ite(cond, then_ctx.exited, else_ctx.exited))

    # -- calls --------------------------------------------------------------

    def _exec_call(self, call: ast.MethodCall, unit: _Unit, ctx: _Context) -> None:
        method = call.method
        if method == "apply" and call.target is not None:
            self._apply_table(lvalue_path(call.target), unit, ctx)
            return
        if method == "setValid" and call.target is not None:
            self._write(ctx, lvalue_path(call.target) + VALID_SUFFIX, T.TRUE)
            return
        if method == "setInvalid" and call.target is not None:
            self._write(ctx, lvalue_path(call.target) + VALID_SUFFIX, T.FALSE)
            return
        if method in ("count", "execute", "write"):
            return
        if method == "read" and call.target is not None:
            self._extern_assign(call.args[0], unit, ctx)
            return
        if method == "mark_to_drop":
            self._write(ctx, DROP_PATH, T.TRUE)
            return
        if method in ("hash", "update_checksum"):
            self._extern_assign(call.args[0], unit, ctx)
            return
        if method == "pkt_extract":
            header_path = lvalue_path(call.args[0])
            self._write(ctx, header_path + VALID_SUFFIX, T.TRUE)
            return
        action = self._sx._find_action_or_none(unit, method)
        if action is not None and call.target is None:
            bindings = dict(unit.bindings)
            for param, arg in zip(action.params, call.args):
                width = self.env.width_of(param.type)
                bindings[param.name] = self._sx.to_term(arg, unit, ctx, width)
            inner = _Unit(unit.name, unit.decl, bindings)
            self._exec_block(action.body, inner, ctx)
            return
        raise AnalysisError(f"unknown extern {method!r}")

    def _extern_assign(self, dst: ast.Expr, unit: _Unit, ctx: _Context) -> None:
        path = lvalue_path(dst)
        if not ctx.store.has(path):
            path = f"{unit.name}.{path}"
        width = ctx.store.read(path).width
        self._write(ctx, path, self._fresh_bv(width))

    # -- tables -------------------------------------------------------------

    def _apply_table(self, table_name: str, unit: _Unit, ctx: _Context) -> Term:
        control = unit.decl
        table_decl = _find_local(control, table_name, ast.TableDecl)
        qualified = f"{unit.name}.{table_name}"
        if qualified in self.applied_tables:
            raise AnalysisError(
                f"table {qualified!r} applied more than once; "
                "the control-plane encoding assumes a single apply site"
            )
        self.applied_tables.add(qualified)
        self.observer.on_table_apply(qualified, table_decl, unit, ctx)
        # Mirror the executor's key evaluation (including its failure modes).
        for key in table_decl.keys:
            self._sx.to_term(key.expr, unit, ctx)

        selector = self._fresh_bv(_SELECTOR_WIDTH)
        hit_cond = T.eq(self._fresh_bv(1), T.bv_const(1, 1))

        action_order = [ref.name for ref in table_decl.actions]
        action_codes = {name: i for i, name in enumerate(action_order)}
        default_ref = table_decl.default_action
        if default_ref is None:
            default_name = action_order[-1] if action_order else ""
        else:
            default_name = default_ref.name
            for arg in default_ref.args:
                eval_const_expr(arg, self.env)
        if default_name and default_name not in action_codes:
            action_codes[default_name] = len(action_order)
        self._table_selectors[qualified] = selector
        self._table_codes[qualified] = action_codes

        all_actions = list(action_order)
        if default_name and default_name not in all_actions:
            all_actions.append(default_name)
        branch_stores: dict[str, SymbolicStore] = {}
        for action_name in all_actions:
            action_decl = _find_local(control, action_name, ast.ActionDecl)
            bindings: dict[str, Term] = {}
            for param in action_decl.params:
                bindings[param.name] = self._fresh_bv(self.env.width_of(param.type))
            branch_ctx = ctx.fork()
            branch_unit = _Unit(unit.name, unit.decl, bindings)
            self._exec_block(action_decl.body, branch_unit, branch_ctx)
            branch_stores[action_name] = branch_ctx.store

        fallback = branch_stores.get(default_name, ctx.store)
        merged = fallback
        for action_name in reversed(all_actions):
            if action_name == default_name:
                continue
            code = action_codes[action_name]
            cond = T.eq(selector, T.bv_const(code, _SELECTOR_WIDTH))
            merged = merge_stores(cond, branch_stores[action_name], merged)
        ctx.store = merged
        return hit_cond

    # -- controls -----------------------------------------------------------

    def _run_control(self, decl: ast.ControlDecl, ctx: _Context) -> _Context:
        unit = _Unit(decl.name, decl)
        for local in decl.locals:
            if isinstance(local, ast.VarDeclStmt):
                self._exec_stmt(local, unit, ctx)
        self._exec_block(decl.apply, unit, ctx)
        return ctx
