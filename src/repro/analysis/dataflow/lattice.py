"""Lattices and the generic worklist fixpoint for the dataflow framework.

The abstract-interpretation engine (:mod:`repro.analysis.dataflow.engine`)
is parameterized over these small algebraic pieces:

* :class:`Bool3` — the three-point boolean lattice used for header
  validity and reachability facts.
* :class:`IntervalLattice` — unsigned value ranges, a thin join/widen
  layer over :mod:`repro.smt.interval`'s ``Interval`` arithmetic.
* :class:`TaintLattice` — label sets with union join, used for the
  flow-sensitive read/write (information-flow) analysis that feeds
  :mod:`repro.ir.deps`.
* :func:`term_join` — the symbolic constant domain: abstract values are
  hash-consed *terms* (literal constants, the executor's own initial
  data symbols, or opaque placeholders), and the partial order is term
  identity.  This is the domain the prune pass runs in: every fact it
  derives is a fact the downstream simplifier derives on the same
  interned terms, which is what makes pruning output-preserving.
* :func:`fixpoint` — a worklist solver over an explicit flow graph,
  shared by the parser-state analysis and any future graph client.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Hashable, Iterable, Optional, TypeVar

from repro.smt import terms as T
from repro.smt.interval import Interval, eval_interval
from repro.smt.terms import Term


class Bool3(Enum):
    """Three-valued boolean: definitely false / definitely true / unknown."""

    FALSE = "false"
    TRUE = "true"
    UNKNOWN = "unknown"

    def join(self, other: "Bool3") -> "Bool3":
        if self is other:
            return self
        return Bool3.UNKNOWN

    def negate(self) -> "Bool3":
        if self is Bool3.TRUE:
            return Bool3.FALSE
        if self is Bool3.FALSE:
            return Bool3.TRUE
        return Bool3.UNKNOWN

    @staticmethod
    def from_term(term: Term) -> "Bool3":
        """Abstract a boolean term: only literal constants are definite."""
        if term is T.TRUE:
            return Bool3.TRUE
        if term is T.FALSE:
            return Bool3.FALSE
        return Bool3.UNKNOWN


class IntervalLattice:
    """Join/top helpers over :class:`repro.smt.interval.Interval`."""

    @staticmethod
    def top(width: int) -> Interval:
        return Interval(0, (1 << width) - 1)

    @staticmethod
    def join(a: Interval, b: Interval) -> Interval:
        return Interval(min(a.lo, b.lo), max(a.hi, b.hi))

    @staticmethod
    def leq(a: Interval, b: Interval) -> bool:
        return a.lo >= b.lo and a.hi <= b.hi

    @staticmethod
    def of_term(term: Term, memo: Optional[dict[int, Interval]] = None) -> Interval:
        """Abstract a bit-vector term through the interval transfer functions."""
        return eval_interval(term, memo if memo is not None else {})


class TaintLattice:
    """Finite label sets ordered by inclusion; join is union."""

    BOTTOM: frozenset[str] = frozenset()

    @staticmethod
    def join(a: frozenset[str], b: frozenset[str]) -> frozenset[str]:
        if not b:
            return a
        if not a:
            return b
        return a | b

    @staticmethod
    def leq(a: frozenset[str], b: frozenset[str]) -> bool:
        return a <= b


def term_join(a: Term, b: Term, fresh: Callable[[Term], Term]) -> Term:
    """Join in the symbolic constant domain.

    Identical (hash-consed) terms stay; anything else goes to an opaque
    placeholder supplied by ``fresh``.  Mirrors
    :func:`repro.analysis.state.merge_stores`' identity fast path, which
    is what keeps the abstract store in lockstep with the executor.
    """
    if a is b:
        return a
    return fresh(a)


N = TypeVar("N", bound=Hashable)
F = TypeVar("F")


def fixpoint(
    successors: Callable[[N], Iterable[N]],
    entry_facts: dict[N, F],
    transfer: Callable[[N, F], F],
    join_into: Callable[[N, F], bool],
    fact_at: Callable[[N], F],
) -> None:
    """Chaotic-iteration worklist solver over an explicit flow graph.

    Iteration starts from the ``entry_facts`` seeds and visits whatever
    ``successors`` reaches from there.  ``join_into(node, fact)`` merges
    ``fact`` into ``node``'s entry fact and returns True when the entry
    fact changed; ``fact_at`` reads the current entry fact.  Termination
    is the caller's lattice's business (the engine's placeholder
    stabilization bounds every chain).
    """
    worklist: list[N] = []
    seen: set[N] = set()
    for node, fact in entry_facts.items():
        join_into(node, fact)
        if node not in seen:
            seen.add(node)
            worklist.append(node)
    while worklist:
        node = worklist.pop()
        seen.discard(node)
        out = transfer(node, fact_at(node))
        for succ in successors(node):
            if join_into(succ, out) and succ not in seen:
                seen.add(succ)
                worklist.append(succ)
