"""Dead-path pruning and constant folding ahead of the cold pipeline.

``prune_program`` runs the :class:`AbstractInterpreter` once and rewrites
the pipeline controls' apply blocks:

* an ``if`` whose condition folded to a literal is replaced by its live
  branch (the dead branch — with any table applies, points, and CNF it
  would have produced — never reaches symexec or the encoder);
* an assignment whose stored value folded to a literal constant becomes
  a literal assignment.

**The rewrite is specialized-output-preserving by construction.** Every
decision is a condition the downstream simplifier reduces to the same
literal on the σ-image of the same interned terms, so the symbolic
executor short-circuits exactly the branches pruning deleted, and the
specializer folds exactly the assignments pruning folded (its literal
has the same value and the same ``_lhs_width``-derived width).  Pruning
therefore changes *what work the cold pipeline does*, never *what it
emits* — pinned by the ``--no-prune`` differential harness.  The
gating mirrors the specializer's effort presets: nothing at ``none``,
branch removal at ``dce``/``full``, constant folding at ``full`` only —
and only statements the specializer itself would rewrite (apply-block
trees; never action bodies, never the parser) are touched.

On any analysis failure the pass degrades to the identity — the real
pipeline will report the error in its usual place.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.p4 import ast_nodes as ast
from repro.p4.types import TypeEnv

from repro.analysis.dataflow.engine import AbstractInterpreter, FoldFact

#: Effort presets, mirroring repro.engine.specialize (kept as literals so
#: the analysis layer does not import the engine layer).
EFFORT_NONE = "none"
EFFORT_DCE = "dce"
EFFORT_FULL = "full"


@dataclass
class PruneReport:
    """What the prune pass did (or why it did nothing)."""

    enabled: bool = True
    analysis_failed: bool = False
    removed_branches: int = 0
    folded_constants: int = 0

    @property
    def changed(self) -> bool:
        return bool(self.removed_branches or self.folded_constants)

    def summary(self) -> str:
        if not self.enabled:
            return "prune: disabled"
        if self.analysis_failed:
            return "prune: skipped (analysis failed)"
        return (
            f"prune: {self.removed_branches} branches removed, "
            f"{self.folded_constants} constants folded"
        )


def prune_program(
    program: ast.Program,
    env: Optional[TypeEnv] = None,
    *,
    effort: str = EFFORT_FULL,
    skip_parser: bool = False,
) -> tuple[ast.Program, PruneReport]:
    """Prune ``program``; returns the (possibly identical) program and report."""
    if effort == EFFORT_NONE:
        return program, PruneReport(enabled=False)
    env = env if env is not None else TypeEnv(program)
    interp = AbstractInterpreter(program, env, skip_parser=skip_parser)
    try:
        interp.run()
    except Exception:
        return program, PruneReport(analysis_failed=True)
    report = PruneReport()
    rewriter = _Rewriter(
        interp,
        env,
        enable_dce=effort in (EFFORT_DCE, EFFORT_FULL),
        enable_fold=effort == EFFORT_FULL,
        report=report,
    )
    pipeline = program.pipeline
    new_decls: list = []
    changed = False
    for decl in program.declarations:
        if isinstance(decl, ast.ControlDecl) and decl.name in pipeline.controls:
            rewritten = rewriter.control(decl)
            changed = changed or rewritten is not decl
            new_decls.append(rewritten)
        else:
            new_decls.append(decl)
    if not changed:
        return program, report
    return ast.Program(tuple(new_decls)), report


class _Rewriter:
    """Rewrites apply-block trees using the interpreter's stable facts."""

    def __init__(
        self,
        interp: AbstractInterpreter,
        env: TypeEnv,
        enable_dce: bool,
        enable_fold: bool,
        report: PruneReport,
    ) -> None:
        self.interp = interp
        self.env = env
        self.enable_dce = enable_dce
        self.enable_fold = enable_fold
        self.report = report
        self._current: Optional[ast.ControlDecl] = None

    def control(self, decl: ast.ControlDecl) -> ast.ControlDecl:
        self._current = decl
        rewritten = self.block(decl.apply)
        self._current = None
        if rewritten is decl.apply:
            return decl
        return dataclasses.replace(decl, apply=rewritten)

    def block(self, block: ast.Block) -> ast.Block:
        statements: list = []
        changed = False
        for stmt in block.statements:
            out = self.stmt(stmt)
            if len(out) != 1 or out[0] is not stmt:
                changed = True
            statements.extend(out)
        if not changed:
            return block
        return ast.Block(tuple(statements))

    def stmt(self, stmt: object) -> list:
        if isinstance(stmt, ast.IfStmt):
            return self._rw_if(stmt)
        if isinstance(stmt, ast.AssignStmt):
            return [self._rw_assign(stmt)]
        if isinstance(stmt, ast.SwitchStmt):
            return [self._rw_switch(stmt)]
        return [stmt]

    def _rw_if(self, stmt: ast.IfStmt) -> list:
        if self.enable_dce:
            decision = self.interp.decisions.get(id(stmt))
            if decision is True:
                self.report.removed_branches += 1
                return list(self.block(stmt.then).statements)
            if decision is False:
                self.report.removed_branches += 1
                if stmt.orelse is None:
                    return []
                return list(self.block(stmt.orelse).statements)
        then = self.block(stmt.then)
        orelse = self.block(stmt.orelse) if stmt.orelse is not None else None
        if then is stmt.then and orelse is stmt.orelse:
            return [stmt]
        return [ast.IfStmt(stmt.cond, then, orelse, pos=stmt.pos)]

    def _rw_assign(self, stmt: ast.AssignStmt) -> ast.AssignStmt:
        if not self.enable_fold:
            return stmt
        fact = self.interp.folds.get(id(stmt))
        if (
            fact is not None
            and not isinstance(stmt.rhs, (ast.IntLit, ast.BoolLit))
            and not isinstance(stmt.lhs, ast.Slice)
        ):
            width = self._lhs_width(stmt.lhs)
            # The declared width must agree with the store slot's width;
            # when it doesn't (it always should), skipping the fold is
            # safe — the specializer folds the surviving statement the
            # same way in both the pruned and unpruned runs.
            if width is not None and width == fact.width:
                self.report.folded_constants += 1
                return ast.AssignStmt(
                    stmt.lhs, ast.IntLit(fact.value, width), pos=stmt.pos
                )
        return stmt

    def _rw_switch(self, stmt: ast.SwitchStmt) -> ast.SwitchStmt:
        cases: list = []
        changed = False
        for case in stmt.cases:
            body = self.block(case.body)
            if body is case.body:
                cases.append(case)
            else:
                changed = True
                cases.append(dataclasses.replace(case, body=body))
        if not changed:
            return stmt
        return ast.SwitchStmt(stmt.table, tuple(cases), pos=stmt.pos)

    def _lhs_width(self, lhs: ast.Expr) -> Optional[int]:
        """The width the specializer would give a folded literal.

        Mirrors ``Specializer._lhs_width`` exactly — same scope
        construction, same boolean opt-out, same exception fallback — so
        a pruned fold and an unpruned specializer fold print identically.
        """
        from repro.p4.types import scope_for_params, type_of

        assert self._current is not None
        try:
            scope = scope_for_params(self.env, self._current.params)
            for local in self._current.locals:
                if isinstance(local, ast.VarDeclStmt):
                    scope.bind(local.name, local.type)
            t = type_of(lhs, scope)
            resolved = self.env.resolve(t)
            if isinstance(resolved, ast.BoolType):
                return None  # keep booleans textual
            return self.env.width_of(resolved)
        except Exception:
            return None


__all__ = [
    "EFFORT_DCE",
    "EFFORT_FULL",
    "EFFORT_NONE",
    "FoldFact",
    "PruneReport",
    "prune_program",
]
