"""``repro lint`` — positioned static diagnostics over a parsed program.

Two diagnostic sources share one report:

* **Static checks** walk the AST with the type environment: width
  truncation in assignments, shadowed/duplicate select and switch cases,
  switch arms naming actions their table cannot run, actions no table or
  call site references, and straight-line write-after-write sequences
  (via :func:`repro.analysis.dataflow.effects.dead_writes`).
* **Abstract-interpretation checks** run the
  :class:`~repro.analysis.dataflow.engine.AbstractInterpreter` with an
  observer: reads of header fields whose validity is ``false`` on every
  abstract path (uninitialized header read), and if-branches whose
  condition folds to a literal (unreachable branch).  Both inherit the
  interpreter's conflict discipline — a statement observed in two
  disagreeing contexts reports nothing.

Every diagnostic carries the :class:`~repro.errors.SourcePos` of the
offending construct (statement, case, or declaration name), a stable
``code``, and a severity; ``max_severity``/``--fail-on`` turn the report
into an exit status.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import SourcePos
from repro.p4 import ast_nodes as ast
from repro.p4.types import (
    TypeEnv,
    Scope,
    eval_const_expr,
    scope_for_params,
    type_of,
)
from repro.smt import terms as T

from repro.analysis.symexec import VALID_SUFFIX, _Context, _Unit
from repro.analysis.dataflow.effects import (
    _DST_WRITE_METHODS,
    _expr_fields,
    dead_writes,
)
from repro.analysis.dataflow.engine import AbstractInterpreter, Observer

SEVERITY_INFO = "info"
SEVERITY_WARNING = "warning"
SEVERITY_ERROR = "error"

#: Rank order for ``--fail-on`` comparisons.
SEVERITY_RANK = {SEVERITY_INFO: 0, SEVERITY_WARNING: 1, SEVERITY_ERROR: 2}

# Diagnostic codes.
UNINITIALIZED_HEADER_READ = "uninitialized-header-read"
UNREACHABLE_BRANCH = "unreachable-branch"
SHADOWED_SELECT_CASE = "shadowed-select-case"
SHADOWED_SWITCH_CASE = "shadowed-switch-case"
UNREACHABLE_SWITCH_CASE = "unreachable-switch-case"
WIDTH_TRUNCATION = "width-truncation"
DEAD_ACTION = "dead-action"
WRITE_AFTER_WRITE = "write-after-write"

_DEFAULT_SEVERITY = {
    UNINITIALIZED_HEADER_READ: SEVERITY_ERROR,
    UNREACHABLE_BRANCH: SEVERITY_WARNING,
    SHADOWED_SELECT_CASE: SEVERITY_WARNING,
    SHADOWED_SWITCH_CASE: SEVERITY_WARNING,
    UNREACHABLE_SWITCH_CASE: SEVERITY_WARNING,
    WIDTH_TRUNCATION: SEVERITY_WARNING,
    DEAD_ACTION: SEVERITY_INFO,
    WRITE_AFTER_WRITE: SEVERITY_WARNING,
}


@dataclass(frozen=True)
class Diagnostic:
    """One positioned finding."""

    code: str
    severity: str
    message: str
    pos: Optional[SourcePos]
    unit: str  # enclosing parser/control (or action) name, for grouping

    def render(self) -> str:
        where = str(self.pos) if self.pos is not None else "-"
        return f"{where}: {self.severity}: [{self.code}] {self.message}"


@dataclass
class LintReport:
    diagnostics: list

    def max_severity(self) -> Optional[str]:
        worst = None
        for diag in self.diagnostics:
            if worst is None or SEVERITY_RANK[diag.severity] > SEVERITY_RANK[worst]:
                worst = diag.severity
        return worst

    def at_least(self, severity: str) -> list:
        floor = SEVERITY_RANK[severity]
        return [d for d in self.diagnostics if SEVERITY_RANK[d.severity] >= floor]

    def counts(self) -> dict:
        out: dict[str, int] = {}
        for diag in self.diagnostics:
            out[diag.severity] = out.get(diag.severity, 0) + 1
        return out

    def summary(self) -> str:
        counts = self.counts()
        parts = [
            f"{counts[s]} {s}{'s' if counts[s] != 1 else ''}"
            for s in (SEVERITY_ERROR, SEVERITY_WARNING, SEVERITY_INFO)
            if s in counts
        ]
        return ", ".join(parts) if parts else "no findings"


def lint_program(
    program: ast.Program,
    env: Optional[TypeEnv] = None,
    *,
    skip_parser: bool = False,
) -> LintReport:
    """Lint ``program``; diagnostics come back in source order."""
    env = env if env is not None else TypeEnv(program)
    linter = _Linter(program, env, skip_parser=skip_parser)
    return LintReport(linter.run())


class _Linter:
    def __init__(
        self, program: ast.Program, env: TypeEnv, skip_parser: bool
    ) -> None:
        self.program = program
        self.env = env
        self.skip_parser = skip_parser
        self.diags: list[Diagnostic] = []

    def run(self) -> list[Diagnostic]:
        try:
            has_pipeline = self.program.pipeline is not None
        except KeyError:
            has_pipeline = False
        for decl in self.program.declarations:
            if isinstance(decl, ast.ControlDecl):
                self._lint_control(decl)
            elif isinstance(decl, ast.ParserDecl):
                self._lint_parser(decl)
        if has_pipeline:
            self._lint_abstract()
        self.diags.sort(
            key=lambda d: (
                d.pos is None,
                d.pos.line if d.pos else 0,
                d.pos.column if d.pos else 0,
                d.code,
            )
        )
        return self.diags

    def _emit(
        self,
        code: str,
        message: str,
        pos: Optional[SourcePos],
        unit: str,
    ) -> None:
        self.diags.append(
            Diagnostic(code, _DEFAULT_SEVERITY[code], message, pos, unit)
        )

    # -- static checks: controls -------------------------------------------

    def _lint_control(self, decl: ast.ControlDecl) -> None:
        scope = scope_for_params(self.env, decl.params)
        tables: dict[str, ast.TableDecl] = {}
        actions: dict[str, ast.ActionDecl] = {}
        for local in decl.locals:
            if isinstance(local, ast.VarDeclStmt):
                try:
                    scope.bind(local.name, local.type)
                except Exception:
                    pass
            elif isinstance(local, ast.TableDecl):
                tables[local.name] = local
            elif isinstance(local, ast.ActionDecl):
                actions[local.name] = local

        referenced: set[str] = set()
        for table in tables.values():
            referenced.update(ref.name for ref in table.actions)
            if table.default_action is not None:
                referenced.add(table.default_action.name)
        for stmt in _walk_stmts(decl.apply):
            if (
                isinstance(stmt, ast.MethodCallStmt)
                and stmt.call.target is None
                and stmt.call.method in actions
            ):
                referenced.add(stmt.call.method)
        # Actions calling other actions keep their callees live.
        grew = True
        while grew:
            grew = False
            for name in list(referenced):
                action = actions.get(name)
                if action is None:
                    continue
                for stmt in _walk_stmts(action.body):
                    if (
                        isinstance(stmt, ast.MethodCallStmt)
                        and stmt.call.target is None
                        and stmt.call.method in actions
                        and stmt.call.method not in referenced
                    ):
                        referenced.add(stmt.call.method)
                        grew = True
        for name, action in actions.items():
            if name not in referenced:
                self._emit(
                    DEAD_ACTION,
                    f"action {name!r} is not referenced by any table or call",
                    action.pos,
                    decl.name,
                )

        for action in actions.values():
            action_scope = scope.child()
            for param in action.params:
                try:
                    action_scope.bind(param.name, param.type)
                except Exception:
                    pass
            params = frozenset(p.name for p in action.params)
            self._lint_block(
                action.body,
                action_scope,
                f"{decl.name}.{action.name}",
                tables,
                params,
            )
        self._lint_block(decl.apply, scope, decl.name, tables, frozenset())

    def _lint_block(
        self,
        block: ast.Block,
        scope: Scope,
        unit: str,
        tables: dict,
        params: frozenset,
    ) -> None:
        for stmt in _walk_stmts(block):
            if isinstance(stmt, ast.AssignStmt):
                self._check_truncation(stmt, scope, unit)
            elif isinstance(stmt, ast.SwitchStmt):
                self._check_switch(stmt, tables.get(stmt.table), unit)
        for dead in dead_writes(block, params):
            first_at = (
                f" (first written at {dead.first.pos})"
                if dead.first.pos is not None
                else ""
            )
            self._emit(
                WRITE_AFTER_WRITE,
                f"{dead.path!r} is overwritten before any read{first_at}",
                dead.second.pos,
                unit,
            )

    def _check_truncation(
        self, stmt: ast.AssignStmt, scope: Scope, unit: str
    ) -> None:
        if isinstance(stmt.lhs, ast.Slice):
            return  # explicit sub-field write
        try:
            lhs_t = self.env.resolve(type_of(stmt.lhs, scope))
        except Exception:
            return
        if not isinstance(lhs_t, ast.BitType) or lhs_t.width <= 0:
            return
        lhs_width = lhs_t.width
        rhs = stmt.rhs
        if isinstance(rhs, ast.IntLit):
            if rhs.width is not None and rhs.width > lhs_width:
                self._emit(
                    WIDTH_TRUNCATION,
                    f"assigning {rhs.width}-bit literal to "
                    f"{lhs_width}-bit field drops high bits",
                    stmt.pos,
                    unit,
                )
            elif rhs.width is None and rhs.value >= (1 << lhs_width):
                self._emit(
                    WIDTH_TRUNCATION,
                    f"literal {rhs.value} does not fit in "
                    f"{lhs_width} bits",
                    stmt.pos,
                    unit,
                )
            return
        if isinstance(rhs, ast.Cast):
            return  # explicit narrowing
        try:
            rhs_t = self.env.resolve(type_of(rhs, scope))
        except Exception:
            return
        if isinstance(rhs_t, ast.BitType) and 0 < lhs_width < rhs_t.width:
            self._emit(
                WIDTH_TRUNCATION,
                f"assigning {rhs_t.width}-bit value to "
                f"{lhs_width}-bit field drops high bits",
                stmt.pos,
                unit,
            )

    def _check_switch(
        self, stmt: ast.SwitchStmt, table: Optional[ast.TableDecl], unit: str
    ) -> None:
        known: Optional[set[str]] = None
        if table is not None:
            known = {ref.name for ref in table.actions}
            if table.default_action is not None:
                known.add(table.default_action.name)
        seen: set[Optional[str]] = set()
        for case in stmt.cases:
            if case.action in seen:
                label = case.action if case.action is not None else "default"
                self._emit(
                    SHADOWED_SWITCH_CASE,
                    f"duplicate switch arm {label!r} is never selected",
                    case.pos,
                    unit,
                )
                continue
            seen.add(case.action)
            if (
                case.action is not None
                and known is not None
                and case.action not in known
            ):
                self._emit(
                    UNREACHABLE_SWITCH_CASE,
                    f"switch arm {case.action!r} is not an action of "
                    f"table {stmt.table!r}",
                    case.pos,
                    unit,
                )

    # -- static checks: parsers --------------------------------------------

    def _lint_parser(self, decl: ast.ParserDecl) -> None:
        scope = scope_for_params(self.env, decl.params)
        for local in decl.locals:
            if isinstance(local, ast.VarDeclStmt):
                try:
                    scope.bind(local.name, local.type)
                except Exception:
                    pass
        for state in decl.states:
            unit = f"{decl.name}.{state.name}"
            block = ast.Block(state.statements)
            for stmt in _walk_stmts(block):
                if isinstance(stmt, ast.AssignStmt):
                    self._check_truncation(stmt, scope, unit)
            for dead in dead_writes(block):
                first_at = (
                    f" (first written at {dead.first.pos})"
                    if dead.first.pos is not None
                    else ""
                )
                self._emit(
                    WRITE_AFTER_WRITE,
                    f"{dead.path!r} is overwritten before any read{first_at}",
                    dead.second.pos,
                    unit,
                )
            if isinstance(state.transition, ast.TransitionSelect):
                self._check_select(state.transition, unit)

    def _check_select(self, select: ast.TransitionSelect, unit: str) -> None:
        seen: set[tuple] = set()
        caught_all = False
        for case in select.cases:
            if caught_all:
                self._emit(
                    SHADOWED_SELECT_CASE,
                    "select case follows a catch-all default case",
                    case.pos,
                    unit,
                )
                continue
            signature = self._case_signature(case)
            if signature is not None and signature in seen:
                self._emit(
                    SHADOWED_SELECT_CASE,
                    "select case repeats an earlier keyset",
                    case.pos,
                    unit,
                )
                continue
            if signature is not None:
                seen.add(signature)
            if all(key.is_default for key in case.keys):
                caught_all = True

    def _case_signature(self, case: ast.SelectCase) -> Optional[tuple]:
        parts: list = []
        for key in case.keys:
            if key.is_default:
                parts.append(("default",))
            elif key.value_set_name is not None:
                parts.append(("set", key.value_set_name))
            else:
                value = eval_const_expr(key.value, self.env)
                if value is None:
                    return None  # not comparable
                mask = (
                    eval_const_expr(key.mask, self.env)
                    if key.mask is not None
                    else None
                )
                if key.mask is not None and mask is None:
                    return None
                parts.append(("value", value, mask))
        return tuple(parts)

    # -- abstract-interpretation checks ------------------------------------

    def _lint_abstract(self) -> None:
        observer = _AbstractObserver()
        interp = AbstractInterpreter(
            self.program,
            self.env,
            skip_parser=self.skip_parser,
            observer=observer,
        )
        try:
            interp.run()
        except Exception:
            return  # front-end errors surface through the normal pipeline
        for (node_id, field), (stmt, owner, unit_name) in sorted(
            observer.candidates.items(), key=lambda item: item[0][1]
        ):
            self._emit(
                UNINITIALIZED_HEADER_READ,
                f"field {field!r} is read while header {owner!r} "
                "is never valid",
                stmt.pos,
                unit_name,
            )
        for decl in self.program.declarations:
            units: list[tuple[str, ast.Block]] = []
            if isinstance(decl, ast.ControlDecl):
                units.append((decl.name, decl.apply))
                for local in decl.locals:
                    if isinstance(local, ast.ActionDecl):
                        units.append((f"{decl.name}.{local.name}", local.body))
            elif isinstance(decl, ast.ParserDecl):
                for state in decl.states:
                    units.append(
                        (f"{decl.name}.{state.name}", ast.Block(state.statements))
                    )
            for unit_name, block in units:
                for stmt in _walk_stmts(block):
                    if not isinstance(stmt, ast.IfStmt):
                        continue
                    decision = interp.decisions.get(id(stmt))
                    if decision is True and stmt.orelse is not None:
                        self._emit(
                            UNREACHABLE_BRANCH,
                            "condition is always true; "
                            "the else branch is unreachable",
                            stmt.pos,
                            unit_name,
                        )
                    elif decision is False:
                        self._emit(
                            UNREACHABLE_BRANCH,
                            "condition is always false; "
                            "the then branch is unreachable",
                            stmt.pos,
                            unit_name,
                        )


class _AbstractObserver(Observer):
    """Tracks definitely-invalid header reads across abstract executions.

    A candidate survives only if *every* execution of the statement saw
    the owning header's validity at literal false — one execution in a
    context where it may be valid clears the finding (the same
    conflicting-fact discipline the interpreter applies to decisions).
    """

    def __init__(self) -> None:
        # (stmt id, field) → (stmt, owning header, unit name)
        self.candidates: dict[tuple[int, str], tuple] = {}
        self.cleared: set[tuple[int, str]] = set()

    def enter_stmt(self, stmt: object, unit: _Unit, ctx: _Context) -> None:
        for field in _stmt_reads(stmt):
            if field.endswith(VALID_SUFFIX):
                continue  # isValid() guards are the fix, not the bug
            owner = _owning_header(ctx, field)
            if owner is None:
                continue
            key = (id(stmt), field)
            if key in self.cleared:
                continue
            validity = ctx.store.read(owner + VALID_SUFFIX)
            if validity is T.FALSE:
                self.candidates[key] = (stmt, owner, unit.name)
            else:
                self.cleared.add(key)
                self.candidates.pop(key, None)


def _owning_header(ctx: _Context, field: str) -> Optional[str]:
    """The longest store prefix of ``field`` that has a validity slot."""
    parts = field.split(".")
    for i in range(len(parts) - 1, 0, -1):
        prefix = ".".join(parts[:i])
        if ctx.store.has(prefix + VALID_SUFFIX):
            return prefix
    return None


def _stmt_reads(stmt: object) -> set[str]:
    """Fields this statement itself reads (nested blocks excluded)."""
    if isinstance(stmt, ast.AssignStmt):
        fields = _expr_fields(stmt.rhs)
        if isinstance(stmt.lhs, ast.Slice):
            fields |= _expr_fields(stmt.lhs.expr)
        return fields
    if isinstance(stmt, ast.IfStmt):
        return _expr_fields(stmt.cond)
    if isinstance(stmt, ast.VarDeclStmt):
        return _expr_fields(stmt.init) if stmt.init is not None else set()
    if isinstance(stmt, ast.MethodCallStmt):
        call = stmt.call
        if call.method == "pkt_extract":
            return set()  # the extract argument is a write
        if call.method in _DST_WRITE_METHODS and call.args:
            fields: set[str] = set()
            for arg in call.args[1:]:
                fields |= _expr_fields(arg)
            return fields
        fields = set()
        for arg in call.args:
            fields |= _expr_fields(arg)
        return fields
    return set()


def _walk_stmts(block: ast.Block) -> Iterator[object]:
    """Every statement in ``block``, recursively, in source order."""
    for stmt in block.statements:
        yield stmt
        if isinstance(stmt, ast.IfStmt):
            yield from _walk_stmts(stmt.then)
            if stmt.orelse is not None:
                yield from _walk_stmts(stmt.orelse)
        elif isinstance(stmt, ast.SwitchStmt):
            for case in stmt.cases:
                yield from _walk_stmts(case.body)


__all__ = [
    "DEAD_ACTION",
    "Diagnostic",
    "LintReport",
    "SEVERITY_ERROR",
    "SEVERITY_INFO",
    "SEVERITY_RANK",
    "SEVERITY_WARNING",
    "SHADOWED_SELECT_CASE",
    "SHADOWED_SWITCH_CASE",
    "UNINITIALIZED_HEADER_READ",
    "UNREACHABLE_BRANCH",
    "UNREACHABLE_SWITCH_CASE",
    "WIDTH_TRUNCATION",
    "WRITE_AFTER_WRITE",
    "lint_program",
]
