"""The data-plane model: annotated program points + table metadata.

Running the state-merging symbolic executor over a program produces a
:class:`DataPlaneModel` — the paper's "Annotated P4C-IR" (Fig. 4).  Each
program point of interest (if-condition, table apply, assignment, parser
select) carries a *hermetic* expression over data-plane symbols (``@x@``)
and control-plane symbols (``|x|``); the taint map sends every control-plane
symbol to the points it can influence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import FlayError, STAGE_RUNTIME
from repro.smt import terms as T
from repro.smt.terms import Term


class UnknownTableError(FlayError, KeyError):
    """A control-plane name does not resolve to a table or value set."""

    default_stage = STAGE_RUNTIME


# Program point kinds.
KIND_IF = "if"
KIND_TABLE = "table"
KIND_ASSIGN = "assign"
KIND_SELECT = "select"
KIND_ACTION_VALUE = "action-value"


@dataclass(frozen=True)
class ProgramPoint:
    """One annotated point: a stable id plus its data-plane expression."""

    pid: str
    kind: str
    expr: Term
    # Human-oriented context: source construct this point describes.
    context: str = ""
    # Identity (id()) of the AST node this point annotates, so the
    # specializer can map verdicts back onto the tree.  None for synthetic
    # points with no single source construct.
    node_id: Optional[int] = None

    def control_vars(self) -> set[str]:
        return {v.name for v in T.control_variables(self.expr)}


@dataclass(frozen=True)
class KeyInfo:
    """One table key: its symbolic value at the apply site."""

    term: Term
    match_kind: str  # exact | ternary | lpm
    width: int


@dataclass(frozen=True)
class ActionParamInfo:
    name: str
    width: int
    var: Term  # the control-plane symbol standing for this parameter


@dataclass
class TableInfo:
    """Everything the control-plane encoder needs to know about one table.

    The *action selector* control symbol takes the code of the action the
    table will run (the miss case selects the default action's code), and
    the *hit* symbol is 1 iff some entry matched.  Per-action parameter
    symbols stand for the winning entry's action data.
    """

    name: str  # fully qualified: "<control>.<table>"
    local_name: str
    control: str
    keys: list[KeyInfo]
    action_order: list[str]  # declared action names, in order
    action_codes: dict[str, int]
    default_action: str
    default_args: tuple
    action_params: dict[str, list[ActionParamInfo]]
    size: Optional[int]
    selector_var: Term
    hit_var: Term  # 1-bit
    apply_condition: Term  # path condition under which the apply executes

    SELECTOR_WIDTH = 8

    def control_var_names(self) -> set[str]:
        names = {self.selector_var.name, self.hit_var.name}
        for params in self.action_params.values():
            names.update(p.var.name for p in params)
        return names

    def key_widths(self) -> list[int]:
        return [k.width for k in self.keys]


@dataclass
class ValueSetInfo:
    """A parser value set: per-slot (valid, value) control symbols."""

    name: str  # fully qualified: "<parser>.<pvs>"
    local_name: str
    parser: str
    width: int
    size: int
    valid_vars: list[Term]
    value_vars: list[Term]

    def control_var_names(self) -> set[str]:
        names = {v.name for v in self.valid_vars}
        names.update(v.name for v in self.value_vars)
        return names


@dataclass
class DataPlaneModel:
    """The complete annotated program."""

    points: dict[str, ProgramPoint] = field(default_factory=dict)
    tables: dict[str, TableInfo] = field(default_factory=dict)
    value_sets: dict[str, ValueSetInfo] = field(default_factory=dict)
    # Final symbolic store at pipeline end: output field path → term.
    final_store: dict[str, Term] = field(default_factory=dict)
    # Taint map: control symbol name → pids of points it can influence.
    taint: dict[str, set[str]] = field(default_factory=dict)
    # Headers extracted by the parser, in extraction order (for tail pruning).
    extracted_headers: list[str] = field(default_factory=list)
    # Analysis bookkeeping.
    analysis_seconds: float = 0.0
    skipped_parser: bool = False

    def add_point(self, point: ProgramPoint) -> None:
        if point.pid in self.points:
            raise ValueError(f"duplicate program point {point.pid!r}")
        self.points[point.pid] = point
        for var_name in point.control_vars():
            self.taint.setdefault(var_name, set()).add(point.pid)

    def points_for_control_vars(self, names: Iterable[str]) -> set[str]:
        """Program points tainted by any of the given control symbols."""
        affected: set[str] = set()
        for name in names:
            affected.update(self.taint.get(name, ()))
        return affected

    def table(self, name: str) -> TableInfo:
        """Look up a table by qualified or local name."""
        if name in self.tables:
            return self.tables[name]
        matches = [t for t in self.tables.values() if t.local_name == name]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise UnknownTableError(f"no table named {name!r}")
        raise UnknownTableError(
            f"table name {name!r} is ambiguous: {[t.name for t in matches]}"
        )

    def value_set(self, name: str) -> ValueSetInfo:
        if name in self.value_sets:
            return self.value_sets[name]
        matches = [v for v in self.value_sets.values() if v.local_name == name]
        if len(matches) == 1:
            return matches[0]
        raise UnknownTableError(f"no value set named {name!r}")

    @property
    def point_count(self) -> int:
        return len(self.points)

    def total_expression_size(self) -> int:
        """Sum of DAG sizes across all annotations (complexity metric)."""
        seen: set[int] = set()
        total = 0
        for point in self.points.values():
            for node in T.iter_dag(point.expr):
                if id(node) not in seen:
                    seen.add(id(node))
                    total += 1
        return total
