"""Symbolic store: dotted field path → term, with ite-based state merging."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.smt import simplify, terms as T
from repro.smt.terms import Term


class SymbolicStore:
    """Maps every live field path to its current symbolic value.

    Values are bitvector terms for fields and boolean terms for validity
    bits / the drop flag.  Stores are cheap to fork (terms are immutable,
    the dict is copied shallowly) and merge with per-path ``ite``.
    """

    def __init__(self, values: Optional[dict[str, Term]] = None) -> None:
        self._values: dict[str, Term] = dict(values) if values else {}

    def read(self, path: str) -> Term:
        try:
            return self._values[path]
        except KeyError:
            raise KeyError(f"no value for path {path!r} in store") from None

    def write(self, path: str, value: Term) -> None:
        self._values[path] = value

    def has(self, path: str) -> bool:
        return path in self._values

    def paths(self) -> Iterator[str]:
        return iter(self._values)

    def items(self) -> Iterator[tuple[str, Term]]:
        return iter(self._values.items())

    def fork(self) -> "SymbolicStore":
        return SymbolicStore(self._values)

    def snapshot(self) -> dict[str, Term]:
        return dict(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"SymbolicStore({len(self._values)} paths)"


def merge_stores(
    cond: Term, then_store: SymbolicStore, else_store: SymbolicStore
) -> SymbolicStore:
    """State merging (the paper's §4.1): per-path ``ite(cond, then, else)``.

    Paths present in only one branch keep that branch's value — this only
    arises for locals declared inside a branch, which are dead after the
    join anyway.
    """
    merged = SymbolicStore()
    then_values = then_store._values
    else_values = else_store._values
    for path, then_value in then_values.items():
        else_value = else_values.get(path)
        if else_value is None or then_value is else_value:
            merged.write(path, then_value)
        else:
            merged.write(path, simplify(T.ite(cond, then_value, else_value)))
    for path, else_value in else_values.items():
        if path not in then_values:
            merged.write(path, else_value)
    return merged
