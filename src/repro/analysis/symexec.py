"""State-merging symbolic executor: P4 AST → :class:`DataPlaneModel`.

This is Flay's "data-plane analysis" step (Fig. 4, run once per program).
It executes the whole pipeline symbolically: packet-derived values become
data-plane symbols, table outcomes become control-plane symbols (action
selector, hit bit, per-parameter action data), and every program point of
interest is annotated with a hermetic expression.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.model import (
    ActionParamInfo,
    DataPlaneModel,
    KIND_ACTION_VALUE,
    KIND_ASSIGN,
    KIND_IF,
    KIND_SELECT,
    KIND_TABLE,
    KeyInfo,
    ProgramPoint,
    TableInfo,
    ValueSetInfo,
)
from repro.analysis.state import SymbolicStore, merge_stores
from repro.errors import STAGE_ANALYSIS
from repro.p4 import ast_nodes as ast
from repro.p4.errors import TypeCheckError
from repro.p4.types import TypeEnv, eval_const_expr, lvalue_path
from repro.smt import simplify, terms as T
from repro.smt.terms import Term

#: Built-in store paths.
DROP_PATH = "std.drop"
PARSER_ERROR_PATH = "std.parser_error"

#: Suffix for header validity bits in the store.
VALID_SUFFIX = ".$valid"

_MAX_PARSER_DEPTH = 64


class AnalysisError(TypeCheckError):
    """The program uses a construct the analysis cannot model."""

    default_stage = STAGE_ANALYSIS


@dataclass
class _Context:
    """Mutable execution context for one path prefix."""

    store: SymbolicStore
    exited: Term  # boolean: pipeline already exited at this point
    path_cond: Term  # condition under which this code executes

    def fork(self) -> "_Context":
        return _Context(self.store.fork(), self.exited, self.path_cond)


@dataclass
class _Unit:
    """Static context for one control/parser body."""

    name: str  # declaration name, used to qualify locals and tables
    decl: object
    bindings: dict[str, Term] = field(default_factory=dict)  # action params


class SymbolicExecutor:
    """Analyzes one program.  Use :func:`analyze` for the one-liner."""

    def __init__(
        self,
        program: ast.Program,
        env: Optional[TypeEnv] = None,
        skip_parser: bool = False,
    ) -> None:
        self.program = program
        self.env = env if env is not None else TypeEnv(program)
        self.skip_parser = skip_parser
        self.model = DataPlaneModel(skipped_parser=skip_parser)
        self._point_counter = 0
        self._fresh_counter = 0

    # -- public API ---------------------------------------------------------

    def analyze(self) -> DataPlaneModel:
        start = time.perf_counter()
        pipeline = self.program.pipeline
        ctx = _Context(
            store=self._initial_store(),
            exited=T.FALSE,
            path_cond=T.TRUE,
        )
        parser_decl = self.program.find(pipeline.parser)
        if not isinstance(parser_decl, ast.ParserDecl):
            raise AnalysisError(f"{pipeline.parser!r} is not a parser")
        if self.skip_parser:
            self._assume_all_headers_valid(ctx)
            self.model.extracted_headers = self._all_header_instances(parser_decl)
        else:
            ctx = self._exec_parser(parser_decl, ctx)
        for control_name in pipeline.controls:
            control = self.program.find(control_name)
            if not isinstance(control, ast.ControlDecl):
                raise AnalysisError(f"{control_name!r} is not a control")
            ctx = self._exec_control(control, ctx)
        self.model.final_store = ctx.store.snapshot()
        self.model.analysis_seconds = time.perf_counter() - start
        return self.model

    # -- store initialization -----------------------------------------------------

    def _pipeline_params(self) -> tuple:
        """Parameters of the first pipeline stage define the store layout."""
        pipeline = self.program.pipeline
        return self.program.find(pipeline.parser).params

    def _initial_store(self) -> SymbolicStore:
        store = SymbolicStore()
        for param in self._pipeline_params():
            resolved = self.env.resolve(param.type)
            if isinstance(resolved, (ast.BitType, ast.BoolType)):
                width = self.env.width_of(resolved)
                store.write(param.name, T.bv_const(0, width))
                continue
            intrinsic = _is_intrinsic_param(param)
            for info in self.env.flatten(param.name, param.type):
                if info.header is not None or intrinsic:
                    # Packet-derived (header fields) and intrinsic metadata
                    # (ingress port, timestamps): unconstrained data-plane
                    # symbols — they vary per packet.
                    store.write(info.path, T.data_var(info.path, info.width))
                else:
                    # User metadata: zero-initialized (v1model semantics).
                    store.write(info.path, T.bv_const(0, info.width))
            for instance, _type_name in self.env.header_instances(
                param.name, param.type
            ):
                store.write(instance + VALID_SUFFIX, T.FALSE)
        store.write(DROP_PATH, T.FALSE)
        store.write(PARSER_ERROR_PATH, T.FALSE)
        return store

    def _assume_all_headers_valid(self, ctx: _Context) -> None:
        """Parser skipped: validity bits become free data-plane symbols."""
        for param in self._pipeline_params():
            resolved = self.env.resolve(param.type)
            if isinstance(resolved, (ast.BitType, ast.BoolType)):
                continue
            for instance, _ in self.env.header_instances(param.name, param.type):
                valid_var = T.data_var(instance + VALID_SUFFIX + "#b", 1)
                ctx.store.write(
                    instance + VALID_SUFFIX, T.eq(valid_var, T.bv_const(1, 1))
                )

    def _all_header_instances(self, parser_decl: ast.ParserDecl) -> list[str]:
        instances: list[str] = []
        for param in parser_decl.params:
            resolved = self.env.resolve(param.type)
            if isinstance(resolved, (ast.BitType, ast.BoolType)):
                continue
            instances.extend(
                path for path, _ in self.env.header_instances(param.name, param.type)
            )
        return instances

    # -- program points --------------------------------------------------------------

    def _add_point(
        self,
        kind: str,
        label: str,
        expr: Term,
        context: str = "",
        node_id=None,
    ) -> str:
        self._point_counter += 1
        pid = f"{label}#{self._point_counter}"
        self.model.add_point(ProgramPoint(pid, kind, expr, context, node_id))
        return pid

    def _fresh_data(self, prefix: str, width: int) -> Term:
        self._fresh_counter += 1
        return T.data_var(f"{prefix}${self._fresh_counter}", width)

    # -- expression translation ----------------------------------------------------------

    def _infer_width(self, expr: ast.Expr, unit: _Unit, ctx: _Context) -> Optional[int]:
        if isinstance(expr, ast.IntLit):
            return expr.width
        if isinstance(expr, ast.BoolLit):
            return None
        if isinstance(expr, ast.Ident):
            if expr.name in unit.bindings:
                return unit.bindings[expr.name].width or None
            local = f"{unit.name}.{expr.name}"
            if ctx.store.has(local):
                return ctx.store.read(local).width or None
            if ctx.store.has(expr.name):
                return ctx.store.read(expr.name).width or None
            return None  # named constant: width from context
        if isinstance(expr, ast.Member):
            path = _try_lvalue_path(expr)
            if path is not None and ctx.store.has(path):
                return ctx.store.read(path).width or None
            return None
        if isinstance(expr, ast.Slice):
            return expr.hi - expr.lo + 1
        if isinstance(expr, ast.Cast):
            return self.env.width_of(expr.type)
        if isinstance(expr, ast.Unary):
            if expr.op == "!":
                return None
            return self._infer_width(expr.expr, unit, ctx)
        if isinstance(expr, ast.Binary):
            if expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
                return None
            if expr.op == "++":
                left = self._infer_width(expr.left, unit, ctx)
                right = self._infer_width(expr.right, unit, ctx)
                if left is None or right is None:
                    raise AnalysisError("concat operands must have known widths")
                return left + right
            return self._infer_width(expr.left, unit, ctx) or self._infer_width(
                expr.right, unit, ctx
            )
        if isinstance(expr, ast.Ternary):
            return self._infer_width(expr.then, unit, ctx) or self._infer_width(
                expr.orelse, unit, ctx
            )
        return None

    def to_term(
        self,
        expr: ast.Expr,
        unit: _Unit,
        ctx: _Context,
        width_hint: Optional[int] = None,
    ) -> Term:
        """Translate an expression to a term in the current symbolic state."""
        if isinstance(expr, ast.IntLit):
            width = expr.width or width_hint
            if width is None:
                raise AnalysisError(f"cannot infer width of literal {expr.value}")
            return T.bv_const(expr.value, width)
        if isinstance(expr, ast.BoolLit):
            return T.bool_const(expr.value)
        if isinstance(expr, ast.Ident):
            if expr.name in unit.bindings:
                return unit.bindings[expr.name]
            local = f"{unit.name}.{expr.name}"
            if ctx.store.has(local):
                return ctx.store.read(local)
            if ctx.store.has(expr.name):
                return ctx.store.read(expr.name)
            if expr.name in self.env.constants:
                if width_hint is None:
                    raise AnalysisError(
                        f"cannot infer width of constant {expr.name!r}"
                    )
                return T.bv_const(self.env.constants[expr.name], width_hint)
            raise AnalysisError(f"unknown name {expr.name!r}")
        if isinstance(expr, ast.Member):
            path = _try_lvalue_path(expr)
            if path is not None and ctx.store.has(path):
                return ctx.store.read(path)
            raise AnalysisError(f"unknown field path {path or expr!r}")
        if isinstance(expr, ast.Slice):
            inner = self.to_term(expr.expr, unit, ctx)
            return T.extract(inner, expr.hi, expr.lo)
        if isinstance(expr, ast.Cast):
            return self._cast(
                self.to_term(expr.expr, unit, ctx, self.env.width_of(expr.type)),
                self.env.width_of(expr.type),
            )
        if isinstance(expr, ast.Unary):
            if expr.op == "!":
                return T.bool_not(self.to_term(expr.expr, unit, ctx))
            inner = self.to_term(expr.expr, unit, ctx, width_hint)
            if expr.op == "~":
                return T.bv_not(inner)
            if expr.op == "-":
                return T.neg(inner)
            raise AnalysisError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, ast.Binary):
            return self._binary(expr, unit, ctx, width_hint)
        if isinstance(expr, ast.Ternary):
            cond = self.to_term(expr.cond, unit, ctx)
            width = width_hint or self._infer_width(expr, unit, ctx)
            then = self.to_term(expr.then, unit, ctx, width)
            orelse = self.to_term(expr.orelse, unit, ctx, width)
            return T.ite(cond, then, orelse)
        if isinstance(expr, ast.MethodCall):
            if expr.method == "isValid" and expr.target is not None:
                path = lvalue_path(expr.target) + VALID_SUFFIX
                return ctx.store.read(path)
            raise AnalysisError(
                f"call {expr.method!r} is not valid in expression position"
            )
        raise AnalysisError(f"cannot translate expression {expr!r}")

    def _binary(
        self, expr: ast.Binary, unit: _Unit, ctx: _Context, width_hint: Optional[int]
    ) -> Term:
        op = expr.op
        if op in ("&&", "||"):
            left = self.to_term(expr.left, unit, ctx)
            right = self.to_term(expr.right, unit, ctx)
            return T.bool_and(left, right) if op == "&&" else T.bool_or(left, right)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            width = self._infer_width(expr.left, unit, ctx) or self._infer_width(
                expr.right, unit, ctx
            )
            left = self.to_term(expr.left, unit, ctx, width)
            right = self.to_term(expr.right, unit, ctx, width)
            if left.is_bool != right.is_bool:
                raise AnalysisError(f"comparison sort mismatch in {expr!r}")
            if op == "==":
                return T.eq(left, right)
            if op == "!=":
                return T.ne(left, right)
            if op == "<":
                return T.ult(left, right)
            if op == "<=":
                return T.ule(left, right)
            if op == ">":
                return T.ult(right, left)
            return T.ule(right, left)
        if op == "++":
            left = self.to_term(expr.left, unit, ctx)
            right = self.to_term(expr.right, unit, ctx)
            return T.concat(left, right)
        width = width_hint or self._infer_width(expr, unit, ctx)
        left = self.to_term(expr.left, unit, ctx, width)
        right = self.to_term(expr.right, unit, ctx, width)
        builders = {
            "+": T.add, "-": T.sub, "*": T.mul,
            "&": T.bv_and, "|": T.bv_or, "^": T.bv_xor,
            "<<": T.shl, ">>": T.lshr,
        }
        if op not in builders:
            raise AnalysisError(f"unknown binary operator {op!r}")
        if op in ("<<", ">>") and left.width != right.width:
            right = self._cast(right, left.width)
        return builders[op](left, right)

    @staticmethod
    def _cast(term: Term, width: int) -> Term:
        if term.is_bool:
            return T.ite(term, T.bv_const(1, width), T.bv_const(0, width))
        if term.width == width:
            return term
        if term.width > width:
            return T.extract(term, width - 1, 0)
        return T.concat(T.bv_const(0, width - term.width), term)

    # -- guarded writes -----------------------------------------------------------------

    def _write(self, ctx: _Context, path: str, value: Term) -> None:
        """Store write that respects a (possibly symbolic) prior ``exit``."""
        if ctx.exited is T.FALSE:
            ctx.store.write(path, simplify(value))
            return
        old = ctx.store.read(path) if ctx.store.has(path) else value
        ctx.store.write(path, simplify(T.ite(ctx.exited, old, value)))

    # -- statements ------------------------------------------------------------------------

    def _exec_block(self, block: ast.Block, unit: _Unit, ctx: _Context) -> None:
        for stmt in block.statements:
            self._exec_stmt(stmt, unit, ctx)

    def _exec_stmt(self, stmt, unit: _Unit, ctx: _Context) -> None:
        if isinstance(stmt, ast.AssignStmt):
            self._exec_assign(stmt, unit, ctx)
        elif isinstance(stmt, ast.VarDeclStmt):
            width = self.env.width_of(stmt.type)
            path = f"{unit.name}.{stmt.name}"
            if stmt.init is not None:
                value = self.to_term(stmt.init, unit, ctx, width)
            else:
                value = T.bv_const(0, width)
            ctx.store.write(path, simplify(value))
        elif isinstance(stmt, ast.IfStmt):
            self._exec_if(stmt, unit, ctx)
        elif isinstance(stmt, ast.MethodCallStmt):
            self._exec_call(stmt.call, unit, ctx)
        elif isinstance(stmt, ast.ExitStmt):
            ctx.exited = T.TRUE
        elif isinstance(stmt, ast.ReturnStmt):
            pass  # only supported as the final statement of an action
        elif isinstance(stmt, ast.SwitchStmt):
            self._exec_switch(stmt, unit, ctx)
        else:
            raise AnalysisError(f"cannot execute statement {stmt!r}")

    def _exec_assign(self, stmt: ast.AssignStmt, unit: _Unit, ctx: _Context) -> None:
        if isinstance(stmt.lhs, ast.Slice):
            self._exec_slice_assign(stmt, unit, ctx)
            return
        path = lvalue_path(stmt.lhs)
        if not ctx.store.has(path):
            qualified = f"{unit.name}.{path}"
            if ctx.store.has(qualified):
                path = qualified
            else:
                raise AnalysisError(f"assignment to unknown path {path!r}")
        old = ctx.store.read(path)
        width = old.width
        value = self.to_term(stmt.rhs, unit, ctx, width)
        self._write(ctx, path, value)
        self._add_point(
            KIND_ASSIGN,
            f"{unit.name}::assign::{path}",
            ctx.store.read(path),
            context=path,
            node_id=id(stmt),
        )

    def _exec_slice_assign(
        self, stmt: ast.AssignStmt, unit: _Unit, ctx: _Context
    ) -> None:
        lhs = stmt.lhs
        assert isinstance(lhs, ast.Slice)
        path = lvalue_path(lhs.expr)
        old = ctx.store.read(path)
        width = old.width
        piece = self.to_term(stmt.rhs, unit, ctx, lhs.hi - lhs.lo + 1)
        parts: list[Term] = []
        if lhs.hi < width - 1:
            parts.append(T.extract(old, width - 1, lhs.hi + 1))
        parts.append(piece)
        if lhs.lo > 0:
            parts.append(T.extract(old, lhs.lo - 1, 0))
        value = parts[0]
        for part in parts[1:]:
            value = T.concat(value, part)
        self._write(ctx, path, value)

    def _exec_if(self, stmt: ast.IfStmt, unit: _Unit, ctx: _Context) -> None:
        cond = self._cond_term(stmt.cond, unit, ctx)
        self._add_point(
            KIND_IF, f"{unit.name}::if", cond, context="if-condition", node_id=id(stmt)
        )
        cond = simplify(cond)
        if cond is T.TRUE:
            self._exec_block(stmt.then, unit, ctx)
            return
        if cond is T.FALSE:
            if stmt.orelse is not None:
                self._exec_block(stmt.orelse, unit, ctx)
            return
        then_ctx = ctx.fork()
        then_ctx.path_cond = simplify(T.bool_and(ctx.path_cond, cond))
        self._exec_block(stmt.then, unit, then_ctx)
        else_ctx = ctx.fork()
        else_ctx.path_cond = simplify(T.bool_and(ctx.path_cond, T.bool_not(cond)))
        if stmt.orelse is not None:
            self._exec_block(stmt.orelse, unit, else_ctx)
        ctx.store = merge_stores(cond, then_ctx.store, else_ctx.store)
        ctx.exited = simplify(T.ite(cond, then_ctx.exited, else_ctx.exited))

    def _cond_term(self, expr: ast.Expr, unit: _Unit, ctx: _Context) -> Term:
        """Translate a condition, handling ``t.apply().hit`` / ``.miss``."""
        if (
            isinstance(expr, ast.Member)
            and expr.name in ("hit", "miss")
            and isinstance(expr.expr, ast.MethodCall)
            and expr.expr.method == "apply"
        ):
            table_name = lvalue_path(expr.expr.target)
            hit = self._apply_table(table_name, unit, ctx)
            return hit if expr.name == "hit" else T.bool_not(hit)
        if isinstance(expr, ast.Unary) and expr.op == "!":
            return T.bool_not(self._cond_term(expr.expr, unit, ctx))
        return self.to_term(expr, unit, ctx)

    def _exec_switch(self, stmt: ast.SwitchStmt, unit: _Unit, ctx: _Context) -> None:
        self._apply_table(stmt.table, unit, ctx)
        info = self.model.table(f"{unit.name}.{stmt.table}")
        selector = info.selector_var
        covered: list[str] = []
        arms: list[tuple[Term, ast.Block]] = []
        default_body: Optional[ast.Block] = None
        for case in stmt.cases:
            if case.action is None:
                default_body = case.body
                continue
            code = info.action_codes[case.action]
            arms.append(
                (T.eq(selector, T.bv_const(code, TableInfo.SELECTOR_WIDTH)), case.body)
            )
            covered.append(case.action)
        # Execute as a chain of if/else on the selector.
        self._exec_arm_chain(arms, default_body, unit, ctx)

    def _exec_arm_chain(
        self,
        arms: list[tuple[Term, ast.Block]],
        default_body: Optional[ast.Block],
        unit: _Unit,
        ctx: _Context,
    ) -> None:
        if not arms:
            if default_body is not None:
                self._exec_block(default_body, unit, ctx)
            return
        cond, body = arms[0]
        then_ctx = ctx.fork()
        then_ctx.path_cond = simplify(T.bool_and(ctx.path_cond, cond))
        self._exec_block(body, unit, then_ctx)
        else_ctx = ctx.fork()
        else_ctx.path_cond = simplify(T.bool_and(ctx.path_cond, T.bool_not(cond)))
        self._exec_arm_chain(arms[1:], default_body, unit, else_ctx)
        ctx.store = merge_stores(cond, then_ctx.store, else_ctx.store)
        ctx.exited = simplify(T.ite(cond, then_ctx.exited, else_ctx.exited))

    # -- calls ----------------------------------------------------------------------------------

    def _exec_call(self, call: ast.MethodCall, unit: _Unit, ctx: _Context) -> None:
        method = call.method
        if method == "apply" and call.target is not None:
            self._apply_table(lvalue_path(call.target), unit, ctx)
            return
        if method == "setValid" and call.target is not None:
            path = lvalue_path(call.target) + VALID_SUFFIX
            self._write(ctx, path, T.TRUE)
            return
        if method == "setInvalid" and call.target is not None:
            path = lvalue_path(call.target) + VALID_SUFFIX
            self._write(ctx, path, T.FALSE)
            return
        if method in ("count", "execute", "write"):
            # counter.count(idx), meter.execute(idx), register.write(idx, v):
            # stateful effects are invisible to the data-plane model.
            return
        if method == "read" and call.target is not None:
            # register.read(dst, idx): dst gets an unconstrained value.
            self._extern_assign(call.args[0], lvalue_path(call.target), unit, ctx)
            return
        if method == "mark_to_drop":
            self._write(ctx, DROP_PATH, T.TRUE)
            return
        if method in ("hash", "update_checksum"):
            # hash(dst, fields...) — dst gets an unconstrained value.
            self._extern_assign(call.args[0], method, unit, ctx)
            return
        if method == "pkt_extract":
            self._exec_extract(call, unit, ctx)
            return
        # Direct action invocation from the apply block: args are evaluated
        # in the caller's context and bound to the action's parameters.
        action = self._find_action_or_none(unit, method)
        if action is not None and call.target is None:
            bindings = dict(unit.bindings)
            for param, arg in zip(action.params, call.args):
                width = self.env.width_of(param.type)
                bindings[param.name] = self.to_term(arg, unit, ctx, width)
            inner = _Unit(unit.name, unit.decl, bindings)
            self._exec_block(action.body, inner, ctx)
            return
        raise AnalysisError(f"unknown extern {method!r}")

    def _find_action_or_none(self, unit: _Unit, name: str):
        decl = unit.decl
        if isinstance(decl, ast.ControlDecl):
            for local in decl.locals:
                if isinstance(local, ast.ActionDecl) and local.name == name:
                    return local
        return None

    def _extern_assign(
        self, dst: ast.Expr, source_name: str, unit: _Unit, ctx: _Context
    ) -> None:
        path = lvalue_path(dst)
        if not ctx.store.has(path):
            path = f"{unit.name}.{path}"
        width = ctx.store.read(path).width
        self._write(ctx, path, self._fresh_data(source_name, width))

    def _exec_extract(self, call: ast.MethodCall, unit: _Unit, ctx: _Context) -> None:
        header_path = lvalue_path(call.args[0])
        self._write(ctx, header_path + VALID_SUFFIX, T.TRUE)
        if header_path not in self.model.extracted_headers:
            self.model.extracted_headers.append(header_path)

    # -- tables ----------------------------------------------------------------------------------------

    def _apply_table(self, table_name: str, unit: _Unit, ctx: _Context) -> Term:
        """Apply a match-action table; returns the hit condition."""
        control = unit.decl
        table_decl = _find_local(control, table_name, ast.TableDecl)
        qualified = f"{unit.name}.{table_name}"
        if qualified in self.model.tables:
            raise AnalysisError(
                f"table {qualified!r} applied more than once; "
                "the control-plane encoding assumes a single apply site"
            )
        keys: list[KeyInfo] = []
        for key in table_decl.keys:
            term = self.to_term(key.expr, unit, ctx)
            keys.append(KeyInfo(simplify(term), key.match_kind, term.width))

        selector = T.control_var(f"{qualified}.action", TableInfo.SELECTOR_WIDTH)
        hit_bit = T.control_var(f"{qualified}.hit", 1)
        hit_cond = T.eq(hit_bit, T.bv_const(1, 1))

        action_order = [ref.name for ref in table_decl.actions]
        action_codes = {name: i for i, name in enumerate(action_order)}
        default_ref = table_decl.default_action
        if default_ref is None:
            default_name = action_order[-1] if action_order else ""
            default_args: tuple = ()
        else:
            default_name = default_ref.name
            default_args = tuple(
                eval_const_expr(a, self.env) for a in default_ref.args
            )
        if default_name and default_name not in action_codes:
            action_codes[default_name] = len(action_order)

        # Execute every action body on a fork, params bound to control symbols.
        action_params: dict[str, list[ActionParamInfo]] = {}
        branch_stores: dict[str, SymbolicStore] = {}
        all_actions = list(action_order)
        if default_name and default_name not in all_actions:
            all_actions.append(default_name)
        for action_name in all_actions:
            action_decl = _find_local(control, action_name, ast.ActionDecl)
            params: list[ActionParamInfo] = []
            bindings: dict[str, Term] = {}
            for param in action_decl.params:
                width = self.env.width_of(param.type)
                var = T.control_var(f"{qualified}.{action_name}.{param.name}", width)
                params.append(ActionParamInfo(param.name, width, var))
                bindings[param.name] = var
            action_params[action_name] = params
            branch_ctx = ctx.fork()
            branch_unit = _Unit(unit.name, unit.decl, bindings)
            self._exec_block(action_decl.body, branch_unit, branch_ctx)
            branch_stores[action_name] = branch_ctx.store

        # Merge action effects, selected by the action-selector symbol.  The
        # default action's store is the fallback (the selector assignment
        # resolves a miss to the default action's code).
        fallback = branch_stores.get(default_name, ctx.store)
        merged = fallback
        for action_name in reversed(all_actions):
            if action_name == default_name:
                continue
            code = action_codes[action_name]
            cond = T.eq(selector, T.bv_const(code, TableInfo.SELECTOR_WIDTH))
            merged = merge_stores(cond, branch_stores[action_name], merged)
        written_paths = [
            path
            for path, value in merged.items()
            if not ctx.store.has(path) or value is not ctx.store.read(path)
        ]
        ctx.store = merged

        info = TableInfo(
            name=qualified,
            local_name=table_name,
            control=unit.name,
            keys=keys,
            action_order=action_order,
            action_codes=action_codes,
            default_action=default_name,
            default_args=default_args,
            action_params=action_params,
            size=table_decl.size,
            selector_var=selector,
            hit_var=hit_bit,
            apply_condition=ctx.path_cond,
        )
        self.model.tables[qualified] = info

        # Annotate: the selector in context, plus post-apply value snapshots.
        self._add_point(
            KIND_TABLE, f"{qualified}::selector", selector, context=qualified
        )
        for path in written_paths:
            self._add_point(
                KIND_ACTION_VALUE,
                f"{qualified}::after::{path}",
                ctx.store.read(path),
                context=path,
            )
        return hit_cond

    # -- parser ---------------------------------------------------------------------------------------------

    def _exec_parser(self, decl: ast.ParserDecl, ctx: _Context) -> _Context:
        unit = _Unit(decl.name, decl)
        for local in decl.locals:
            if isinstance(local, ast.ValueSetDecl):
                self._declare_value_set(decl.name, local)
        states = {state.name: state for state in decl.states}
        return self._exec_parser_state("start", states, unit, ctx, depth=0)

    def _declare_value_set(self, parser_name: str, decl: ast.ValueSetDecl) -> None:
        qualified = f"{parser_name}.{decl.name}"
        width = self.env.width_of(decl.elem_type)
        valid_vars = [
            T.control_var(f"{qualified}.valid{i}", 1) for i in range(decl.size)
        ]
        value_vars = [
            T.control_var(f"{qualified}.value{i}", width) for i in range(decl.size)
        ]
        self.model.value_sets[qualified] = ValueSetInfo(
            name=qualified,
            local_name=decl.name,
            parser=parser_name,
            width=width,
            size=decl.size,
            valid_vars=valid_vars,
            value_vars=value_vars,
        )

    def _exec_parser_state(
        self,
        name: str,
        states: dict[str, ast.ParserState],
        unit: _Unit,
        ctx: _Context,
        depth: int,
    ) -> _Context:
        if name == ast.ACCEPT:
            return ctx
        if name == ast.REJECT:
            self._write(ctx, PARSER_ERROR_PATH, T.TRUE)
            self._write(ctx, DROP_PATH, T.TRUE)
            return ctx
        if depth > _MAX_PARSER_DEPTH:
            raise AnalysisError(
                f"parser recursion exceeds {_MAX_PARSER_DEPTH} states; "
                "parsers must be loop-free for the analysis to terminate"
            )
        state = states.get(name)
        if state is None:
            raise AnalysisError(f"unknown parser state {name!r}")
        for stmt in state.statements:
            self._exec_stmt(stmt, unit, ctx)
        transition = state.transition
        if isinstance(transition, ast.TransitionDirect):
            return self._exec_parser_state(
                transition.state, states, unit, ctx, depth + 1
            )
        return self._exec_select(transition, states, unit, ctx, depth)

    def _exec_select(
        self,
        select: ast.TransitionSelect,
        states: dict[str, ast.ParserState],
        unit: _Unit,
        ctx: _Context,
        depth: int,
    ) -> _Context:
        key_terms = [simplify(self.to_term(e, unit, ctx)) for e in select.exprs]
        branches: list[tuple[Term, str]] = []  # (guard, target-state)
        remaining = T.TRUE
        for case in select.cases:
            match = self._case_match(case, key_terms, unit)
            guard = simplify(T.bool_and(remaining, match))
            branches.append((guard, case.state))
            self._add_point(
                KIND_SELECT,
                f"{unit.name}::select::{case.state}",
                guard,
                context=f"select -> {case.state}",
                node_id=id(case),
            )
            remaining = simplify(T.bool_and(remaining, T.bool_not(match)))
        # A select with no matching case rejects.
        branches.append((remaining, ast.REJECT))

        # Execute each reachable branch on a fork, then merge right-to-left.
        results: list[tuple[Term, _Context]] = []
        for guard, target in branches:
            if guard is T.FALSE:
                continue
            branch_ctx = ctx.fork()
            branch_ctx.path_cond = simplify(T.bool_and(ctx.path_cond, guard))
            results.append(
                (
                    guard,
                    self._exec_parser_state(
                        target, states, unit, branch_ctx, depth + 1
                    ),
                )
            )
        if not results:
            return ctx
        merged = results[-1][1]
        for guard, branch in reversed(results[:-1]):
            merged_store = merge_stores(guard, branch.store, merged.store)
            merged_exited = simplify(T.ite(guard, branch.exited, merged.exited))
            merged = _Context(merged_store, merged_exited, ctx.path_cond)
        return merged

    def _case_match(
        self, case: ast.SelectCase, key_terms: list[Term], unit: _Unit
    ) -> Term:
        conds: list[Term] = []
        for key, keyset in zip(key_terms, case.keys):
            if keyset.is_default:
                continue
            if keyset.value_set_name is not None:
                if keyset.value_set_name in self.env.constants:
                    const = self.env.constants[keyset.value_set_name]
                    conds.append(T.eq(key, T.bv_const(const, key.width)))
                    continue
                vs = self.model.value_set(f"{unit.name}.{keyset.value_set_name}")
                slots = [
                    T.bool_and(
                        T.eq(valid, T.bv_const(1, 1)),
                        T.eq(key, value),
                    )
                    for valid, value in zip(vs.valid_vars, vs.value_vars)
                ]
                conds.append(T.bool_or(*slots))
                continue
            value = _keyset_const(keyset.value, self.env, key.width)
            if keyset.mask is not None:
                mask = _keyset_const(keyset.mask, self.env, key.width)
                conds.append(
                    T.eq(
                        T.bv_and(key, T.bv_const(mask, key.width)),
                        T.bv_const(value & mask, key.width),
                    )
                )
            else:
                conds.append(T.eq(key, T.bv_const(value, key.width)))
        return T.bool_and(*conds) if conds else T.TRUE

    # -- controls ------------------------------------------------------------------------------------------------

    def _exec_control(self, decl: ast.ControlDecl, ctx: _Context) -> _Context:
        unit = _Unit(decl.name, decl)
        for local in decl.locals:
            if isinstance(local, ast.VarDeclStmt):
                self._exec_stmt(local, unit, ctx)
        self._exec_block(decl.apply, unit, ctx)
        return ctx


def _is_intrinsic_param(param) -> bool:
    """Intrinsic-metadata convention: a pipeline parameter named ``intr``
    (or whose type name contains "intrinsic") carries per-packet values
    supplied by the hardware, not by the program."""
    if param.name == "intr":
        return True
    type_name = getattr(param.type, "name", "")
    return "intrinsic" in str(type_name)


def _try_lvalue_path(expr: ast.Expr) -> Optional[str]:
    try:
        return lvalue_path(expr)
    except TypeCheckError:
        return None


def _find_local(control: ast.ControlDecl, name: str, kind):
    for local in control.locals:
        if isinstance(local, kind) and local.name == name:
            return local
    raise AnalysisError(f"control {control.name!r} has no {kind.__name__} {name!r}")


def _keyset_const(expr: ast.Expr, env: TypeEnv, width: int) -> int:
    value = eval_const_expr(expr, env)
    if value is None:
        raise AnalysisError(f"select keyset {expr!r} is not constant")
    return value & ((1 << width) - 1)


def analyze(
    program: ast.Program,
    env: Optional[TypeEnv] = None,
    skip_parser: bool = False,
) -> DataPlaneModel:
    """Run the data-plane analysis once and return the annotated model."""
    return SymbolicExecutor(program, env, skip_parser=skip_parser).analyze()
