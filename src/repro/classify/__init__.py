"""Packet-classification substrate: TCAM/STCAM/exact/LPM structures + chooser."""

from repro.classify.chooser import ChoiceReport, ClassifierChooser, RulePattern
from repro.classify.structures import (
    Classifier,
    ClassifierError,
    ExactClassifier,
    LpmTrieClassifier,
    Rule,
    StcamClassifier,
    TcamClassifier,
)
