"""Configuration-driven classifier selection.

Given the rules actually installed by the control plane, pick the cheapest
data structure that can represent them — the §3 packet-classification
specialization.  An incremental compiler re-runs the choice only when the
rule *pattern* changes (a new distinct mask appears, a mask disappears),
not on every rule insert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.classify.structures import (
    Classifier,
    ClassifierError,
    ExactClassifier,
    LpmTrieClassifier,
    Rule,
    StcamClassifier,
    TcamClassifier,
)


@dataclass(frozen=True)
class RulePattern:
    """The mask pattern of a rule set — the input to the structure choice."""

    distinct_masks: int
    all_exact: bool
    all_prefix: bool
    rule_count: int

    @classmethod
    def of(cls, rules: Iterable[Rule], width: int) -> "RulePattern":
        rules = list(rules)
        masks = {rule.mask for rule in rules}
        return cls(
            distinct_masks=len(masks),
            all_exact=all(rule.is_exact(width) for rule in rules),
            all_prefix=all(rule.is_prefix(width) for rule in rules),
            rule_count=len(rules),
        )


@dataclass
class ChoiceReport:
    """Outcome of one structure selection."""

    chosen: str
    footprint_bits: int
    alternatives: dict  # name → footprint bits (None if infeasible)
    pattern: RulePattern

    def savings_vs_tcam(self) -> float:
        tcam = self.alternatives.get("tcam")
        if not tcam:
            return 0.0
        return 1.0 - self.footprint_bits / tcam


class ClassifierChooser:
    """Builds every feasible structure and keeps the smallest."""

    def __init__(self, width: int, stcam_max_masks: int = 16) -> None:
        self.width = width
        self.stcam_max_masks = stcam_max_masks

    def candidates(self) -> list[Classifier]:
        return [
            ExactClassifier(self.width),
            LpmTrieClassifier(self.width),
            StcamClassifier(self.width, self.stcam_max_masks),
            TcamClassifier(self.width),
        ]

    def choose(self, rules: Iterable[Rule]) -> tuple[Classifier, ChoiceReport]:
        rules = list(rules)
        pattern = RulePattern.of(rules, self.width)
        alternatives: dict = {}
        best: Optional[Classifier] = None
        best_bits: Optional[int] = None
        for candidate in self.candidates():
            try:
                candidate.install(rules)
            except ClassifierError:
                alternatives[candidate.name] = None
                continue
            bits = candidate.footprint_bits()
            alternatives[candidate.name] = bits
            if best_bits is None or bits < best_bits:
                best, best_bits = candidate, bits
        assert best is not None  # TCAM always succeeds
        report = ChoiceReport(
            chosen=best.name,
            footprint_bits=best_bits or 0,
            alternatives=alternatives,
            pattern=pattern,
        )
        return best, report

    def pattern_changed(self, before: RulePattern, after: RulePattern) -> bool:
        """Does the structure choice need to be revisited?

        The incremental trigger: only mask-pattern changes can change which
        structure is cheapest *category-wise*; pure growth within the same
        pattern is handled by the structure itself.
        """
        return (
            before.distinct_masks != after.distinct_masks
            or before.all_exact != after.all_exact
            or before.all_prefix != after.all_prefix
        )
