"""Packet-classification data structures with memory-footprint models.

§3 of the paper: "we can specialize data structures used in the data plane
to classify packets based on the actual patterns present in the active
control-plane configuration", e.g. replace a TCAM with a Semi-TCAM or an
exact-match table when the installed rules need few or no masks.

Each structure implements the same lookup contract (highest-precedence
matching rule wins) and reports a memory footprint in bits, so the chooser
can pick the cheapest structure that supports the installed rule set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional


@dataclass(frozen=True)
class Rule:
    """One classification rule over a single ``width``-bit key."""

    value: int
    mask: int  # full mask = exact; 0 = match-all
    priority: int
    action: str

    def matches(self, key: int) -> bool:
        return (key & self.mask) == (self.value & self.mask)

    def is_exact(self, width: int) -> bool:
        return self.mask == (1 << width) - 1

    def is_prefix(self, width: int) -> bool:
        """Is the mask a (possibly empty) prefix mask?"""
        inverted = (~self.mask) & ((1 << width) - 1)
        return (inverted & (inverted + 1)) == 0


class ClassifierError(ValueError):
    """Rule set not representable in this structure."""


class Classifier:
    """Common interface: install rules, look up keys, report footprint."""

    name = "abstract"

    def __init__(self, width: int) -> None:
        self.width = width

    def install(self, rules: Iterable[Rule]) -> None:
        raise NotImplementedError

    def lookup(self, key: int) -> Optional[Rule]:
        raise NotImplementedError

    def footprint_bits(self) -> int:
        raise NotImplementedError


class TcamClassifier(Classifier):
    """Ternary CAM: supports arbitrary masks; the expensive baseline.

    Footprint model: every entry stores value+mask (2·width) and each TCAM
    cell costs ~2 SRAM-cell-equivalents of area and static power, modeled
    as a 4x multiplier over plain SRAM bits, plus the action pointer.
    """

    name = "tcam"
    CELL_COST = 4  # area/power multiplier vs an SRAM bit

    def __init__(self, width: int) -> None:
        super().__init__(width)
        self._rules: list[Rule] = []

    def install(self, rules: Iterable[Rule]) -> None:
        self._rules = sorted(rules, key=lambda r: -r.priority)

    def lookup(self, key: int) -> Optional[Rule]:
        for rule in self._rules:
            if rule.matches(key):
                return rule
        return None

    def footprint_bits(self) -> int:
        per_entry = 2 * self.width * self.CELL_COST + 16
        return len(self._rules) * per_entry


class StcamClassifier(Classifier):
    """Semi-TCAM: a small set of shared masks, exact-match within each.

    Models AMD's STCAM: rules are grouped by mask; each group is an SRAM
    hash table keyed on (key & mask).  Only viable when the number of
    distinct masks is at most ``max_masks``.
    """

    name = "stcam"

    def __init__(self, width: int, max_masks: int = 16) -> None:
        super().__init__(width)
        self.max_masks = max_masks
        self._groups: list[tuple[int, int, dict[int, Rule]]] = []  # (prio, mask, map)

    def install(self, rules: Iterable[Rule]) -> None:
        rules = list(rules)
        masks = {rule.mask for rule in rules}
        if len(masks) > self.max_masks:
            raise ClassifierError(
                f"{len(masks)} distinct masks exceed STCAM capacity {self.max_masks}"
            )
        groups: dict[int, dict[int, Rule]] = {}
        group_priority: dict[int, int] = {}
        for rule in rules:
            table = groups.setdefault(rule.mask, {})
            masked = rule.value & rule.mask
            existing = table.get(masked)
            if existing is None or rule.priority > existing.priority:
                table[masked] = rule
            group_priority[rule.mask] = max(
                group_priority.get(rule.mask, 0), rule.priority
            )
        self._groups = sorted(
            ((group_priority[mask], mask, table) for mask, table in groups.items()),
            key=lambda g: -g[0],
        )

    def lookup(self, key: int) -> Optional[Rule]:
        best: Optional[Rule] = None
        for _prio, mask, table in self._groups:
            rule = table.get(key & mask)
            if rule is not None and (best is None or rule.priority > best.priority):
                best = rule
        return best

    def footprint_bits(self) -> int:
        total = 0
        for _prio, mask, table in self._groups:
            # Mask register + hash table (1.25x load-factor overhead).
            total += self.width
            total += int(len(table) * (self.width + 16) * 1.25)
        return total


class ExactClassifier(Classifier):
    """Plain SRAM hash table: only full-mask rules."""

    name = "exact"

    def __init__(self, width: int) -> None:
        super().__init__(width)
        self._table: dict[int, Rule] = {}

    def install(self, rules: Iterable[Rule]) -> None:
        table: dict[int, Rule] = {}
        full = (1 << self.width) - 1
        for rule in rules:
            if rule.mask != full:
                raise ClassifierError("exact classifier requires full masks")
            existing = table.get(rule.value)
            if existing is None or rule.priority > existing.priority:
                table[rule.value] = rule
        self._table = table

    def lookup(self, key: int) -> Optional[Rule]:
        return self._table.get(key)

    def footprint_bits(self) -> int:
        return int(len(self._table) * (self.width + 16) * 1.25)


class LpmTrieClassifier(Classifier):
    """Binary trie for prefix-mask rules (longest prefix wins)."""

    name = "lpm-trie"

    class _Node:
        __slots__ = ("children", "rule")

        def __init__(self) -> None:
            self.children: list = [None, None]
            self.rule: Optional[Rule] = None

    def __init__(self, width: int) -> None:
        super().__init__(width)
        self._root = self._Node()
        self._nodes = 1
        self._rules = 0

    def install(self, rules: Iterable[Rule]) -> None:
        self._root = self._Node()
        self._nodes = 1
        self._rules = 0
        for rule in rules:
            if not rule.is_prefix(self.width):
                raise ClassifierError("LPM trie requires prefix masks")
            self._insert(rule)

    def _insert(self, rule: Rule) -> None:
        prefix_len = bin(rule.mask).count("1")
        node = self._root
        for i in range(prefix_len):
            bit = (rule.value >> (self.width - 1 - i)) & 1
            if node.children[bit] is None:
                node.children[bit] = self._Node()
                self._nodes += 1
            node = node.children[bit]
        if node.rule is None or rule.priority > node.rule.priority:
            node.rule = rule
        self._rules += 1

    def lookup(self, key: int) -> Optional[Rule]:
        node = self._root
        best = node.rule
        for i in range(self.width):
            bit = (key >> (self.width - 1 - i)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.rule is not None:
                best = node.rule
        return best

    def footprint_bits(self) -> int:
        # Two child pointers (20 bits each) per node + action data per rule.
        return self._nodes * 40 + self._rules * 16
