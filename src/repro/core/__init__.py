"""Flay core: the public facade over the :mod:`repro.engine` pipeline."""

from repro.core.flay import Flay, FlayOptions, FlayTimings
from repro.core.incremental import (
    BatchDecision,
    IncrementalSpecializer,
    UpdateDecision,
)
from repro.core.queries import (
    ALWAYS,
    MAYBE,
    NEVER,
    PointVerdict,
    QueryEngine,
    TableVerdict,
)
from repro.core.specializer import (
    EFFORT_DCE,
    EFFORT_FULL,
    EFFORT_NONE,
    SpecializationReport,
    Specializer,
)
from repro.errors import FlayError
