"""Flay — the public facade of the incremental partial evaluator.

Typical use::

    from repro.core import Flay, FlayOptions

    flay = Flay.from_source(p4_source, FlayOptions(target="tofino"))
    decision = flay.process_update(update)   # ~ms: forward or recompile
    print(flay.specialized_source())

The facade is a thin view over :class:`repro.engine.engine.Engine`, which
runs the cold pipeline (parse → typecheck → analyze → encode → specialize
→ lower) at construction and the warm per-update path for every call to
``process_update``/``process_batch``.  Pass an
:class:`~repro.engine.events.EventBus` via ``bus=`` to observe typed
pipeline events (pass timings, cache activity, forward/recompile
outcomes).
"""

from __future__ import annotations

from typing import Optional

from repro.engine.context import EngineOptions, EngineTimings
from repro.engine.engine import Engine
from repro.engine.events import EventBus
from repro.engine.pipeline import BatchDecision, UpdateDecision
from repro.p4 import ast_nodes as ast
from repro.p4.printer import print_program
from repro.runtime.semantics import Update, ValueSetUpdate

#: The long-standing public names for the engine's option/timing records.
FlayOptions = EngineOptions
FlayTimings = EngineTimings


class Flay:
    """Incremental specialization of one P4 program."""

    def __init__(
        self,
        program: Optional[ast.Program] = None,
        options: Optional[FlayOptions] = None,
        *,
        source: Optional[str] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        self.options = options if options is not None else FlayOptions()
        self.runtime = Engine(program, self.options, source=source, bus=bus)

    @classmethod
    def from_source(
        cls,
        source: str,
        options: Optional[FlayOptions] = None,
        *,
        bus: Optional[EventBus] = None,
    ) -> "Flay":
        return cls(None, options, source=source, bus=bus)

    # -- update path -----------------------------------------------------------

    def process_update(self, update: Update) -> UpdateDecision:
        return self.runtime.process_update(update)

    def process_value_set_update(self, update: ValueSetUpdate) -> UpdateDecision:
        return self.runtime.process_value_set_update(update)

    def process_batch(self, updates: list) -> BatchDecision:
        return self.runtime.process_batch(updates)

    def apply_batch(self, updates: list, workers: int = 1, executor: str = None):
        """Burst processing via the batch scheduler: coalesce redundant
        updates, partition the rest into independent conflict groups, and
        run the groups on a worker pool.  ``workers=0`` auto-detects the
        CPU count; ``executor`` picks ``serial`` / ``thread`` /
        ``process`` (None resolves through ``FLAY_EXECUTOR`` and then
        ``FlayOptions.executor``).  Deterministic — byte-identical output
        across executors and worker counts.  Returns a
        :class:`~repro.engine.batch.BatchReport`."""
        return self.runtime.apply_batch(updates, workers=workers, executor=executor)

    # -- results ------------------------------------------------------------------

    @property
    def timings(self) -> FlayTimings:
        return self.runtime.timings

    @property
    def env(self):
        return self.runtime.env

    @property
    def events(self) -> EventBus:
        return self.runtime.events

    @property
    def model(self):
        return self.runtime.model

    @property
    def program(self) -> ast.Program:
        return self.runtime.program

    @property
    def specialized_program(self) -> ast.Program:
        return self.runtime.specialized_program

    def specialized_source(self) -> str:
        return print_program(self.runtime.specialized_program)

    @property
    def report(self):
        return self.runtime.report

    @property
    def compile_reports(self) -> list:
        return self.runtime.compile_reports

    def cache_stats(self):
        """Hit/miss/invalidation counters of the cross-update caches."""
        return self.runtime.cache_stats()

    def solver_stats(self):
        """Query-layer and SAT-core counters (a ``SolverStats``)."""
        return self.runtime.solver_stats()

    def gate_stats(self):
        """Verdict-gate tier counters (a ``GateStats``), or None when
        the gate is disabled (``fdd_gate=False``)."""
        return self.runtime.gate_stats()

    @property
    def prune_report(self):
        """The abstract-interpretation prune pass's report (a
        ``PruneReport``), or None when pruning is disabled
        (``prune=False``)."""
        return self.runtime.prune_report

    def summary(self) -> str:
        log = self.runtime.update_log
        lines = [
            f"points: {self.model.point_count}",
            f"tables: {len(self.model.tables)}",
            f"analysis: {self.timings.data_plane_analysis_seconds * 1000:.1f} ms",
            f"updates processed: {len(log)} "
            f"(forwarded {self.runtime.forwarded_count}, "
            f"recompiled {self.runtime.recompiled_count})",
            f"mean update analysis: {self.timings.mean_update_ms():.2f} ms",
            f"specializations: {self.report.summary()}",
        ]
        return "\n".join(lines)
