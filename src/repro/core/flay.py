"""Flay — the public facade of the incremental partial evaluator.

Typical use::

    from repro.core import Flay, FlayOptions

    flay = Flay.from_source(p4_source, FlayOptions(target="tofino"))
    decision = flay.process_update(update)   # ~ms: forward or recompile
    print(flay.specialized_source())
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.incremental import (
    BatchDecision,
    IncrementalSpecializer,
    UpdateDecision,
)
from repro.p4 import ast_nodes as ast
from repro.p4.parser import parse_program
from repro.p4.printer import print_program
from repro.p4.types import TypeEnv
from repro.runtime.semantics import (
    DEFAULT_OVERAPPROX_THRESHOLD,
    Update,
    ValueSetUpdate,
)


@dataclass(frozen=True)
class FlayOptions:
    """Configuration knobs, mirroring the prototype's command line."""

    skip_parser: bool = False  # §4.2: skip parser analysis for big programs
    overapprox_threshold: Optional[int] = DEFAULT_OVERAPPROX_THRESHOLD
    use_solver: bool = True  # allow SAT fallback for executability queries
    prune_parser_tail: bool = True
    target: str = "tofino"  # tofino | bmv2 | none
    effort: str = "full"  # none | dce | full — specialization quality knob


@dataclass
class FlayTimings:
    """The Table 2 measurement surface."""

    parse_seconds: float = 0.0
    data_plane_analysis_seconds: float = 0.0
    initial_specialization_seconds: float = 0.0
    update_ms: list = field(default_factory=list)

    def mean_update_ms(self) -> float:
        return sum(self.update_ms) / len(self.update_ms) if self.update_ms else 0.0

    def max_update_ms(self) -> float:
        return max(self.update_ms, default=0.0)


class Flay:
    """Incremental specialization of one P4 program."""

    def __init__(
        self, program: ast.Program, options: Optional[FlayOptions] = None
    ) -> None:
        self.options = options if options is not None else FlayOptions()
        self.timings = FlayTimings()
        self.env = TypeEnv(program)

        start = time.perf_counter()
        self.runtime = IncrementalSpecializer(
            program,
            env=self.env,
            skip_parser=self.options.skip_parser,
            overapprox_threshold=self.options.overapprox_threshold,
            device_compiler=self._make_device_compiler(),
            use_solver=self.options.use_solver,
            prune_parser_tail=self.options.prune_parser_tail,
            effort=self.options.effort,
        )
        total = time.perf_counter() - start
        self.timings.data_plane_analysis_seconds = self.runtime.model.analysis_seconds
        self.timings.initial_specialization_seconds = (
            total - self.runtime.model.analysis_seconds
        )

    @classmethod
    def from_source(
        cls, source: str, options: Optional[FlayOptions] = None
    ) -> "Flay":
        start = time.perf_counter()
        program = parse_program(source)
        flay = cls(program, options)
        flay.timings.parse_seconds = time.perf_counter() - start
        return flay

    def _make_device_compiler(self):
        target = (self.options or FlayOptions()).target
        if target == "tofino":
            from repro.targets.tofino.compiler import TofinoCompiler

            return TofinoCompiler()
        if target == "bmv2":
            from repro.targets.bmv2.compiler import Bmv2Compiler

            return Bmv2Compiler()
        return None

    # -- update path -----------------------------------------------------------

    def process_update(self, update: Update) -> UpdateDecision:
        decision = self.runtime.process_update(update)
        self.timings.update_ms.append(decision.elapsed_ms)
        return decision

    def process_value_set_update(self, update: ValueSetUpdate) -> UpdateDecision:
        decision = self.runtime.process_value_set_update(update)
        self.timings.update_ms.append(decision.elapsed_ms)
        return decision

    def process_batch(self, updates: list) -> BatchDecision:
        decision = self.runtime.process_batch(updates)
        self.timings.update_ms.append(decision.elapsed_ms)
        return decision

    # -- results ------------------------------------------------------------------

    @property
    def model(self):
        return self.runtime.model

    @property
    def program(self) -> ast.Program:
        return self.runtime.program

    @property
    def specialized_program(self) -> ast.Program:
        return self.runtime.specialized_program

    def specialized_source(self) -> str:
        return print_program(self.runtime.specialized_program)

    @property
    def report(self):
        return self.runtime.report

    @property
    def compile_reports(self) -> list:
        return self.runtime.compile_reports

    def cache_stats(self):
        """Hit/miss/invalidation counters of the cross-update caches."""
        return self.runtime.cache_stats()

    def summary(self) -> str:
        log = self.runtime.update_log
        lines = [
            f"points: {self.model.point_count}",
            f"tables: {len(self.model.tables)}",
            f"analysis: {self.timings.data_plane_analysis_seconds * 1000:.1f} ms",
            f"updates processed: {len(log)} "
            f"(forwarded {self.runtime.forwarded_count}, "
            f"recompiled {self.runtime.recompiled_count})",
            f"mean update analysis: {self.timings.mean_update_ms():.2f} ms",
            f"specializations: {self.report.summary()}",
        ]
        return "\n".join(lines)
