"""The control-plane-triggered incremental pipeline (Fig. 2 of the paper).

On every control-plane update: (1) map the update to its table's control
symbols ("taint"), (2) find the affected program points via the taint map,
(3) recompute the specialization verdicts for exactly those points, and
(4) forward the update untouched when no verdict changed — otherwise
respecialize and hand the result to the device compiler.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.analysis.model import DataPlaneModel
from repro.analysis.symexec import analyze
from repro.core.queries import PointVerdict, QueryEngine, TableVerdict
from repro.core.specializer import SpecializationReport, Specializer
from repro.ir.metrics import CacheReport
from repro.p4 import ast_nodes as ast
from repro.p4.types import TypeEnv
from repro.runtime.semantics import (
    DEFAULT_OVERAPPROX_THRESHOLD,
    ControlPlaneState,
    Update,
    ValueSetUpdate,
    encode_table,
    encode_value_set,
)
from repro.smt import DeltaSubstitution
from repro.smt.terms import Term


@dataclass
class UpdateDecision:
    """Outcome of processing one control-plane update."""

    update: object
    forwarded: bool  # sent to the device without recompilation
    recompiled: bool
    affected_points: int
    changed: list  # pids / table names whose verdict changed
    elapsed_ms: float
    overapproximated: bool
    compile_report: object = None

    def describe(self) -> str:
        action = "RECOMPILE" if self.recompiled else "forward"
        mode = " (overapprox)" if self.overapproximated else ""
        return (
            f"{action}{mode}: {self.affected_points} points checked, "
            f"{len(self.changed)} changed, {self.elapsed_ms:.2f} ms"
        )


@dataclass
class BatchDecision:
    """Outcome of processing a burst of updates as one unit."""

    update_count: int
    recompiled: bool
    changed: list  # verdicts that changed (pids / table names)
    affected_points: int
    elapsed_ms: float
    compile_report: object = None

    @property
    def updates(self) -> int:
        return self.update_count

    def describe(self) -> str:
        action = "RECOMPILE" if self.recompiled else "forward"
        return (
            f"{action}: batch of {self.update_count} updates, "
            f"{self.affected_points} points checked, "
            f"{len(self.changed)} changed, {self.elapsed_ms:.1f} ms"
        )


class IncrementalSpecializer:
    """Flay's runtime: shim between the controller and the device.

    ``device_compiler`` is any object with a ``compile(program) -> report``
    method (e.g. :class:`repro.targets.tofino.TofinoCompiler`); it is only
    invoked when respecialization is actually needed.
    """

    def __init__(
        self,
        program: ast.Program,
        env: Optional[TypeEnv] = None,
        skip_parser: bool = False,
        overapprox_threshold: Optional[int] = DEFAULT_OVERAPPROX_THRESHOLD,
        device_compiler: Optional[object] = None,
        use_solver: bool = True,
        prune_parser_tail: bool = True,
        effort: str = "full",
    ) -> None:
        self.program = program
        self.env = env if env is not None else TypeEnv(program)
        self.threshold = overapprox_threshold
        self.device_compiler = device_compiler

        # One-time data-plane analysis (Fig. 4 "Once").
        self.model: DataPlaneModel = analyze(
            program, self.env, skip_parser=skip_parser
        )
        self.state = ControlPlaneState(self.model)
        self.engine = QueryEngine(self.model, use_solver=use_solver)
        self.specializer = Specializer(
            program,
            self.model,
            self.env,
            prune_parser_tail=prune_parser_tail,
            effort=effort,
        )

        self.mapping: dict[Term, Term] = {}
        self.table_assignments = {}
        self.point_verdicts: dict[str, PointVerdict] = {}
        self.table_verdicts: dict[str, TableVerdict] = {}
        self.update_log: list[UpdateDecision] = []
        self.recompilations = 0
        self.compile_reports: list = []

        # One long-lived substitution whose memo survives across updates:
        # an update only invalidates the memo entries that mention a
        # control symbol whose assignment actually changed (delta
        # substitution), so warm updates touch O(delta) of each point's DAG.
        self.substitution = DeltaSubstitution({})

        self._encode_initial()
        self._evaluate_all_points()
        self.specialized_program, self.report = self.specializer.specialize(
            self.point_verdicts, self.table_verdicts
        )
        self._compile()

    # -- initialization --------------------------------------------------------

    def _encode_initial(self) -> None:
        for name, info in self.model.tables.items():
            assignment = encode_table(info, self.state.tables[name], self.threshold)
            self.table_assignments[name] = assignment
            self.mapping.update(assignment.mapping)
            self.table_verdicts[name] = self.engine.table_verdict(
                info, assignment, self.state.tables[name]
            )
        for name, info in self.model.value_sets.items():
            self.mapping.update(
                encode_value_set(info, self.state.value_sets[name])
            )

    def _evaluate_all_points(self) -> None:
        self.substitution.set_many(self.mapping)
        for pid, point in self.model.points.items():
            self.point_verdicts[pid] = self.engine.point_verdict(
                point, self.substitution
            )

    # -- update processing -------------------------------------------------------

    def process_update(self, update: Update) -> UpdateDecision:
        """The per-update fast path; aims for the paper's ~100 ms budget."""
        start = time.perf_counter()
        info = self.state.apply_update(update)
        assignment = encode_table(
            info, self.state.tables[info.name], self.threshold
        )
        self.table_assignments[info.name] = assignment
        self.mapping.update(assignment.mapping)
        self.substitution.set_many(assignment.mapping)

        changed: list = []
        affected = self.model.points_for_control_vars(info.control_var_names())
        for pid in sorted(affected):
            verdict = self.engine.point_verdict(
                self.model.points[pid], self.substitution
            )
            if not verdict.same_specialization(self.point_verdicts[pid]):
                changed.append(pid)
            self.point_verdicts[pid] = verdict

        table_verdict = self.engine.table_verdict(
            info, assignment, self.state.tables[info.name]
        )
        if not table_verdict.same_specialization(self.table_verdicts[info.name]):
            changed.append(info.name)
        self.table_verdicts[info.name] = table_verdict

        compile_report = None
        if changed:
            before = len(self.compile_reports)
            self._respecialize()
            if len(self.compile_reports) > before:
                compile_report = self.compile_reports[-1]
        decision = UpdateDecision(
            update=update,
            forwarded=not changed,
            recompiled=bool(changed),
            affected_points=len(affected),
            changed=changed,
            elapsed_ms=(time.perf_counter() - start) * 1000,
            overapproximated=assignment.overapproximated,
            compile_report=compile_report,
        )
        self.update_log.append(decision)
        return decision

    def process_value_set_update(self, update: ValueSetUpdate) -> UpdateDecision:
        start = time.perf_counter()
        info = self.state.apply_value_set_update(update)
        mapping = encode_value_set(info, self.state.value_sets[info.name])
        self.mapping.update(mapping)
        self.substitution.set_many(mapping)

        changed: list = []
        affected = self.model.points_for_control_vars(info.control_var_names())
        for pid in sorted(affected):
            verdict = self.engine.point_verdict(
                self.model.points[pid], self.substitution
            )
            if not verdict.same_specialization(self.point_verdicts[pid]):
                changed.append(pid)
            self.point_verdicts[pid] = verdict

        compile_report = None
        if changed:
            before = len(self.compile_reports)
            self._respecialize()
            if len(self.compile_reports) > before:
                compile_report = self.compile_reports[-1]
        decision = UpdateDecision(
            update=update,
            forwarded=not changed,
            recompiled=bool(changed),
            affected_points=len(affected),
            changed=changed,
            elapsed_ms=(time.perf_counter() - start) * 1000,
            overapproximated=False,
            compile_report=compile_report,
        )
        self.update_log.append(decision)
        return decision

    def process_batch(self, updates: list) -> BatchDecision:
        """Process a burst as one unit, respecializing at most once.

        This is the §4.2 burst scenario: a thousand semantics-preserving
        route insertions should be waved through with one decision.  The
        batch path re-encodes each touched table *once* — not once per
        update — so a 1000-entry burst into one table costs one encoding
        plus one pass over the affected program points.
        """
        start = time.perf_counter()
        touched_tables: set[str] = set()
        touched_vars: set[str] = set()
        for update in updates:
            if isinstance(update, ValueSetUpdate):
                info = self.state.apply_value_set_update(update)
                vs_mapping = encode_value_set(info, self.state.value_sets[info.name])
                self.mapping.update(vs_mapping)
                self.substitution.set_many(vs_mapping)
                touched_vars.update(info.control_var_names())
            else:
                info = self.state.apply_update(update)
                touched_tables.add(info.name)
                touched_vars.update(info.control_var_names())

        changed: list = []
        for name in sorted(touched_tables):
            info = self.model.tables[name]
            assignment = encode_table(info, self.state.tables[name], self.threshold)
            self.table_assignments[name] = assignment
            self.mapping.update(assignment.mapping)
            self.substitution.set_many(assignment.mapping)
            table_verdict = self.engine.table_verdict(
                info, assignment, self.state.tables[name]
            )
            if not table_verdict.same_specialization(self.table_verdicts[name]):
                changed.append(name)
            self.table_verdicts[name] = table_verdict

        affected = self.model.points_for_control_vars(touched_vars)
        for pid in sorted(affected):
            verdict = self.engine.point_verdict(
                self.model.points[pid], self.substitution
            )
            if not verdict.same_specialization(self.point_verdicts[pid]):
                changed.append(pid)
            self.point_verdicts[pid] = verdict

        compile_report = None
        if changed:
            before = len(self.compile_reports)
            self._respecialize()
            if len(self.compile_reports) > before:
                compile_report = self.compile_reports[-1]
        return BatchDecision(
            update_count=len(updates),
            recompiled=bool(changed),
            changed=changed,
            affected_points=len(affected),
            elapsed_ms=(time.perf_counter() - start) * 1000,
            compile_report=compile_report,
        )

    # -- respecialization ------------------------------------------------------------

    _respecialize_on_change = True

    def _respecialize(self) -> None:
        if not self._respecialize_on_change:
            return
        self.specialized_program, self.report = self.specializer.specialize(
            self.point_verdicts, self.table_verdicts
        )
        self.recompilations += 1
        self._compile()

    def _compile(self) -> None:
        if self.device_compiler is None:
            return
        report = self.device_compiler.compile(self.specialized_program)
        self.compile_reports.append(report)

    # -- introspection -----------------------------------------------------------------

    @property
    def forwarded_count(self) -> int:
        return sum(1 for d in self.update_log if d.forwarded)

    @property
    def recompiled_count(self) -> int:
        return sum(1 for d in self.update_log if d.recompiled)

    def mean_update_ms(self) -> float:
        if not self.update_log:
            return 0.0
        return sum(d.elapsed_ms for d in self.update_log) / len(self.update_log)

    def cache_stats(self) -> CacheReport:
        """Hit/miss/invalidation counters for every cross-update cache layer."""
        report = CacheReport()
        report.add(self.substitution.counter)
        report.add(self.engine.exec_counter)
        report.add(self.engine.solver.cache_counter)
        report.add(self.engine.solver.cnf_counter)
        report.add(self.state.active_counter)
        return report
