"""The control-plane-triggered incremental pipeline (Fig. 2 of the paper).

On every control-plane update: (1) map the update to its table's control
symbols ("taint"), (2) find the affected program points via the taint map,
(3) recompute the specialization verdicts for exactly those points, and
(4) forward the update untouched when no verdict changed — otherwise
respecialize and hand the result to the device compiler.

The implementation lives in :mod:`repro.engine`: the steps above are the
declared warm pass sequence run by :class:`~repro.engine.engine.Engine`.
``IncrementalSpecializer`` is the historical name and constructor,
preserved for every caller that predates the engine.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.context import EngineOptions
from repro.engine.engine import Engine
from repro.engine.pipeline import BatchDecision, UpdateDecision
from repro.p4 import ast_nodes as ast
from repro.p4.types import TypeEnv
from repro.runtime.semantics import DEFAULT_OVERAPPROX_THRESHOLD

__all__ = ["BatchDecision", "IncrementalSpecializer", "UpdateDecision"]


class IncrementalSpecializer(Engine):
    """Flay's runtime: shim between the controller and the device.

    ``device_compiler`` is any object with a ``compile(program) -> report``
    method (e.g. :class:`repro.targets.tofino.TofinoCompiler`); it is only
    invoked when respecialization is actually needed.  This class maps the
    pre-engine keyword surface onto :class:`~repro.engine.engine.Engine`.
    """

    def __init__(
        self,
        program: ast.Program,
        env: Optional[TypeEnv] = None,
        skip_parser: bool = False,
        overapprox_threshold: Optional[int] = DEFAULT_OVERAPPROX_THRESHOLD,
        device_compiler: Optional[object] = None,
        use_solver: bool = True,
        prune_parser_tail: bool = True,
        effort: str = "full",
    ) -> None:
        options = EngineOptions(
            skip_parser=skip_parser,
            overapprox_threshold=overapprox_threshold,
            use_solver=use_solver,
            prune_parser_tail=prune_parser_tail,
            target="none",
            effort=effort,
        )
        # The legacy constructor takes the compiler instance itself (None
        # meaning "no device"), so pass it through verbatim rather than
        # resolving options.target.
        super().__init__(
            program, options, env=env, device_compiler=device_compiler
        )
