"""Compatibility shim — the query engine lives in :mod:`repro.engine.queries`.

The module moved into the engine package with the pass-pipeline refactor
(the engine owns the verdict caches, so it cannot import ``repro.core``
without a cycle).  Import from :mod:`repro.engine.queries` in new code.
"""

from repro.engine.queries import (
    ALWAYS,
    MAYBE,
    NEVER,
    PointVerdict,
    QueryEngine,
    TableVerdict,
    _possible_values,
)

__all__ = [
    "ALWAYS",
    "MAYBE",
    "NEVER",
    "PointVerdict",
    "QueryEngine",
    "TableVerdict",
    "_possible_values",
]
