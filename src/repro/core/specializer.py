"""Compatibility shim — the specializer lives in :mod:`repro.engine.specialize`.

The module moved into the engine package with the pass-pipeline refactor.
Import from :mod:`repro.engine.specialize` in new code.
"""

from repro.engine.specialize import (
    EFFORT_DCE,
    EFFORT_FULL,
    EFFORT_NONE,
    SpecializationReport,
    SpecializeError,
    Specializer,
)

__all__ = [
    "EFFORT_DCE",
    "EFFORT_FULL",
    "EFFORT_NONE",
    "SpecializationReport",
    "SpecializeError",
    "Specializer",
]
