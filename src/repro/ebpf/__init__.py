"""eBPF/XDP generalization of Flay (§4: maps are the control plane)."""

from repro.ebpf.maps import (
    ARRAY,
    HASH,
    LPM_TRIE,
    Field,
    MapError,
    MapRuntime,
    MapSpec,
)
from repro.ebpf.program import (
    Assign,
    If,
    Lookup,
    Return,
    ScratchVar,
    TranslationError,
    XDP_ABORTED,
    XDP_DROP,
    XDP_PASS,
    XDP_REDIRECT,
    XDP_TX,
    XdpProgram,
    translate,
)
from repro.ebpf.runtime import EbpfFlay, MapOpResult
