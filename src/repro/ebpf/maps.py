"""eBPF map model: the control-plane surface of an XDP program.

The paper (§2) draws the P4↔eBPF correspondence explicitly: "In eBPF,
data-plane variables are sourced from reads of the packet metadata
structure, and control-plane variables are stored in maps."  This module
gives maps a bpf(2)-style API (`update_elem`/`delete_elem`) and translates
each operation into the same :class:`repro.runtime.semantics.Update` the
incremental pipeline consumes — map kind by map kind:

* ``BPF_MAP_TYPE_HASH``   → exact-match table
* ``BPF_MAP_TYPE_LPM_TRIE`` → lpm table
* ``BPF_MAP_TYPE_ARRAY``  → exact-match table over the index
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.runtime.entries import ExactMatch, LpmMatch, TableEntry
from repro.runtime.semantics import DELETE, INSERT, MODIFY, Update

HASH = "hash"
LPM_TRIE = "lpm_trie"
ARRAY = "array"

_KINDS = (HASH, LPM_TRIE, ARRAY)


@dataclass(frozen=True)
class Field:
    """One scalar field of a map key or value."""

    name: str
    width: int  # bits


@dataclass(frozen=True)
class MapSpec:
    """Declaration of one eBPF map."""

    name: str
    kind: str
    key: tuple  # of Field
    value: tuple  # of Field
    max_entries: int = 1024

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown map kind {self.kind!r}")
        if self.kind == LPM_TRIE and len(self.key) != 1:
            raise ValueError("LPM maps take a single key field")
        if self.kind == ARRAY and (len(self.key) != 1 or self.key[0].width > 32):
            raise ValueError("array maps are indexed by one <=32-bit field")

    @property
    def table_name(self) -> str:
        """The table this map becomes after translation."""
        return f"map_{self.name}"

    @property
    def action_name(self) -> str:
        return f"set_{self.name}_value"


class MapError(ValueError):
    """Invalid map operation."""


@dataclass
class MapRuntime:
    """bpf(2)-style userspace handle for one map.

    Operations are recorded as control-plane :class:`Update` objects; the
    caller (``EbpfFlay``) feeds them through the incremental pipeline.
    """

    spec: MapSpec
    qualified_table: str  # "<control>.<table>"
    _keys: set = field(default_factory=set)

    def _match(self, key, prefix_len: Optional[int]):
        spec = self.spec
        if spec.kind == LPM_TRIE:
            if prefix_len is None:
                raise MapError(f"LPM map {spec.name!r} needs a prefix length")
            (key_field,) = spec.key
            (value,) = key if isinstance(key, tuple) else (key,)
            return (LpmMatch(value, prefix_len),)
        values = key if isinstance(key, tuple) else (key,)
        if len(values) != len(spec.key):
            raise MapError(
                f"map {spec.name!r} key has {len(spec.key)} fields, got {len(values)}"
            )
        for value, key_field in zip(values, spec.key):
            if not 0 <= value < (1 << key_field.width):
                raise MapError(
                    f"key field {key_field.name}={value:#x} out of range"
                )
        if spec.kind == ARRAY:
            (index,) = values
            if index >= spec.max_entries:
                raise MapError(
                    f"array index {index} out of bounds ({spec.max_entries})"
                )
        return tuple(ExactMatch(v) for v in values)

    def _entry(self, key, value, prefix_len: Optional[int]) -> TableEntry:
        values = value if isinstance(value, tuple) else (value,)
        if len(values) != len(self.spec.value):
            raise MapError(
                f"map {self.spec.name!r} value has {len(self.spec.value)} fields, "
                f"got {len(values)}"
            )
        priority = prefix_len or 0
        return TableEntry(
            self._match(key, prefix_len), self.spec.action_name, tuple(values), priority
        )

    def update_elem(self, key, value, prefix_len: Optional[int] = None) -> Update:
        """``bpf_map_update_elem``: insert or overwrite."""
        entry = self._entry(key, value, prefix_len)
        op = MODIFY if entry.match_key() in self._keys else INSERT
        self._keys.add(entry.match_key())
        return Update(self.qualified_table, op, entry)

    def delete_elem(self, key, prefix_len: Optional[int] = None) -> Update:
        """``bpf_map_delete_elem``."""
        # The entry's action payload is irrelevant for a delete; reuse a
        # zero value so the match key resolves.
        zero = tuple(0 for _ in self.spec.value)
        entry = self._entry(key, zero, prefix_len)
        if entry.match_key() not in self._keys:
            raise MapError(f"no such key in map {self.spec.name!r}")
        self._keys.discard(entry.match_key())
        return Update(self.qualified_table, DELETE, entry)

    def __len__(self) -> int:
        return len(self._keys)
