"""XDP program model and its translation onto the P4 substrate.

An :class:`XdpProgram` is a restricted-C-shaped packet program: a fixed
Ethernet/IPv4/UDP context (``ctx.eth``, ``ctx.ip``, ``ctx.udp``), scratch
metadata (``meta``), eBPF maps, and a body of lookups, branches,
assignments, and XDP returns.  Translation produces a program in the P4
subset — maps become match-action tables, ``bpf_map_lookup_elem`` becomes
``table.apply().hit``, returns become verdict writes — after which the
whole Flay pipeline (analysis, queries, specialization, incremental
updates) applies unchanged.  This is the §4 generalization claim, made
executable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.ebpf.maps import ARRAY, HASH, LPM_TRIE, Field, MapSpec

# XDP verdict codes (linux/bpf.h).
XDP_ABORTED = 0
XDP_DROP = 1
XDP_PASS = 2
XDP_TX = 3
XDP_REDIRECT = 4

_VERDICT_NAMES = {
    XDP_ABORTED: "XDP_ABORTED",
    XDP_DROP: "XDP_DROP",
    XDP_PASS: "XDP_PASS",
    XDP_TX: "XDP_TX",
    XDP_REDIRECT: "XDP_REDIRECT",
}


# -- body statements -----------------------------------------------------------


@dataclass(frozen=True)
class Lookup:
    """``value = bpf_map_lookup_elem(&map, &key); if (value) {...} else {...}``

    ``key`` holds P4-syntax expressions over ``ctx``/``meta``; the looked-up
    value fields appear as ``meta.<map>_<field>`` inside ``hit``.
    """

    map_name: str
    key: tuple  # of expression strings
    hit: tuple = ()
    miss: tuple = ()


@dataclass(frozen=True)
class If:
    cond: str  # P4-syntax boolean expression
    then: tuple = ()
    orelse: tuple = ()


@dataclass(frozen=True)
class Assign:
    dst: str  # path, e.g. "ctx.ip.ttl" or "meta.scratch"
    src: str  # P4-syntax expression


@dataclass(frozen=True)
class Return:
    """``return XDP_*;`` — ends packet processing with a verdict."""

    verdict: int
    redirect_expr: Optional[str] = None  # for XDP_REDIRECT


Stmt = Union[Lookup, If, Assign, Return]


@dataclass(frozen=True)
class ScratchVar:
    name: str
    width: int


@dataclass
class XdpProgram:
    """One XDP program: maps + body + scratch state."""

    name: str
    maps: list = field(default_factory=list)
    body: list = field(default_factory=list)
    scratch: list = field(default_factory=list)  # of ScratchVar

    def map(self, name: str) -> MapSpec:
        for spec in self.maps:
            if spec.name == name:
                return spec
        raise KeyError(f"program has no map {name!r}")

    # Convenience constructors mirroring libbpf declarations.
    def hash_map(self, name, key, value, max_entries=1024) -> MapSpec:
        spec = MapSpec(name, HASH, _fields(key), _fields(value), max_entries)
        self.maps.append(spec)
        return spec

    def lpm_map(self, name, key, value, max_entries=1024) -> MapSpec:
        spec = MapSpec(name, LPM_TRIE, _fields(key), _fields(value), max_entries)
        self.maps.append(spec)
        return spec

    def array_map(self, name, key, value, max_entries=64) -> MapSpec:
        spec = MapSpec(name, ARRAY, _fields(key), _fields(value), max_entries)
        self.maps.append(spec)
        return spec


def _fields(pairs) -> tuple:
    return tuple(Field(name, width) for name, width in pairs)


# -- translation ---------------------------------------------------------------

_HEADERS = """
header eth_t {
    bit<48> dst;
    bit<48> src;
    bit<16> proto;
}

header ipv4_t {
    bit<4> version;
    bit<4> ihl;
    bit<8> tos;
    bit<16> total_len;
    bit<16> ident;
    bit<16> frag;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> checksum;
    bit<32> saddr;
    bit<32> daddr;
}

header udp_t {
    bit<16> sport;
    bit<16> dport;
    bit<16> length;
    bit<16> checksum;
}

struct ctx_t {
    eth_t eth;
    ipv4_t ip;
    udp_t udp;
}

struct intrinsic_t {
    bit<9> ingress_ifindex;
    bit<48> rx_timestamp;
}
"""

_PARSER = """
parser XdpParser(inout ctx_t ctx, inout meta_t meta, inout intrinsic_t intr) {
    state start {
        pkt_extract(ctx.eth);
        transition select(ctx.eth.proto) {
            0x0800: parse_ip;
            default: accept;
        }
    }
    state parse_ip {
        pkt_extract(ctx.ip);
        transition select(ctx.ip.protocol) {
            17: parse_udp;
            default: accept;
        }
    }
    state parse_udp {
        pkt_extract(ctx.udp);
        transition accept;
    }
}
"""


class TranslationError(ValueError):
    """The XDP program cannot be expressed on the P4 substrate."""


def translate(program: XdpProgram) -> str:
    """XDP program → P4-subset source text."""
    return _Translator(program).emit()


class _Translator:
    def __init__(self, program: XdpProgram) -> None:
        self.program = program
        self.lookup_keys: dict[str, tuple] = {}
        self._collect_lookups(program.body)

    def _collect_lookups(self, statements) -> None:
        for stmt in statements:
            if isinstance(stmt, Lookup):
                spec = self.program.map(stmt.map_name)
                if len(stmt.key) != len(spec.key):
                    raise TranslationError(
                        f"lookup on {spec.name!r} has {len(stmt.key)} key "
                        f"exprs, map declares {len(spec.key)}"
                    )
                if stmt.map_name in self.lookup_keys:
                    raise TranslationError(
                        f"map {stmt.map_name!r} is looked up twice; the "
                        "table encoding supports one lookup site per map"
                    )
                self.lookup_keys[stmt.map_name] = stmt.key
                self._collect_lookups(stmt.hit)
                self._collect_lookups(stmt.miss)
            elif isinstance(stmt, If):
                self._collect_lookups(stmt.then)
                self._collect_lookups(stmt.orelse)

    # -- emission -------------------------------------------------------------

    def emit(self) -> str:
        return (
            _HEADERS
            + self._meta_struct()
            + _PARSER
            + self._control()
            + "\nPipeline(XdpParser(), XdpMain()) main;\n"
        )

    def _meta_struct(self) -> str:
        lines = ["struct meta_t {"]
        lines.append("    bit<8> xdp_verdict;")
        lines.append("    bit<16> redirect_ifindex;")
        for spec in self.program.maps:
            for value_field in spec.value:
                lines.append(
                    f"    bit<{value_field.width}> {spec.name}_{value_field.name};"
                )
        for var in self.program.scratch:
            lines.append(f"    bit<{var.width}> {var.name};")
        lines.append("}")
        return "\n" + "\n".join(lines) + "\n"

    def _control(self) -> str:
        lines = ["control XdpMain(inout ctx_t ctx, inout meta_t meta, inout intrinsic_t intr) {"]
        lines.append("    action xdp_noop() {")
        lines.append("    }")
        for spec in self.program.maps:
            params = ", ".join(
                f"bit<{f.width}> {f.name}_arg" for f in spec.value
            )
            lines.append(f"    action {spec.action_name}({params}) {{")
            for value_field in spec.value:
                lines.append(
                    f"        meta.{spec.name}_{value_field.name} = {value_field.name}_arg;"
                )
            lines.append("    }")
            match_kind = {HASH: "exact", LPM_TRIE: "lpm", ARRAY: "exact"}[spec.kind]
            key_exprs = self.lookup_keys.get(spec.name)
            if key_exprs is None:
                continue  # declared but never looked up: no table emitted
            lines.append(f"    table {spec.table_name} {{")
            lines.append("        key = {")
            for expr in key_exprs:
                lines.append(f"            {expr}: {match_kind};")
            lines.append("        }")
            lines.append("        actions = {")
            lines.append(f"            {spec.action_name};")
            lines.append("            xdp_noop;")
            lines.append("        }")
            lines.append("        default_action = xdp_noop();")
            lines.append(f"        size = {spec.max_entries};")
            lines.append("    }")
        lines.append("    apply {")
        lines.append(f"        meta.xdp_verdict = {XDP_PASS};")
        for stmt in self.program.body:
            lines.extend(self._stmt(stmt, 2))
        lines.append("    }")
        lines.append("}")
        return "\n" + "\n".join(lines) + "\n"

    def _stmt(self, stmt: Stmt, depth: int) -> list:
        pad = "    " * depth
        if isinstance(stmt, Assign):
            return [f"{pad}{stmt.dst} = {stmt.src};"]
        if isinstance(stmt, Return):
            out = [f"{pad}meta.xdp_verdict = {stmt.verdict};"]
            if stmt.verdict == XDP_REDIRECT:
                if stmt.redirect_expr is None:
                    raise TranslationError("XDP_REDIRECT needs a redirect_expr")
                out.append(f"{pad}meta.redirect_ifindex = {stmt.redirect_expr};")
            if stmt.verdict in (XDP_DROP, XDP_ABORTED):
                out.append(f"{pad}mark_to_drop();")
            out.append(f"{pad}exit;")
            return out
        if isinstance(stmt, If):
            out = [f"{pad}if ({stmt.cond}) {{"]
            for inner in stmt.then:
                out.extend(self._stmt(inner, depth + 1))
            if stmt.orelse:
                out.append(f"{pad}}} else {{")
                for inner in stmt.orelse:
                    out.extend(self._stmt(inner, depth + 1))
            out.append(f"{pad}}}")
            return out
        if isinstance(stmt, Lookup):
            spec = self.program.map(stmt.map_name)
            out = [f"{pad}if ({spec.table_name}.apply().hit) {{"]
            for inner in stmt.hit:
                out.extend(self._stmt(inner, depth + 1))
            if stmt.miss:
                out.append(f"{pad}}} else {{")
                for inner in stmt.miss:
                    out.extend(self._stmt(inner, depth + 1))
            out.append(f"{pad}}}")
            return out
        raise TranslationError(f"unknown statement {stmt!r}")
