"""EbpfFlay: the Flay pipeline driven through the eBPF map API.

Morpheus [51] specializes eBPF programs on every control-plane update;
Flay's claim is that the same incremental machinery applies: map contents
are the control plane, `bpf_map_update_elem` is the update stream, and the
specialized artifact is the program a JIT would compile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.flay import Flay, FlayOptions
from repro.core.incremental import UpdateDecision
from repro.ebpf.maps import MapRuntime
from repro.ebpf.program import XdpProgram, translate


@dataclass
class MapOpResult:
    """A map operation plus the incremental pipeline's decision on it."""

    map_name: str
    op: str
    decision: UpdateDecision

    def describe(self) -> str:
        return f"{self.op} {self.map_name}: {self.decision.describe()}"


class EbpfFlay:
    """Incremental specialization of one XDP program."""

    def __init__(
        self, program: XdpProgram, options: Optional[FlayOptions] = None
    ) -> None:
        self.xdp = program
        self.p4_source = translate(program)
        if options is None:
            options = FlayOptions(target="bmv2")
        self.flay = Flay.from_source(self.p4_source, options)
        self.maps = {}
        for spec in program.maps:
            qualified = f"XdpMain.{spec.table_name}"
            if qualified in self.flay.model.tables:
                self.maps[spec.name] = MapRuntime(spec, qualified)

    # -- bpf(2)-style API ---------------------------------------------------

    def map_update_elem(
        self, map_name: str, key, value, prefix_len: Optional[int] = None
    ) -> MapOpResult:
        runtime = self._map(map_name)
        update = runtime.update_elem(key, value, prefix_len)
        decision = self.flay.process_update(update)
        return MapOpResult(map_name, update.op, decision)

    def map_delete_elem(
        self, map_name: str, key, prefix_len: Optional[int] = None
    ) -> MapOpResult:
        runtime = self._map(map_name)
        update = runtime.delete_elem(key, prefix_len)
        decision = self.flay.process_update(update)
        return MapOpResult(map_name, update.op, decision)

    def _map(self, name: str) -> MapRuntime:
        runtime = self.maps.get(name)
        if runtime is None:
            raise KeyError(
                f"map {name!r} is not looked up by the program "
                "(declared-but-unused maps have no data-plane footprint)"
            )
        return runtime

    # -- results ---------------------------------------------------------------

    @property
    def model(self):
        return self.flay.model

    @property
    def report(self):
        return self.flay.report

    def specialized_source(self) -> str:
        return self.flay.specialized_source()

    def summary(self) -> str:
        return self.flay.summary()
