"""The staged pass-pipeline engine.

The engine expresses Flay's two computations as declared pass sequences
over one shared :class:`~repro.engine.context.EngineContext`:

* the **cold pipeline** — parse → typecheck → data-plane analysis →
  initial specialization → target lowering — run once per program, and
* the **warm path** — apply updates → re-verdict points/tables →
  respecialize → lower — run per control-plane update (or batch).

Progress, cache activity, and forward/recompile outcomes are published as
typed events on the context's :class:`~repro.engine.events.EventBus`;
errors root at :class:`~repro.errors.FlayError` and carry the pipeline
stage that raised them.
"""

from repro.engine.batch import (
    BatchReport,
    CoalescedOp,
    CoalesceResult,
    ConflictGroup,
    GroupDecision,
    WorkerSlice,
    coalesce,
    conflict_components,
    partition,
    schedule_batch,
)
from repro.engine.context import (
    EngineContext,
    EngineOptions,
    EngineTimings,
    SolverBudget,
)
from repro.engine.engine import Engine
from repro.engine.errors import FlayError, OptionsError, SourcePos
from repro.engine.events import (
    BatchMerged,
    BatchScheduled,
    CacheActivity,
    Event,
    EventBus,
    EventLog,
    PassFinished,
    PassStarted,
    TargetCompiled,
    UpdateLowered,
    UpdateProcessed,
)
from repro.engine.passes import Pass, PassManager
from repro.engine.pipeline import (
    BatchDecision,
    UpdateDecision,
    cold_passes,
    warm_passes,
)
