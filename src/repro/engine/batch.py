"""Batched, dependency-aware parallel update processing (the warm path at burst scale).

Real control planes deliver updates in *bursts* — route flaps, table
rollouts — and the per-update warm path serializes them even when they
touch independent tables.  This module is the burst scheduler:

1. **Coalesce** — redundant updates are folded per ``(table, match key)``:
   insert-then-delete cancels, modify-after-insert collapses into the
   insert, repeated modifies keep the last write.  Value-set updates are
   last-write-wins per set.  Coalescing never reorders the surviving
   updates relative to each other (each keeps the input index of the
   operation that anchors it), so replaying the coalesced stream produces
   the exact same control-plane state — including the insertion order an
   exact-match table's precedence depends on.
2. **Partition** — the survivors are split into *conflict groups*: two
   updates share a group iff their tables (or value sets) can influence a
   common program point (the model's control-variable taint index), or are
   linked in the :mod:`repro.ir.deps` table dependency graph.  Groups are
   independent by construction: no program point, control symbol, or memo
   entry is touched by two groups.
3. **Execute** — independent groups run concurrently, on one of three
   interchangeable *executors* (``FlayOptions.executor``, overridable per
   call or via the ``FLAY_EXECUTOR`` environment variable):

   * ``"thread"`` (default) — a :mod:`concurrent.futures` thread pool.
     Each worker gets a private :class:`WorkerSlice` over the shared
     :class:`EngineContext`: a copy-on-write view of the
     delta-substitution memo plus layered verdict/solver caches, so
     nothing shared is written while siblings read.  The hash-consing
     term factory *is* shared (its interning is a single atomic dict
     operation), which keeps term identity — and therefore every
     downstream memo key — consistent across workers.
   * ``"process"`` — one forked worker *process* per group, in waves
     capped at the pool width.  Fork semantics do the heavy lifting: the
     child inherits the whole engine image (terms, caches, its
     pre-built slice) copy-on-write, runs the exact same
     :func:`run_group`, and ships its results back over a pipe as a
     picklable payload — terms ride in a
     :class:`~repro.smt.arena.TermArena`, learned CDCL clauses as plain
     literal lists, stats as dataclasses.  This is the GIL escape hatch:
     group solving runs on real cores.
   * ``"serial"`` — force inline execution on the calling thread (the
     differential-testing baseline).

4. **Merge** — after the pool joins, worker cache deltas are folded back
   into the shared context on the main thread, in deterministic group
   order (first-seen input index), and verdict changes are collected.
   Thread slices graft their overlays directly; process payloads are
   decoded through the shared term factory first (interning makes the
   decoded terms *identical* to what a thread worker would have
   produced), then merged through the same anchor-order fold.  A
   double-counting tripwire checks that per-worker solver/gate stat
   deltas sum exactly to the merged delta.

Results are deterministic and byte-identical to sequential processing
across all executors and worker counts: verdicts and the specialized
program are pure functions of the final control-plane state, and
forwarded updates are lowered in their original input order — not
per-group — so the device sees the exact stream a sequential warm path
would have sent.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.engine.context import EngineContext
from repro.engine.events import BatchMerged, BatchScheduled, TargetCompiled
from repro.engine.gate import GateStats
from repro.engine.queries import QueryEngine
from repro.ir.deps import build_dependency_graph
from repro.runtime.entries import EntryError
from repro.runtime.semantics import (
    DELETE,
    INSERT,
    MODIFY,
    TableAssignment,
    Update,
    ValueSetUpdate,
    encode_table,
    encode_value_set,
)
from repro.smt.arena import TermArena
from repro.smt.solver import SatResult, SolverStats


# ---------------------------------------------------------------------------
# Coalescing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CoalescedOp:
    """One net update surviving coalescing.

    ``anchor`` is the input index that fixes this op's position in the
    coalesced order (for inserts, the index of the insert that determines
    the entry's precedence position); ``sources`` are the input indices of
    every original update folded into it.
    """

    update: object  # Update | ValueSetUpdate
    anchor: int
    sources: tuple


@dataclass
class CoalesceResult:
    ops: list  # CoalescedOps, sorted by anchor
    input_count: int

    @property
    def output_count(self) -> int:
        return len(self.ops)

    @property
    def folded_count(self) -> int:
        """Input updates that no longer appear as their own net op."""
        return self.input_count - len(self.ops)


class _Slot:
    """Per-(table, key) fold state: at most one net delete + one upsert."""

    __slots__ = ("live", "ever_touched", "delete", "upsert")

    def __init__(self) -> None:
        self.live: Optional[bool] = None  # None until the first op
        self.ever_touched = False
        self.delete = None  # (anchor, entry, sources)
        self.upsert = None  # (op, anchor, entry, sources)


def coalesce(
    updates: list,
    resolve_table: Optional[Callable[[str], str]] = None,
    resolve_value_set: Optional[Callable[[str], str]] = None,
) -> CoalesceResult:
    """Fold a burst into its net updates (see the module docstring).

    Within-batch-inconsistent sequences (insert of a live key, modify or
    delete of a key the batch already deleted) raise :class:`EntryError`
    up front — exactly the sequences sequential application would reject —
    before any state is touched, which makes a batch all-or-nothing.
    Validity that depends on pre-batch state (e.g. the first delete of a
    key) is still checked when the net ops apply, as in the sequential
    path.
    """
    table_of = resolve_table if resolve_table is not None else lambda name: name
    vs_of = resolve_value_set if resolve_value_set is not None else lambda name: name
    slots: dict[tuple, _Slot] = {}
    value_sets: dict[str, list] = {}  # name -> [anchor, values, sources]
    for index, update in enumerate(updates):
        if isinstance(update, ValueSetUpdate):
            name = vs_of(update.value_set)
            slot = value_sets.get(name)
            if slot is None:
                value_sets[name] = [index, update.values, [index]]
            else:
                slot[1] = update.values  # last write wins
                slot[2].append(index)
            continue
        table = table_of(update.table)
        key = (table, update.entry.match_key())
        slot = slots.setdefault(key, _Slot())
        if update.op == INSERT:
            if slot.live:
                raise EntryError(
                    f"batch inserts {table} key {key[1]} twice without a delete"
                )
            slot.live = True
            slot.upsert = (INSERT, index, update.entry, [index])
        elif update.op == MODIFY:
            if slot.live is False or (slot.live is None and slot.ever_touched):
                raise EntryError(
                    f"batch modifies {table} key {key[1]} after deleting it"
                )
            if slot.upsert is not None:
                op, anchor, _, sources = slot.upsert
                slot.upsert = (op, anchor, update.entry, sources + [index])
            else:
                slot.upsert = (MODIFY, index, update.entry, [index])
            slot.live = True
        elif update.op == DELETE:
            if slot.live is False:
                raise EntryError(
                    f"batch deletes {table} key {key[1]} twice"
                )
            if slot.upsert is not None and slot.upsert[0] == INSERT:
                # insert-then-delete: the pair vanishes entirely.
                slot.upsert = None
            else:
                if slot.upsert is not None:  # a net modify, now deleted
                    slot.upsert = None
                slot.delete = (index, update.entry, [index])
            slot.live = False
        else:
            raise EntryError(f"unknown update op {update.op!r}")
        slot.ever_touched = True

    ops: list[CoalescedOp] = []
    for (table, _key), slot in slots.items():
        if slot.delete is not None:
            anchor, entry, sources = slot.delete
            ops.append(
                CoalescedOp(Update(table, DELETE, entry), anchor, tuple(sources))
            )
        if slot.upsert is not None:
            op, anchor, entry, sources = slot.upsert
            ops.append(
                CoalescedOp(Update(table, op, entry), anchor, tuple(sources))
            )
    for name, (anchor, values, sources) in value_sets.items():
        ops.append(
            CoalescedOp(ValueSetUpdate(name, tuple(values)), anchor, tuple(sources))
        )
    ops.sort(key=lambda op: op.anchor)
    return CoalesceResult(ops=ops, input_count=len(updates))


# ---------------------------------------------------------------------------
# Conflict partitioning
# ---------------------------------------------------------------------------


def conflict_components(
    model,
    program=None,
    env=None,
    *,
    strict: bool = False,
    precision: str = "flow",
) -> dict[str, str]:
    """Map every table and value set to its conflict-component root.

    Two entities land in the same component when they can taint a common
    program point.  That criterion is semantically complete: symbolic
    execution records *every* control symbol occurring in a point's
    expression, so a table whose entries can influence another table's
    verdict (e.g. by writing a field the other matches on) shares a
    tainted point with it — and any substituted subterm mixing two
    tables' control symbols lives under a point tainted by both, which is
    what makes the per-group memo grafts conflict-free.

    ``strict=True`` additionally merges tables linked by the
    :mod:`repro.ir.deps` match/action dependency graph.  ``precision``
    selects the graph's read/write sets: the historical ``"syntactic"``
    walk (field-level mentions without kill tracking) over-merges
    heavily — on the scion program it collapses 28 taint components into
    one, serializing the whole batch — while the default ``"flow"``
    precision (flow-sensitive per-action effects from
    :mod:`repro.analysis.dataflow.effects`) drops reads that are
    provably preceded by a definite write and so keeps independent
    tables in separate groups.  Either way the edges can never miss a
    conflict the taint index sees, which makes the strict mode a
    differential-testing oracle for the default partition.
    """
    parent: dict[str, str] = {}

    def find(name: str) -> str:
        root = name
        while parent[root] != root:
            root = parent[root]
        while parent[name] != root:
            parent[name], name = root, parent[name]
        return root

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    infos = list(model.tables.items()) + list(model.value_sets.items())
    for name, _info in infos:
        parent[name] = name
    owner_by_pid: dict[str, str] = {}
    for name, info in infos:
        for var in info.control_var_names():
            for pid in model.taint.get(var, ()):
                owner = owner_by_pid.setdefault(pid, name)
                if owner != name:
                    union(owner, name)
    if strict and program is not None:
        try:
            graph = build_dependency_graph(program, env, precision=precision)
        except Exception:
            graph = None  # partial front ends still get taint-based groups
        if graph is not None:
            for edge in graph.edges:
                if edge.src in model.tables and edge.dst in model.tables:
                    union(edge.src, edge.dst)
    return {name: find(name) for name, _info in infos}


@dataclass
class ConflictGroup:
    """One independent unit of warm-path work."""

    index: int
    ops: list  # CoalescedOps, anchor order
    tables: list = field(default_factory=list)  # sorted touched table names
    value_sets: list = field(default_factory=list)

    @property
    def anchor(self) -> int:
        return self.ops[0].anchor if self.ops else 0

    @property
    def source_count(self) -> int:
        return sum(len(op.sources) for op in self.ops)


def partition(ctx: EngineContext, coalesced: CoalesceResult) -> list:
    """Split net updates into conflict groups, ordered by first input index."""
    components = ctx.batch_components
    if components is None:
        components = conflict_components(ctx.model, ctx.program, ctx.env)
        ctx.batch_components = components
    buckets: dict[str, list] = {}
    order: list[str] = []
    for op in coalesced.ops:
        if isinstance(op.update, ValueSetUpdate):
            name = ctx.model.value_set(op.update.value_set).name
        else:
            name = ctx.model.table(op.update.table).name
        root = components[name]
        if root not in buckets:
            buckets[root] = []
            order.append(root)
        buckets[root].append(op)
    groups: list[ConflictGroup] = []
    for index, root in enumerate(order):
        group = ConflictGroup(index=index, ops=buckets[root])
        tables: set = set()
        value_sets: set = set()
        for op in group.ops:
            if isinstance(op.update, ValueSetUpdate):
                value_sets.add(ctx.model.value_set(op.update.value_set).name)
            else:
                tables.add(ctx.model.table(op.update.table).name)
        group.tables = sorted(tables)
        group.value_sets = sorted(value_sets)
        groups.append(group)
    return groups


# ---------------------------------------------------------------------------
# Worker slices — layered caches over the shared context
# ---------------------------------------------------------------------------


class LayeredCache:
    """Read-through overlay on a term-keyed cache dict; writes stay local."""

    def __init__(self, base: dict) -> None:
        self.base = base
        self.delta: dict = {}

    def get(self, key, default=None):
        found = self.delta.get(key)
        if found is not None:
            return found
        return self.base.get(key, default)

    def __getitem__(self, key):
        found = self.get(key)
        if found is None:
            raise KeyError(key)
        return found

    def __setitem__(self, key, value) -> None:
        self.delta[key] = value

    def __contains__(self, key) -> bool:
        return key in self.delta or key in self.base

    def __len__(self) -> int:
        return len(self.base) + len(self.delta)

    def clear(self) -> None:
        """Drop the overlay only (the shared base is not this view's)."""
        self.delta.clear()


class LayeredMemo:
    """Read-through overlay on an ``id()``-keyed memo (simplify memos)."""

    def __init__(self, base: dict) -> None:
        self.base = base
        self.delta: dict = {}

    def __contains__(self, key) -> bool:
        return key in self.delta or key in self.base

    def __getitem__(self, key):
        found = self.delta.get(key)
        if found is not None:
            return found
        return self.base[key]

    def get(self, key, default=None):
        found = self.delta.get(key)
        if found is not None:
            return found
        return self.base.get(key, default)

    def __setitem__(self, key, value) -> None:
        if key not in self.base:
            self.delta[key] = value


class WorkerSlice:
    """Per-worker view of the shared engine state.

    The slice owns everything a conflict group's warm work writes: a
    copy-on-write substitution view, a private query engine whose
    executability/solver/simplify caches are layered over the shared
    ones, and a private CNF encoder (Tseitin variable numbering cannot be
    shared across threads).  The immutable inputs — the data-plane model,
    the control-plane state of *this group's* tables, and the hash-consed
    term factory — are shared.
    """

    def __init__(self, ctx: EngineContext) -> None:
        shared_qe = ctx.query_engine
        self.substitution = ctx.substitution.fork_slice()
        # Fork the shared solver: private encoder + a warm CDCL session
        # pre-loaded with the shared clause database (problem + learned),
        # so slice probes benefit from everything learned before the batch.
        solver = shared_qe.solver.fork_slice()
        solver._results = LayeredCache(shared_qe.solver._results)
        # The verdict gate forks too: shared FDDs (read-only during group
        # execution — all state mutation happened up front on the main
        # thread), overlaid witness records, private counters.
        gate = shared_qe.gate.fork_slice() if shared_qe.gate is not None else None
        self.query_engine = QueryEngine(
            ctx.model,
            solver=solver,
            use_solver=shared_qe.use_solver,
            solver_node_budget=shared_qe.solver_node_budget,
            gate=gate,
            table_verdict_cache=shared_qe.table_verdict_cache,
        )
        self.query_engine._exec_cache = LayeredCache(shared_qe._exec_cache)
        self.query_engine._simplify_memo = LayeredMemo(shared_qe._simplify_memo)
        # The table-verdict memo layers like the exec cache: shared hits
        # are free, slice misses land in the overlay and graft back on
        # merge.  ``_values_memo`` stays slice-private (it may memoize
        # ``None`` for unbounded selectors, which the layered views treat
        # as absent; recomputing per slice is cheap and id-safe).
        self.query_engine._table_verdict_memo = LayeredCache(
            shared_qe._table_verdict_memo
        )

    @property
    def solver_stats_delta(self) -> SolverStats:
        """Query/search stats this slice accumulated (fresh at fork)."""
        return self.query_engine.solver.stats

    @property
    def gate_stats_delta(self) -> Optional[GateStats]:
        """Gate tier counters this slice accumulated (fresh at fork)."""
        gate = self.query_engine.gate
        return gate.stats if gate is not None else None

    def merge_into(self, ctx: EngineContext) -> tuple[int, int, int]:
        """Fold this slice's cache deltas into the shared context.

        Runs on the main thread after the pool joins.  Returns
        ``(memo_entries, verdict_entries, learned_clauses)`` grafted, for
        the :class:`~repro.engine.events.BatchMerged` event.
        """
        memo_entries = ctx.substitution.absorb(self.substitution)
        shared_qe = ctx.query_engine
        qe = self.query_engine
        verdict_entries = (
            len(qe._exec_cache.delta)
            + len(qe.solver._results.delta)
            + len(qe._table_verdict_memo.delta)
        )
        shared_qe._exec_cache.update(qe._exec_cache.delta)
        shared_qe._simplify_memo.update(qe._simplify_memo.delta)
        shared_qe._table_verdict_memo.update(qe._table_verdict_memo.delta)
        shared_qe.solver._results.update(qe.solver._results.delta)
        shared_qe.exec_counter.hit(qe.exec_counter.hits)
        shared_qe.exec_counter.miss(qe.exec_counter.misses)
        shared_qe.table_verdict_counter.hit(qe.table_verdict_counter.hits)
        shared_qe.table_verdict_counter.miss(qe.table_verdict_counter.misses)
        shared = shared_qe.solver
        shared.cache_counter.hit(qe.solver.cache_counter.hits)
        shared.cache_counter.miss(qe.solver.cache_counter.misses)
        shared.cnf_counter.hit(qe.solver.cnf_counter.hits)
        shared.cnf_counter.miss(qe.solver.cnf_counter.misses)
        # Query stats, search stats, probe latencies, and the slice's
        # exportable learned clauses all fold back through the solver.
        learned = shared.absorb_fork(qe.solver)
        # Gate tier counters and witness-record deltas fold back the same
        # way; anchor-order iteration keeps the merge deterministic.
        if qe.gate is not None:
            shared_qe.gate.absorb_fork(qe.gate)
        return memo_entries, verdict_entries, learned


# ---------------------------------------------------------------------------
# Group execution
# ---------------------------------------------------------------------------


@dataclass
class GroupOutcome:
    """Everything one worker computed for its group."""

    group: ConflictGroup
    slice: WorkerSlice
    mapping: dict
    assignments: dict
    point_verdicts: dict
    table_verdicts: dict
    changed_tables: list
    changed_points: list
    affected: set

    @property
    def changed(self) -> list:
        """Batch order: tables before points (the historical format)."""
        return self.changed_tables + self.changed_points


def run_group(ctx: EngineContext, group: ConflictGroup, piece: WorkerSlice) -> GroupOutcome:
    """The warm path of one conflict group, against a worker slice.

    The control-plane state was already mutated on the main thread; this
    function only *reads* shared state (its own group's tables) and
    writes the slice.
    """
    model = ctx.model
    mapping: dict = {}
    assignments: dict = {}
    touched_vars: set = set()
    for op in group.ops:  # anchor order: later value-set writes win
        if isinstance(op.update, ValueSetUpdate):
            info = model.value_set(op.update.value_set)
            mapping.update(
                encode_value_set(info, ctx.state.value_sets[info.name])
            )
            touched_vars.update(info.control_var_names())
    for name in group.tables:
        info = model.tables[name]
        assignment = encode_table(
            info, ctx.state.tables[name], ctx.options.overapprox_threshold
        )
        assignments[name] = assignment
        mapping.update(assignment.mapping)
        touched_vars.update(info.control_var_names())
    piece.substitution.set_many(mapping)

    affected = model.points_for_control_vars(touched_vars)
    point_verdicts: dict = {}
    changed_points: list = []
    for pid in sorted(affected):
        verdict = piece.query_engine.point_verdict(
            model.points[pid], piece.substitution
        )
        if not verdict.same_specialization(ctx.point_verdicts[pid]):
            changed_points.append(pid)
        point_verdicts[pid] = verdict

    table_verdicts: dict = {}
    changed_tables: list = []
    for name in group.tables:
        info = model.tables[name]
        verdict = piece.query_engine.table_verdict(
            info, assignments[name], ctx.state.tables[name]
        )
        if not verdict.same_specialization(ctx.table_verdicts[name]):
            changed_tables.append(name)
        table_verdicts[name] = verdict

    return GroupOutcome(
        group=group,
        slice=piece,
        mapping=mapping,
        assignments=assignments,
        point_verdicts=point_verdicts,
        table_verdicts=table_verdicts,
        changed_tables=changed_tables,
        changed_points=changed_points,
        affected=affected,
    )


# ---------------------------------------------------------------------------
# The process executor — fork, run, ship an arena payload back
# ---------------------------------------------------------------------------

#: Executor strategies ``schedule_batch`` understands.
EXECUTORS = ("serial", "thread", "process")


def resolve_executor(executor: Optional[str], ctx: EngineContext) -> str:
    """Resolution order: explicit argument > ``FLAY_EXECUTOR`` > options."""
    if executor is None:
        executor = os.environ.get("FLAY_EXECUTOR") or None
    if executor is None:
        executor = getattr(ctx.options, "executor", "thread") or "thread"
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown batch executor {executor!r} "
            f"(choose from {', '.join(EXECUTORS)})"
        )
    return executor


def resolve_workers(workers: int) -> int:
    """Pool width; 0 (or negative) auto-detects the machine's CPU count."""
    workers = int(workers)
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


def _fork_context():
    """The fork multiprocessing context, or None where unavailable.

    The process executor *requires* fork-style start: children must
    inherit the engine image (terms, fragments, their pre-built slice)
    rather than re-import it, both because terms refuse to pickle and
    because inheriting the warm caches is the whole point.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def _encode_outcome(outcome: GroupOutcome) -> dict:
    """Flatten one group's results into a picklable payload (child side).

    Everything term-valued rides in one :class:`TermArena`; clause lists,
    verdict dataclasses, stats, and counter deltas are picklable as-is.
    The id-keyed simplify-memo delta is deliberately dropped: its entries
    key on child-process object identities, and it is a pure speed cache
    — output is identical without it.
    """
    piece = outcome.slice
    qe = piece.query_engine
    solver = qe.solver
    arena = TermArena()
    learned: list = []
    if solver.share_encodings and solver.incremental:
        learned = solver.session.export_learned()
    gate = qe.gate
    return {
        "mapping": [
            (arena.encode(var), arena.encode(term))
            for var, term in outcome.mapping.items()
        ],
        "assignments": [
            (
                name,
                [
                    (arena.encode(k), arena.encode(v))
                    for k, v in assignment.mapping.items()
                ],
                assignment.entry_count,
                assignment.overapproximated,
            )
            for name, assignment in outcome.assignments.items()
        ],
        "point_verdicts": outcome.point_verdicts,
        "table_verdicts": outcome.table_verdicts,
        "changed_tables": outcome.changed_tables,
        "changed_points": outcome.changed_points,
        "affected": sorted(outcome.affected),
        "sub_mapping": [
            (arena.encode(var), arena.encode(term))
            for var, term in piece.substitution._mapping.items()
        ],
        "sub_counter": (
            piece.substitution.counter.hits,
            piece.substitution.counter.misses,
            piece.substitution.counter.invalidations,
        ),
        "exec_cache": [
            (arena.encode(term), verdict)
            for term, verdict in qe._exec_cache.delta.items()
        ],
        "solver_results": [
            (arena.encode(term), result.satisfiable, result.model)
            for term, result in solver._results.delta.items()
        ],
        "exec_counter": (qe.exec_counter.hits, qe.exec_counter.misses),
        # The table-verdict memo delta itself stays behind (its keys embed
        # child-process term identities, like the simplify memo); only the
        # counters cross.
        "table_verdict_counter": (
            qe.table_verdict_counter.hits,
            qe.table_verdict_counter.misses,
        ),
        "cache_counter": (solver.cache_counter.hits, solver.cache_counter.misses),
        "cnf_counter": (solver.cnf_counter.hits, solver.cnf_counter.misses),
        "learned": learned,
        "solver_stats": solver.stats,
        "gate_stats": gate.stats if gate is not None else None,
        "gate_records": gate.export_record_delta(arena) if gate is not None else [],
        "terms": arena,
    }


class _RemoteSlice:
    """Merge adapter for a payload computed in a worker process.

    Presents the same ``merge_into`` / stat-delta surface as
    :class:`WorkerSlice`, so the scheduler's anchor-order merge loop is
    executor-agnostic.  Decoding happens here, on the main thread:
    :meth:`TermArena.decode` re-interns every transported term through
    the shared factory, so the grafted cache entries are keyed on
    *identical* objects to what a thread worker would have produced.
    """

    def __init__(self, payload: dict) -> None:
        self._payload = payload
        self.solver_stats_delta: SolverStats = payload["solver_stats"]
        self.gate_stats_delta: Optional[GateStats] = payload["gate_stats"]

    def merge_into(self, ctx: EngineContext) -> tuple[int, int, int]:
        payload = self._payload
        arena = payload["terms"]
        shared_qe = ctx.query_engine
        ctx.substitution.set_many(
            {
                arena.decode(var): arena.decode(term)
                for var, term in payload["sub_mapping"]
            }
        )
        hits, misses, invalidations = payload["sub_counter"]
        ctx.substitution.counter.hit(hits)
        ctx.substitution.counter.miss(misses)
        ctx.substitution.counter.invalidate(invalidations)
        exec_delta = {
            arena.decode(idx): verdict for idx, verdict in payload["exec_cache"]
        }
        result_delta = {
            arena.decode(idx): SatResult(satisfiable, model)
            for idx, satisfiable, model in payload["solver_results"]
        }
        verdict_entries = len(exec_delta) + len(result_delta)
        shared_qe._exec_cache.update(exec_delta)
        shared = shared_qe.solver
        shared._results.update(result_delta)
        hits, misses = payload["exec_counter"]
        shared_qe.exec_counter.hit(hits)
        shared_qe.exec_counter.miss(misses)
        hits, misses = payload["table_verdict_counter"]
        shared_qe.table_verdict_counter.hit(hits)
        shared_qe.table_verdict_counter.miss(misses)
        hits, misses = payload["cache_counter"]
        shared.cache_counter.hit(hits)
        shared.cache_counter.miss(misses)
        hits, misses = payload["cnf_counter"]
        shared.cnf_counter.hit(hits)
        shared.cnf_counter.miss(misses)
        shared.stats.absorb(payload["solver_stats"])
        learned = 0
        if shared.share_encodings and shared.incremental:
            learned = shared.session.import_exported(payload["learned"])
        if payload["gate_stats"] is not None and shared_qe.gate is not None:
            shared_qe.gate.absorb_exported(
                arena, payload["gate_stats"], payload["gate_records"]
            )
        # No memo entries graft in process mode: the substitution memo is
        # id-keyed per process and repopulates on first use.
        return 0, verdict_entries, learned


def _decode_outcome(group: ConflictGroup, payload: dict) -> GroupOutcome:
    """Rebuild a :class:`GroupOutcome` from a worker payload (parent side)."""
    arena = payload["terms"]
    mapping = {
        arena.decode(var): arena.decode(term) for var, term in payload["mapping"]
    }
    assignments = {
        name: TableAssignment(
            table=name,
            mapping={arena.decode(k): arena.decode(v) for k, v in pairs},
            entry_count=entry_count,
            overapproximated=overapproximated,
        )
        for name, pairs, entry_count, overapproximated in payload["assignments"]
    }
    return GroupOutcome(
        group=group,
        slice=_RemoteSlice(payload),
        mapping=mapping,
        assignments=assignments,
        point_verdicts=payload["point_verdicts"],
        table_verdicts=payload["table_verdicts"],
        changed_tables=payload["changed_tables"],
        changed_points=payload["changed_points"],
        affected=set(payload["affected"]),
    )


def _group_worker(conn, ctx: EngineContext, group: ConflictGroup, piece: WorkerSlice):
    """Child-process entry point: run one group, pipe the payload back."""
    try:
        payload = _encode_outcome(run_group(ctx, group, piece))
    except BaseException as exc:  # ship the failure; the parent re-raises
        payload = {
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }
    try:
        conn.send(payload)
    finally:
        conn.close()


def _run_groups_in_processes(
    mp_ctx, ctx: EngineContext, groups: list, slices: list, workers: int
) -> list:
    """Run each group in a forked worker process, in waves of ``workers``.

    Children are spawned with the fork start method, so ``ctx`` and the
    pre-built slices cross the boundary as inherited memory (no pickling
    on the way in); only the result payload is pickled, over a pipe.
    Payloads are received in submission order and decoded in group order,
    which keeps the merge exactly as deterministic as the thread pool's.
    """
    payloads: list = [None] * len(groups)
    pairs = list(zip(groups, slices))
    width = min(workers, len(groups))
    for start in range(0, len(pairs), width):
        running = []
        for group, piece in pairs[start : start + width]:
            receiver, sender = mp_ctx.Pipe(duplex=False)
            proc = mp_ctx.Process(
                target=_group_worker, args=(sender, ctx, group, piece)
            )
            proc.start()
            sender.close()
            running.append((group, receiver, proc))
        for group, receiver, proc in running:
            try:
                payload = receiver.recv()
            except EOFError:
                payload = {"error": "worker exited without sending a result"}
            receiver.close()
            proc.join()
            payloads[group.index] = payload
    outcomes = []
    for group, payload in zip(groups, payloads):
        if "error" in payload:
            raise RuntimeError(
                f"batch worker for conflict group {group.index} failed: "
                f"{payload['error']}\n{payload.get('traceback', '')}"
            )
        outcomes.append(_decode_outcome(group, payload))
    return outcomes


def _verify_merge_accounting(
    merged_solver: SolverStats,
    worker_solver: SolverStats,
    merged_gate: Optional[GateStats],
    worker_gate: Optional[GateStats],
) -> None:
    """The double-counting tripwire behind :class:`BatchMerged`.

    Each worker's solver/gate stats start at zero when its slice forks
    and are absorbed into the shared objects exactly once during the
    merge, so the shared delta across the merge must equal the sum of
    the per-worker deltas — field for field.  A mismatch means a merge
    path absorbed some worker twice (or dropped one) and is a bug.
    """
    for name in ("by_simplify", "by_interval", "by_sat", "by_cache", "probes"):
        merged = getattr(merged_solver, name)
        summed = getattr(worker_solver, name)
        if merged != summed:
            raise AssertionError(
                f"batch merge miscounted SolverStats.{name}: per-worker "
                f"deltas sum to {summed}, merged delta is {merged}"
            )
    if merged_solver.search != worker_solver.search:
        raise AssertionError(
            "batch merge miscounted SAT search stats: per-worker deltas sum "
            f"to {worker_solver.search}, merged delta is {merged_solver.search}"
        )
    if merged_gate is not None and merged_gate != worker_gate:
        raise AssertionError(
            "batch merge miscounted GateStats: per-worker deltas sum to "
            f"{worker_gate}, merged delta is {merged_gate}"
        )


# ---------------------------------------------------------------------------
# Decisions
# ---------------------------------------------------------------------------


@dataclass
class GroupDecision:
    """Per-group outcome recorded on the batch report."""

    index: int
    tables: tuple
    value_sets: tuple
    net_updates: int  # coalesced ops executed
    source_updates: int  # original updates folded into them
    affected_points: int
    changed: list


@dataclass
class BatchReport:
    """Outcome of one scheduled batch (the ``apply_batch`` decision)."""

    update_count: int  # updates as submitted
    coalesced_count: int  # net updates after coalescing
    group_count: int
    workers: int
    executor: str = "thread"  # serial | thread | process
    affected_points: int = 0
    # Table names + pids whose verdict changed, in group order.
    changed: list = field(default_factory=list)
    recompiled: bool = False
    elapsed_ms: float = 0.0
    compile_report: object = None
    groups: list = field(default_factory=list)  # GroupDecisions

    @property
    def forwarded(self) -> bool:
        return not self.recompiled

    @property
    def updates(self) -> int:
        return self.update_count

    def describe(self) -> str:
        action = "RECOMPILE" if self.recompiled else "forward"
        return (
            f"{action}: batch of {self.update_count} updates "
            f"({self.coalesced_count} after coalescing, "
            f"{self.group_count} conflict groups, "
            f"{self.workers} {self.executor} workers), "
            f"{self.affected_points} points checked, "
            f"{len(self.changed)} changed, {self.elapsed_ms:.1f} ms"
        )


# ---------------------------------------------------------------------------
# The scheduler
# ---------------------------------------------------------------------------


def schedule_batch(
    ctx: EngineContext,
    updates: list,
    workers: int = 1,
    executor: Optional[str] = None,
) -> BatchReport:
    """Coalesce, partition, execute, and merge one burst of updates.

    ``workers`` bounds the pool width (0 auto-detects the CPU count);
    ``executor`` picks the strategy (``serial`` / ``thread`` /
    ``process``; None resolves through ``FLAY_EXECUTOR`` and then
    ``ctx.options.executor``).  With one worker (or one group) the
    groups run inline on the calling thread through the same code path,
    so every executor and pool width is byte-identical by construction.
    """
    start = time.perf_counter()
    updates = list(updates)
    workers = resolve_workers(workers)
    executor = resolve_executor(executor, ctx)
    model = ctx.model
    coalesced = coalesce(
        updates,
        resolve_table=lambda name: model.table(name).name,
        resolve_value_set=lambda name: model.value_set(name).name,
    )
    groups = partition(ctx, coalesced)
    if ctx.bus.active:
        ctx.bus.emit(
            BatchScheduled(
                update_count=len(updates),
                coalesced_count=coalesced.output_count,
                group_count=len(groups),
                workers=workers,
                executor=executor,
            )
        )

    # State mutation happens up front, on the calling thread, in anchor
    # order — workers then only read their own group's tables.  (The
    # process executor forks *after* this point, so children inherit the
    # post-mutation state and diagrams.)
    for op in coalesced.ops:
        if isinstance(op.update, ValueSetUpdate):
            ctx.state.apply_value_set_update(op.update)
        else:
            ctx.state.apply_update(op.update)

    slices = [WorkerSlice(ctx) for _ in groups]
    if workers == 1 or len(groups) <= 1 or executor == "serial":
        outcomes = [
            run_group(ctx, group, piece) for group, piece in zip(groups, slices)
        ]
    else:
        mp_ctx = _fork_context() if executor == "process" else None
        if mp_ctx is not None:
            outcomes = _run_groups_in_processes(mp_ctx, ctx, groups, slices, workers)
        else:
            # Thread pool — also the fallback on platforms without fork.
            with ThreadPoolExecutor(max_workers=min(workers, len(groups))) as pool:
                futures = [
                    pool.submit(run_group, ctx, group, piece)
                    for group, piece in zip(groups, slices)
                ]
                outcomes = [future.result() for future in futures]

    # Merge, in deterministic group order.
    merge_start = time.perf_counter()
    shared_solver = ctx.query_engine.solver
    shared_gate = ctx.query_engine.gate
    solver_before = shared_solver.stats.snapshot()
    gate_before = shared_gate.stats.snapshot() if shared_gate is not None else None
    worker_solver = SolverStats()
    worker_gate = GateStats() if shared_gate is not None else None
    changed: list = []
    affected: set = set()
    memo_entries = 0
    verdict_entries = 0
    learned_clauses = 0
    group_decisions: list = []
    for outcome in outcomes:
        worker_solver.absorb(outcome.slice.solver_stats_delta)
        gate_delta = outcome.slice.gate_stats_delta
        if worker_gate is not None and gate_delta is not None:
            worker_gate.absorb(gate_delta)
        ctx.mapping.update(outcome.mapping)
        ctx.table_assignments.update(outcome.assignments)
        grafted_memo, grafted_verdicts, grafted_learned = outcome.slice.merge_into(ctx)
        memo_entries += grafted_memo
        verdict_entries += grafted_verdicts
        learned_clauses += grafted_learned
        ctx.point_verdicts.update(outcome.point_verdicts)
        ctx.table_verdicts.update(outcome.table_verdicts)
        changed.extend(outcome.changed)
        affected |= outcome.affected
        group_decisions.append(
            GroupDecision(
                index=outcome.group.index,
                tables=tuple(outcome.group.tables),
                value_sets=tuple(outcome.group.value_sets),
                net_updates=len(outcome.group.ops),
                source_updates=outcome.group.source_count,
                affected_points=len(outcome.affected),
                changed=outcome.changed,
            )
        )
    merged_solver = shared_solver.stats.since(solver_before)
    merged_gate = (
        shared_gate.stats.since(gate_before) if shared_gate is not None else None
    )
    _verify_merge_accounting(merged_solver, worker_solver, merged_gate, worker_gate)
    if ctx.bus.active:
        ctx.bus.emit(
            BatchMerged(
                group_count=len(groups),
                merged_memo_entries=memo_entries,
                merged_verdict_entries=verdict_entries,
                imported_learned_clauses=learned_clauses,
                elapsed_ms=(time.perf_counter() - merge_start) * 1000,
                worker_solver_queries=worker_solver.total,
                merged_solver_queries=merged_solver.total,
                worker_gate_screens=(
                    worker_gate.screened if worker_gate is not None else 0
                ),
                merged_gate_screens=(
                    merged_gate.screened if merged_gate is not None else 0
                ),
            )
        )

    recompiled = bool(changed) and ctx.respecialize_on_change
    compile_report = None
    if recompiled:
        ctx.specialized_program, ctx.report = ctx.specializer.specialize(
            ctx.point_verdicts, ctx.table_verdicts
        )
        ctx.recompilations += 1
        if ctx.target is not None:
            compile_report = ctx.target.compile(ctx.specialized_program)
            ctx.compile_reports.append(compile_report)
            if ctx.bus.active:
                ctx.bus.emit(
                    TargetCompiled(
                        target=getattr(ctx.target, "name", "target"),
                        modeled_seconds=getattr(
                            compile_report, "modeled_seconds", 0.0
                        ),
                    )
                )

    return BatchReport(
        update_count=len(updates),
        coalesced_count=coalesced.output_count,
        group_count=len(groups),
        workers=workers,
        executor=executor,
        affected_points=len(affected),
        changed=changed,
        recompiled=bool(changed),
        elapsed_ms=(time.perf_counter() - start) * 1000,
        compile_report=compile_report,
        groups=group_decisions,
    )


__all__ = [
    "BatchReport",
    "CoalesceResult",
    "CoalescedOp",
    "ConflictGroup",
    "EXECUTORS",
    "GroupDecision",
    "GroupOutcome",
    "LayeredCache",
    "LayeredMemo",
    "WorkerSlice",
    "coalesce",
    "conflict_components",
    "partition",
    "resolve_executor",
    "resolve_workers",
    "run_group",
    "schedule_batch",
]
