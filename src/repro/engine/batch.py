"""Batched, dependency-aware parallel update processing (the warm path at burst scale).

Real control planes deliver updates in *bursts* — route flaps, table
rollouts — and the per-update warm path serializes them even when they
touch independent tables.  This module is the burst scheduler:

1. **Coalesce** — redundant updates are folded per ``(table, match key)``:
   insert-then-delete cancels, modify-after-insert collapses into the
   insert, repeated modifies keep the last write.  Value-set updates are
   last-write-wins per set.  Coalescing never reorders the surviving
   updates relative to each other (each keeps the input index of the
   operation that anchors it), so replaying the coalesced stream produces
   the exact same control-plane state — including the insertion order an
   exact-match table's precedence depends on.
2. **Partition** — the survivors are split into *conflict groups*: two
   updates share a group iff their tables (or value sets) can influence a
   common program point (the model's control-variable taint index), or are
   linked in the :mod:`repro.ir.deps` table dependency graph.  Groups are
   independent by construction: no program point, control symbol, or memo
   entry is touched by two groups.
3. **Execute** — independent groups run concurrently on a
   :mod:`concurrent.futures` worker pool.  Each worker gets a private
   :class:`WorkerSlice` over the shared :class:`EngineContext`: a
   copy-on-write view of the delta-substitution memo plus layered
   verdict/solver caches, so nothing shared is written while siblings
   read.  The hash-consing term factory *is* shared (its interning is a
   single atomic dict operation), which keeps term identity — and
   therefore every downstream memo key — consistent across workers.
4. **Merge** — after the pool joins, worker cache deltas are folded back
   into the shared context on the main thread, in deterministic group
   order (first-seen input index), and verdict changes are collected.

Results are deterministic and byte-identical to sequential processing:
verdicts and the specialized program are pure functions of the final
control-plane state, and forwarded updates are lowered in their original
input order — not per-group — so the device sees the exact stream a
sequential warm path would have sent.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.engine.context import EngineContext
from repro.engine.events import BatchMerged, BatchScheduled, TargetCompiled
from repro.engine.queries import QueryEngine
from repro.ir.deps import build_dependency_graph
from repro.runtime.entries import EntryError
from repro.runtime.semantics import (
    DELETE,
    INSERT,
    MODIFY,
    Update,
    ValueSetUpdate,
    encode_table,
    encode_value_set,
)


# ---------------------------------------------------------------------------
# Coalescing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CoalescedOp:
    """One net update surviving coalescing.

    ``anchor`` is the input index that fixes this op's position in the
    coalesced order (for inserts, the index of the insert that determines
    the entry's precedence position); ``sources`` are the input indices of
    every original update folded into it.
    """

    update: object  # Update | ValueSetUpdate
    anchor: int
    sources: tuple


@dataclass
class CoalesceResult:
    ops: list  # CoalescedOps, sorted by anchor
    input_count: int

    @property
    def output_count(self) -> int:
        return len(self.ops)

    @property
    def folded_count(self) -> int:
        """Input updates that no longer appear as their own net op."""
        return self.input_count - len(self.ops)


class _Slot:
    """Per-(table, key) fold state: at most one net delete + one upsert."""

    __slots__ = ("live", "ever_touched", "delete", "upsert")

    def __init__(self) -> None:
        self.live: Optional[bool] = None  # None until the first op
        self.ever_touched = False
        self.delete = None  # (anchor, entry, sources)
        self.upsert = None  # (op, anchor, entry, sources)


def coalesce(
    updates: list,
    resolve_table: Optional[Callable[[str], str]] = None,
    resolve_value_set: Optional[Callable[[str], str]] = None,
) -> CoalesceResult:
    """Fold a burst into its net updates (see the module docstring).

    Within-batch-inconsistent sequences (insert of a live key, modify or
    delete of a key the batch already deleted) raise :class:`EntryError`
    up front — exactly the sequences sequential application would reject —
    before any state is touched, which makes a batch all-or-nothing.
    Validity that depends on pre-batch state (e.g. the first delete of a
    key) is still checked when the net ops apply, as in the sequential
    path.
    """
    table_of = resolve_table if resolve_table is not None else lambda name: name
    vs_of = resolve_value_set if resolve_value_set is not None else lambda name: name
    slots: dict[tuple, _Slot] = {}
    value_sets: dict[str, list] = {}  # name -> [anchor, values, sources]
    for index, update in enumerate(updates):
        if isinstance(update, ValueSetUpdate):
            name = vs_of(update.value_set)
            slot = value_sets.get(name)
            if slot is None:
                value_sets[name] = [index, update.values, [index]]
            else:
                slot[1] = update.values  # last write wins
                slot[2].append(index)
            continue
        table = table_of(update.table)
        key = (table, update.entry.match_key())
        slot = slots.setdefault(key, _Slot())
        if update.op == INSERT:
            if slot.live:
                raise EntryError(
                    f"batch inserts {table} key {key[1]} twice without a delete"
                )
            slot.live = True
            slot.upsert = (INSERT, index, update.entry, [index])
        elif update.op == MODIFY:
            if slot.live is False or (slot.live is None and slot.ever_touched):
                raise EntryError(
                    f"batch modifies {table} key {key[1]} after deleting it"
                )
            if slot.upsert is not None:
                op, anchor, _, sources = slot.upsert
                slot.upsert = (op, anchor, update.entry, sources + [index])
            else:
                slot.upsert = (MODIFY, index, update.entry, [index])
            slot.live = True
        elif update.op == DELETE:
            if slot.live is False:
                raise EntryError(
                    f"batch deletes {table} key {key[1]} twice"
                )
            if slot.upsert is not None and slot.upsert[0] == INSERT:
                # insert-then-delete: the pair vanishes entirely.
                slot.upsert = None
            else:
                if slot.upsert is not None:  # a net modify, now deleted
                    slot.upsert = None
                slot.delete = (index, update.entry, [index])
            slot.live = False
        else:
            raise EntryError(f"unknown update op {update.op!r}")
        slot.ever_touched = True

    ops: list[CoalescedOp] = []
    for (table, _key), slot in slots.items():
        if slot.delete is not None:
            anchor, entry, sources = slot.delete
            ops.append(
                CoalescedOp(Update(table, DELETE, entry), anchor, tuple(sources))
            )
        if slot.upsert is not None:
            op, anchor, entry, sources = slot.upsert
            ops.append(
                CoalescedOp(Update(table, op, entry), anchor, tuple(sources))
            )
    for name, (anchor, values, sources) in value_sets.items():
        ops.append(
            CoalescedOp(ValueSetUpdate(name, tuple(values)), anchor, tuple(sources))
        )
    ops.sort(key=lambda op: op.anchor)
    return CoalesceResult(ops=ops, input_count=len(updates))


# ---------------------------------------------------------------------------
# Conflict partitioning
# ---------------------------------------------------------------------------


def conflict_components(
    model, program=None, env=None, *, strict: bool = False
) -> dict[str, str]:
    """Map every table and value set to its conflict-component root.

    Two entities land in the same component when they can taint a common
    program point.  That criterion is semantically complete: symbolic
    execution records *every* control symbol occurring in a point's
    expression, so a table whose entries can influence another table's
    verdict (e.g. by writing a field the other matches on) shares a
    tainted point with it — and any substituted subterm mixing two
    tables' control symbols lives under a point tainted by both, which is
    what makes the per-group memo grafts conflict-free.

    ``strict=True`` additionally merges tables linked by the
    :mod:`repro.ir.deps` match/action dependency graph.  Those edges are
    *syntactic* (field-level reads/writes without kill tracking), so they
    over-merge heavily — on the scion program they collapse 28 taint
    components into one, serializing the whole batch — but they can never
    miss a conflict the taint index sees, which makes the strict mode a
    differential-testing oracle for the default partition.
    """
    parent: dict[str, str] = {}

    def find(name: str) -> str:
        root = name
        while parent[root] != root:
            root = parent[root]
        while parent[name] != root:
            parent[name], name = root, parent[name]
        return root

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    infos = list(model.tables.items()) + list(model.value_sets.items())
    for name, _info in infos:
        parent[name] = name
    owner_by_pid: dict[str, str] = {}
    for name, info in infos:
        for var in info.control_var_names():
            for pid in model.taint.get(var, ()):
                owner = owner_by_pid.setdefault(pid, name)
                if owner != name:
                    union(owner, name)
    if strict and program is not None:
        try:
            graph = build_dependency_graph(program, env)
        except Exception:
            graph = None  # partial front ends still get taint-based groups
        if graph is not None:
            for edge in graph.edges:
                if edge.src in model.tables and edge.dst in model.tables:
                    union(edge.src, edge.dst)
    return {name: find(name) for name, _info in infos}


@dataclass
class ConflictGroup:
    """One independent unit of warm-path work."""

    index: int
    ops: list  # CoalescedOps, anchor order
    tables: list = field(default_factory=list)  # sorted touched table names
    value_sets: list = field(default_factory=list)

    @property
    def anchor(self) -> int:
        return self.ops[0].anchor if self.ops else 0

    @property
    def source_count(self) -> int:
        return sum(len(op.sources) for op in self.ops)


def partition(ctx: EngineContext, coalesced: CoalesceResult) -> list:
    """Split net updates into conflict groups, ordered by first input index."""
    components = ctx.batch_components
    if components is None:
        components = conflict_components(ctx.model, ctx.program, ctx.env)
        ctx.batch_components = components
    buckets: dict[str, list] = {}
    order: list[str] = []
    for op in coalesced.ops:
        if isinstance(op.update, ValueSetUpdate):
            name = ctx.model.value_set(op.update.value_set).name
        else:
            name = ctx.model.table(op.update.table).name
        root = components[name]
        if root not in buckets:
            buckets[root] = []
            order.append(root)
        buckets[root].append(op)
    groups: list[ConflictGroup] = []
    for index, root in enumerate(order):
        group = ConflictGroup(index=index, ops=buckets[root])
        tables: set = set()
        value_sets: set = set()
        for op in group.ops:
            if isinstance(op.update, ValueSetUpdate):
                value_sets.add(ctx.model.value_set(op.update.value_set).name)
            else:
                tables.add(ctx.model.table(op.update.table).name)
        group.tables = sorted(tables)
        group.value_sets = sorted(value_sets)
        groups.append(group)
    return groups


# ---------------------------------------------------------------------------
# Worker slices — layered caches over the shared context
# ---------------------------------------------------------------------------


class LayeredCache:
    """Read-through overlay on a term-keyed cache dict; writes stay local."""

    def __init__(self, base: dict) -> None:
        self.base = base
        self.delta: dict = {}

    def get(self, key, default=None):
        found = self.delta.get(key)
        if found is not None:
            return found
        return self.base.get(key, default)

    def __getitem__(self, key):
        found = self.get(key)
        if found is None:
            raise KeyError(key)
        return found

    def __setitem__(self, key, value) -> None:
        self.delta[key] = value

    def __contains__(self, key) -> bool:
        return key in self.delta or key in self.base

    def __len__(self) -> int:
        return len(self.base) + len(self.delta)


class LayeredMemo:
    """Read-through overlay on an ``id()``-keyed memo (simplify memos)."""

    def __init__(self, base: dict) -> None:
        self.base = base
        self.delta: dict = {}

    def __contains__(self, key) -> bool:
        return key in self.delta or key in self.base

    def __getitem__(self, key):
        found = self.delta.get(key)
        if found is not None:
            return found
        return self.base[key]

    def get(self, key, default=None):
        found = self.delta.get(key)
        if found is not None:
            return found
        return self.base.get(key, default)

    def __setitem__(self, key, value) -> None:
        if key not in self.base:
            self.delta[key] = value


class WorkerSlice:
    """Per-worker view of the shared engine state.

    The slice owns everything a conflict group's warm work writes: a
    copy-on-write substitution view, a private query engine whose
    executability/solver/simplify caches are layered over the shared
    ones, and a private CNF encoder (Tseitin variable numbering cannot be
    shared across threads).  The immutable inputs — the data-plane model,
    the control-plane state of *this group's* tables, and the hash-consed
    term factory — are shared.
    """

    def __init__(self, ctx: EngineContext) -> None:
        shared_qe = ctx.query_engine
        self.substitution = ctx.substitution.fork_slice()
        # Fork the shared solver: private encoder + a warm CDCL session
        # pre-loaded with the shared clause database (problem + learned),
        # so slice probes benefit from everything learned before the batch.
        solver = shared_qe.solver.fork_slice()
        solver._results = LayeredCache(shared_qe.solver._results)
        # The verdict gate forks too: shared FDDs (read-only during group
        # execution — all state mutation happened up front on the main
        # thread), overlaid witness records, private counters.
        gate = shared_qe.gate.fork_slice() if shared_qe.gate is not None else None
        self.query_engine = QueryEngine(
            ctx.model,
            solver=solver,
            use_solver=shared_qe.use_solver,
            solver_node_budget=shared_qe.solver_node_budget,
            gate=gate,
        )
        self.query_engine._exec_cache = LayeredCache(shared_qe._exec_cache)
        self.query_engine._simplify_memo = LayeredMemo(shared_qe._simplify_memo)

    def merge_into(self, ctx: EngineContext) -> tuple[int, int, int]:
        """Fold this slice's cache deltas into the shared context.

        Runs on the main thread after the pool joins.  Returns
        ``(memo_entries, verdict_entries, learned_clauses)`` grafted, for
        the :class:`~repro.engine.events.BatchMerged` event.
        """
        memo_entries = ctx.substitution.absorb(self.substitution)
        shared_qe = ctx.query_engine
        qe = self.query_engine
        verdict_entries = len(qe._exec_cache.delta) + len(qe.solver._results.delta)
        shared_qe._exec_cache.update(qe._exec_cache.delta)
        shared_qe._simplify_memo.update(qe._simplify_memo.delta)
        shared_qe.solver._results.update(qe.solver._results.delta)
        shared_qe.exec_counter.hit(qe.exec_counter.hits)
        shared_qe.exec_counter.miss(qe.exec_counter.misses)
        shared = shared_qe.solver
        shared.cache_counter.hit(qe.solver.cache_counter.hits)
        shared.cache_counter.miss(qe.solver.cache_counter.misses)
        shared.cnf_counter.hit(qe.solver.cnf_counter.hits)
        shared.cnf_counter.miss(qe.solver.cnf_counter.misses)
        # Query stats, search stats, probe latencies, and the slice's
        # exportable learned clauses all fold back through the solver.
        learned = shared.absorb_fork(qe.solver)
        # Gate tier counters and witness-record deltas fold back the same
        # way; anchor-order iteration keeps the merge deterministic.
        if qe.gate is not None:
            shared_qe.gate.absorb_fork(qe.gate)
        return memo_entries, verdict_entries, learned


# ---------------------------------------------------------------------------
# Group execution
# ---------------------------------------------------------------------------


@dataclass
class GroupOutcome:
    """Everything one worker computed for its group."""

    group: ConflictGroup
    slice: WorkerSlice
    mapping: dict
    assignments: dict
    point_verdicts: dict
    table_verdicts: dict
    changed_tables: list
    changed_points: list
    affected: set

    @property
    def changed(self) -> list:
        """Batch order: tables before points (the historical format)."""
        return self.changed_tables + self.changed_points


def run_group(ctx: EngineContext, group: ConflictGroup, piece: WorkerSlice) -> GroupOutcome:
    """The warm path of one conflict group, against a worker slice.

    The control-plane state was already mutated on the main thread; this
    function only *reads* shared state (its own group's tables) and
    writes the slice.
    """
    model = ctx.model
    mapping: dict = {}
    assignments: dict = {}
    touched_vars: set = set()
    for op in group.ops:  # anchor order: later value-set writes win
        if isinstance(op.update, ValueSetUpdate):
            info = model.value_set(op.update.value_set)
            mapping.update(
                encode_value_set(info, ctx.state.value_sets[info.name])
            )
            touched_vars.update(info.control_var_names())
    for name in group.tables:
        info = model.tables[name]
        assignment = encode_table(
            info, ctx.state.tables[name], ctx.options.overapprox_threshold
        )
        assignments[name] = assignment
        mapping.update(assignment.mapping)
        touched_vars.update(info.control_var_names())
    piece.substitution.set_many(mapping)

    affected = model.points_for_control_vars(touched_vars)
    point_verdicts: dict = {}
    changed_points: list = []
    for pid in sorted(affected):
        verdict = piece.query_engine.point_verdict(
            model.points[pid], piece.substitution
        )
        if not verdict.same_specialization(ctx.point_verdicts[pid]):
            changed_points.append(pid)
        point_verdicts[pid] = verdict

    table_verdicts: dict = {}
    changed_tables: list = []
    for name in group.tables:
        info = model.tables[name]
        verdict = piece.query_engine.table_verdict(
            info, assignments[name], ctx.state.tables[name]
        )
        if not verdict.same_specialization(ctx.table_verdicts[name]):
            changed_tables.append(name)
        table_verdicts[name] = verdict

    return GroupOutcome(
        group=group,
        slice=piece,
        mapping=mapping,
        assignments=assignments,
        point_verdicts=point_verdicts,
        table_verdicts=table_verdicts,
        changed_tables=changed_tables,
        changed_points=changed_points,
        affected=affected,
    )


# ---------------------------------------------------------------------------
# Decisions
# ---------------------------------------------------------------------------


@dataclass
class GroupDecision:
    """Per-group outcome recorded on the batch report."""

    index: int
    tables: tuple
    value_sets: tuple
    net_updates: int  # coalesced ops executed
    source_updates: int  # original updates folded into them
    affected_points: int
    changed: list


@dataclass
class BatchReport:
    """Outcome of one scheduled batch (the ``apply_batch`` decision)."""

    update_count: int  # updates as submitted
    coalesced_count: int  # net updates after coalescing
    group_count: int
    workers: int
    affected_points: int
    changed: list  # table names + pids whose verdict changed, group order
    recompiled: bool
    elapsed_ms: float = 0.0
    compile_report: object = None
    groups: list = field(default_factory=list)  # GroupDecisions

    @property
    def forwarded(self) -> bool:
        return not self.recompiled

    @property
    def updates(self) -> int:
        return self.update_count

    def describe(self) -> str:
        action = "RECOMPILE" if self.recompiled else "forward"
        return (
            f"{action}: batch of {self.update_count} updates "
            f"({self.coalesced_count} after coalescing, "
            f"{self.group_count} conflict groups, {self.workers} workers), "
            f"{self.affected_points} points checked, "
            f"{len(self.changed)} changed, {self.elapsed_ms:.1f} ms"
        )


# ---------------------------------------------------------------------------
# The scheduler
# ---------------------------------------------------------------------------


def schedule_batch(ctx: EngineContext, updates: list, workers: int = 1) -> BatchReport:
    """Coalesce, partition, execute, and merge one burst of updates.

    ``workers`` bounds the pool width; with one worker (or one group) the
    groups run inline on the calling thread through the same code path,
    so single- and multi-worker runs are byte-identical by construction.
    """
    start = time.perf_counter()
    updates = list(updates)
    workers = max(1, int(workers))
    model = ctx.model
    coalesced = coalesce(
        updates,
        resolve_table=lambda name: model.table(name).name,
        resolve_value_set=lambda name: model.value_set(name).name,
    )
    groups = partition(ctx, coalesced)
    if ctx.bus.active:
        ctx.bus.emit(
            BatchScheduled(
                update_count=len(updates),
                coalesced_count=coalesced.output_count,
                group_count=len(groups),
                workers=workers,
            )
        )

    # State mutation happens up front, on the calling thread, in anchor
    # order — workers then only read their own group's tables.
    for op in coalesced.ops:
        if isinstance(op.update, ValueSetUpdate):
            ctx.state.apply_value_set_update(op.update)
        else:
            ctx.state.apply_update(op.update)

    slices = [WorkerSlice(ctx) for _ in groups]
    if workers == 1 or len(groups) <= 1:
        outcomes = [
            run_group(ctx, group, piece) for group, piece in zip(groups, slices)
        ]
    else:
        with ThreadPoolExecutor(max_workers=min(workers, len(groups))) as pool:
            futures = [
                pool.submit(run_group, ctx, group, piece)
                for group, piece in zip(groups, slices)
            ]
            outcomes = [future.result() for future in futures]

    # Merge, in deterministic group order.
    merge_start = time.perf_counter()
    changed: list = []
    affected: set = set()
    memo_entries = 0
    verdict_entries = 0
    learned_clauses = 0
    group_decisions: list = []
    for outcome in outcomes:
        ctx.mapping.update(outcome.mapping)
        ctx.table_assignments.update(outcome.assignments)
        grafted_memo, grafted_verdicts, grafted_learned = outcome.slice.merge_into(ctx)
        memo_entries += grafted_memo
        verdict_entries += grafted_verdicts
        learned_clauses += grafted_learned
        ctx.point_verdicts.update(outcome.point_verdicts)
        ctx.table_verdicts.update(outcome.table_verdicts)
        changed.extend(outcome.changed)
        affected |= outcome.affected
        group_decisions.append(
            GroupDecision(
                index=outcome.group.index,
                tables=tuple(outcome.group.tables),
                value_sets=tuple(outcome.group.value_sets),
                net_updates=len(outcome.group.ops),
                source_updates=outcome.group.source_count,
                affected_points=len(outcome.affected),
                changed=outcome.changed,
            )
        )
    if ctx.bus.active:
        ctx.bus.emit(
            BatchMerged(
                group_count=len(groups),
                merged_memo_entries=memo_entries,
                merged_verdict_entries=verdict_entries,
                imported_learned_clauses=learned_clauses,
                elapsed_ms=(time.perf_counter() - merge_start) * 1000,
            )
        )

    recompiled = bool(changed) and ctx.respecialize_on_change
    compile_report = None
    if recompiled:
        ctx.specialized_program, ctx.report = ctx.specializer.specialize(
            ctx.point_verdicts, ctx.table_verdicts
        )
        ctx.recompilations += 1
        if ctx.target is not None:
            compile_report = ctx.target.compile(ctx.specialized_program)
            ctx.compile_reports.append(compile_report)
            if ctx.bus.active:
                ctx.bus.emit(
                    TargetCompiled(
                        target=getattr(ctx.target, "name", "target"),
                        modeled_seconds=getattr(
                            compile_report, "modeled_seconds", 0.0
                        ),
                    )
                )

    return BatchReport(
        update_count=len(updates),
        coalesced_count=coalesced.output_count,
        group_count=len(groups),
        workers=workers,
        affected_points=len(affected),
        changed=changed,
        recompiled=bool(changed),
        elapsed_ms=(time.perf_counter() - start) * 1000,
        compile_report=compile_report,
        groups=group_decisions,
    )


__all__ = [
    "BatchReport",
    "CoalesceResult",
    "CoalescedOp",
    "ConflictGroup",
    "GroupDecision",
    "GroupOutcome",
    "LayeredCache",
    "LayeredMemo",
    "WorkerSlice",
    "coalesce",
    "conflict_components",
    "partition",
    "run_group",
    "schedule_batch",
]
