"""The shared state every pipeline pass reads and writes.

Before this layer existed, the facade smuggled all of this through
constructor arguments: ``Flay`` → ``IncrementalSpecializer`` →
``analyze``/``Specializer``/``QueryEngine``.  Now one
:class:`EngineContext` owns it — the hash-consing table, the long-lived
:class:`~repro.smt.substitute.DeltaSubstitution`, the verdict/CNF caches,
the timing and cache metrics, the solver budget, the target backend, and
the event bus — and passes are plain functions over the context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.engine.events import EventBus
from repro.runtime.semantics import DEFAULT_OVERAPPROX_THRESHOLD


@dataclass(frozen=True)
class EngineOptions:
    """Configuration knobs, mirroring the prototype's command line.

    Exported as ``FlayOptions`` from :mod:`repro.core` (the public name);
    the definition lives here so the engine does not import the facade.
    """

    skip_parser: bool = False  # §4.2: skip parser analysis for big programs
    overapprox_threshold: Optional[int] = DEFAULT_OVERAPPROX_THRESHOLD
    use_solver: bool = True  # allow SAT fallback for executability queries
    prune_parser_tail: bool = True
    # Abstract-interpretation prune pass between typecheck and analysis:
    # folds ground constants and deletes statically-dead branches before
    # symexec/encoding ever see them.  Specialized output is byte-identical
    # either way (``--no-prune`` ablation); pruning only shrinks the cold
    # pipeline's work.  Follows the ``effort`` preset (off at "none").
    prune: bool = True
    target: str = "tofino"  # any registered backend name, or "none"
    effort: str = "full"  # none | dce | full — specialization quality knob
    # Solver budget in CDCL conflicts: None means the QueryEngine defaults.
    solver_budget: Optional[int] = None
    # Legacy knob from the DPLL era (decisions ≈ conflicts there); honoured
    # as a conflict budget when ``solver_budget`` is unset.
    solver_max_decisions: Optional[int] = None
    solver_node_budget: Optional[int] = None
    # Persistent assumption-probing solver session; off = per-query cone
    # replay (the ablation baseline).
    incremental_solver: bool = True
    # Tiered pre-solver verdict gate (match-space FDDs + witness
    # fingerprints); off = every executability query pays substitution,
    # simplification, and — for residual MAYBEs — the CDCL probe pair.
    # Output is byte-identical either way (``--no-fdd-gate`` ablation).
    fdd_gate: bool = True
    # Structural table-verdict memo keyed on the active-entry digest plus
    # selector/hit term identity; off = every warm re-verdict recomputes
    # feasible actions, hit constancy, and per-param constancy from
    # scratch.  Pure ablation: verdicts are byte-identical either way
    # (``--no-table-verdict-cache``).
    table_verdict_cache: bool = True
    # Batch executor strategy: "thread" (worker threads over the shared
    # term factory), "process" (forked worker processes shipping arena
    # payloads back — escapes the GIL), or "serial" (force inline; the
    # differential baseline).  Per-call arguments and the FLAY_EXECUTOR
    # environment variable take precedence over this default.
    executor: str = "thread"


@dataclass
class EngineTimings:
    """The Table 2 measurement surface (exported as ``FlayTimings``)."""

    parse_seconds: float = 0.0
    prune_seconds: float = 0.0
    data_plane_analysis_seconds: float = 0.0
    initial_specialization_seconds: float = 0.0
    update_ms: list = field(default_factory=list)

    def mean_update_ms(self) -> float:
        return sum(self.update_ms) / len(self.update_ms) if self.update_ms else 0.0

    def max_update_ms(self) -> float:
        return max(self.update_ms, default=0.0)


@dataclass(frozen=True)
class SolverBudget:
    """How much search a specialization query may spend before MAYBE."""

    max_conflicts: int
    node_budget: int

    @property
    def max_decisions(self) -> int:
        """Legacy alias from when the budget was counted in decisions."""
        return self.max_conflicts


@dataclass
class EngineContext:
    """Everything the pipeline stages share.

    Cold passes populate the fields top to bottom; the warm path mutates
    the control-plane state, verdicts, and specialization result.  The
    ``warm`` field holds per-run scratch (a ``WarmState``) while a warm
    pipeline executes.
    """

    options: EngineOptions
    bus: EventBus
    # Front end.
    source: Optional[str] = None
    program: Optional[object] = None  # ast.Program
    env: Optional[object] = None  # TypeEnv
    # Prune-pass outcome (an analysis.dataflow.prune.PruneReport, or None
    # when the pass is disabled).
    prune_report: Optional[object] = None
    # Analysis products.
    model: Optional[object] = None  # DataPlaneModel
    state: Optional[object] = None  # ControlPlaneState
    query_engine: Optional[object] = None  # QueryEngine (verdict/CNF caches)
    gate: Optional[object] = None  # VerdictGate (FDDs + witness records)
    specializer: Optional[object] = None  # Specializer
    solver_budget: Optional[SolverBudget] = None
    # The interning table every id()-keyed memo relies on.
    term_factory: Optional[object] = None  # TermFactory
    # Control-plane encoding state (survives across updates).
    substitution: Optional[object] = None  # DeltaSubstitution
    mapping: dict = field(default_factory=dict)  # control symbol → term
    table_assignments: dict = field(default_factory=dict)
    # Current verdicts.
    point_verdicts: dict = field(default_factory=dict)
    table_verdicts: dict = field(default_factory=dict)
    # Specialization result.
    specialized_program: Optional[object] = None
    report: Optional[object] = None  # SpecializationReport
    # Target backend (a repro.targets.base.Target, or None).
    target: Optional[object] = None
    compile_reports: list = field(default_factory=list)
    lowered_updates: list = field(default_factory=list)
    # Conflict components for the batch scheduler (entity → component
    # root), computed lazily from the model and dependency graph on the
    # first ``apply_batch`` — both are fixed per program, so this never
    # invalidates.
    batch_components: Optional[dict] = None
    # Fleet shared store (a repro.fleet.store.SharedStore, or None when the
    # engine runs standalone).  ``store_hit`` records whether the cold
    # pipeline adopted a donated entry instead of computing its own.
    store: Optional[object] = None
    store_hit: bool = False
    # Warm-state snapshot being restored (a snapshot blob dict); consumed
    # by the RestorePass and cleared afterwards.
    restore_blob: Optional[dict] = None
    # Bookkeeping.
    timings: EngineTimings = field(default_factory=EngineTimings)
    update_log: list = field(default_factory=list)
    recompilations: int = 0
    respecialize_on_change: bool = True
    # Per-warm-run scratch (a pipeline.WarmState while a warm run executes).
    warm: Optional[object] = None

    def cache_counters(self) -> list:
        """Every cross-update cache layer's counter, in report order."""
        return [
            self.substitution.counter,
            self.query_engine.exec_counter,
            self.query_engine.table_verdict_counter,
            self.query_engine.solver.cache_counter,
            self.query_engine.solver.cnf_counter,
            self.state.active_counter,
        ]
