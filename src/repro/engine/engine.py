"""The engine: cold pipeline at construction, warm pipeline per update.

``Engine`` is the runtime behind the :class:`repro.core.Flay` facade (and
the legacy ``IncrementalSpecializer`` name).  It owns one
:class:`~repro.engine.context.EngineContext`, runs the declared cold
pass sequence at construction, and runs a declared warm sequence for
every control-plane update, batch, or value-set update.  All state lives
on the context; the engine's attributes are views over it.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.engine.batch import BatchReport, schedule_batch
from repro.engine.context import EngineContext, EngineOptions, EngineTimings
from repro.engine.events import (
    CacheActivity,
    EventBus,
    GateActivity,
    SolverActivity,
    StoreActivity,
    UpdateLowered,
    UpdateProcessed,
)
from repro.engine.passes import PassManager
from repro.engine.pipeline import (
    BatchDecision,
    UpdateDecision,
    WarmState,
    cold_passes,
    restore_passes,
    warm_passes,
)
from repro.ir.metrics import CacheReport
from repro.targets.base import create_target

_UNSET = object()


class Engine:
    """Staged incremental specialization of one P4 program."""

    def __init__(
        self,
        program=None,
        options: Optional[EngineOptions] = None,
        *,
        source: Optional[str] = None,
        env=None,
        device_compiler=_UNSET,
        bus: Optional[EventBus] = None,
        store=None,
        restore_blob: Optional[dict] = None,
    ) -> None:
        if program is None and source is None:
            raise ValueError("Engine needs a program or a source string")
        self.options = options if options is not None else EngineOptions()
        self.ctx = EngineContext(
            options=self.options,
            bus=bus if bus is not None else EventBus(),
            source=source,
            program=program,
            env=env,
            store=store,
            restore_blob=restore_blob,
        )
        if device_compiler is _UNSET:
            # Eager validation: an unknown target name fails here, with the
            # list of registered backends — not deep inside lowering.
            self.ctx.target = create_target(self.options.target)
        else:
            self.ctx.target = device_compiler

        start = time.perf_counter()
        self._cold = PassManager(
            restore_passes() if restore_blob is not None else cold_passes()
        )
        self._warm = {
            mode: PassManager(warm_passes(mode))
            for mode in ("update", "value_set", "batch")
        }
        self._cold.run(self.ctx)
        self._settle_store()
        total = time.perf_counter() - start
        self.ctx.timings.initial_specialization_seconds = max(
            0.0,
            total
            - self.ctx.timings.parse_seconds
            - self.ctx.timings.prune_seconds
            - self.ctx.timings.data_plane_analysis_seconds,
        )

    def _settle_store(self) -> None:
        """Donate to (or report adoption from) the attached shared store."""
        ctx = self.ctx
        if ctx.store is None or ctx.source is None:
            return
        if not ctx.store_hit:
            entry = ctx.store.donate(ctx)
        else:
            entry = ctx.store.get(ctx.source, ctx.options)
        if ctx.bus.active and entry is not None:
            ctx.bus.emit(
                StoreActivity(
                    key=entry.key,
                    hit=ctx.store_hit,
                    shared_fragments=entry.encoder.fragment_count,
                )
            )

    # -- warm-state snapshot ---------------------------------------------------

    def snapshot(self) -> dict:
        """This engine's warm state as one picklable blob.

        See :mod:`repro.engine.snapshot` for the wire format and the
        invalidation rules.  Restore with :meth:`Engine.restore`.
        """
        from repro.engine.snapshot import snapshot_context

        return snapshot_context(self.ctx)

    @classmethod
    def restore(
        cls,
        blob: dict,
        *,
        store=None,
        bus: Optional[EventBus] = None,
        device_compiler=_UNSET,
    ) -> "Engine":
        """Rebuild a warm engine from a :meth:`snapshot` blob.

        The blob carries its own source and options, so the restored
        engine is guaranteed to re-derive the exact program the warm
        state was snapshotted against; an optional shared ``store``
        short-circuits the cold front half the same way it does for a
        fresh engine.
        """
        return cls(
            options=blob["options"],
            source=blob["source"],
            bus=bus,
            store=store,
            device_compiler=device_compiler,
            restore_blob=blob,
        )

    # -- update processing -----------------------------------------------------

    def process_update(self, update) -> UpdateDecision:
        """The per-update fast path; aims for the paper's ~100 ms budget."""
        warm, elapsed_ms = self._run_warm("update", [update])
        assignment = next(iter(warm.assignments.values()), None)
        decision = UpdateDecision(
            update=update,
            forwarded=not warm.changed,
            recompiled=bool(warm.changed),
            affected_points=len(warm.affected),
            changed=warm.changed,
            elapsed_ms=elapsed_ms,
            overapproximated=bool(assignment and assignment.overapproximated),
            compile_report=warm.compile_report,
        )
        self.ctx.update_log.append(decision)
        self.ctx.timings.update_ms.append(decision.elapsed_ms)
        self._finish_warm("update", warm, decision)
        return decision

    def process_value_set_update(self, update) -> UpdateDecision:
        warm, elapsed_ms = self._run_warm("value_set", [update])
        decision = UpdateDecision(
            update=update,
            forwarded=not warm.changed,
            recompiled=bool(warm.changed),
            affected_points=len(warm.affected),
            changed=warm.changed,
            elapsed_ms=elapsed_ms,
            overapproximated=False,
            compile_report=warm.compile_report,
        )
        self.ctx.update_log.append(decision)
        self.ctx.timings.update_ms.append(decision.elapsed_ms)
        self._finish_warm("value_set", warm, decision)
        return decision

    def process_batch(self, updates: list) -> BatchDecision:
        """Process a burst as one unit, respecializing at most once.

        This is the §4.2 burst scenario: a thousand semantics-preserving
        route insertions should be waved through with one decision.
        """
        warm, elapsed_ms = self._run_warm("batch", list(updates))
        decision = BatchDecision(
            update_count=len(warm.updates),
            recompiled=bool(warm.changed),
            changed=warm.changed,
            affected_points=len(warm.affected),
            elapsed_ms=elapsed_ms,
            compile_report=warm.compile_report,
        )
        self.ctx.timings.update_ms.append(decision.elapsed_ms)
        self._finish_warm("batch", warm, decision)
        return decision

    def apply_batch(
        self, updates: list, workers: int = 1, executor: str = None
    ) -> BatchReport:
        """Process a burst through the batch scheduler (coalesce + groups).

        Unlike :meth:`process_batch` — which re-encodes every touched table
        and re-checks every affected point in one sequential sweep — this
        path coalesces redundant updates away, partitions the survivors
        into independent conflict groups, and runs the groups on a worker
        pool of the given width (``workers=0`` auto-detects the CPU
        count).  ``executor`` picks the pool flavour (``serial`` /
        ``thread`` / ``process``; None resolves through ``FLAY_EXECUTOR``
        and then the engine options).  The outcome is deterministic and
        byte-identical across executors and worker counts; forwarded
        updates are lowered in their original submission order, exactly
        as a sequential warm path would have sent them.
        """
        ctx = self.ctx
        updates = list(updates)
        baseline = (
            [c.snapshot() for c in ctx.cache_counters()] if ctx.bus.active else None
        )
        solver_before = (
            ctx.query_engine.solver.stats.snapshot() if ctx.bus.active else None
        )
        gate_before = (
            ctx.gate.snapshot() if ctx.bus.active and ctx.gate is not None else None
        )
        report = schedule_batch(ctx, updates, workers=workers, executor=executor)
        if baseline is not None:
            self._emit_activity(baseline, solver_before, gate_before)
        ctx.update_log.append(report)
        ctx.timings.update_ms.append(report.elapsed_ms)
        if not report.recompiled and ctx.target is not None:
            # The device still needs every submitted write (coalescing is a
            # verdict-side optimization), in the order it was submitted.
            for lowered in ctx.target.lower_batch(updates):
                ctx.lowered_updates.append(lowered)
                if ctx.bus.active:
                    ctx.bus.emit(
                        UpdateLowered(target=lowered.target, table=lowered.table)
                    )
        if ctx.bus.active:
            ctx.bus.emit(
                UpdateProcessed(
                    kind="batch",
                    forwarded=report.forwarded,
                    recompiled=report.recompiled,
                    update_count=report.update_count,
                    affected_points=report.affected_points,
                    changed=len(report.changed),
                    elapsed_ms=report.elapsed_ms,
                )
            )
        return report

    def _run_warm(self, mode: str, updates: list) -> tuple:
        ctx = self.ctx
        baseline = (
            [c.snapshot() for c in ctx.cache_counters()] if ctx.bus.active else None
        )
        solver_before = (
            ctx.query_engine.solver.stats.snapshot() if ctx.bus.active else None
        )
        gate_before = (
            ctx.gate.snapshot() if ctx.bus.active and ctx.gate is not None else None
        )
        start = time.perf_counter()
        ctx.warm = WarmState(updates=updates, mode=mode)
        try:
            self._warm[mode].run(ctx)
            warm = ctx.warm
        finally:
            ctx.warm = None
        elapsed_ms = (time.perf_counter() - start) * 1000
        if baseline is not None:
            self._emit_activity(baseline, solver_before, gate_before)
        return warm, elapsed_ms

    def _emit_activity(self, baseline, solver_before, gate_before=None) -> None:
        """Emit per-run cache and SAT-core deltas (bus known to be active)."""
        ctx = self.ctx
        for counter, before in zip(ctx.cache_counters(), baseline):
            delta = counter.since(before)
            if delta.lookups or delta.invalidations:
                ctx.bus.emit(
                    CacheActivity(
                        cache=delta.name,
                        hits=delta.hits,
                        misses=delta.misses,
                        invalidations=delta.invalidations,
                    )
                )
        if solver_before is not None:
            stats = ctx.query_engine.solver.stats.since(solver_before)
            if stats.probes:
                ctx.bus.emit(
                    SolverActivity(
                        probes=stats.probes,
                        decisions=stats.search.decisions,
                        conflicts=stats.search.conflicts,
                        propagations=stats.search.propagations,
                        learned=stats.search.learned,
                        restarts=stats.search.restarts,
                        probe_us=stats.probe_us_total,
                    )
                )
        if gate_before is not None and ctx.gate is not None:
            delta = ctx.gate.snapshot().since(gate_before)
            if delta.screened or delta.fdd_fast_inserts or delta.fdd_rebuilds:
                ctx.bus.emit(
                    GateActivity(
                        screened=delta.screened,
                        witness_hits=delta.witness_hits,
                        exec_cache_hits=delta.exec_cache_hits,
                        interval_decided=delta.interval_decided,
                        witness_evals=delta.witness_evals,
                        solver_fallbacks=delta.solver_fallbacks,
                        harvested=delta.harvested,
                        fdd_fast_inserts=delta.fdd_fast_inserts,
                        fdd_rebuilds=delta.fdd_rebuilds,
                    )
                )

    def _finish_warm(self, mode: str, warm: WarmState, decision) -> None:
        """Forward-path lowering plus the outcome event."""
        ctx = self.ctx
        recompiled = bool(warm.changed)
        if not recompiled and ctx.target is not None:
            for update in warm.updates:
                lowered = ctx.target.lower_update(update)
                ctx.lowered_updates.append(lowered)
                if ctx.bus.active:
                    ctx.bus.emit(
                        UpdateLowered(target=lowered.target, table=lowered.table)
                    )
        if ctx.bus.active:
            ctx.bus.emit(
                UpdateProcessed(
                    kind=mode,
                    forwarded=not recompiled,
                    recompiled=recompiled,
                    update_count=len(warm.updates),
                    affected_points=len(warm.affected),
                    changed=len(warm.changed),
                    elapsed_ms=decision.elapsed_ms,
                )
            )

    # -- re-derivation helpers (used by equivalence oracles) -------------------

    def _encode_initial(self) -> None:
        """Re-encode every table/value set from the current state."""
        from repro.runtime.semantics import encode_table, encode_value_set

        ctx = self.ctx
        for name, info in ctx.model.tables.items():
            assignment = encode_table(
                info, ctx.state.tables[name], ctx.options.overapprox_threshold
            )
            ctx.table_assignments[name] = assignment
            ctx.mapping.update(assignment.mapping)
            ctx.table_verdicts[name] = ctx.query_engine.table_verdict(
                info, assignment, ctx.state.tables[name]
            )
        for name, info in ctx.model.value_sets.items():
            ctx.mapping.update(
                encode_value_set(info, ctx.state.value_sets[name])
            )

    def _evaluate_all_points(self) -> None:
        ctx = self.ctx
        ctx.substitution.set_many(ctx.mapping)
        for pid, point in ctx.model.points.items():
            ctx.point_verdicts[pid] = ctx.query_engine.point_verdict(
                point, ctx.substitution
            )

    # -- introspection ---------------------------------------------------------

    @property
    def events(self) -> EventBus:
        return self.ctx.bus

    @property
    def forwarded_count(self) -> int:
        return sum(1 for d in self.ctx.update_log if d.forwarded)

    @property
    def recompiled_count(self) -> int:
        return sum(1 for d in self.ctx.update_log if d.recompiled)

    def mean_update_ms(self) -> float:
        log = self.ctx.update_log
        if not log:
            return 0.0
        return sum(d.elapsed_ms for d in log) / len(log)

    def cache_stats(self) -> CacheReport:
        """Hit/miss/invalidation counters for every cross-update cache layer."""
        report = CacheReport()
        for counter in self.ctx.cache_counters():
            report.add(counter)
        return report

    def solver_stats(self):
        """Query-layer and SAT-core counters (a ``SolverStats``)."""
        return self.ctx.query_engine.solver.stats

    @property
    def gate(self):
        """The verdict gate, or None under ``--no-fdd-gate``."""
        return self.ctx.gate

    def gate_stats(self):
        """Gate tier counters (a ``GateStats``), or None when gated off."""
        return self.ctx.gate.snapshot() if self.ctx.gate is not None else None

    @property
    def prune_report(self):
        """The prune pass's report, or None under ``--no-prune``."""
        return self.ctx.prune_report

    # -- context views (the pre-engine attribute surface) ----------------------
    # Everything below delegates to the context so code written against the
    # old IncrementalSpecializer attributes keeps working unchanged.

    @property
    def program(self):
        return self.ctx.program

    @property
    def env(self):
        return self.ctx.env

    @property
    def model(self):
        return self.ctx.model

    @property
    def state(self):
        return self.ctx.state

    @property
    def engine(self):
        """The query engine (historical name)."""
        return self.ctx.query_engine

    @property
    def specializer(self):
        return self.ctx.specializer

    @property
    def substitution(self):
        return self.ctx.substitution

    @property
    def mapping(self) -> dict:
        return self.ctx.mapping

    @property
    def table_assignments(self) -> dict:
        return self.ctx.table_assignments

    @property
    def point_verdicts(self) -> dict:
        return self.ctx.point_verdicts

    @property
    def table_verdicts(self) -> dict:
        return self.ctx.table_verdicts

    @property
    def update_log(self) -> list:
        return self.ctx.update_log

    @property
    def recompilations(self) -> int:
        return self.ctx.recompilations

    @property
    def compile_reports(self) -> list:
        return self.ctx.compile_reports

    @property
    def lowered_updates(self) -> list:
        return self.ctx.lowered_updates

    @property
    def specialized_program(self):
        return self.ctx.specialized_program

    @property
    def report(self):
        return self.ctx.report

    @property
    def timings(self) -> EngineTimings:
        return self.ctx.timings

    @property
    def threshold(self):
        return self.ctx.options.overapprox_threshold

    @property
    def device_compiler(self):
        return self.ctx.target

    @device_compiler.setter
    def device_compiler(self, target) -> None:
        self.ctx.target = target

    @property
    def _respecialize_on_change(self) -> bool:
        return self.ctx.respecialize_on_change

    @_respecialize_on_change.setter
    def _respecialize_on_change(self, value: bool) -> None:
        self.ctx.respecialize_on_change = value
