"""Engine-facing view of the structured error layer.

The actual definitions live in the leaf module :mod:`repro.errors` (so the
lowest layers can subclass :class:`FlayError` without import cycles); this
module re-exports them under the engine namespace alongside the pipeline
stage constants.
"""

from repro.errors import (
    FlayError,
    OptionsError,
    SourcePos,
    STAGE_ANALYSIS,
    STAGE_INTERPRET,
    STAGE_LOWER,
    STAGE_PARSE,
    STAGE_QUERY,
    STAGE_RUNTIME,
    STAGE_SPECIALIZE,
    STAGE_TYPECHECK,
)

__all__ = [
    "FlayError",
    "OptionsError",
    "SourcePos",
    "STAGE_ANALYSIS",
    "STAGE_INTERPRET",
    "STAGE_LOWER",
    "STAGE_PARSE",
    "STAGE_QUERY",
    "STAGE_RUNTIME",
    "STAGE_SPECIALIZE",
    "STAGE_TYPECHECK",
]
