"""Typed engine events and the bus that carries them.

Everything the engine wants to tell the outside world — pass start/end,
cache hit/miss activity, update forwarded vs. recompiled, target compiles
— is published as a frozen dataclass on an :class:`EventBus`.  The CLI's
``--stats`` flag, the benchmarks, and the CI smoke job subscribe an
:class:`EventLog` instead of reaching into pipeline internals.

The bus is deliberately cheap when nobody listens: hot paths guard event
construction on :attr:`EventBus.active`, so a subscriber-free pipeline
pays one attribute check per would-be event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Type


@dataclass(frozen=True)
class Event:
    """Base class of every engine event."""


@dataclass(frozen=True)
class PassStarted(Event):
    """A pipeline pass began executing."""

    pass_name: str
    stage: str  # "cold" | "warm"


@dataclass(frozen=True)
class PassFinished(Event):
    """A pipeline pass finished executing."""

    pass_name: str
    stage: str
    elapsed_ms: float


@dataclass(frozen=True)
class CacheActivity(Event):
    """Hit/miss/invalidation delta of one cache layer over one warm run."""

    cache: str
    hits: int
    misses: int
    invalidations: int


@dataclass(frozen=True)
class UpdateProcessed(Event):
    """Outcome of one warm run (single update, value-set update, or batch)."""

    kind: str  # "update" | "value_set" | "batch"
    forwarded: bool
    recompiled: bool
    update_count: int
    affected_points: int
    changed: int
    elapsed_ms: float


@dataclass(frozen=True)
class UpdateLowered(Event):
    """A forwarded update was handed to the target backend untouched."""

    target: str
    table: Optional[str]


@dataclass(frozen=True)
class TargetCompiled(Event):
    """The target backend (re)compiled a specialized program."""

    target: str
    modeled_seconds: float


@dataclass(frozen=True)
class BatchScheduled(Event):
    """The batch scheduler coalesced and partitioned a burst of updates."""

    update_count: int  # updates as submitted
    coalesced_count: int  # net updates after coalescing
    group_count: int  # independent conflict groups
    workers: int  # worker-pool width requested
    executor: str = "thread"  # serial | thread | process


@dataclass(frozen=True)
class BatchMerged(Event):
    """Worker cache deltas were folded back into the shared context.

    The ``worker_*``/``merged_*`` pairs are the merge's double-counting
    tripwire: per-worker stat deltas are absorbed into the shared
    solver/gate exactly once each, so the sums must match the shared
    deltas — the event refuses to construct otherwise.
    """

    group_count: int
    merged_memo_entries: int  # substitution memo entries grafted
    merged_verdict_entries: int  # solver/executability cache entries grafted
    elapsed_ms: float
    imported_learned_clauses: int = 0  # CDCL clauses folded into the session
    worker_solver_queries: int = 0  # sum of per-worker SolverStats.total
    merged_solver_queries: int = 0  # shared SolverStats.total delta over the merge
    worker_gate_screens: int = 0  # sum of per-worker GateStats.screened
    merged_gate_screens: int = 0  # shared GateStats.screened delta over the merge

    def __post_init__(self) -> None:
        if self.worker_solver_queries != self.merged_solver_queries:
            raise ValueError(
                "batch merge double-counted solver stats: workers sum to "
                f"{self.worker_solver_queries} queries, merged delta is "
                f"{self.merged_solver_queries}"
            )
        if self.worker_gate_screens != self.merged_gate_screens:
            raise ValueError(
                "batch merge double-counted gate stats: workers sum to "
                f"{self.worker_gate_screens} screens, merged delta is "
                f"{self.merged_gate_screens}"
            )


@dataclass(frozen=True)
class GateActivity(Event):
    """Verdict-gate tier activity over one warm run (delta counters).

    ``screened`` is the number of executability queries offered to the
    gate; ``witness_hits`` were resolved pre-substitution from witness
    fingerprints (tier 2a), ``interval_decided``/``witness_evals`` by the
    non-solver tiers over the recomputed term, and ``solver_fallbacks``
    reached the CDCL probe pair.  The ``fdd_*`` counters describe diagram
    maintenance during the run.
    """

    screened: int
    witness_hits: int
    exec_cache_hits: int
    interval_decided: int
    witness_evals: int
    solver_fallbacks: int
    harvested: int
    fdd_fast_inserts: int
    fdd_rebuilds: int


@dataclass(frozen=True)
class SolverActivity(Event):
    """SAT-core search effort spent over one warm run (delta counters)."""

    probes: int  # queries that reached the SAT core
    decisions: int
    conflicts: int
    propagations: int
    learned: int  # clauses learned
    restarts: int
    probe_us: float  # wall time inside the SAT core, µs


@dataclass(frozen=True)
class StoreActivity(Event):
    """One engine's cold pipeline consulted the fleet shared store."""

    key: str  # content hash of (source, cold-relevant options)
    hit: bool  # adopted a donated entry vs. computed and donated
    shared_fragments: int  # encoder CNF fragments visible after attach


@dataclass(frozen=True)
class SnapshotRestored(Event):
    """An engine rebuilt its warm state from a snapshot blob."""

    memo_entries: int  # substitution memo entries restored
    learned_clauses: int  # session clause-database size restored
    witness_records: int  # gate witness fingerprints restored
    replayed_roots: int  # encoder roots replayed (0 = attached shared)


@dataclass(frozen=True)
class FleetSwitchReplayed(Event):
    """One switch finished consuming one churn burst in a fleet replay."""

    switch: int
    burst_id: int
    update_count: int
    recompiled: bool
    elapsed_ms: float


class EventBus:
    """A synchronous fan-out bus for engine events."""

    def __init__(self) -> None:
        self._subscribers: list[Callable[[Event], None]] = []

    @property
    def active(self) -> bool:
        """True when at least one subscriber listens (guard for hot paths)."""
        return bool(self._subscribers)

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Event], None]) -> None:
        self._subscribers.remove(callback)

    def emit(self, event: Event) -> None:
        for callback in self._subscribers:
            callback(event)

    def attach_log(self) -> "EventLog":
        """Subscribe and return a fresh :class:`EventLog`."""
        log = EventLog()
        self.subscribe(log)
        return log


class EventLog:
    """A recording subscriber: keeps every event, queryable by type."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __call__(self, event: Event) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def of_type(self, event_type: Type[Event]) -> list[Event]:
        return [e for e in self.events if isinstance(e, event_type)]

    def count(self, event_type: Type[Event]) -> int:
        return sum(1 for e in self.events if isinstance(e, event_type))

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def clear(self) -> None:
        self.events.clear()

    def summary(self) -> str:
        """One line per event type with its count, for the CLI."""
        counts: dict[str, int] = {}
        for event in self.events:
            name = type(event).__name__
            counts[name] = counts.get(name, 0) + 1
        if not counts:
            return "no events"
        return ", ".join(f"{name}: {n}" for name, n in sorted(counts.items()))
