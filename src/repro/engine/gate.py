"""The tiered pre-solver verdict gate: witness screening over match-space FDDs.

After PR 5, every warm executability query still pays substitution +
simplification + (for the residual MAYBEs) a CDCL assumption probe, even
though the common control-plane update lands in key space disjoint from
every tainted path and changes no verdict at all.  This module answers
that common case with O(lookup) work:

**Tier 2a — witness fingerprints (the fast path).**  Whenever the slow
path decides a point is MAYBE it has, by definition, two *witnesses*: a
model making the point's expression true and a model making it false.
The gate harvests both from the solver and records, per witness, a
*fingerprint*: for every table the point is tainted by, the identity of
the table's FDD leaf (the winning ``(action, args)``, or MISS) at the
witness's concrete key values — plus each dependent value set's tuple
and each dependent table's overapproximation status.  On the next update
touching the point, the gate recomputes the fingerprint against the
*current* diagrams (a handful of FDD lookups).  If nothing changed, the
expression's value at both witnesses is provably unchanged — a point's
post-substitution term is a function of its taint deps' table functions
at the witness's key values — so both witnesses still stand, the verdict
is still MAYBE, and the stored verdict is returned **without touching
the substitution, the simplifier, or the solver**.

**Tier 1 — interval screen.**  When the fingerprint misses (or the point
is not MAYBE), the term is recomputed and the existing interval domain
(:mod:`repro.smt.interval`) gets the first shot; a definite answer
decides the verdict with no solver dispatch.  This is the same interval
layer :meth:`Solver.check_sat` runs internally, so the decided verdict
is identical to the ungated path's by construction.

**Tier 2b — witness evaluation.**  Still no solver: the recomputed term
is concretely evaluated under the stored witness models (missing
variables default to zero, matching how the models were harvested).  If
the positive witness still evaluates true and the negative still false,
the verdict is MAYBE — a sound, complete-procedure-identical answer for
the price of two term evaluations.  Successful harvests also feed a
small per-table **witness-model pool**, and record-less points — most
importantly hunt-retired monster value terms, which would otherwise pay
the full slow path on every re-verdict forever — *lazily* borrow pool
models as candidate witnesses: two that evaluate the term differently
are a complete certificate, so the point graduates to tier-2a screening
without ever being probe-eligible.

**Tier 3 — CDCL fallback.**  The exact probe pair the ungated path runs
(``check_sat(t)`` / ``check_sat(¬t)``), with fresh witnesses harvested
from the models.

Every tier returns precisely what the ungated path would return — tiers
1/3 *are* the ungated decision layers, and tiers 2a/2b only ever
short-circuit to MAYBE when two concrete witnesses prove MAYBE — which
is what makes ``--no-fdd-gate`` a pure ablation: byte-identical output,
different speed.

Batch workers fork the gate alongside the solver session: witness
records are a copy-on-write overlay (conflict groups partition program
points, so overlays never collide) merged back in anchor order; the
FDDs themselves are only mutated on the main thread, before workers
start, by the :class:`~repro.runtime.semantics.TableState` update hooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.smt import interval, terms as T
from repro.smt.simplify import constant_value
from repro.smt.fdd import FddLeaf, TableFdd
from repro.smt.sat import SolverBudgetExceeded

# Re-stated here (not imported from queries) to avoid an import cycle.
ALWAYS = "always"
NEVER = "never"
MAYBE = "maybe"

#: Fingerprint component for an overapproximated dependency: while a
#: table is overapproximated its control symbols map to the stable
#: ``!any`` data vars, so its contribution to the point's term is fixed.
_OVERAPPROX = ("overapprox",)


class _ZeroDefault(dict):
    """Witness model with absent variables reading as zero.

    Solver models only assign the variables of the simplified term; key
    terms may mention variables the simplifier eliminated.  Defaulting
    them to zero is sound because the *same* completed assignment is
    used at harvest time and at every later screen — the fingerprint
    argument only needs one fixed point per witness.
    """

    def __missing__(self, key) -> int:
        return 0


@dataclass
class WitnessRecord:
    """One MAYBE point's cached verdict plus the evidence that pins it.

    ``pos_keys``/``neg_keys`` cache each dependency table's key values
    under the witness models.  Models are frozen at harvest time and key
    terms are fixed per table, so the values never change for the life
    of the record — caching them turns a screen into pure FDD lookups
    (no term evaluation on the hot path).
    """

    verdict: object  # the frozen PointVerdict to replay
    term: object  # the simplified term the witnesses certify
    pos_model: _ZeroDefault
    neg_model: _ZeroDefault
    pos_keys: dict  # table name → tuple of concrete key values
    neg_keys: dict
    fp_pos: tuple
    fp_neg: tuple


class _RecordStore:
    """The main gate's witness records (plain dict semantics)."""

    def __init__(self) -> None:
        self.map: dict = {}

    def get(self, pid: str):
        return self.map.get(pid)

    def set(self, pid: str, record: WitnessRecord) -> None:
        self.map[pid] = record

    def drop(self, pid: str) -> None:
        self.map.pop(pid, None)


class _RecordOverlay:
    """A worker slice's copy-on-write view (None entries are tombstones)."""

    def __init__(self, base) -> None:
        self.base = base
        self.delta: dict = {}

    def get(self, pid: str):
        if pid in self.delta:
            return self.delta[pid]
        return self.base.get(pid)

    def set(self, pid: str, record: WitnessRecord) -> None:
        self.delta[pid] = record

    def drop(self, pid: str) -> None:
        self.delta[pid] = None


@dataclass
class GateStats:
    """Per-tier gate decision counters (the ``--stats`` surface).

    ``screened`` counts executability queries offered to the gate;
    ``witness_hits`` resolved before substitution (tier 2a),
    ``exec_cache_hits``/``interval_decided``/``witness_evals`` resolved
    after substitution but before the solver (tiers 0/1/2b), and
    ``solver_fallbacks`` reached the probe pair (tier 3).  The ``fdd_*``
    counters describe diagram maintenance.
    """

    screened: int = 0
    witness_hits: int = 0
    exec_cache_hits: int = 0
    interval_decided: int = 0
    witness_evals: int = 0
    solver_fallbacks: int = 0
    budget_maybes: int = 0
    harvested: int = 0
    lazy_harvests: int = 0
    table_verdict_hits: int = 0
    table_verdict_misses: int = 0
    fdd_fast_inserts: int = 0
    fdd_rebuilds: int = 0
    fdd_opaque: int = 0
    fdd_banded: int = 0

    @property
    def solver_free(self) -> int:
        """Queries resolved without dispatching the probe pair."""
        return (
            self.witness_hits
            + self.exec_cache_hits
            + self.interval_decided
            + self.witness_evals
        )

    def snapshot(self) -> "GateStats":
        return GateStats(**{f: getattr(self, f) for f in _FIELDS})

    def since(self, baseline: "GateStats") -> "GateStats":
        return GateStats(
            **{f: getattr(self, f) - getattr(baseline, f) for f in _FIELDS}
        )

    def absorb(self, other: "GateStats") -> None:
        for f in _FIELDS:
            setattr(self, f, getattr(self, f) + getattr(other, f))

    def describe(self) -> str:
        screened = self.screened or 1
        lines = [
            (
                f"screens: {self.screened} "
                f"(witness {self.witness_hits}, cached {self.exec_cache_hits}, "
                f"interval {self.interval_decided}, eval {self.witness_evals}, "
                f"solver {self.solver_fallbacks})"
            ),
            (
                f"solver-free: {self.solver_free} "
                f"({100.0 * self.solver_free / screened:.1f}% of screens), "
                f"{self.harvested} witnesses harvested "
                f"(+{self.lazy_harvests} lazy from the 2b pool), "
                f"{self.budget_maybes} budget punts"
            ),
            (
                f"table verdicts: {self.table_verdict_hits} memo hits, "
                f"{self.table_verdict_misses} misses"
            ),
            (
                f"fdd: {self.fdd_fast_inserts} fast inserts, "
                f"{self.fdd_rebuilds} rebuilds, {self.fdd_opaque} opaque tables, "
                f"{self.fdd_banded} banded tables"
            ),
        ]
        return "\n".join(lines)


_FIELDS = tuple(GateStats.__dataclass_fields__)


class VerdictGate:
    """Owns the per-table FDDs and the per-point witness records."""

    def __init__(self, model, state, threshold: Optional[int]) -> None:
        self.model = model
        self.state = state
        self.threshold = threshold
        self.stats = GateStats()
        self._records = _RecordStore()
        # Attach a diagram to every table's state; the TableState update
        # hooks keep it maintained from here on.
        for name, table_state in state.tables.items():
            table_state.fdd = TableFdd(model.tables[name].key_widths())
        # Per-point taint dependencies: which tables / value sets can
        # change this executability point's post-substitution term.
        owner: dict = {}
        for name, info in model.tables.items():
            for var in info.control_var_names():
                owner[var] = (True, name)
        for name, info in model.value_sets.items():
            for var in info.control_var_names():
                owner[var] = (False, name)
        # Per-point consecutive distinguishing-witness hunt failures.  A
        # point whose term is too big to probe (or genuinely near-constant)
        # fails the hunt identically on every re-verdict; after a few
        # strikes the gate stops paying for the attempt.  Purely a speed
        # decision — record absence never changes a verdict.
        self._hunt_failures: dict = {}
        # The tier-2b witness-model pool: per dependency table, a few
        # harvested witness models keyed by that table's key values under
        # the model (distinct key tuples = distinct match points, which
        # is the diversity that distinguishes value terms the fixed probe
        # patterns cannot).  Record-less points — hunt-retired monsters
        # included — borrow these as candidate witnesses; one successful
        # borrow turns every later re-verdict into a tier-2a screen.
        self._pool: dict = {}
        self._pool_version = 0
        # pid → (pool version, dep revisions) at the last failed borrow:
        # a point retries at most once per pool growth or table change,
        # so saturated pools and quiet tables cost nothing.  A few total
        # failures retire the point from lazy attempts for good.
        self._lazy_attempts: dict = {}
        self._lazy_failures: dict = {}
        # table name → revision of the last solver-assisted pool seeding.
        self._seed_attempts: dict = {}
        self._deps: dict = {}
        for pid, point in model.points.items():
            tables: set = set()
            value_sets: set = set()
            for var in point.control_vars():
                entry = owner.get(var)
                if entry is None:
                    continue
                (tables if entry[0] else value_sets).add(entry[1])
            self._deps[pid] = (tuple(sorted(tables)), tuple(sorted(value_sets)))

    # -- fingerprints ---------------------------------------------------------

    def _key_values(self, pid: str, model: _ZeroDefault) -> dict:
        """Each dependency table's key values under one witness model.

        Computed once per record (term evaluation is the expensive part
        of a fingerprint); screens replay the cached values.
        """
        keys: dict = {}
        for name in self._deps[pid][0]:
            info = self.model.tables[name]
            keys[name] = tuple(T.evaluate(k.term, model) for k in info.keys)
        return keys

    def _fingerprint(self, pid: str, keys_by_table: dict) -> Optional[tuple]:
        """The point's dependency state as seen from one witness model.

        None means "unavailable" (an opaque diagram): callers must treat
        the screen as a miss and fall through to the slower tiers.
        """
        dep_tables, dep_value_sets = self._deps[pid]
        components: list = []
        for name in dep_tables:
            table_state = self.state.tables[name]
            if self.threshold is not None and len(table_state) > self.threshold:
                components.append(_OVERAPPROX)
                continue
            fdd = table_state.fdd
            root = fdd.root(table_state)
            if root is None:
                return None
            components.append(fdd.lookup(keys_by_table[name]))
        for name in dep_value_sets:
            components.append(self.state.value_sets[name])
        return tuple(components)

    # -- the tiers ------------------------------------------------------------

    def screen(self, point):
        """Tier 2a: replay the stored verdict iff both fingerprints hold.

        Returns the frozen :class:`PointVerdict` on a hit, else None (and
        the caller recomputes the term and calls :meth:`decide`).
        """
        self.stats.screened += 1
        record = self._records.get(point.pid)
        if record is None:
            return None
        fp_pos = self._fingerprint(point.pid, record.pos_keys)
        if fp_pos is None or fp_pos != record.fp_pos:
            return None
        fp_neg = self._fingerprint(point.pid, record.neg_keys)
        if fp_neg is None or fp_neg != record.fp_neg:
            return None
        self.stats.witness_hits += 1
        return record.verdict

    def decide(self, point, term, query_engine) -> str:
        """Tiers 0/1/2b/3 over the recomputed term.

        Mirrors ``QueryEngine._executability`` exactly — same trivial
        cases, same cache, same node budget, same probe pair with the
        same budget handling — with the interval screen and witness
        evaluation inserted between the cache and the solver.  Every
        inserted tier returns what the probe pair would have returned.
        """
        pid = point.pid
        if term is T.TRUE:
            self._records.drop(pid)
            return ALWAYS
        if term is T.FALSE:
            self._records.drop(pid)
            return NEVER
        cached = query_engine._exec_cache.get(term)
        if cached is not None:
            query_engine.exec_counter.hit()
            self.stats.exec_cache_hits += 1
            self._revalidate(point, term, cached, query_engine)
            return cached
        query_engine.exec_counter.miss()
        if (
            not query_engine.use_solver
            or T.tree_size(term) > query_engine.solver_node_budget
        ):
            query_engine._exec_cache[term] = MAYBE
            self._revalidate(point, term, MAYBE, query_engine)
            return MAYBE
        # Tier 1: the interval domain.  DEFINITELY_FALSE means no model
        # exists (NEVER); DEFINITELY_TRUE means no countermodel exists
        # (ALWAYS) — the same two facts the solver's internal interval
        # precheck would have derived, minus the dispatch.
        abstract = interval.eval_bool(term)
        if abstract == interval.DEFINITELY_FALSE:
            self.stats.interval_decided += 1
            query_engine._exec_cache[term] = NEVER
            self._records.drop(pid)
            return NEVER
        if abstract == interval.DEFINITELY_TRUE:
            self.stats.interval_decided += 1
            query_engine._exec_cache[term] = ALWAYS
            self._records.drop(pid)
            return ALWAYS
        # Tier 2b: concrete evaluation under the stored witnesses.
        record = self._records.get(pid)
        if (
            record is not None
            and T.evaluate(term, record.pos_model) == 1
            and T.evaluate(term, record.neg_model) == 0
        ):
            self.stats.witness_evals += 1
            query_engine._exec_cache[term] = MAYBE
            self._store(
                point, term, record.verdict,
                record.pos_model, record.neg_model,
                pos_keys=record.pos_keys, neg_keys=record.neg_keys,
            )
            return MAYBE
        # Tier 3: the ungated probe pair, with witness harvesting.
        self.stats.solver_fallbacks += 1
        solver = query_engine.solver
        try:
            positive = solver.check_sat(term)
            if not positive.satisfiable:
                verdict = NEVER
            else:
                negative = solver.check_sat(T.bool_not(term))
                verdict = MAYBE if negative.satisfiable else ALWAYS
        except SolverBudgetExceeded:
            # Same contract as the ungated path: MAYBE, not memoized.
            self.stats.budget_maybes += 1
            self._records.drop(pid)
            # A lazy pair is still sound evidence here: term true under
            # one model and false under another *proves* MAYBE exactly,
            # which is the verdict the ungated retry would re-derive.
            self._lazy_harvest(point, term, MAYBE, query_engine)
            return MAYBE
        query_engine._exec_cache[term] = verdict
        if verdict == MAYBE and positive.model is not None and negative.model is not None:
            from repro.engine.queries import PointVerdict

            frozen = PointVerdict(pid, point.kind, executability=MAYBE)
            self._store(
                point,
                term,
                frozen,
                _ZeroDefault(positive.model),
                _ZeroDefault(negative.model),
            )
            self.stats.harvested += 1
        else:
            self._records.drop(pid)
        return verdict

    def decide_constant(self, point, term, query_engine):
        """Constant-kind verdict (assignments, args) with witness caching.

        Non-constant-ness is existentially witnessed just like MAYBE: two
        models under which the term evaluates *differently* prove
        ``is_constant=False``, and a fingerprint hit proves the current
        term still takes those two distinct values (the term's value at a
        witness is a function of the dependency state the fingerprint
        pins).  ``constant_value`` is syntactic, so the replayed verdict
        is exactly what the ungated path would compute: a semantically
        non-constant term can never be a literal constant.
        """
        from repro.engine.queries import PointVerdict

        pid = point.pid
        value = constant_value(term)
        verdict = PointVerdict(
            pid, point.kind, constant=value, is_constant=value is not None
        )
        if value is not None:
            # "Is a constant" is a global property; witnesses cannot
            # certify it, so constant points always recompute.
            self._records.drop(pid)
            return verdict
        record = self._records.get(pid)
        if record is not None:
            if T.evaluate(term, record.pos_model) != T.evaluate(
                term, record.neg_model
            ):
                self.stats.witness_evals += 1
                self._store(
                    point, term, verdict,
                    record.pos_model, record.neg_model,
                    pos_keys=record.pos_keys, neg_keys=record.neg_keys,
                )
                return verdict
            self._records.drop(pid)
        if self._hunt_failures.get(pid, 0) >= self.HUNT_RETRY_LIMIT:
            # Hunt-retired (typically a monster term past the size cap).
            # The 2b pool is the retirement plan: borrow harvested
            # witness models from this point's dependency tables and
            # look for two that evaluate the term differently.
            pair = self._pool_pair(pid, term, boolean=False, query_engine=query_engine)
            if pair is not None:
                self._store(point, term, verdict, pair[0], pair[1])
                self.stats.lazy_harvests += 1
            return verdict
        pair = self._distinguishing_pair(term, query_engine)
        if pair is None:
            pair = self._pool_pair(pid, term, boolean=False, query_engine=query_engine)
            if pair is not None:
                self._store(point, term, verdict, pair[0], pair[1])
                self.stats.lazy_harvests += 1
                return verdict
            self._hunt_failures[pid] = self._hunt_failures.get(pid, 0) + 1
            self._records.drop(pid)
        else:
            self._hunt_failures.pop(pid, None)
            self._store(point, term, verdict, pair[0], pair[1])
            self.stats.harvested += 1
        return verdict

    #: Consecutive failed hunts after which a point stops being probed.
    HUNT_RETRY_LIMIT = 3
    #: Witness models kept per dependency table in the 2b pool.
    POOL_LIMIT = 8
    #: Term evaluations allowed per lazy-harvest attempt.  Together with
    #: the once-per-pool-growth retry gate this bounds what a borrow can
    #: cost a verdict that would otherwise pay the full slow path anyway.
    LAZY_EVAL_LIMIT = 8
    #: Total failed lazy attempts after which a point stops borrowing.
    LAZY_RETRY_LIMIT = 8

    def _feed_pool(self, keys_by_table: dict, model: _ZeroDefault) -> None:
        """Stash a harvested witness model in each dependency table's pool."""
        for name, key_tuple in keys_by_table.items():
            bucket = self._pool.get(name)
            if bucket is None:
                bucket = self._pool[name] = {}
            if key_tuple not in bucket and len(bucket) < self.POOL_LIMIT:
                bucket[key_tuple] = model
                self._pool_version += 1

    def _pool_pair(self, pid: str, term, boolean: bool, query_engine):
        """Borrow two distinguishing witness models for a record-less point.

        Candidates are the harvested models in the point's dependency
        tables' 2b pool buckets, after topping up sparse buckets with
        *entry-directed* seeds (:meth:`_seed_pool`).  ``boolean`` asks
        for a (true-model, false-model) pair in that order
        (executability points); otherwise any two models with distinct
        evaluations do (constant-kind points).  On failure the attempt
        signature (pool version + dependency-table revisions) is
        remembered so the point retries only once per pool growth or
        table change, and a few total failures retire the point from
        lazy attempts outright.
        """
        dep_tables = self._deps[pid][0]
        if self._lazy_failures.get(pid, 0) >= self.LAZY_RETRY_LIMIT:
            return None
        signature = (
            self._pool_version,
            tuple(self.state.tables[name].revision() for name in dep_tables),
        )
        if self._lazy_attempts.get(pid) == signature:
            return None
        candidates: list = []
        candidate_ids: set = set()
        for name in dep_tables:
            self._seed_pool(name, query_engine)
            bucket = self._pool.get(name)
            if not bucket:
                continue
            for model in bucket.values():
                if id(model) not in candidate_ids:
                    candidate_ids.add(id(model))
                    candidates.append(model)
        seen: dict = {}
        for model in candidates[: self.LAZY_EVAL_LIMIT]:
            value = T.evaluate(term, model)
            for prior_value, prior_model in seen.items():
                if prior_value != value:
                    if not boolean:
                        return prior_model, model
                    if value == 0:
                        return prior_model, model
                    return model, prior_model
            seen.setdefault(value, model)
        self._lazy_attempts[pid] = (
            self._pool_version,
            tuple(self.state.tables[name].revision() for name in dep_tables),
        )
        self._lazy_failures[pid] = self._lazy_failures.get(pid, 0) + 1
        return None

    #: Entry-directed seed queries per table per content change.
    SEED_ENTRY_LIMIT = 3

    def _seed_pool(self, name: str, query_engine) -> None:
        """Top up a sparse pool bucket with entry-directed witness models.

        Harvested solver models rarely exercise a table whose key is a
        computed expression (unconstrained variables zero-default, so
        every model reads the same key value).  When a bucket has fewer
        than two distinct key points, ask the solver for models steering
        the key *into an active entry's region* (``key == masked value``
        — a query over the key terms only, far smaller than any point
        term).  Any model is a sound witness candidate, so failed or
        budget-capped queries just leave the bucket sparse.
        """
        from repro.runtime.entries import as_value_mask

        state = self.state.tables[name]
        revision = state.revision()
        if self._seed_attempts.get(name) == revision:
            return
        self._seed_attempts[name] = revision
        bucket = self._pool.get(name)
        if bucket is None:
            bucket = self._pool[name] = {}
        if len(bucket) >= 2 or not query_engine.use_solver:
            return
        info = self.model.tables[name]
        key_terms = [k.term for k in info.keys]
        widths = info.key_widths()
        if (
            sum(T.tree_size(t) for t in key_terms)
            > self.HUNT_SIZE_FACTOR * query_engine.solver_node_budget
        ):
            return
        for entry in state.active_entries()[: self.SEED_ENTRY_LIMIT]:
            if len(bucket) >= self.POOL_LIMIT:
                break
            points = []
            for match, width in zip(entry.matches, widths):
                value, mask = as_value_mask(match, width)
                points.append(value & mask)
            if tuple(points) in bucket:
                continue
            target = T.bool_and(
                *[
                    T.eq(k_term, T.bv_const(point, width))
                    for k_term, point, width in zip(key_terms, points, widths)
                ]
            )
            try:
                result = query_engine.solver.check_sat(target)
            except SolverBudgetExceeded:
                continue
            if not result.satisfiable or result.model is None:
                continue
            model = _ZeroDefault(result.model)
            key_tuple = tuple(T.evaluate(t, model) for t in key_terms)
            if key_tuple not in bucket:
                bucket[key_tuple] = model
                self._pool_version += 1
    #: Hunt-eligibility cap, as a multiple of the solver node budget.
    #: Well above the solver's own budget (the probe patterns are one
    #: evaluation each, not a search) but low enough that the hunt never
    #: dominates a warm pass.
    HUNT_SIZE_FACTOR = 64

    #: Deterministic probe patterns for distinguishing-witness harvest:
    #: all-zeros, all-ones, and the two alternating-bit masks.
    _PROBE_PATTERNS = (0, -1, 0xAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA,
                       0x55555555555555555555555555555555)

    def _distinguishing_pair(self, term, query_engine):
        """Two models with different evaluations, or None.

        Fixed probe assignments first (free); if they all agree — random
        match keys rarely cover the probe points — one solver query finds
        a model disagreeing with the all-zeros evaluation.  The solver is
        only hunting witnesses here, never deciding the verdict, so a
        budget blow-up or UNSAT simply means "no record" — the replayed
        output is unaffected.
        """
        if (
            T.tree_size(term)
            > self.HUNT_SIZE_FACTOR * query_engine.solver_node_budget
        ):
            # Probe evaluation walks the whole term; on monster terms the
            # hunt costs more than the replays it could ever save.
            return None
        term_vars = T.variables(term)
        if not term_vars:
            return None
        seen: dict = {}
        for pattern in self._PROBE_PATTERNS:
            model = _ZeroDefault(
                {
                    v.name: pattern & ((1 << (v.width if v.is_bv else 1)) - 1)
                    for v in term_vars
                }
            )
            value = T.evaluate(term, model)
            for prior_value, prior_model in seen.items():
                if prior_value != value:
                    return prior_model, model
            seen.setdefault(value, model)
        if (
            not query_engine.use_solver
            or T.tree_size(term) > query_engine.solver_node_budget
        ):
            return None
        (base_value, base_model), = list(seen.items())[:1]
        if term.is_bool:
            target = term if base_value == 0 else T.bool_not(term)
        else:
            target = T.bool_not(T.eq(term, T.bv_const(base_value, term.width)))
        try:
            result = query_engine.solver.check_sat(target)
        except SolverBudgetExceeded:
            return None
        if not result.satisfiable or result.model is None:
            return None
        return base_model, _ZeroDefault(result.model)

    # -- record maintenance ---------------------------------------------------

    def _revalidate(self, point, term, verdict: str, query_engine=None) -> None:
        """Refresh (or discard) the record after a non-witness decision."""
        pid = point.pid
        if verdict != MAYBE:
            self._records.drop(pid)
            return
        record = self._records.get(pid)
        if record is None:
            # Record-less MAYBE (over-budget term or a cached MAYBE that
            # never had witnesses): try to build one from the 2b pool so
            # the next re-verdict screens instead of re-substituting.
            if query_engine is not None:
                self._lazy_harvest(point, term, verdict, query_engine)
            return
        if record.term is not term and not (
            T.evaluate(term, record.pos_model) == 1
            and T.evaluate(term, record.neg_model) == 0
        ):
            self._records.drop(pid)
            return
        self._store(
            point, term, record.verdict,
            record.pos_model, record.neg_model,
            pos_keys=record.pos_keys, neg_keys=record.neg_keys,
        )

    def _lazy_harvest(self, point, term, verdict: str, query_engine) -> None:
        """Tier-2b pool harvest for a record-less MAYBE executability
        point.  A (true-model, false-model) pair from the pool is a full
        MAYBE certificate, so the stored verdict replays exactly what
        the ungated path would recompute."""
        if verdict != MAYBE or not term.is_bool:
            return
        pair = self._pool_pair(point.pid, term, boolean=True, query_engine=query_engine)
        if pair is None:
            return
        from repro.engine.queries import PointVerdict

        frozen = PointVerdict(point.pid, point.kind, executability=MAYBE)
        self._store(point, term, frozen, pair[0], pair[1])
        self.stats.lazy_harvests += 1

    def _store(
        self, point, term, verdict, pos_model, neg_model,
        pos_keys=None, neg_keys=None,
    ) -> None:
        pid = point.pid
        if pos_keys is None:
            pos_keys = self._key_values(pid, pos_model)
        if neg_keys is None:
            neg_keys = self._key_values(pid, neg_model)
        fp_pos = self._fingerprint(pid, pos_keys)
        fp_neg = self._fingerprint(pid, neg_keys) if fp_pos is not None else None
        if fp_pos is None or fp_neg is None:
            self._records.drop(pid)
            return
        self._records.set(
            pid,
            WitnessRecord(
                verdict=verdict,
                term=term,
                pos_model=pos_model,
                neg_model=neg_model,
                pos_keys=pos_keys,
                neg_keys=neg_keys,
                fp_pos=fp_pos,
                fp_neg=fp_neg,
            ),
        )
        self._feed_pool(pos_keys, pos_model)
        self._feed_pool(neg_keys, neg_model)

    # -- stats ----------------------------------------------------------------

    def snapshot(self) -> GateStats:
        """Gate counters plus the diagrams' maintenance counters."""
        stats = self.stats.snapshot()
        for table_state in self.state.tables.values():
            fdd = table_state.fdd
            if fdd is None:
                continue
            stats.fdd_fast_inserts += fdd.fast_ops
            stats.fdd_rebuilds += fdd.rebuilds
            stats.fdd_opaque += 1 if fdd._opaque else 0
            stats.fdd_banded += 1 if fdd._banded else 0
        return stats

    # -- batch-worker forking -------------------------------------------------

    def fork_slice(self) -> "VerdictGate":
        """A worker's view: shared diagrams, overlaid witness records.

        Safe because the scheduler mutates all table state (and thus all
        diagrams) on the main thread before workers start, and conflict
        groups partition program points, so no two slices touch the same
        record.
        """
        fork = VerdictGate.__new__(VerdictGate)
        fork.model = self.model
        fork.state = self.state
        fork.threshold = self.threshold
        fork.stats = GateStats()
        fork._records = _RecordOverlay(self._records)
        # Shared outright (no overlay): each pid is only ever touched by
        # the one worker owning its conflict group, and the counter only
        # steers hunt effort, never a verdict.
        fork._hunt_failures = self._hunt_failures
        fork._lazy_attempts = self._lazy_attempts
        fork._lazy_failures = self._lazy_failures
        # The 2b pool is copied, not shared: workers feed it while other
        # workers iterate buckets, and a shared dict would race.  Worker
        # contributions are deliberately not merged back — the pool only
        # steers lazy-harvest effort, never a verdict.  Seed attempts are
        # copied for the same reason: a worker marking a table as seeded
        # must not stop the main gate from seeding its own bucket.
        fork._pool = {name: dict(bucket) for name, bucket in self._pool.items()}
        fork._pool_version = self._pool_version
        fork._seed_attempts = dict(self._seed_attempts)
        fork._deps = self._deps
        return fork

    def absorb_fork(self, fork: "VerdictGate") -> int:
        """Fold a slice's record delta and counters back (anchor order)."""
        self.stats.absorb(fork.stats)
        grafted = 0
        for pid, record in fork._records.delta.items():
            if record is None:
                self._records.drop(pid)
            else:
                self._records.set(pid, record)
                grafted += 1
        return grafted

    # -- process-pool transport -----------------------------------------------

    def export_record_delta(self, arena) -> list:
        """Picklable ``(pid, record blob)`` pairs from this slice's overlay.

        Witness terms ride in ``arena``
        (a :class:`~repro.smt.arena.TermArena`); FDD leaves are flattened
        to their ``(action, args)`` intern key and re-interned on import.
        Re-interning matters: fingerprint comparison is identity-based,
        and each diagram's leaf intern table survives rebuilds, so the
        re-interned leaf is the *same object* a local screen would see.
        """
        exported: list = []
        for pid, record in self._records.delta.items():
            if record is None:
                exported.append((pid, None))
                continue
            exported.append(
                (
                    pid,
                    {
                        "verdict": record.verdict,
                        "term": arena.encode(record.term),
                        "pos_model": dict(record.pos_model),
                        "neg_model": dict(record.neg_model),
                        "pos_keys": record.pos_keys,
                        "neg_keys": record.neg_keys,
                        "fp_pos": _flatten_fingerprint(record.fp_pos),
                        "fp_neg": _flatten_fingerprint(record.fp_neg),
                    },
                )
            )
        return exported

    def absorb_exported(self, arena, stats: GateStats, records: list) -> int:
        """Process-mode :meth:`absorb_fork`: fold a worker's shipped delta.

        ``stats`` is absorbed exactly once (the double-counting tripwire
        in the batch merge checks this); record blobs are decoded through
        the shared term factory and this gate's own diagrams.
        """
        self.stats.absorb(stats)
        grafted = 0
        for pid, blob in records:
            if blob is None:
                self._records.drop(pid)
                continue
            self._records.set(
                pid,
                WitnessRecord(
                    verdict=blob["verdict"],
                    term=arena.decode(blob["term"]),
                    pos_model=_ZeroDefault(blob["pos_model"]),
                    neg_model=_ZeroDefault(blob["neg_model"]),
                    pos_keys=blob["pos_keys"],
                    neg_keys=blob["neg_keys"],
                    fp_pos=self._intern_fingerprint(pid, blob["fp_pos"]),
                    fp_neg=self._intern_fingerprint(pid, blob["fp_neg"]),
                ),
            )
            grafted += 1
        return grafted

    # -- warm-state snapshot --------------------------------------------------

    def export_records(self, arena) -> list:
        """Every witness record as a picklable blob (snapshot variant).

        Same wire format as :meth:`export_record_delta`, but over the main
        store's full map instead of a worker overlay — this is the gate's
        contribution to an engine warm-state snapshot.
        """
        exported: list = []
        for pid, record in self._records.map.items():
            exported.append(
                (
                    pid,
                    {
                        "verdict": record.verdict,
                        "term": arena.encode(record.term),
                        "pos_model": dict(record.pos_model),
                        "neg_model": dict(record.neg_model),
                        "pos_keys": record.pos_keys,
                        "neg_keys": record.neg_keys,
                        "fp_pos": _flatten_fingerprint(record.fp_pos),
                        "fp_neg": _flatten_fingerprint(record.fp_neg),
                    },
                )
            )
        return exported

    def restore_records(
        self, arena, records: list, hunt_failures: Optional[dict] = None
    ) -> int:
        """Rebuild the record map from a snapshot blob.

        Precondition: ``self.state`` already replays the snapshotted
        control plane, so each dependency table's diagram re-interns the
        flattened leaves to the identical objects a live screen compares
        against (leaf intern tables are keyed on ``(action, args)`` and
        survive rebuilds).
        """
        self._records.map.clear()
        restored = 0
        for pid, blob in records:
            if blob is None:
                continue
            record = WitnessRecord(
                verdict=blob["verdict"],
                term=arena.decode(blob["term"]),
                pos_model=_ZeroDefault(blob["pos_model"]),
                neg_model=_ZeroDefault(blob["neg_model"]),
                pos_keys=blob["pos_keys"],
                neg_keys=blob["neg_keys"],
                fp_pos=self._intern_fingerprint(pid, blob["fp_pos"]),
                fp_neg=self._intern_fingerprint(pid, blob["fp_neg"]),
            )
            self._records.set(pid, record)
            # Re-seed the 2b pool so record-less points keep their lazy
            # harvest chances across a snapshot round-trip.
            self._feed_pool(record.pos_keys, record.pos_model)
            self._feed_pool(record.neg_keys, record.neg_model)
            restored += 1
        if hunt_failures is not None:
            self._hunt_failures = dict(hunt_failures)
        return restored

    def _intern_fingerprint(self, pid: str, flattened: tuple) -> tuple:
        """Rebuild a fingerprint, re-interning leaves per dependency table.

        Fingerprint components are positional: the first
        ``len(dep_tables)`` entries belong to the point's dependency
        tables in sorted order (leaf or overapprox marker), the rest are
        value-set tuples — so a leaf at position ``i`` re-interns into
        ``dep_tables[i]``'s diagram.
        """
        dep_tables, _ = self._deps[pid]
        components: list = []
        for position, (tag, payload) in enumerate(flattened):
            if tag == "leaf":
                action, args = payload
                fdd = self.state.tables[dep_tables[position]].fdd
                components.append(fdd.leaf(action, args))
            else:
                components.append(payload)
        return tuple(components)


def _flatten_fingerprint(fp: tuple) -> tuple:
    """A fingerprint with every (unpicklable-by-identity) leaf flattened."""
    return tuple(
        ("leaf", (c.action, c.args)) if isinstance(c, FddLeaf) else ("raw", c)
        for c in fp
    )


__all__ = [
    "GateStats",
    "VerdictGate",
    "WitnessRecord",
]
