"""The ``Pass`` protocol and the manager that runs declared sequences.

A pass is any object with a ``name``, a ``stage`` ("cold" or "warm"), and
a ``run(ctx)`` method.  The :class:`PassManager` executes a declared
sequence over one :class:`~repro.engine.context.EngineContext`, publishing
:class:`~repro.engine.events.PassStarted` / ``PassFinished`` events and
stamping the pipeline stage onto any :class:`~repro.errors.FlayError`
that escapes a pass without one.
"""

from __future__ import annotations

import time
from typing import Protocol, Sequence, runtime_checkable

from repro.engine.context import EngineContext
from repro.engine.events import PassFinished, PassStarted
from repro.errors import FlayError


@runtime_checkable
class Pass(Protocol):
    """One stage of the cold pipeline or the warm per-update path."""

    name: str
    stage: str  # "cold" | "warm"

    def run(self, ctx: EngineContext) -> None: ...


class PassManager:
    """Runs a declared pass sequence over a shared context."""

    def __init__(self, passes: Sequence[Pass]) -> None:
        self.passes = tuple(passes)

    def run(self, ctx: EngineContext) -> None:
        bus = ctx.bus
        for pipeline_pass in self.passes:
            active = bus.active
            if active:
                bus.emit(PassStarted(pipeline_pass.name, pipeline_pass.stage))
            start = time.perf_counter()
            try:
                pipeline_pass.run(ctx)
            except FlayError as exc:
                if exc.stage is None:
                    exc.stage = pipeline_pass.name
                raise
            if active:
                bus.emit(
                    PassFinished(
                        pipeline_pass.name,
                        pipeline_pass.stage,
                        (time.perf_counter() - start) * 1000,
                    )
                )

    def describe(self) -> str:
        return " → ".join(p.name for p in self.passes)
