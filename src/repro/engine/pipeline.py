"""Concrete pipeline passes: the cold pipeline and the warm update path.

The cold pipeline (run once per program) is the declared sequence

    parse → typecheck → analyze → encode → specialize → lower

and the warm path (run per control-plane update or batch) is

    apply-updates → reverdict-{points,tables} → respecialize → lower

Both are plain :class:`~repro.engine.passes.Pass` sequences over one
:class:`~repro.engine.context.EngineContext`; the only difference between
processing a single update, a value-set update, and a batch is the
declared *order* of the reverdict stages (a batch reports changed tables
before changed points, matching the historical decision format).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.symexec import analyze
from repro.engine.context import EngineContext, SolverBudget
from repro.engine.events import SnapshotRestored, TargetCompiled
from repro.engine.gate import VerdictGate
from repro.engine.queries import QueryEngine
from repro.engine.specialize import Specializer
from repro.p4.parser import parse_program
from repro.p4.types import TypeEnv
from repro.runtime.semantics import (
    ControlPlaneState,
    ValueSetUpdate,
    encode_table,
    encode_value_set,
)
from repro.smt import DeltaSubstitution
from repro.smt.terms import DEFAULT_FACTORY


# ---------------------------------------------------------------------------
# Decisions — the warm path's public outcome records
# ---------------------------------------------------------------------------


@dataclass
class UpdateDecision:
    """Outcome of processing one control-plane update."""

    update: object
    forwarded: bool  # sent to the device without recompilation
    recompiled: bool
    affected_points: int
    changed: list  # pids / table names whose verdict changed
    elapsed_ms: float
    overapproximated: bool
    compile_report: object = None

    def describe(self) -> str:
        action = "RECOMPILE" if self.recompiled else "forward"
        mode = " (overapprox)" if self.overapproximated else ""
        return (
            f"{action}{mode}: {self.affected_points} points checked, "
            f"{len(self.changed)} changed, {self.elapsed_ms:.2f} ms"
        )


@dataclass
class BatchDecision:
    """Outcome of processing a burst of updates as one unit."""

    update_count: int
    recompiled: bool
    changed: list  # verdicts that changed (pids / table names)
    affected_points: int
    elapsed_ms: float
    compile_report: object = None

    @property
    def updates(self) -> int:
        return self.update_count

    def describe(self) -> str:
        action = "RECOMPILE" if self.recompiled else "forward"
        return (
            f"{action}: batch of {self.update_count} updates, "
            f"{self.affected_points} points checked, "
            f"{len(self.changed)} changed, {self.elapsed_ms:.1f} ms"
        )


# ---------------------------------------------------------------------------
# Warm-run scratch state
# ---------------------------------------------------------------------------


@dataclass
class WarmState:
    """Per-run scratch shared by the warm passes via ``ctx.warm``."""

    updates: list
    mode: str  # "update" | "value_set" | "batch"
    touched_tables: list = field(default_factory=list)  # sorted names
    touched_vars: set = field(default_factory=set)
    assignments: dict = field(default_factory=dict)  # table → TableAssignment
    affected: set = field(default_factory=set)  # pids re-checked
    changed: list = field(default_factory=list)  # pids / table names
    respecialized: bool = False
    compile_report: object = None


# ---------------------------------------------------------------------------
# Cold passes
# ---------------------------------------------------------------------------


def _store_entry(ctx: EngineContext):
    """The shared-store entry backing this context, or None."""
    if ctx.store is None or ctx.source is None:
        return None
    return ctx.store.get(ctx.source, ctx.options)


class ParsePass:
    """``ctx.source`` → ``ctx.program`` (skipped when a program was given).

    With a shared store attached, a content-hash hit adopts the donated
    (already-pruned) AST and type environment instead of re-parsing.
    """

    name = "parse"
    stage = "cold"

    def run(self, ctx: EngineContext) -> None:
        if ctx.program is not None:
            return
        if ctx.store is not None and ctx.source is not None:
            entry = ctx.store.lookup(ctx.source, ctx.options)
            if entry is not None:
                ctx.store_hit = True
                ctx.program = entry.program
                ctx.env = entry.env
                ctx.prune_report = entry.prune_report
                return
        start = time.perf_counter()
        ctx.program = parse_program(ctx.source)
        ctx.timings.parse_seconds = time.perf_counter() - start


class TypeCheckPass:
    """Build the type environment (the front end's semantic check)."""

    name = "typecheck"
    stage = "cold"

    def run(self, ctx: EngineContext) -> None:
        if ctx.env is None:
            ctx.env = TypeEnv(ctx.program)


class PrunePass:
    """Abstract-interpretation prune: fold constants, drop dead branches.

    Runs between typecheck and analysis so the symbolic executor and the
    encoder never see statically-dead paths.  The rewrite is specialized-
    output-preserving by construction (see
    :mod:`repro.analysis.dataflow.prune`); ``options.prune=False`` is the
    ``--no-prune`` ablation.  The type environment is rebuilt when the
    program changed so every downstream consumer sees one consistent AST.
    """

    name = "prune"
    stage = "cold"

    def run(self, ctx: EngineContext) -> None:
        from repro.analysis.dataflow.prune import prune_program

        if ctx.store_hit:
            return  # the adopted AST is already pruned
        if not ctx.options.prune or ctx.options.effort == "none":
            return
        start = time.perf_counter()
        pruned, report = prune_program(
            ctx.program,
            ctx.env,
            effort=ctx.options.effort,
            skip_parser=ctx.options.skip_parser,
        )
        ctx.prune_report = report
        if pruned is not ctx.program:
            ctx.program = pruned
            ctx.env = TypeEnv(pruned)
        ctx.timings.prune_seconds = time.perf_counter() - start


class AnalysisPass:
    """One-time data-plane analysis plus the long-lived engine state.

    Produces the :class:`DataPlaneModel`, the control-plane state, the
    query engine (owner of the verdict/CNF caches), the specializer, and
    the cross-update :class:`DeltaSubstitution`.
    """

    name = "analyze"
    stage = "cold"

    def run(self, ctx: EngineContext) -> None:
        options = ctx.options
        entry = _store_entry(ctx) if ctx.store_hit else None
        if entry is not None:
            ctx.model = entry.model
        else:
            ctx.model = analyze(ctx.program, ctx.env, skip_parser=options.skip_parser)
            ctx.timings.data_plane_analysis_seconds = ctx.model.analysis_seconds
        ctx.state = ControlPlaneState(ctx.model)
        if options.solver_budget is not None:
            conflict_budget = options.solver_budget
        elif options.solver_max_decisions is not None:
            conflict_budget = options.solver_max_decisions
        else:
            conflict_budget = QueryEngine.DEFAULT_MAX_CONFLICTS
        ctx.solver_budget = SolverBudget(
            max_conflicts=conflict_budget,
            node_budget=(
                options.solver_node_budget
                if options.solver_node_budget is not None
                else 400
            ),
        )
        if options.fdd_gate:
            # The gate attaches one match-space FDD per TableState and
            # screens executability queries before solver dispatch; the
            # ``--no-fdd-gate`` ablation leaves ``ctx.gate`` as None and
            # the query engine on its pure-solver path.
            ctx.gate = VerdictGate(
                ctx.model, ctx.state, threshold=options.overapprox_threshold
            )
        ctx.query_engine = QueryEngine(
            ctx.model,
            use_solver=options.use_solver,
            solver_node_budget=ctx.solver_budget.node_budget,
            gate=ctx.gate,
            table_verdict_cache=options.table_verdict_cache,
        )
        ctx.query_engine.solver.max_conflicts = ctx.solver_budget.max_conflicts
        ctx.query_engine.solver.incremental = options.incremental_solver
        if entry is not None:
            # Share the term-pure warm layers: the program CNF (encoder),
            # the persistent session (learned clauses included), the
            # solver result memo, and the executability cache.  All are
            # pure functions of hash-consed terms, so adopters and donor
            # can interleave freely under serialized access.
            ctx.query_engine.solver.adopt_shared(
                entry.encoder, entry.session, entry.results
            )
            ctx.query_engine._exec_cache = entry.exec_cache
        ctx.specializer = Specializer(
            ctx.program,
            ctx.model,
            ctx.env,
            prune_parser_tail=options.prune_parser_tail,
            effort=options.effort,
        )
        ctx.term_factory = DEFAULT_FACTORY
        # One long-lived substitution whose memo survives across updates:
        # an update only invalidates the memo entries that mention a
        # control symbol whose assignment actually changed (delta
        # substitution), so warm updates touch O(delta) of each point's DAG.
        ctx.substitution = DeltaSubstitution({})


class EncodePass:
    """Encode the initial control plane and evaluate every program point.

    On a shared-store hit the empty-config sweep is adopted from the
    donor: the initial verdicts are a deterministic function of the
    program alone, so switches 2..N skip the entire point sweep and only
    install the donated mapping into their own substitution.
    """

    name = "encode"
    stage = "cold"

    def run(self, ctx: EngineContext) -> None:
        entry = _store_entry(ctx) if ctx.store_hit else None
        if entry is not None:
            initial = entry.initial
            ctx.mapping.update(initial["mapping"])
            ctx.table_assignments.update(initial["table_assignments"])
            ctx.point_verdicts.update(initial["point_verdicts"])
            ctx.table_verdicts.update(initial["table_verdicts"])
            ctx.substitution.set_many(ctx.mapping)
            return
        for name, info in ctx.model.tables.items():
            assignment = encode_table(
                info, ctx.state.tables[name], ctx.options.overapprox_threshold
            )
            ctx.table_assignments[name] = assignment
            ctx.mapping.update(assignment.mapping)
            ctx.table_verdicts[name] = ctx.query_engine.table_verdict(
                info, assignment, ctx.state.tables[name]
            )
        for name, info in ctx.model.value_sets.items():
            ctx.mapping.update(encode_value_set(info, ctx.state.value_sets[name]))
        ctx.substitution.set_many(ctx.mapping)
        for pid, point in ctx.model.points.items():
            ctx.point_verdicts[pid] = ctx.query_engine.point_verdict(
                point, ctx.substitution
            )


class RestorePass:
    """Rebuild warm state from ``ctx.restore_blob`` (snapshot restore).

    Replaces :class:`EncodePass` in the restore pipeline: instead of the
    empty-config sweep, the snapshotted control plane is replayed, the
    substitution memo / solver session / term-pure memos / gate witness
    records are reinstalled, and the snapshotted verdicts are adopted —
    so the following specialize/lower passes reproduce the snapshotted
    engine's current output without a single cold query.
    """

    name = "restore"
    stage = "cold"

    def run(self, ctx: EngineContext) -> None:
        from repro.engine.snapshot import apply_snapshot

        blob = ctx.restore_blob
        if blob is None:
            raise ValueError("RestorePass needs ctx.restore_blob")
        restored = apply_snapshot(ctx, blob)
        ctx.restore_blob = None
        if ctx.bus.active:
            ctx.bus.emit(
                SnapshotRestored(
                    memo_entries=restored["memo_entries"],
                    learned_clauses=restored["learned_clauses"],
                    witness_records=restored["witness_records"],
                    replayed_roots=restored["replayed_roots"],
                )
            )


class SpecializePass:
    """Verdicts → specialized program (initial or re-specialization)."""

    name = "specialize"
    stage = "cold"

    def run(self, ctx: EngineContext) -> None:
        ctx.specialized_program, ctx.report = ctx.specializer.specialize(
            ctx.point_verdicts, ctx.table_verdicts
        )


class LowerPass:
    """Hand the specialized program to the target backend.

    Cold runs always compile; warm runs compile only when the warm path
    actually respecialized (a forwarded update never reaches the device
    compiler — that is the paper's entire point).
    """

    name = "lower"
    stage = "cold"

    def run(self, ctx: EngineContext) -> None:
        if ctx.target is None:
            return
        warm = ctx.warm
        if warm is not None and not warm.respecialized:
            return
        report = ctx.target.compile(ctx.specialized_program)
        ctx.compile_reports.append(report)
        if warm is not None:
            warm.compile_report = report
        if ctx.bus.active:
            ctx.bus.emit(
                TargetCompiled(
                    target=getattr(ctx.target, "name", "target"),
                    modeled_seconds=getattr(report, "modeled_seconds", 0.0),
                )
            )


# ---------------------------------------------------------------------------
# Warm passes
# ---------------------------------------------------------------------------


class ApplyUpdatesPass:
    """Apply the pending updates to the control-plane state and re-encode.

    Value-set updates are encoded inline (in update order); touched tables
    are re-encoded once each, in sorted name order — so a 1000-entry burst
    into one table costs one encoding, not a thousand.
    """

    name = "apply-updates"
    stage = "warm"

    def run(self, ctx: EngineContext) -> None:
        warm = ctx.warm
        touched: set = set()
        for update in warm.updates:
            if isinstance(update, ValueSetUpdate):
                info = ctx.state.apply_value_set_update(update)
                mapping = encode_value_set(info, ctx.state.value_sets[info.name])
                ctx.mapping.update(mapping)
                ctx.substitution.set_many(mapping)
                warm.touched_vars.update(info.control_var_names())
            else:
                info = ctx.state.apply_update(update)
                touched.add(info.name)
                warm.touched_vars.update(info.control_var_names())
        warm.touched_tables = sorted(touched)
        for name in warm.touched_tables:
            info = ctx.model.tables[name]
            assignment = encode_table(
                info, ctx.state.tables[name], ctx.options.overapprox_threshold
            )
            ctx.table_assignments[name] = assignment
            warm.assignments[name] = assignment
            ctx.mapping.update(assignment.mapping)
            ctx.substitution.set_many(assignment.mapping)


class ReverdictPointsPass:
    """Re-query exactly the program points tainted by the touched symbols."""

    name = "reverdict-points"
    stage = "warm"

    def run(self, ctx: EngineContext) -> None:
        warm = ctx.warm
        warm.affected = ctx.model.points_for_control_vars(warm.touched_vars)
        for pid in sorted(warm.affected):
            verdict = ctx.query_engine.point_verdict(
                ctx.model.points[pid], ctx.substitution
            )
            if not verdict.same_specialization(ctx.point_verdicts[pid]):
                warm.changed.append(pid)
            ctx.point_verdicts[pid] = verdict


class ReverdictTablesPass:
    """Recompute the structural verdict of every touched table."""

    name = "reverdict-tables"
    stage = "warm"

    def run(self, ctx: EngineContext) -> None:
        warm = ctx.warm
        for name in warm.touched_tables:
            info = ctx.model.tables[name]
            verdict = ctx.query_engine.table_verdict(
                info, warm.assignments[name], ctx.state.tables[name]
            )
            if not verdict.same_specialization(ctx.table_verdicts[name]):
                warm.changed.append(name)
            ctx.table_verdicts[name] = verdict


class RespecializePass:
    """Respecialize iff some verdict changed (the recompile decision)."""

    name = "respecialize"
    stage = "warm"

    def run(self, ctx: EngineContext) -> None:
        warm = ctx.warm
        if not warm.changed or not ctx.respecialize_on_change:
            return
        ctx.specialized_program, ctx.report = ctx.specializer.specialize(
            ctx.point_verdicts, ctx.table_verdicts
        )
        ctx.recompilations += 1
        warm.respecialized = True


class WarmLowerPass(LowerPass):
    """Warm-path lowering (same logic; declared under the warm stage)."""

    stage = "warm"


# ---------------------------------------------------------------------------
# Declared sequences
# ---------------------------------------------------------------------------


def cold_passes() -> list:
    """The cold pipeline, in order."""
    return [
        ParsePass(),
        TypeCheckPass(),
        PrunePass(),
        AnalysisPass(),
        EncodePass(),
        SpecializePass(),
        LowerPass(),
    ]


def restore_passes() -> list:
    """The snapshot-restore pipeline: cold front half, then warm reinstall.

    Parse/typecheck/prune/analysis re-derive the program-pure artifacts
    (or adopt them from a shared store); :class:`RestorePass` replaces
    the encode sweep with the snapshot's warm state.
    """
    return [
        ParsePass(),
        TypeCheckPass(),
        PrunePass(),
        AnalysisPass(),
        RestorePass(),
        SpecializePass(),
        LowerPass(),
    ]


def warm_passes(mode: str) -> list:
    """The warm path for one update mode.

    A single update reports changed points before its table; a batch
    reports changed tables first (historical decision format, preserved
    bit-for-bit).  Value-set updates touch no table, so the table stage is
    a no-op for them.
    """
    apply_stage = ApplyUpdatesPass()
    points = ReverdictPointsPass()
    tables = ReverdictTablesPass()
    tail = [RespecializePass(), WarmLowerPass()]
    if mode == "batch":
        return [apply_stage, tables, points, *tail]
    return [apply_stage, points, tables, *tail]


__all__ = [
    "ApplyUpdatesPass",
    "AnalysisPass",
    "BatchDecision",
    "EncodePass",
    "LowerPass",
    "ParsePass",
    "RespecializePass",
    "RestorePass",
    "ReverdictPointsPass",
    "ReverdictTablesPass",
    "SpecializePass",
    "TypeCheckPass",
    "UpdateDecision",
    "WarmLowerPass",
    "WarmState",
    "cold_passes",
    "restore_passes",
    "warm_passes",
]
