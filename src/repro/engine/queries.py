"""Specialization queries and their verdicts.

Flay asks two kinds of queries over the substituted data-plane expressions
(§4.1): *executability* ("is this piece of code executable?") for boolean
points (if-conditions, parser select guards) and *constancy* ("can this
variable be replaced by a constant?") for value points (assignments,
post-table snapshots).  Tables additionally get a structural
:class:`TableVerdict` (feasible actions, hit behaviour, constant action
data, effective match kinds).

Verdicts — not raw terms — are the unit of comparison in the incremental
pipeline: a control-plane update requires recompilation iff some verdict
changes, because the specialized implementation is a pure function of the
verdicts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.analysis.model import (
    DataPlaneModel,
    KIND_IF,
    KIND_SELECT,
    ProgramPoint,
    TableInfo,
)
from repro.ir.metrics import CacheCounter
from repro.runtime.entries import LpmMatch, TernaryMatch
from repro.runtime.semantics import TableAssignment, TableState
from repro.smt import Solver, Substitution, terms as T
from repro.smt.sat import SolverBudgetExceeded
from repro.smt.simplify import constant_value, simplify
from repro.smt.terms import Term

# Executability outcomes.
ALWAYS = "always"
NEVER = "never"
MAYBE = "maybe"


@dataclass(frozen=True)
class PointVerdict:
    """Result of the specialization query at one program point."""

    pid: str
    kind: str
    # Executability points: ALWAYS / NEVER / MAYBE.
    executability: Optional[str] = None
    # Value points: the constant, or None when data-dependent.
    constant: Optional[int] = None
    is_constant: bool = False

    def same_specialization(self, other: "PointVerdict") -> bool:
        """Would this verdict lead to the same specialized code as ``other``?"""
        return (
            self.executability == other.executability
            and self.is_constant == other.is_constant
            and self.constant == other.constant
        )


@dataclass(frozen=True)
class TableVerdict:
    """Structural summary of one table under the current entries."""

    table: str
    feasible_actions: frozenset
    hit: str  # ALWAYS / NEVER / MAYBE
    # ((action, param) → constant or None), sorted for comparability.
    const_params: tuple
    # Effective match kind per key after narrowing ("exact"/"ternary"/"lpm").
    match_plan: tuple
    entry_count: int
    overapproximated: bool

    def same_specialization(self, other: "TableVerdict") -> bool:
        return (
            self.feasible_actions == other.feasible_actions
            and self.hit == other.hit
            and self.const_params == other.const_params
            and self.match_plan == other.match_plan
        )


class QueryEngine:
    """Evaluates specialization queries against a substitution."""

    #: Default conflict budget for the CDCL search inside a query.  The
    #: update path must stay inside Flay's ~100 ms envelope, so queries
    #: that would need real search fall back to MAYBE instead.
    DEFAULT_MAX_CONFLICTS = 20_000
    #: Legacy alias from when the budget was counted in DPLL decisions.
    DEFAULT_MAX_DECISIONS = DEFAULT_MAX_CONFLICTS
    #: Table-verdict memo size guard: overflow clears the memo outright
    #: (the memo re-warms in one pass; an eviction policy is not worth
    #: the bookkeeping at this size).
    MAX_TABLE_VERDICT_MEMO = 4096

    def __init__(
        self,
        model: DataPlaneModel,
        solver: Optional[Solver] = None,
        use_solver: bool = True,
        solver_node_budget: int = 400,
        gate=None,
        table_verdict_cache: bool = True,
    ) -> None:
        self.model = model
        if solver is None:
            solver = Solver(max_conflicts=self.DEFAULT_MAX_CONFLICTS)
        self.solver = solver
        self.use_solver = use_solver
        self.solver_node_budget = solver_node_budget
        # Optional tiered pre-solver verdict gate (engine/gate.py).  When
        # set, executability queries screen against witness fingerprints
        # before substitution and run the interval/witness tiers before
        # the probe pair; verdicts are identical either way (the gate
        # tiers are ablation-safe by construction).
        self.gate = gate
        # Cross-update caches.  Both are pure: post-substitution terms are
        # hash-consed and a verdict is a function of the term alone (any
        # residual control symbols — single-pass substitution leaves
        # upstream tables' symbols inside replacement terms — are treated
        # as free variables, consistently), so a verdict/simplified form
        # computed once is correct forever (only an explicit
        # :meth:`invalidate` — a generation bump — ever drops them).
        self.exec_counter = CacheCounter("executability")
        self.generation = 0
        self._exec_cache: dict[Term, str] = {}
        self._simplify_memo: dict[int, Term] = {}
        # Structural table-verdict memo.  A precise verdict is a pure
        # function of (active-entry digest, selector term, hit term):
        # feasible actions and hit constancy derive from the simplified
        # selector/hit encodings, const-params and the match plan from the
        # eclipse-elided active list.  Keying on the digest — NOT the FDD
        # root — is deliberate: an entry eclipsed jointly by two
        # higher-precedence entries is invisible in the diagram but still
        # in the active list... and conversely a live-but-union-eclipsed
        # entry contributes const-param values while leaving no distinct
        # FDD leaf.  ``entry_count`` is the one field outside the key's
        # span; hits patch it from the current assignment.
        self.table_verdict_cache = table_verdict_cache
        self.table_verdict_counter = CacheCounter("table-verdict")
        self._table_verdict_memo: dict = {}
        # ``_possible_values`` memo, id-keyed over interned selector terms
        # (same lifetime discipline as ``_simplify_memo``: the simplify
        # memo holds the selector alive, both clear together).
        self._values_memo: dict[int, Optional[set]] = {}

    @property
    def simplify_memo(self) -> dict[int, Term]:
        """Engine-persistent simplify memo (id-keyed over interned terms)."""
        return self._simplify_memo

    def invalidate(self) -> None:
        """Drop every cache layer (generation bump); verdicts stay correct."""
        self.generation += 1
        self.exec_counter.invalidate(len(self._exec_cache))
        self._exec_cache.clear()
        self._simplify_memo.clear()
        self.table_verdict_counter.invalidate(len(self._table_verdict_memo))
        self._table_verdict_memo.clear()
        self._values_memo.clear()
        self.solver.invalidate_caches()

    # -- per-point queries ----------------------------------------------------

    def point_verdict(
        self,
        point: ProgramPoint,
        substitution: Substitution,
        memo: Optional[dict[int, Term]] = None,
    ) -> PointVerdict:
        if memo is None:
            memo = self._simplify_memo
        gate = self.gate
        if gate is not None:
            # Tier 2a: a fingerprint hit skips substitution, simplification,
            # and the solver outright — the stored verdict is replayed.
            verdict = gate.screen(point)
            if verdict is not None:
                return verdict
        term = simplify(substitution.apply(point.expr), memo=memo)
        if point.kind in (KIND_IF, KIND_SELECT):
            if gate is not None:
                executability = gate.decide(point, term, self)
            else:
                executability = self._executability(term)
            return PointVerdict(point.pid, point.kind, executability=executability)
        if gate is not None:
            return gate.decide_constant(point, term, self)
        value = constant_value(term)
        return PointVerdict(
            point.pid, point.kind, constant=value, is_constant=value is not None
        )

    def _executability(self, term: Term) -> str:
        if term is T.TRUE:
            return ALWAYS
        if term is T.FALSE:
            return NEVER
        cached = self._exec_cache.get(term)
        if cached is not None:
            self.exec_counter.hit()
            return cached
        self.exec_counter.miss()
        if not self.use_solver or T.tree_size(term) > self.solver_node_budget:
            self._exec_cache[term] = MAYBE
            return MAYBE
        # MAYBE is always a sound answer; a blown decision budget simply
        # means "keep the general implementation".  Budget blow-ups are the
        # one outcome we do not memoize: a later engine configuration change
        # (or solver cache warm-up) may let the same query finish.
        try:
            if not self.solver.check_sat(term).satisfiable:
                verdict = NEVER
            elif not self.solver.check_sat(T.bool_not(term)).satisfiable:
                verdict = ALWAYS
            else:
                verdict = MAYBE
        except SolverBudgetExceeded:
            return MAYBE
        self._exec_cache[term] = verdict
        return verdict

    # -- per-table queries ---------------------------------------------------------

    def table_verdict(
        self,
        info: TableInfo,
        assignment: TableAssignment,
        state: TableState,
    ) -> TableVerdict:
        if not self.table_verdict_cache:
            return self._table_verdict_uncached(info, assignment, state)
        if assignment.overapproximated:
            # Every field of an overapproximated verdict except
            # ``entry_count`` is a constant of the table's shape.
            key: tuple = (info.name, "overapprox")
        else:
            key = (
                info.name,
                state.structural_digest(),
                id(assignment.mapping[info.selector_var]),
                id(assignment.mapping[info.hit_var]),
            )
        gate = self.gate
        cached = self._table_verdict_memo.get(key)
        if cached is not None:
            self.table_verdict_counter.hit()
            if gate is not None:
                gate.stats.table_verdict_hits += 1
            if cached.entry_count != assignment.entry_count:
                cached = dataclasses.replace(
                    cached, entry_count=assignment.entry_count
                )
            return cached
        self.table_verdict_counter.miss()
        if gate is not None:
            gate.stats.table_verdict_misses += 1
        verdict = self._table_verdict_uncached(info, assignment, state)
        if len(self._table_verdict_memo) >= self.MAX_TABLE_VERDICT_MEMO:
            self._table_verdict_memo.clear()
        self._table_verdict_memo[key] = verdict
        return verdict

    def _table_verdict_uncached(
        self,
        info: TableInfo,
        assignment: TableAssignment,
        state: TableState,
    ) -> TableVerdict:
        if assignment.overapproximated:
            # "*any*": every action and parameter value is presumed covered,
            # so every parameter is non-constant — phrased the same way the
            # precise path phrases it, so that crossing the threshold does
            # not spuriously change the verdict (the paper's observation
            # that big tables already cover their paths).
            const_params = tuple(
                ((action, param.name), None)
                for action, params in sorted(info.action_params.items())
                for param in params
            )
            return TableVerdict(
                table=info.name,
                feasible_actions=frozenset(info.action_codes),
                hit=MAYBE,
                const_params=const_params,
                match_plan=tuple(k.match_kind for k in info.keys),
                entry_count=assignment.entry_count,
                overapproximated=True,
            )
        selector = simplify(assignment.mapping[info.selector_var], memo=self._simplify_memo)
        codes = self._selector_values(selector)
        code_to_action = {code: name for name, code in info.action_codes.items()}
        if codes is None:
            feasible = frozenset(info.action_codes)
        else:
            feasible = frozenset(
                code_to_action[c] for c in codes if c in code_to_action
            )
        hit_term = simplify(assignment.mapping[info.hit_var], memo=self._simplify_memo)
        hit_value = constant_value(hit_term)
        if hit_value == 1:
            hit = ALWAYS
        elif hit_value == 0:
            hit = NEVER
        else:
            hit = MAYBE
        # Parameter constancy is *conditional on the action running*: the
        # values an action's parameter can take are the action data of the
        # entries that select it (plus the default binding when a miss can
        # reach the default action).  Fig. 3 step 2: the single wildcard
        # entry makes set's parameter the constant 0x800.
        entries = state.active_entries()
        default_reachable = hit != ALWAYS
        const_params: list = []
        for action_name, params in sorted(info.action_params.items()):
            if action_name not in feasible:
                continue
            for index, param in enumerate(params):
                values = {
                    entry.args[index]
                    for entry in entries
                    if entry.action == action_name
                }
                if action_name == info.default_action and default_reachable:
                    if index < len(info.default_args):
                        values.add(info.default_args[index] or 0)
                    else:
                        values.add(0)
                value = values.pop() if len(values) == 1 else None
                const_params.append(((action_name, param.name), value))
        return TableVerdict(
            table=info.name,
            feasible_actions=feasible,
            hit=hit,
            const_params=tuple(const_params),
            match_plan=self._match_plan(info, state),
            entry_count=assignment.entry_count,
            overapproximated=False,
        )

    def _selector_values(self, selector: Term) -> Optional[set]:
        """Memoized ``_possible_values`` over hash-consed selector terms.

        ``None`` (unbounded) is a valid, memoizable answer, hence the
        containment check rather than ``.get``.
        """
        key = id(selector)
        memo = self._values_memo
        if key in memo:
            return memo[key]
        codes = _possible_values(selector)
        memo[key] = codes
        return codes

    @staticmethod
    def _match_plan(info: TableInfo, state: TableState) -> tuple:
        """Effective match kind per key, narrowed by the installed entries.

        A ternary key whose active entries all carry the full mask behaves
        as an exact key and can shed its TCAM (Fig. 3 impl. B); similarly a
        ternary key that is fully wildcarded by every entry needs no match
        data structure at all ("none").
        """
        entries = state.active_entries()
        plan: list[str] = []
        for index, key in enumerate(info.keys):
            if key.match_kind != "ternary":
                plan.append(key.match_kind)
                continue
            if not entries:
                plan.append("none")
                continue
            masks = set()
            for entry in entries:
                match = entry.matches[index]
                if isinstance(match, TernaryMatch):
                    masks.add(match.mask)
                else:
                    masks.add((1 << key.width) - 1)
            full = (1 << key.width) - 1
            if masks == {full}:
                plan.append("exact")
            elif masks == {0}:
                plan.append("none")
            else:
                plan.append("ternary")
        return tuple(plan)


def _possible_values(term: Term, limit: int = 512) -> Optional[set[int]]:
    """Overapproximate the set of values an ite-tree term can take.

    Returns ``None`` when the term is not a constant/ite tree (unbounded).
    """
    values: set[int] = set()
    stack = [term]
    while stack:
        node = stack.pop()
        if node.op == T.OP_BVCONST:
            values.add(node.payload)
        elif node.op == T.OP_ITE:
            stack.append(node.args[1])
            stack.append(node.args[2])
        else:
            return None
        if len(values) > limit:
            return None
    return values
