"""A registry of live engine contexts: the fleet's switch roster.

One engine per simulated switch is the fleet harness's working set; the
registry gives that set a name-addressable surface (telemetry, snapshot
targeting, failover) without the simulator reaching into engine
internals.  Deliberately dumb: registration order is preserved, names
are unique, and the only aggregate it computes is the cross-switch
telemetry summary the CLI prints.
"""

from __future__ import annotations

from typing import Iterator, Optional


class ContextRegistry:
    """Named :class:`~repro.engine.engine.Engine` instances, in order."""

    def __init__(self) -> None:
        self._engines: dict[str, object] = {}

    def register(self, name: str, engine) -> None:
        if name in self._engines:
            raise ValueError(f"engine {name!r} is already registered")
        self._engines[name] = engine

    def unregister(self, name: str) -> None:
        """Drop one engine (shard migration / failover replacement)."""
        del self._engines[name]

    def replace(self, name: str, engine) -> None:
        """Swap the engine behind a name (restore-from-snapshot failover)."""
        if name not in self._engines:
            raise KeyError(f"engine {name!r} is not registered")
        self._engines[name] = engine

    def get(self, name: str) -> Optional[object]:
        return self._engines.get(name)

    def names(self) -> list[str]:
        return list(self._engines)

    def __len__(self) -> int:
        return len(self._engines)

    def __contains__(self, name: str) -> bool:
        return name in self._engines

    def __iter__(self) -> Iterator[tuple[str, object]]:
        return iter(self._engines.items())

    # -- aggregate telemetry ---------------------------------------------------

    def summary(self) -> dict:
        """Cross-switch roll-up of the per-engine decision log."""
        switches = len(self._engines)
        forwarded = sum(e.forwarded_count for e in self._engines.values())
        recompiled = sum(e.ctx.recompilations for e in self._engines.values())
        latencies = [
            ms for e in self._engines.values() for ms in e.ctx.timings.update_ms
        ]
        return {
            "switches": switches,
            "forwarded": forwarded,
            "recompilations": recompiled,
            "updates": sum(
                len(e.ctx.timings.update_ms) for e in self._engines.values()
            ),
            "mean_update_ms": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
        }


__all__ = ["ContextRegistry"]
