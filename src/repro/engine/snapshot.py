"""Warm-state snapshot/restore: an engine's accumulated knowledge, on disk.

A warm engine is expensive to recreate: beyond the cold pipeline it has
learned CDCL clauses, substitution memo entries, solver/executability
memo hits, and gate witness fingerprints — all paid for by processing
real churn.  ``snapshot_context`` captures that state as one picklable
blob; ``apply_snapshot`` rebuilds it into a freshly-analyzed context (in
the same process or another one) so a failover replica or migrated
shard starts at warm-path latency instead of re-running the cold sweep.

**Wire format.** Terms refuse to pickle by design; every term in the
blob rides in one :class:`~repro.smt.arena.TermArena` and is re-interned
on decode, so identity-keyed memos line up with the restored engine's
own hash-consed terms.  The control plane is stored as live entries per
table (replayed as INSERTs in insertion order — ``TableState`` keeps
only live entries, so this reproduces the state exactly) plus value-set
tuples.  The encoder is stored as its top-level encode-root log:
encoding is deterministic structural recursion, so replaying the log
(:func:`~repro.smt.cnf.replay_encoder`) reproduces the exact variable
numbering the snapshotted :class:`~repro.smt.session.SolverSession`
requires.  Table assignments and the control mapping are *not* stored:
they are pure functions of (table info, state, threshold) and are
re-derived, yielding identical hash-consed terms.

**Invalidation rules.** A blob is only valid against the identical
(source, verdict-relevant options) pair — ``Engine.restore`` re-runs the
front half of the cold pipeline from the blob's own copies of both, so
mismatch is impossible by construction rather than checked after the
fact.  Restoring against a shared store whose encoder has moved past
the snapshot (extra roots appended by sibling switches) still attaches
directly when the blob's root log is a prefix of the store's
(append-only numbering); otherwise the encoder is replayed fresh and
the engine simply stops sharing — degraded, never wrong.
"""

from __future__ import annotations

from repro.runtime.semantics import (
    INSERT,
    Update,
    ValueSetUpdate,
    encode_table,
    encode_value_set,
)
from repro.smt.arena import TermArena
from repro.smt.cnf import replay_encoder, roots_compatible
from repro.smt.session import SolverSession
from repro.smt.solver import SatResult

SNAPSHOT_FORMAT = 1


def snapshot_context(ctx) -> dict:
    """One picklable blob of the context's warm state."""
    if ctx.source is None:
        raise ValueError(
            "snapshot needs the engine's canonical source text "
            "(construct the engine with source=..., not a pre-parsed program)"
        )
    arena = TermArena()
    solver = ctx.query_engine.solver
    blob = {
        "format": SNAPSHOT_FORMAT,
        "source": ctx.source,
        "options": ctx.options,
        "tables": {
            name: state.entries()
            for name, state in ctx.state.tables.items()
            if len(state)
        },
        "value_sets": {
            name: values for name, values in ctx.state.value_sets.items() if values
        },
        "substitution": ctx.substitution.export_state(arena),
        "roots": [
            (is_bool, arena.encode(term))
            for is_bool, term in solver._encoder.encode_roots()
        ],
        "session": solver._session.snapshot(),
        "results": [
            (arena.encode(term), (result.satisfiable, result.model))
            for term, result in solver._results.items()
        ],
        "exec_cache": [
            (arena.encode(term), verdict)
            for term, verdict in ctx.query_engine._exec_cache.items()
        ],
        "gate_records": (
            ctx.gate.export_records(arena) if ctx.gate is not None else None
        ),
        "hunt_failures": (
            dict(ctx.gate._hunt_failures) if ctx.gate is not None else None
        ),
        "point_verdicts": dict(ctx.point_verdicts),
        "table_verdicts": dict(ctx.table_verdicts),
        "recompilations": ctx.recompilations,
        "terms": arena,
    }
    return blob


def apply_snapshot(ctx, blob: dict) -> dict:
    """Rebuild warm state into a freshly-analyzed context.

    Precondition: the cold front half (parse → analysis) has run, so
    ``ctx.model``/``ctx.state``/``ctx.query_engine`` exist with empty
    per-switch state.  Returns restore telemetry (counts per layer).
    """
    if blob.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(f"unsupported snapshot format: {blob.get('format')!r}")
    arena = blob["terms"]
    # 1. Replay the control plane (maintains the gate's FDDs via the
    #    TableState update hooks attached during analysis).
    for name, entries in blob["tables"].items():
        for entry in entries:
            ctx.state.apply_update(Update(name, INSERT, entry))
    for name, values in blob["value_sets"].items():
        ctx.state.apply_value_set_update(ValueSetUpdate(name, tuple(values)))
    # 2. Re-derive assignments and the control mapping (pure encodings —
    #    identical hash-consed terms, so identity-keyed memos line up).
    for name, info in ctx.model.tables.items():
        assignment = encode_table(
            info, ctx.state.tables[name], ctx.options.overapprox_threshold
        )
        ctx.table_assignments[name] = assignment
        ctx.mapping.update(assignment.mapping)
    for name, info in ctx.model.value_sets.items():
        ctx.mapping.update(encode_value_set(info, ctx.state.value_sets[name]))
    # 3. Substitution mapping + memo, wholesale.
    memo_entries = ctx.substitution.import_state(arena, blob["substitution"])
    # 4. Encoder + session.  Attach the context's current encoder when it
    #    already presents the snapshot's fragment graph (fresh restore →
    #    both empty; store-backed restore → blob roots are a prefix of
    #    the shared log); otherwise replay the root log into a fresh one.
    solver = ctx.query_engine.solver
    roots = [(is_bool, arena.decode(index)) for is_bool, index in blob["roots"]]
    replayed_roots = 0
    if roots_compatible(solver._encoder, roots):
        encoder = solver._encoder
    else:
        encoder = replay_encoder(roots, solver.cnf_counter)
        replayed_roots = len(roots)
    session = SolverSession.restore(encoder, blob["session"])
    solver.adopt_shared(encoder, session)
    # 5. Term-pure memos: union, never overwrite (a store-shared memo may
    #    already hold entries from sibling switches — both sides are pure
    #    functions of the term, so any merge order is correct).
    for index, (satisfiable, model) in blob["results"]:
        solver._results.setdefault(arena.decode(index), SatResult(satisfiable, model))
    for index, verdict in blob["exec_cache"]:
        ctx.query_engine._exec_cache.setdefault(arena.decode(index), verdict)
    # 6. Gate witness fingerprints (re-interned against the replayed FDDs).
    witness_records = 0
    if ctx.gate is not None and blob.get("gate_records") is not None:
        witness_records = ctx.gate.restore_records(
            arena, blob["gate_records"], blob.get("hunt_failures")
        )
    # 7. Verdicts and counters.
    ctx.point_verdicts.update(blob["point_verdicts"])
    ctx.table_verdicts.update(blob["table_verdicts"])
    ctx.recompilations = blob["recompilations"]
    # 8. Re-prime the table-verdict memo.  The memo itself cannot ride in
    #    the blob (its keys embed term identities), but the re-derived
    #    assignments are identical hash-consed terms to what the warm path
    #    will look up, so one uncached pass here rebuilds every entry the
    #    snapshotted engine had.
    primed = 0
    if ctx.query_engine.table_verdict_cache:
        for name, info in ctx.model.tables.items():
            ctx.query_engine.table_verdict(
                info, ctx.table_assignments[name], ctx.state.tables[name]
            )
            primed += 1
    return {
        "memo_entries": memo_entries,
        "learned_clauses": len(session.sat._learned),
        "witness_records": witness_records,
        "replayed_roots": replayed_roots,
        "table_verdicts_primed": primed,
    }


__all__ = ["SNAPSHOT_FORMAT", "apply_snapshot", "snapshot_context"]
