"""The specializing transformer: verdicts → specialized program.

Implements the paper's partial-evaluation repertoire (§4.1):

* **dead-code elimination** — if/select branches whose guard is NEVER are
  dropped; unused table actions are removed (Fig. 3's vanishing ``drop``);
* **constant propagation** — assignments whose value is a constant under
  the current control plane are replaced by literals;
* **table inlining** — a table that can only ever run one action with
  constant action data is replaced by that action's body (Fig. 3 impl. A);
  an empty table running a no-op default disappears entirely;
* **match-kind narrowing** — a ternary key whose entries all use the full
  mask becomes exact, freeing TCAM (Fig. 3 impl. B);
* **parser specializations** — select branches that can never be taken
  (e.g. through an unconfigured value set) are removed, and unused headers
  at the tail of the parse graph are reclassified as payload.

The output is a new AST; the device compiler consumes it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.model import DataPlaneModel, TableInfo
from repro.analysis.symexec import VALID_SUFFIX
from repro.errors import FlayError, OptionsError, STAGE_SPECIALIZE
from repro.engine.queries import ALWAYS, MAYBE, NEVER, PointVerdict, TableVerdict
from repro.p4 import ast_nodes as ast
from repro.p4.types import TypeEnv


@dataclass
class SpecializationReport:
    """What the specializer did, for resource accounting and the examples."""

    removed_tables: list = field(default_factory=list)
    inlined_tables: list = field(default_factory=list)
    removed_actions: dict = field(default_factory=dict)  # table → [action]
    narrowed_keys: dict = field(default_factory=dict)  # table → match plan
    removed_branches: int = 0
    removed_select_cases: int = 0
    pruned_headers: list = field(default_factory=list)
    constants_propagated: int = 0

    def summary(self) -> str:
        parts = []
        if self.removed_tables:
            parts.append(f"removed tables: {', '.join(self.removed_tables)}")
        if self.inlined_tables:
            parts.append(f"inlined tables: {', '.join(self.inlined_tables)}")
        for table, actions in self.removed_actions.items():
            parts.append(f"{table}: dropped actions {', '.join(actions)}")
        for table, plan in self.narrowed_keys.items():
            parts.append(f"{table}: match plan {plan}")
        if self.removed_branches:
            parts.append(f"removed {self.removed_branches} branches")
        if self.removed_select_cases:
            parts.append(f"removed {self.removed_select_cases} select cases")
        if self.pruned_headers:
            parts.append(f"pruned headers: {', '.join(self.pruned_headers)}")
        if self.constants_propagated:
            parts.append(f"propagated {self.constants_propagated} constants")
        return "; ".join(parts) if parts else "no specializations applied"


#: Specialization effort presets (the paper's second future-work axis:
#: trading specialization quality against respecialization time).
EFFORT_NONE = "none"      # pass the program through untouched
EFFORT_DCE = "dce"        # dead code only: branches, empty tables, actions
EFFORT_FULL = "full"      # + constant propagation, inlining, narrowing


class Specializer:
    """One-shot specialization of a program against a verdict set."""

    def __init__(
        self,
        program: ast.Program,
        model: DataPlaneModel,
        env: Optional[TypeEnv] = None,
        prune_parser_tail: bool = True,
        effort: str = EFFORT_FULL,
    ) -> None:
        if effort not in (EFFORT_NONE, EFFORT_DCE, EFFORT_FULL):
            raise OptionsError(
                f"unknown effort level {effort!r} "
                f"(choose one of: {EFFORT_NONE}, {EFFORT_DCE}, {EFFORT_FULL})"
            )
        self.program = program
        self.model = model
        self.env = env if env is not None else TypeEnv(program)
        self.effort = effort
        self.prune_parser_tail = prune_parser_tail and effort == EFFORT_FULL
        # Individual passes, derived from the effort preset.
        self.enable_dce = effort in (EFFORT_DCE, EFFORT_FULL)
        self.enable_constant_propagation = effort == EFFORT_FULL
        self.enable_inlining = effort == EFFORT_FULL
        self.enable_narrowing = effort == EFFORT_FULL

    def specialize(
        self,
        point_verdicts: dict[str, PointVerdict],
        table_verdicts: dict[str, TableVerdict],
    ) -> tuple[ast.Program, SpecializationReport]:
        self.report = SpecializationReport()
        if self.effort == EFFORT_NONE:
            return self.program, self.report
        self.point_verdicts = point_verdicts
        self.table_verdicts = table_verdicts
        self._node_verdicts = self._collect_node_verdicts(point_verdicts)

        new_decls: list = []
        new_controls: dict[str, ast.ControlDecl] = {}
        for decl in self.program.declarations:
            if isinstance(decl, ast.ControlDecl) and self._in_pipeline(decl.name):
                specialized = self._spec_control(decl)
                new_controls[decl.name] = specialized
                new_decls.append(specialized)
            elif isinstance(decl, ast.ParserDecl) and self._in_pipeline(decl.name):
                new_decls.append(self._spec_parser(decl))
            else:
                new_decls.append(decl)

        program = ast.Program(tuple(new_decls))
        if self.prune_parser_tail:
            program = self._prune_parser_tail(program)
        return program, self.report

    # -- plumbing ------------------------------------------------------------

    def _in_pipeline(self, name: str) -> bool:
        pipeline = self.program.pipeline
        return name == pipeline.parser or name in pipeline.controls

    def _collect_node_verdicts(
        self, point_verdicts: dict[str, PointVerdict]
    ) -> dict[int, PointVerdict]:
        """node_id → verdict, dropping nodes with conflicting verdicts.

        A node can be annotated more than once (e.g. an assignment inside an
        action body shared by two tables); we only specialize on it when
        every annotation agrees.
        """
        by_node: dict[int, PointVerdict] = {}
        conflicted: set[int] = set()
        for pid, verdict in point_verdicts.items():
            point = self.model.points.get(pid)
            if point is None or point.node_id is None:
                continue
            node_id = point.node_id
            if node_id in conflicted:
                continue
            existing = by_node.get(node_id)
            if existing is None:
                by_node[node_id] = verdict
            elif not existing.same_specialization(verdict):
                conflicted.add(node_id)
                del by_node[node_id]
        return by_node

    def _table_info(self, control: str, table: str) -> TableInfo:
        return self.model.tables[f"{control}.{table}"]

    def _verdict_for_node(self, node_id: int) -> Optional[PointVerdict]:
        return self._node_verdicts.get(node_id)

    # -- controls ---------------------------------------------------------------

    def _spec_control(self, decl: ast.ControlDecl) -> ast.ControlDecl:
        self._current = decl
        self._kept_tables: dict[str, ast.TableDecl] = {}
        new_apply = ast.Block(tuple(self._spec_block(decl.apply)))

        referenced_actions: set[str] = set()
        for table in self._kept_tables.values():
            referenced_actions.update(ref.name for ref in table.actions)
            if table.default_action is not None:
                referenced_actions.add(table.default_action.name)
        new_locals: list = []
        for local in decl.locals:
            if isinstance(local, ast.TableDecl):
                if local.name in self._kept_tables:
                    new_locals.append(self._kept_tables[local.name])
            elif isinstance(local, ast.ActionDecl):
                if local.name in referenced_actions:
                    new_locals.append(local)
            else:
                new_locals.append(local)
        return ast.ControlDecl(decl.name, decl.params, tuple(new_locals), new_apply)

    def _spec_block(self, block: ast.Block) -> list:
        statements: list = []
        for stmt in block.statements:
            statements.extend(self._spec_stmt(stmt))
        return statements

    def _spec_stmt(self, stmt) -> list:
        if isinstance(stmt, ast.AssignStmt):
            return [self._spec_assign(stmt)]
        if isinstance(stmt, ast.IfStmt):
            return self._spec_if(stmt)
        if isinstance(stmt, ast.MethodCallStmt):
            call = stmt.call
            if call.method == "apply" and call.target is not None:
                return self._spec_table_apply(_target_name(call.target))
            return [stmt]
        if isinstance(stmt, ast.SwitchStmt):
            return self._spec_switch(stmt)
        return [stmt]

    def _spec_assign(self, stmt: ast.AssignStmt) -> ast.AssignStmt:
        if not self.enable_constant_propagation:
            return stmt
        verdict = self._verdict_for_node(id(stmt))
        if (
            verdict is not None
            and verdict.is_constant
            and not isinstance(stmt.rhs, (ast.IntLit, ast.BoolLit))
            and not isinstance(stmt.lhs, ast.Slice)
        ):
            width = self._lhs_width(stmt.lhs)
            if width is not None:
                self.report.constants_propagated += 1
                return ast.AssignStmt(
                    stmt.lhs, ast.IntLit(verdict.constant, width), pos=stmt.pos
                )
        return stmt

    def _lhs_width(self, lhs) -> Optional[int]:
        from repro.p4.types import Scope, lvalue_path, scope_for_params

        try:
            scope = scope_for_params(self.env, self._current.params)
            for local in self._current.locals:
                if isinstance(local, ast.VarDeclStmt):
                    scope.bind(local.name, local.type)
            from repro.p4.types import type_of

            t = type_of(lhs, scope)
            resolved = self.env.resolve(t)
            if isinstance(resolved, ast.BoolType):
                return None  # keep booleans textual
            return self.env.width_of(resolved)
        except Exception:
            return None

    def _spec_if(self, stmt: ast.IfStmt) -> list:
        # `if (t.apply().hit)` — decided by the table's hit verdict.
        hit_form = _match_apply_hit(stmt.cond)
        if hit_form is not None:
            table_name, want_hit = hit_form
            verdict = self.table_verdicts.get(
                f"{self._current.name}.{table_name}"
            )
            prefix = self._spec_table_apply(table_name)
            if verdict is None or verdict.hit == MAYBE:
                # Table must stay; reattach the condition around the apply.
                then = ast.Block(tuple(self._spec_block(stmt.then)))
                orelse = (
                    ast.Block(tuple(self._spec_block(stmt.orelse)))
                    if stmt.orelse is not None
                    else None
                )
                return [ast.IfStmt(stmt.cond, then, orelse, pos=stmt.pos)]
            taken = (verdict.hit == ALWAYS) == want_hit
            self.report.removed_branches += 1
            if taken:
                return prefix + self._spec_block(stmt.then)
            if stmt.orelse is not None:
                return prefix + self._spec_block(stmt.orelse)
            return prefix

        verdict = self._verdict_for_node(id(stmt)) if self.enable_dce else None
        if verdict is not None and verdict.executability == ALWAYS:
            self.report.removed_branches += 1
            return self._spec_block(stmt.then)
        if verdict is not None and verdict.executability == NEVER:
            self.report.removed_branches += 1
            return self._spec_block(stmt.orelse) if stmt.orelse is not None else []
        then = ast.Block(tuple(self._spec_block(stmt.then)))
        orelse = (
            ast.Block(tuple(self._spec_block(stmt.orelse)))
            if stmt.orelse is not None
            else None
        )
        return [ast.IfStmt(stmt.cond, then, orelse, pos=stmt.pos)]

    # -- tables -------------------------------------------------------------------

    def _spec_table_apply(self, table_name: str) -> list:
        control = self._current
        qualified = f"{control.name}.{table_name}"
        decl = _find_table(control, table_name)
        verdict = self.table_verdicts.get(qualified)
        info = self.model.tables.get(qualified)
        if verdict is None or info is None or verdict.overapproximated:
            self._kept_tables[table_name] = decl
            return [_apply_stmt(table_name)]

        feasible = verdict.feasible_actions
        if len(feasible) == 1:
            (action_name,) = feasible
            const_args = self._const_args_for(verdict, info, action_name)
            action_decl = _find_action(self._current, action_name)
            body_empty = not action_decl.body.statements
            # DCE-only effort may still *remove* an empty table (dead code)
            # but never inlines an effectful action body.
            if not self.enable_inlining and not body_empty:
                const_args = None
            if const_args is not None:
                body = self._inline_action(control, action_name, const_args)
                if not decl.keys and not body:
                    self.report.removed_tables.append(qualified)
                elif body:
                    self.report.inlined_tables.append(qualified)
                else:
                    self.report.removed_tables.append(qualified)
                return body

        # Keep the table; shed infeasible actions and narrow match kinds.
        kept_actions = tuple(
            ref for ref in decl.actions if ref.name in feasible
        )
        dropped = [ref.name for ref in decl.actions if ref.name not in feasible]
        if dropped:
            self.report.removed_actions.setdefault(qualified, []).extend(dropped)
        new_keys = []
        narrowed = False
        for key, plan_kind in zip(decl.keys, verdict.match_plan):
            if not self.enable_narrowing:
                new_keys.append(key)
                continue
            if plan_kind == "none":
                narrowed = True
                continue  # fully wildcarded key needs no match hardware
            if plan_kind != key.match_kind:
                narrowed = True
                new_keys.append(ast.KeyElement(key.expr, plan_kind))
            else:
                new_keys.append(key)
        if narrowed:
            self.report.narrowed_keys[qualified] = verdict.match_plan
        new_decl = ast.TableDecl(
            decl.name, tuple(new_keys), kept_actions, decl.default_action, decl.size
        )
        self._kept_tables[table_name] = new_decl
        return [_apply_stmt(table_name)]

    def _const_args_for(
        self, verdict: TableVerdict, info: TableInfo, action_name: str
    ) -> Optional[dict[str, int]]:
        """Constant action data for ``action_name``, or None if any varies."""
        params = info.action_params.get(action_name, [])
        consts = dict(verdict.const_params)
        args: dict[str, int] = {}
        for param in params:
            value = consts.get((action_name, param.name))
            if value is None:
                return None
            args[param.name] = value
        return args

    def _inline_action(
        self, control: ast.ControlDecl, action_name: str, const_args: dict[str, int]
    ) -> list:
        action = _find_action(control, action_name)
        widths = {
            p.name: self.env.width_of(p.type) for p in action.params
        }
        substitution = {
            name: ast.IntLit(value, widths[name])
            for name, value in const_args.items()
        }
        body = [_subst_stmt(stmt, substitution) for stmt in action.body.statements]
        return [s for s in body if not isinstance(s, ast.ReturnStmt)]

    def _spec_switch(self, stmt: ast.SwitchStmt) -> list:
        control = self._current
        qualified = f"{control.name}.{stmt.table}"
        verdict = self.table_verdicts.get(qualified)
        info = self.model.tables.get(qualified)
        prefix = self._spec_table_apply(stmt.table)
        if verdict is None or info is None or verdict.overapproximated:
            cases = tuple(
                ast.SwitchCase(c.action, ast.Block(tuple(self._spec_block(c.body))))
                for c in stmt.cases
            )
            return [ast.SwitchStmt(stmt.table, cases, pos=stmt.pos)]
        feasible = verdict.feasible_actions
        labelled = {c.action for c in stmt.cases if c.action is not None}
        default_needed = bool(feasible - labelled)
        kept_cases: list[ast.SwitchCase] = []
        for case in stmt.cases:
            if case.action is not None and case.action not in feasible:
                self.report.removed_branches += 1
                continue
            if case.action is None and not default_needed:
                self.report.removed_branches += 1
                continue
            kept_cases.append(
                ast.SwitchCase(case.action, ast.Block(tuple(self._spec_block(case.body))))
            )
        table_inlined = stmt.table not in self._kept_tables
        if len(feasible) == 1 and len(kept_cases) <= 1:
            body = list(kept_cases[0].body.statements) if kept_cases else []
            return prefix + body
        if table_inlined:
            # Table gone but multiple arms remain — cannot happen (a removed
            # table implies a single feasible action); keep defensive path.
            self._kept_tables[stmt.table] = _find_table(control, stmt.table)
            prefix = [_apply_stmt(stmt.table)]
        return [ast.SwitchStmt(stmt.table, tuple(kept_cases), pos=stmt.pos)]

    # -- parser -----------------------------------------------------------------------

    def _spec_parser(self, decl: ast.ParserDecl) -> ast.ParserDecl:
        new_states: list[ast.ParserState] = []
        for state in decl.states:
            transition = state.transition
            if isinstance(transition, ast.TransitionSelect):
                transition = self._spec_select(transition)
            new_states.append(
                ast.ParserState(state.name, state.statements, transition)
            )
        reachable = _reachable_states(new_states)
        kept = tuple(s for s in new_states if s.name in reachable)
        return ast.ParserDecl(decl.name, decl.params, decl.locals, kept)

    def _spec_select(self, select: ast.TransitionSelect) -> ast.Transition:
        kept_cases: list[ast.SelectCase] = []
        for case in select.cases:
            verdict = self._verdict_for_node(id(case))
            if verdict is not None and verdict.executability == NEVER:
                self.report.removed_select_cases += 1
                continue
            kept_cases.append(case)
            if verdict is not None and verdict.executability == ALWAYS:
                break  # later cases are unreachable
        if not kept_cases:
            return ast.TransitionDirect(ast.REJECT)
        if len(kept_cases) == 1 and (
            kept_cases[0].keys and all(k.is_default for k in kept_cases[0].keys)
        ):
            return ast.TransitionDirect(kept_cases[0].state)
        first = kept_cases[0]
        first_verdict = self._verdict_for_node(id(first))
        if first_verdict is not None and first_verdict.executability == ALWAYS:
            return ast.TransitionDirect(first.state)
        return ast.TransitionSelect(select.exprs, tuple(kept_cases))

    # -- parser-tail pruning ----------------------------------------------------------

    def _prune_parser_tail(self, program: ast.Program) -> ast.Program:
        pipeline = program.pipeline
        used = self._used_header_instances(program)
        order = list(self.model.extracted_headers)
        prunable: set[str] = set()
        for header in reversed(order):
            if header in used:
                break
            prunable.add(header)
        if not prunable:
            return program
        self.report.pruned_headers.extend(h for h in order if h in prunable)
        new_decls: list = []
        for decl in program.declarations:
            if isinstance(decl, ast.ParserDecl) and decl.name == pipeline.parser:
                new_decls.append(_strip_extracts(decl, prunable))
            else:
                new_decls.append(decl)
        return ast.Program(tuple(new_decls))

    def _used_header_instances(self, program: ast.Program) -> set[str]:
        """Header instances referenced anywhere outside their own extract."""
        used: set[str] = set()
        pipeline = program.pipeline
        for decl in program.declarations:
            if isinstance(decl, ast.ControlDecl) and decl.name in pipeline.controls:
                _collect_header_refs(decl, used)
            elif isinstance(decl, ast.ParserDecl) and decl.name == pipeline.parser:
                for state in decl.states:
                    if isinstance(state.transition, ast.TransitionSelect):
                        for expr in state.transition.exprs:
                            _collect_expr_headers(expr, used)
        return used


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _target_name(expr) -> str:
    if isinstance(expr, ast.Ident):
        return expr.name
    raise TypeError(f"table target must be a bare name, got {expr!r}")


def _apply_stmt(table_name: str) -> ast.MethodCallStmt:
    return ast.MethodCallStmt(
        ast.MethodCall(ast.Ident(table_name), "apply", ())
    )


def _match_apply_hit(cond) -> Optional[tuple[str, bool]]:
    """Recognize ``t.apply().hit`` / ``t.apply().miss`` / negations."""
    want = True
    while isinstance(cond, ast.Unary) and cond.op == "!":
        want = not want
        cond = cond.expr
    if (
        isinstance(cond, ast.Member)
        and cond.name in ("hit", "miss")
        and isinstance(cond.expr, ast.MethodCall)
        and cond.expr.method == "apply"
        and isinstance(cond.expr.target, ast.Ident)
    ):
        if cond.name == "miss":
            want = not want
        return cond.expr.target.name, want
    return None


class SpecializeError(FlayError, KeyError):
    """A specialization invariant failed (missing table/action)."""

    default_stage = STAGE_SPECIALIZE


def _find_table(control: ast.ControlDecl, name: str) -> ast.TableDecl:
    for local in control.locals:
        if isinstance(local, ast.TableDecl) and local.name == name:
            return local
    raise SpecializeError(f"control {control.name!r} has no table {name!r}")


def _find_action(control: ast.ControlDecl, name: str) -> ast.ActionDecl:
    for local in control.locals:
        if isinstance(local, ast.ActionDecl) and local.name == name:
            return local
    raise SpecializeError(f"control {control.name!r} has no action {name!r}")


def _subst_stmt(stmt, mapping: dict[str, ast.Expr]):
    if isinstance(stmt, ast.AssignStmt):
        return ast.AssignStmt(
            _subst_expr(stmt.lhs, mapping), _subst_expr(stmt.rhs, mapping), pos=stmt.pos
        )
    if isinstance(stmt, ast.IfStmt):
        return ast.IfStmt(
            _subst_expr(stmt.cond, mapping),
            ast.Block(tuple(_subst_stmt(s, mapping) for s in stmt.then.statements)),
            ast.Block(tuple(_subst_stmt(s, mapping) for s in stmt.orelse.statements))
            if stmt.orelse is not None
            else None,
            pos=stmt.pos,
        )
    if isinstance(stmt, ast.MethodCallStmt):
        call = stmt.call
        return ast.MethodCallStmt(
            ast.MethodCall(
                _subst_expr(call.target, mapping) if call.target is not None else None,
                call.method,
                tuple(_subst_expr(a, mapping) for a in call.args),
            ),
            pos=stmt.pos,
        )
    return stmt


def _subst_expr(expr, mapping: dict[str, ast.Expr]):
    if isinstance(expr, ast.Ident) and expr.name in mapping:
        return mapping[expr.name]
    if isinstance(expr, ast.Member):
        return ast.Member(_subst_expr(expr.expr, mapping), expr.name)
    if isinstance(expr, ast.Slice):
        return ast.Slice(_subst_expr(expr.expr, mapping), expr.hi, expr.lo)
    if isinstance(expr, ast.Cast):
        return ast.Cast(expr.type, _subst_expr(expr.expr, mapping))
    if isinstance(expr, ast.Unary):
        return ast.Unary(expr.op, _subst_expr(expr.expr, mapping))
    if isinstance(expr, ast.Binary):
        return ast.Binary(
            expr.op, _subst_expr(expr.left, mapping), _subst_expr(expr.right, mapping)
        )
    if isinstance(expr, ast.Ternary):
        return ast.Ternary(
            _subst_expr(expr.cond, mapping),
            _subst_expr(expr.then, mapping),
            _subst_expr(expr.orelse, mapping),
        )
    if isinstance(expr, ast.MethodCall):
        return ast.MethodCall(
            _subst_expr(expr.target, mapping) if expr.target is not None else None,
            expr.method,
            tuple(_subst_expr(a, mapping) for a in expr.args),
        )
    return expr


def _reachable_states(states: list[ast.ParserState]) -> set[str]:
    by_name = {s.name: s for s in states}
    reachable: set[str] = set()
    stack = ["start"]
    while stack:
        name = stack.pop()
        if name in reachable or name in (ast.ACCEPT, ast.REJECT):
            continue
        reachable.add(name)
        state = by_name.get(name)
        if state is None:
            continue
        transition = state.transition
        if isinstance(transition, ast.TransitionDirect):
            stack.append(transition.state)
        else:
            stack.extend(case.state for case in transition.cases)
    return reachable


def _strip_extracts(decl: ast.ParserDecl, prunable: set[str]) -> ast.ParserDecl:
    new_states = []
    for state in decl.states:
        statements = tuple(
            s
            for s in state.statements
            if not (
                isinstance(s, ast.MethodCallStmt)
                and s.call.method == "pkt_extract"
                and _extract_target(s.call) in prunable
            )
        )
        new_states.append(ast.ParserState(state.name, statements, state.transition))
    return ast.ParserDecl(decl.name, decl.params, decl.locals, tuple(new_states))


def _extract_target(call: ast.MethodCall) -> Optional[str]:
    from repro.p4.types import lvalue_path

    try:
        return lvalue_path(call.args[0])
    except Exception:
        return None


def _collect_header_refs(decl: ast.ControlDecl, used: set[str]) -> None:
    def walk_block(block: ast.Block) -> None:
        for stmt in block.statements:
            walk_stmt(stmt)

    def walk_stmt(stmt) -> None:
        if isinstance(stmt, ast.AssignStmt):
            _collect_expr_headers(stmt.lhs, used)
            _collect_expr_headers(stmt.rhs, used)
        elif isinstance(stmt, ast.IfStmt):
            _collect_expr_headers(stmt.cond, used)
            walk_block(stmt.then)
            if stmt.orelse is not None:
                walk_block(stmt.orelse)
        elif isinstance(stmt, ast.MethodCallStmt):
            call = stmt.call
            if call.target is not None:
                _collect_expr_headers(call.target, used)
            for arg in call.args:
                _collect_expr_headers(arg, used)
        elif isinstance(stmt, ast.SwitchStmt):
            for case in stmt.cases:
                walk_block(case.body)

    for local in decl.locals:
        if isinstance(local, ast.ActionDecl):
            walk_block(local.body)
        elif isinstance(local, ast.TableDecl):
            for key in local.keys:
                _collect_expr_headers(key.expr, used)
    walk_block(decl.apply)


def _collect_expr_headers(expr, used: set[str]) -> None:
    """Record ``<param>.<header>`` prefixes of member chains."""
    if isinstance(expr, ast.Member):
        chain: list[str] = []
        node = expr
        while isinstance(node, ast.Member):
            chain.append(node.name)
            node = node.expr
        if isinstance(node, ast.Ident):
            chain.append(node.name)
            chain.reverse()
            if len(chain) >= 2:
                used.add(f"{chain[0]}.{chain[1]}")
        return
    if isinstance(expr, (ast.Unary, ast.Cast, ast.Slice)):
        _collect_expr_headers(expr.expr, used)
    elif isinstance(expr, ast.Binary):
        _collect_expr_headers(expr.left, used)
        _collect_expr_headers(expr.right, used)
    elif isinstance(expr, ast.Ternary):
        _collect_expr_headers(expr.cond, used)
        _collect_expr_headers(expr.then, used)
        _collect_expr_headers(expr.orelse, used)
    elif isinstance(expr, ast.MethodCall):
        if expr.target is not None:
            _collect_expr_headers(expr.target, used)
        for arg in expr.args:
            _collect_expr_headers(arg, used)
