"""The structured diagnostic layer shared by every Flay subsystem.

Every module-specific exception (parse, typecheck, analysis, entries,
configs, interpretation, lowering, SMT sorts) roots here so callers can
catch one :class:`FlayError` and always get two structured facts:

* ``stage`` — which pipeline stage raised it (one of the ``STAGE_*``
  constants; passes stamp it automatically via the pass manager), and
* ``pos`` — the source location (:class:`SourcePos`), when one is known.

This module is a deliberate leaf: it imports nothing from ``repro`` so
that the lowest layers (``repro.smt.terms``, ``repro.p4.errors``) can
depend on it without cycles.  The engine re-exports everything through
:mod:`repro.engine.errors`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional

# Pipeline stages, in cold-pipeline order (the warm path reuses the tail).
STAGE_PARSE = "parse"
STAGE_TYPECHECK = "typecheck"
STAGE_ANALYSIS = "analysis"
STAGE_RUNTIME = "runtime"  # control-plane state: entries, configs, updates
STAGE_QUERY = "query"  # SMT queries / verdict evaluation
STAGE_SPECIALIZE = "specialize"
STAGE_LOWER = "lower"  # target backends
STAGE_INTERPRET = "interpret"  # reference interpreter


@dataclass(frozen=True)
class SourcePos:
    """A position in a source file (1-based line/column)."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


class FlayError(Exception):
    """Base of every Flay diagnostic.

    Subclasses set :attr:`default_stage`; an instance can override it via
    the ``stage`` keyword.  ``pos`` carries the source location when the
    error is attributable to a program location.  Subclasses may multiply
    inherit a builtin exception (``ValueError``, ``KeyError``, ...) so that
    pre-existing ``except ValueError`` call sites keep working.
    """

    default_stage: ClassVar[Optional[str]] = None

    def __init__(
        self,
        message: str,
        *,
        stage: Optional[str] = None,
        pos: Optional[SourcePos] = None,
    ) -> None:
        self.message = message
        self.stage = stage if stage is not None else self.default_stage
        self.pos = pos
        super().__init__(self.render())

    def render(self) -> str:
        if self.pos is not None:
            return f"{self.pos}: {self.message}"
        return self.message

    def describe(self) -> str:
        """The CLI-facing form: ``[stage] pos: message``."""
        prefix = f"[{self.stage}] " if self.stage else ""
        return f"{prefix}{self.render()}"

    def __str__(self) -> str:
        # Uniform rendering even when a builtin like KeyError (which would
        # repr() its argument) appears in the MRO.
        return self.render()


class OptionsError(FlayError, ValueError):
    """An engine/facade option has an invalid value (bad effort, ...)."""

    default_stage = STAGE_RUNTIME
