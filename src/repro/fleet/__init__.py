"""Fleet-scale replay: many simulated switches over one shared store.

The paper's premise is that control-plane churn arrives continuously at
*every* switch in a network; this package replays that setting.  A
:class:`~repro.fleet.sim.FleetSimulator` drives N engines through a
correlated churn trace (:func:`repro.runtime.trace.fleet_trace`), a
:class:`~repro.fleet.store.SharedStore` deduplicates the cold artifacts
and warm solver state switches running the same program would otherwise
each rebuild, and warm-state snapshots
(:mod:`repro.engine.snapshot`) move a switch's accumulated knowledge to
disk and back for failover and shard migration.
"""

from repro.fleet.sim import FleetReport, FleetSimulator, SwitchResult
from repro.fleet.store import SharedStore, StoreEntry

__all__ = [
    "FleetReport",
    "FleetSimulator",
    "SharedStore",
    "StoreEntry",
    "SwitchResult",
]
