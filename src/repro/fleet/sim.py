"""The discrete-event fleet replay harness.

``FleetSimulator`` drives N simulated switches — one
:class:`~repro.engine.engine.Engine` each, all running the same program
with divergent table configurations — through a cross-switch correlated
churn trace (:func:`repro.runtime.trace.fleet_trace`).  Every burst
arrival becomes one ``apply_batch`` call on the owning switch's engine;
with a :class:`~repro.fleet.store.SharedStore` attached, switches 2..N
adopt the first switch's cold artifacts and term-pure warm caches
instead of recomputing them.

Everything is deterministic by construction: the trace is seeded and
platform-stable, per-switch workloads come from per-switch seeded
:class:`~repro.runtime.fuzzer.EntryFuzzer` streams, and the event loop
is single-threaded — so two simulators built from the same arguments
(one shared, one isolated) replay byte-identical per-switch update
sequences, which is what makes the shared-store differential (and the
``dedup_ratio`` measurement) meaningful.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.engine.context import EngineOptions
from repro.engine.engine import Engine
from repro.engine.events import EventBus, FleetSwitchReplayed
from repro.engine.registry import ContextRegistry
from repro.fleet.store import SharedStore
from repro.p4.printer import print_program
from repro.runtime.fuzzer import EntryFuzzer
from repro.runtime.trace import fleet_trace


@dataclass
class SwitchResult:
    """One switch's observable outcome of a fleet replay."""

    switch: int
    #: ``(target, table, update)`` per lowered write, submission order —
    #: the byte-comparable trace the differential suite checks.
    lowered: list
    specialized_source: str
    burst_latencies_ms: list
    recompilations: int
    updates: int
    bursts: int


@dataclass
class FleetReport:
    """Fleet-wide outcome: per-switch results plus sharing telemetry."""

    switches: list
    shared: bool
    events: int
    bursts: int
    #: CNF fragments held across *distinct* encoders (shared engines
    #: count their one store encoder once) — the dedup denominator.
    fragment_footprint: int
    encoder_vars: int
    store_entries: int = 0
    store_hits: int = 0
    store_donations: int = 0
    summary: dict = field(default_factory=dict)

    def latency_quantile(self, quantile: float) -> float:
        """Cross-switch per-burst latency percentile, in ms."""
        latencies = sorted(
            ms for result in self.switches for ms in result.burst_latencies_ms
        )
        if not latencies:
            return 0.0
        index = min(len(latencies) - 1, int(quantile * len(latencies)))
        return latencies[index]

    def lowered_traces(self) -> dict:
        return {result.switch: result.lowered for result in self.switches}

    def specialized_sources(self) -> dict:
        return {result.switch: result.specialized_source for result in self.switches}


def dedup_ratio(isolated: FleetReport, shared: FleetReport) -> float:
    """How many times over the fleet would duplicate the program CNF."""
    if not shared.fragment_footprint:
        return 1.0
    return isolated.fragment_footprint / shared.fragment_footprint


class FleetSimulator:
    """N engines, one correlated trace, optional shared store."""

    def __init__(
        self,
        source: str,
        switches: int = 8,
        options: Optional[EngineOptions] = None,
        shared_store: bool = True,
        seed: int = 0,
        duration: float = 120.0,
        mean_interval: float = 10.0,
        correlation: float = 0.7,
        updates_per_burst: int = 6,
        divergent_prefix: int = 10,
        workers: int = 1,
        executor: Optional[str] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        if switches <= 0:
            raise ValueError("fleet needs at least one switch")
        self.source = source
        self.options = options if options is not None else EngineOptions()
        self.switches = switches
        self.seed = seed
        self.updates_per_burst = updates_per_burst
        self.workers = workers
        self.executor = executor
        self.store = SharedStore() if shared_store else None
        self.bus = bus if bus is not None else EventBus()
        self.registry = ContextRegistry()
        self.trace = fleet_trace(
            switches,
            duration=duration,
            mean_interval=mean_interval,
            correlation=correlation,
            seed=seed,
        )
        self.engines: list[Engine] = []
        self._burst_fuzzers: list[EntryFuzzer] = []
        self._latencies: list[list] = [[] for _ in range(switches)]
        self._updates: list[int] = [0] * switches
        self._bursts: list[int] = [0] * switches
        self._ran = False
        for switch in range(switches):
            engine = Engine(
                source=source, options=self.options, store=self.store, bus=self.bus
            )
            self.engines.append(engine)
            self.registry.register(f"switch-{switch}", engine)
        # Divergent per-switch configurations: each switch pre-applies a
        # different-length seeded mixed stream, so no two control planes
        # (and no two sets of warm queries) are identical.
        model = self.engines[0].model
        for switch, engine in enumerate(self.engines):
            fuzzer = EntryFuzzer(model, seed=self._switch_seed(switch, 1))
            prefix = fuzzer.update_stream(count=divergent_prefix + switch)
            if prefix:
                engine.apply_batch(prefix, workers=workers, executor=executor)
            self._updates[switch] += len(prefix)
            self._burst_fuzzers.append(
                EntryFuzzer(model, seed=self._switch_seed(switch, 2))
            )

    def _switch_seed(self, switch: int, stream: int) -> int:
        # Plain integer arithmetic: int seeds are platform-stable under
        # random.Random, unlike tuple hashes (see runtime.trace._rng).
        return (self.seed * 1_000_003 + stream * 7_919 + switch) & 0x7FFFFFFF

    # -- the event loop --------------------------------------------------------

    def run(self) -> FleetReport:
        """Consume the whole trace, in time order; one batch per arrival."""
        if self._ran:
            raise RuntimeError("a FleetSimulator replays its trace once")
        self._ran = True
        for event in self.trace:
            switch = event.switch
            engine = self.engines[switch]
            updates = self._burst_fuzzers[switch].update_stream(
                count=self.updates_per_burst
            )
            start = time.perf_counter()
            report = engine.apply_batch(
                updates, workers=self.workers, executor=self.executor
            )
            elapsed_ms = (time.perf_counter() - start) * 1000
            self._latencies[switch].append(elapsed_ms)
            self._updates[switch] += len(updates)
            self._bursts[switch] += 1
            if self.bus.active:
                self.bus.emit(
                    FleetSwitchReplayed(
                        switch=switch,
                        burst_id=event.burst_id,
                        update_count=len(updates),
                        recompiled=report.recompiled,
                        elapsed_ms=elapsed_ms,
                    )
                )
        return self.report()

    # -- results ---------------------------------------------------------------

    @property
    def fragment_footprint(self) -> int:
        """CNF fragments across distinct encoders (shared counted once)."""
        distinct: dict[int, int] = {}
        for engine in self.engines:
            encoder = engine.ctx.query_engine.solver._encoder
            distinct[id(encoder)] = encoder.fragment_count
        return sum(distinct.values())

    @property
    def encoder_vars(self) -> int:
        distinct: dict[int, int] = {}
        for engine in self.engines:
            encoder = engine.ctx.query_engine.solver._encoder
            distinct[id(encoder)] = encoder.var_count
        return sum(distinct.values())

    def report(self) -> FleetReport:
        results = [
            SwitchResult(
                switch=switch,
                lowered=[
                    (l.target, l.table, l.update)
                    for l in engine.lowered_updates
                ],
                specialized_source=print_program(engine.specialized_program),
                burst_latencies_ms=list(self._latencies[switch]),
                recompilations=engine.recompilations,
                updates=self._updates[switch],
                bursts=self._bursts[switch],
            )
            for switch, engine in enumerate(self.engines)
        ]
        return FleetReport(
            switches=results,
            shared=self.store is not None,
            events=len(self.trace),
            bursts=sum(self._bursts),
            fragment_footprint=self.fragment_footprint,
            encoder_vars=self.encoder_vars,
            store_entries=len(self.store) if self.store is not None else 0,
            store_hits=self.store.hits if self.store is not None else 0,
            store_donations=self.store.donations if self.store is not None else 0,
            summary=self.registry.summary(),
        )

    # -- snapshot / restore ----------------------------------------------------

    def save_snapshots(self, directory: str) -> list[str]:
        """Write every switch's warm state under ``directory``.

        One pickle per switch plus a JSON manifest; restore any of them
        with :meth:`restore_switch` for instant failover or migration.
        """
        os.makedirs(directory, exist_ok=True)
        paths: list[str] = []
        for switch, engine in enumerate(self.engines):
            path = os.path.join(directory, f"switch-{switch}.snapshot.pkl")
            with open(path, "wb") as handle:
                pickle.dump(
                    engine.snapshot(), handle, protocol=pickle.HIGHEST_PROTOCOL
                )
            paths.append(path)
        manifest = {
            "format": 1,
            "switches": self.switches,
            "seed": self.seed,
            "store_key": (
                SharedStore.key_for(self.source, self.options)
            ),
            "snapshots": [os.path.basename(path) for path in paths],
        }
        with open(os.path.join(directory, "manifest.json"), "w") as handle:
            json.dump(manifest, handle, indent=2)
        return paths

    @staticmethod
    def restore_switch(path: str, store=None, bus=None) -> Engine:
        """Rebuild one switch's engine from a snapshot file."""
        with open(path, "rb") as handle:
            blob = pickle.load(handle)
        return Engine.restore(blob, store=store, bus=bus)

    def replace_switch(self, switch: int, engine: Engine) -> None:
        """Swap a switch's engine (restored replica takes over the shard)."""
        self.engines[switch] = engine
        self.registry.replace(f"switch-{switch}", engine)


__all__ = [
    "FleetReport",
    "FleetSimulator",
    "SwitchResult",
    "dedup_ratio",
]
