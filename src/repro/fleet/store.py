"""The content-addressed shared store: one cold pipeline per program.

Switches in a fleet overwhelmingly run the *same* data-plane program
with *different* table configurations.  Everything the cold pipeline
computes from the program alone — the parsed/pruned AST, the type
environment, the data-plane model, the blasted program CNF, and the
initial (empty-config) verdict sweep — is therefore identical across
those switches, and so is every warm cache that is a pure function of
hash-consed terms: the solver result memo, the executability cache, the
CNF fragment graph, and the session's learned clauses (each learned
clause is a consequence of Tseitin definitions alone, so it is valid for
every engine probing the same encoder — see
:mod:`repro.smt.session`).

The store keys entries by a content hash of the canonical program source
plus every verdict-relevant engine option (*not* the target backend or
executor strategy, which only affect lowering/scheduling): two engines
with the same key provably compute the same cold artifacts, so the
second one adopts the first one's donation instead of recomputing.

What is **never** shared: :class:`~repro.runtime.semantics.ControlPlaneState`
(per-switch entries), the :class:`~repro.smt.substitute.DeltaSubstitution`
(per-switch control-plane mapping), the verdict gate (its FDDs mirror
per-switch tables), the table-verdict memo (keyed on per-switch
active-entry digests), per-switch verdict dicts after the first update,
and all stats/counters.  Sharing is sound under serialized access — the
fleet simulator is a single-threaded discrete-event loop.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

#: Option fields that change what the cold pipeline and the term-level
#: caches compute.  ``target`` and ``executor`` are deliberately absent:
#: lowering strategy does not touch terms or verdicts, so switches with
#: different backends still share one entry.
COLD_KEY_FIELDS = (
    "skip_parser",
    "overapprox_threshold",
    "use_solver",
    "prune_parser_tail",
    "prune",
    "effort",
    "solver_budget",
    "solver_max_decisions",
    "solver_node_budget",
    "incremental_solver",
    "fdd_gate",
    "table_verdict_cache",
)


@dataclass
class StoreEntry:
    """One program's shared cold artifacts and term-pure warm caches."""

    key: str
    # Cold artifacts (immutable after analysis).
    program: object
    env: object
    prune_report: object
    model: object
    # Term-pure shared warm state (mutated in place by every adopter).
    encoder: object  # FragmentBitBlaster — the shared program CNF
    session: object  # SolverSession over the shared encoder
    results: dict  # Term → SatResult (solver result memo)
    exec_cache: dict  # Term → verdict string (executability cache)
    # Initial (empty-config) sweep, so adopters skip the cold encode pass.
    initial: dict = field(default_factory=dict)
    adoptions: int = 0


class SharedStore:
    """Content-addressed map from (source, options) to a :class:`StoreEntry`."""

    def __init__(self) -> None:
        self._entries: dict[str, StoreEntry] = {}
        self.hits = 0
        self.misses = 0
        self.donations = 0

    @staticmethod
    def key_for(source: str, options) -> str:
        """Content hash of the program source and verdict-relevant options."""
        digest = hashlib.sha256()
        digest.update(source.encode())
        for name in COLD_KEY_FIELDS:
            digest.update(f"|{name}={getattr(options, name)!r}".encode())
        return digest.hexdigest()

    def get(self, source: str, options) -> Optional[StoreEntry]:
        """The entry for this (source, options), or None (no stats side effects)."""
        return self._entries.get(self.key_for(source, options))

    def lookup(self, source: str, options) -> Optional[StoreEntry]:
        """Stats-counting :meth:`get`, called once per engine construction."""
        entry = self.get(source, options)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
            entry.adoptions += 1
        return entry

    def donate(self, ctx) -> StoreEntry:
        """Register a completed cold run's artifacts as the program's entry.

        The donor keeps using the now-shared encoder/session/memos; they
        are pinned on the donor's solver so the var-limit generation reset
        can never swap them out from under later adopters.
        """
        key = self.key_for(ctx.source, ctx.options)
        if key in self._entries:
            return self._entries[key]
        solver = ctx.query_engine.solver
        # Pin the donor to the shared state (no-op reassignment + pin).
        solver.adopt_shared(solver._encoder, solver._session, solver._results)
        entry = StoreEntry(
            key=key,
            program=ctx.program,
            env=ctx.env,
            prune_report=ctx.prune_report,
            model=ctx.model,
            encoder=solver._encoder,
            session=solver._session,
            results=solver._results,
            exec_cache=ctx.query_engine._exec_cache,
            initial={
                "mapping": dict(ctx.mapping),
                "table_assignments": dict(ctx.table_assignments),
                "point_verdicts": dict(ctx.point_verdicts),
                "table_verdicts": dict(ctx.table_verdicts),
            },
        )
        self._entries[key] = entry
        self.donations += 1
        return entry

    # -- observability ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def shared_fragments(self) -> int:
        """Total CNF fragments held across all entries (the dedup numerator)."""
        return sum(e.encoder.fragment_count for e in self._entries.values())

    @property
    def shared_vars(self) -> int:
        return sum(e.encoder.var_count for e in self._entries.values())

    def describe(self) -> str:
        return (
            f"store: {len(self._entries)} entries, {self.hits} hits, "
            f"{self.misses} misses, {self.donations} donations, "
            f"{self.shared_fragments} shared CNF fragments"
        )


__all__ = ["COLD_KEY_FIELDS", "SharedStore", "StoreEntry"]
