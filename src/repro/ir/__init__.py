"""Mid-level program analyses: metrics and table dependency graphs."""

from repro.ir.deps import (
    ACTION_DEP,
    CONTROL_DEP,
    MATCH_DEP,
    DepEdge,
    DependencyGraph,
    TableNode,
    build_dependency_graph,
)
from repro.ir.metrics import (
    CacheCounter,
    CacheReport,
    ProgramMetrics,
    measure,
    statement_count,
)
