"""Table dependency analysis for RMT stage allocation.

Walks each control's apply block in program order and extracts a sequence
of *logical table nodes* (match-action tables plus the gateway conditions
guarding them), each with read/write sets over flattened field paths.
Classic RMT dependency classes between earlier node A and later node B:

* **match dependency** — A writes a field B matches/reads → B must be in a
  strictly later stage;
* **action dependency** — A and B write the same field → strictly later;
* **control dependency** — B executes under a gateway fed by A's result →
  later stage (Tofino gateways resolve in-stage, but successor tables of a
  hit/miss branch still serialize).

The Tofino allocator consumes this graph to compute the stage count.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Optional

from repro.p4 import ast_nodes as ast
from repro.p4.types import TypeEnv, lvalue_path

MATCH_DEP = "match"
ACTION_DEP = "action"
CONTROL_DEP = "control"

#: Sticky flags: many tables OR into these, and RMT hardware folds such
#: writes into per-table bitmasks rather than ALU data hazards — they must
#: not create action dependencies between otherwise-independent tables.
STICKY_FIELDS = frozenset({"std.drop", "std.parser_error"})


@dataclass
class TableNode:
    """One logical table: a P4 table, or a gateway-only conditional."""

    name: str
    control: str
    is_gateway: bool
    reads: set[str] = dataclass_field(default_factory=set)
    writes: set[str] = dataclass_field(default_factory=set)
    key_bits: int = 0
    ternary_key_bits: int = 0
    lpm_key_bits: int = 0
    exact_key_bits: int = 0
    size: int = 512
    num_actions: int = 0
    action_param_bits: int = 0


@dataclass(frozen=True)
class DepEdge:
    src: str
    dst: str
    kind: str


@dataclass
class DependencyGraph:
    nodes: dict[str, TableNode]
    edges: list[DepEdge]
    order: list[str]  # program order of node names

    def successors(self, name: str) -> list[DepEdge]:
        return [e for e in self.edges if e.src == name]

    def predecessors(self, name: str) -> list[DepEdge]:
        return [e for e in self.edges if e.dst == name]

    def longest_chain(self) -> int:
        """Length (in nodes) of the longest dependency chain."""
        depth: dict[str, int] = {}
        for name in self.order:
            best = 0
            for edge in self.predecessors(name):
                best = max(best, depth.get(edge.src, 0))
            depth[name] = best + 1
        return max(depth.values(), default=0)

    def components(self) -> list[frozenset[str]]:
        """Connected components of the (undirected) dependency graph.

        Two tables in the same component can observe each other's effects,
        so control-plane updates targeting them must not be re-verdicted
        concurrently; tables in different components are independent units
        of recompilation (the RMT observation the batch scheduler builds
        its conflict groups on).  Components are returned in program order
        of their first member.
        """
        parent: dict[str, str] = {name: name for name in self.order}

        def find(name: str) -> str:
            root = name
            while parent[root] != root:
                root = parent[root]
            while parent[name] != root:
                parent[name], name = root, parent[name]
            return root

        for edge in self.edges:
            ra, rb = find(edge.src), find(edge.dst)
            if ra != rb:
                parent[rb] = ra
        grouped: dict[str, list[str]] = {}
        for name in self.order:
            grouped.setdefault(find(name), []).append(name)
        return [frozenset(members) for members in grouped.values()]


#: Read/write-set precision for table nodes.  ``"syntactic"`` is the
#: historical walk below (every field mention in an action body is a
#: read, ``hash``/``update_checksum`` destinations included).  ``"flow"``
#: delegates to :func:`repro.analysis.dataflow.effects.action_effects`,
#: which kill-tracks definite writes (a field rebuilt before use never
#: escapes as a read) and treats destination-writing externs as writes —
#: strictly fewer spurious match/action edges, never a missed real one.
PRECISION_SYNTACTIC = "syntactic"
PRECISION_FLOW = "flow"


def build_dependency_graph(
    program: ast.Program,
    env: Optional[TypeEnv] = None,
    *,
    precision: str = PRECISION_SYNTACTIC,
) -> DependencyGraph:
    env = env if env is not None else TypeEnv(program)
    builder = _Builder(program, env, precision=precision)
    for control_name in program.pipeline.controls:
        control = program.find(control_name)
        builder.walk_control(control)
    builder.connect()
    return DependencyGraph(builder.nodes, builder.edges, builder.order)


class _Builder:
    def __init__(
        self,
        program: ast.Program,
        env: TypeEnv,
        precision: str = PRECISION_SYNTACTIC,
    ) -> None:
        if precision not in (PRECISION_SYNTACTIC, PRECISION_FLOW):
            raise ValueError(f"unknown dependency precision {precision!r}")
        self.program = program
        self.env = env
        self.precision = precision
        self.nodes: dict[str, TableNode] = {}
        self.edges: list[DepEdge] = []
        self.order: list[str] = []
        self._gateway_counter = 0
        # (node, guard-source-nodes, branch-path) in program order.  The
        # branch path records (gateway, arm) pairs; two nodes whose paths
        # diverge at the same gateway are mutually exclusive and impose no
        # match/action dependency on each other.
        self._sequence: list[tuple[TableNode, frozenset[str], tuple]] = []

    # -- walking -------------------------------------------------------------

    def walk_control(self, control: ast.ControlDecl) -> None:
        self._walk_block(control, control.apply, guards=frozenset(), branch=())

    def _walk_block(
        self,
        control: ast.ControlDecl,
        block: ast.Block,
        guards: frozenset[str],
        branch: tuple,
    ) -> None:
        for stmt in block.statements:
            self._walk_stmt(control, stmt, guards, branch)

    def _walk_stmt(self, control, stmt, guards: frozenset[str], branch: tuple) -> None:
        if isinstance(stmt, ast.MethodCallStmt):
            call = stmt.call
            if call.method == "apply" and call.target is not None:
                self._add_table(control, lvalue_path(call.target), guards, branch)
            return
        if isinstance(stmt, ast.IfStmt):
            gateway = self._add_gateway(control, stmt.cond, guards, branch)
            inner = guards | {gateway.name}
            self._walk_block(control, stmt.then, inner, branch + ((gateway.name, 0),))
            if stmt.orelse is not None:
                self._walk_block(
                    control, stmt.orelse, inner, branch + ((gateway.name, 1),)
                )
            return
        if isinstance(stmt, ast.SwitchStmt):
            table = self._add_table(control, stmt.table, guards, branch)
            inner = guards | {table.name}
            for arm, case in enumerate(stmt.cases):
                self._walk_block(
                    control, case.body, inner, branch + ((table.name, arm),)
                )
            return
        # Straight-line statements contribute to the enclosing gateway-less
        # ALU work; they do not create table nodes.

    def _add_gateway(
        self, control, cond, guards: frozenset[str], branch: tuple
    ) -> TableNode:
        # `if (t.apply().hit)` — the table is the gateway.
        if (
            isinstance(cond, ast.Member)
            and cond.name in ("hit", "miss")
            and isinstance(cond.expr, ast.MethodCall)
            and cond.expr.method == "apply"
        ):
            return self._add_table(
                control, lvalue_path(cond.expr.target), guards, branch
            )
        self._gateway_counter += 1
        node = TableNode(
            name=f"{control.name}.$gw{self._gateway_counter}",
            control=control.name,
            is_gateway=True,
        )
        node.reads = _expr_fields(cond)
        self._register(node, guards, branch)
        return node

    def _add_table(
        self, control, table_name: str, guards: frozenset[str], branch: tuple
    ) -> TableNode:
        decl = None
        for local in control.locals:
            if isinstance(local, ast.TableDecl) and local.name == table_name:
                decl = local
                break
        if decl is None:
            raise KeyError(f"control {control.name!r} has no table {table_name!r}")
        qualified = f"{control.name}.{table_name}"
        if qualified in self.nodes:
            return self.nodes[qualified]
        node = TableNode(
            name=qualified,
            control=control.name,
            is_gateway=False,
            size=decl.size or 512,
            num_actions=len(decl.actions),
        )
        scope = _control_scope(self.env, control)
        for key in decl.keys:
            node.reads |= _expr_fields(key.expr)
            width = _key_width(key.expr, scope, self.env)
            node.key_bits += width
            if key.match_kind == "ternary":
                node.ternary_key_bits += width
            elif key.match_kind == "lpm":
                node.lpm_key_bits += width
            else:
                node.exact_key_bits += width
        for ref in decl.actions:
            action = _find_action(control, ref.name)
            node.action_param_bits += sum(
                self.env.width_of(p.type) for p in action.params
            )
            if self.precision == PRECISION_FLOW:
                # Imported lazily: ir is a lower layer than analysis.
                from repro.analysis.dataflow.effects import action_effects

                effects = action_effects(action)
                node.reads |= effects.reads
                node.writes |= effects.writes
            else:
                reads, writes = _action_effects(action)
                node.reads |= reads
                node.writes |= writes
        self._register(node, guards, branch)
        return node

    def _register(self, node: TableNode, guards: frozenset[str], branch: tuple) -> None:
        self.nodes[node.name] = node
        self.order.append(node.name)
        self._sequence.append((node, guards, branch))

    # -- edges ----------------------------------------------------------------

    def connect(self) -> None:
        seen: set[tuple[str, str]] = set()

        def add(src: str, dst: str, kind: str) -> None:
            if (src, dst) not in seen and src != dst:
                seen.add((src, dst))
                self.edges.append(DepEdge(src, dst, kind))

        for i, (later, later_guards, later_branch) in enumerate(self._sequence):
            for j in range(i):
                earlier, _, earlier_branch = self._sequence[j]
                if _mutually_exclusive(earlier_branch, later_branch):
                    continue
                if earlier.writes & later.reads:
                    add(earlier.name, later.name, MATCH_DEP)
                elif (earlier.writes & later.writes) - STICKY_FIELDS:
                    add(earlier.name, later.name, ACTION_DEP)
            for guard in later_guards:
                add(guard, later.name, CONTROL_DEP)


# ---------------------------------------------------------------------------
# Field extraction helpers
# ---------------------------------------------------------------------------


def _mutually_exclusive(branch_a: tuple, branch_b: tuple) -> bool:
    """True when the two branch paths diverge at a common gateway/switch."""
    for (gw_a, arm_a), (gw_b, arm_b) in zip(branch_a, branch_b):
        if gw_a != gw_b:
            return False
        if arm_a != arm_b:
            return True
    return False


def _expr_fields(expr) -> set[str]:
    """Flattened field paths an expression reads."""
    fields: set[str] = set()
    _collect_fields(expr, fields)
    return fields


def _collect_fields(expr, out: set[str]) -> None:
    if isinstance(expr, ast.Member):
        path = _maybe_path(expr)
        if path is not None:
            out.add(path)
            return
        _collect_fields(expr.expr, out)
    elif isinstance(expr, ast.Ident):
        out.add(expr.name)
    elif isinstance(expr, (ast.Unary, ast.Cast)):
        _collect_fields(expr.expr, out)
    elif isinstance(expr, ast.Slice):
        _collect_fields(expr.expr, out)
    elif isinstance(expr, ast.Binary):
        _collect_fields(expr.left, out)
        _collect_fields(expr.right, out)
    elif isinstance(expr, ast.Ternary):
        _collect_fields(expr.cond, out)
        _collect_fields(expr.then, out)
        _collect_fields(expr.orelse, out)
    elif isinstance(expr, ast.MethodCall):
        if expr.target is not None and expr.method == "isValid":
            path = _maybe_path(expr.target)
            if path is not None:
                out.add(path + ".$valid")
                return
        for arg in expr.args:
            _collect_fields(arg, out)


def _maybe_path(expr) -> Optional[str]:
    try:
        return lvalue_path(expr)
    except Exception:
        return None


def _action_effects(action: ast.ActionDecl) -> tuple[set[str], set[str]]:
    param_names = {p.name for p in action.params}
    reads: set[str] = set()
    writes: set[str] = set()
    _block_effects(action.body, param_names, reads, writes)
    return reads, writes


def _block_effects(block: ast.Block, params: set[str], reads, writes) -> None:
    for stmt in block.statements:
        if isinstance(stmt, ast.AssignStmt):
            lhs = stmt.lhs.expr if isinstance(stmt.lhs, ast.Slice) else stmt.lhs
            path = _maybe_path(lhs)
            if path is not None and path not in params:
                writes.add(path)
            reads.update(f for f in _expr_fields(stmt.rhs) if f not in params)
        elif isinstance(stmt, ast.IfStmt):
            reads.update(f for f in _expr_fields(stmt.cond) if f not in params)
            _block_effects(stmt.then, params, reads, writes)
            if stmt.orelse is not None:
                _block_effects(stmt.orelse, params, reads, writes)
        elif isinstance(stmt, ast.MethodCallStmt):
            call = stmt.call
            if call.method == "mark_to_drop":
                writes.add("std.drop")
            elif call.method in ("setValid", "setInvalid") and call.target is not None:
                path = _maybe_path(call.target)
                if path is not None:
                    writes.add(path + ".$valid")
            elif call.method == "read" and call.args:
                path = _maybe_path(call.args[0])
                if path is not None and path not in params:
                    writes.add(path)
            else:
                for arg in call.args:
                    reads.update(f for f in _expr_fields(arg) if f not in params)


def _control_scope(env: TypeEnv, control: ast.ControlDecl):
    from repro.p4.types import scope_for_params

    scope = scope_for_params(env, control.params)
    for local in control.locals:
        if isinstance(local, ast.VarDeclStmt):
            scope.bind(local.name, local.type)
    return scope


def _key_width(expr, scope, env: TypeEnv) -> int:
    from repro.p4.types import bit_width

    try:
        return bit_width(expr, scope, context_width=32)
    except Exception:
        return 32


def _find_action(control: ast.ControlDecl, name: str) -> ast.ActionDecl:
    for local in control.locals:
        if isinstance(local, ast.ActionDecl) and local.name == name:
            return local
    raise KeyError(f"control {control.name!r} has no action {name!r}")
