"""Program metrics: statement counts, control-path counts, McCabe complexity.

The "Program statements" column of the paper's Table 2 and the
"exponential in the number of control paths" observation (§4.2) both come
from here.

This module also hosts the cache instrumentation shared by the
cross-update evaluation caches (delta substitution, solver verdict
memoization, CNF fragment reuse, active-entry elision): every cache layer
owns a :class:`CacheCounter`, and :class:`CacheReport` aggregates them for
the ``--stats`` CLI flag and the cache benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.p4 import ast_nodes as ast


# ---------------------------------------------------------------------------
# Cache instrumentation
# ---------------------------------------------------------------------------


@dataclass
class CacheCounter:
    """Hit/miss/invalidation counters for one cache layer.

    ``hits`` are lookups answered from the cache, ``misses`` are lookups
    that had to compute (and usually then populate the cache), and
    ``invalidations`` counts entries dropped because a control-plane update
    made them stale — the delta the incremental pipeline actually pays for.
    """

    name: str
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    def hit(self, n: int = 1) -> None:
        self.hits += n

    def miss(self, n: int = 1) -> None:
        self.misses += n

    def invalidate(self, n: int = 1) -> None:
        self.invalidations += n

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> "CacheCounter":
        """A frozen copy, for before/after deltas in benchmarks."""
        return CacheCounter(self.name, self.hits, self.misses, self.invalidations)

    def since(self, baseline: "CacheCounter") -> "CacheCounter":
        """Counter activity between ``baseline`` and now."""
        return CacheCounter(
            self.name,
            self.hits - baseline.hits,
            self.misses - baseline.misses,
            self.invalidations - baseline.invalidations,
        )

    def reset(self) -> None:
        self.hits = self.misses = self.invalidations = 0

    def describe(self) -> str:
        return (
            f"{self.name:<14} {self.hits:>10} {self.misses:>10} "
            f"{self.invalidations:>13} {self.hit_rate * 100:>8.1f}%"
        )


@dataclass
class CacheReport:
    """All cache layers of one pipeline instance, printable as a table."""

    counters: list = field(default_factory=list)

    def add(self, counter: CacheCounter) -> None:
        self.counters.append(counter)

    def get(self, name: str) -> CacheCounter:
        for counter in self.counters:
            if counter.name == name:
                return counter
        raise KeyError(f"no cache counter named {name!r}")

    @property
    def total_hits(self) -> int:
        return sum(c.hits for c in self.counters)

    @property
    def total_misses(self) -> int:
        return sum(c.misses for c in self.counters)

    @property
    def total_invalidations(self) -> int:
        return sum(c.invalidations for c in self.counters)

    def describe(self) -> str:
        lines = [
            f"{'cache':<14} {'hits':>10} {'misses':>10} "
            f"{'invalidations':>13} {'hit rate':>9}"
        ]
        lines.extend(c.describe() for c in self.counters)
        lines.append(
            f"{'total':<14} {self.total_hits:>10} {self.total_misses:>10} "
            f"{self.total_invalidations:>13}"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class ProgramMetrics:
    statements: int
    tables: int
    actions: int
    keys: int
    if_statements: int
    parser_states: int
    registers: int
    control_paths: int  # product/sum of branch choices (capped)
    mccabe: int  # decision points + 1

    def __str__(self) -> str:
        return (
            f"{self.statements} stmts, {self.tables} tables, "
            f"{self.actions} actions, {self.control_paths} paths"
        )


_PATH_CAP = 10**12


def measure(program: ast.Program) -> ProgramMetrics:
    counter = _Counter()
    for decl in program.declarations:
        if isinstance(decl, ast.ControlDecl):
            counter.control(decl)
        elif isinstance(decl, ast.ParserDecl):
            counter.parser(decl)
    return ProgramMetrics(
        statements=counter.statements,
        tables=counter.tables,
        actions=counter.actions,
        keys=counter.keys,
        if_statements=counter.ifs,
        parser_states=counter.states,
        registers=counter.registers,
        control_paths=min(counter.paths, _PATH_CAP),
        mccabe=counter.decisions + 1,
    )


def statement_count(program: ast.Program) -> int:
    return measure(program).statements


class _Counter:
    def __init__(self) -> None:
        self.statements = 0
        self.tables = 0
        self.actions = 0
        self.keys = 0
        self.ifs = 0
        self.states = 0
        self.registers = 0
        self.decisions = 0
        self.paths = 1

    def control(self, decl: ast.ControlDecl) -> None:
        action_choices: dict[str, int] = {}
        for local in decl.locals:
            if isinstance(local, ast.ActionDecl):
                self.actions += 1
                self.block(local.body)
            elif isinstance(local, ast.TableDecl):
                self.tables += 1
                self.keys += len(local.keys)
                self.statements += 1  # the table declaration itself
                # Each apply multiplies paths by the number of actions.
                action_choices[local.name] = max(1, len(local.actions))
            elif isinstance(local, ast.InstantiationDecl):
                self.statements += 1
                if local.kind == "register":
                    self.registers += 1
            elif isinstance(local, ast.VarDeclStmt):
                self.statements += 1
        self.paths = _cap_mul(self.paths, self._block_paths(decl.apply, action_choices))
        self.block(decl.apply)

    def parser(self, decl: ast.ParserDecl) -> None:
        state_paths = 1
        for state in decl.states:
            self.states += 1
            for stmt in state.statements:
                self.stmt(stmt)
            if isinstance(state.transition, ast.TransitionSelect):
                choices = len(state.transition.cases) + 1
                self.decisions += choices - 1
                state_paths = _cap_mul(state_paths, choices)
        self.paths = _cap_mul(self.paths, state_paths)

    def block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self.stmt(stmt)

    def stmt(self, stmt) -> None:
        self.statements += 1
        if isinstance(stmt, ast.IfStmt):
            self.ifs += 1
            self.decisions += 1
            self.block(stmt.then)
            if stmt.orelse is not None:
                self.block(stmt.orelse)
        elif isinstance(stmt, ast.SwitchStmt):
            self.decisions += max(1, len(stmt.cases)) - 1
            for case in stmt.cases:
                self.block(case.body)

    def _block_paths(self, block: ast.Block, action_choices: dict[str, int]) -> int:
        paths = 1
        for stmt in block.statements:
            paths = _cap_mul(paths, self._stmt_paths(stmt, action_choices))
        return paths

    def _stmt_paths(self, stmt, action_choices: dict[str, int]) -> int:
        if isinstance(stmt, ast.IfStmt):
            then_paths = self._block_paths(stmt.then, action_choices)
            else_paths = (
                self._block_paths(stmt.orelse, action_choices)
                if stmt.orelse is not None
                else 1
            )
            return min(_PATH_CAP, then_paths + else_paths)
        if isinstance(stmt, ast.SwitchStmt):
            total = action_choices.get(stmt.table, 1)
            for case in stmt.cases:
                total = min(
                    _PATH_CAP, total + self._block_paths(case.body, action_choices)
                )
            return total
        if isinstance(stmt, ast.MethodCallStmt) and stmt.call.method == "apply":
            if stmt.call.target is not None and isinstance(stmt.call.target, ast.Ident):
                return action_choices.get(stmt.call.target.name, 1)
        return 1


def _cap_mul(a: int, b: int) -> int:
    return min(_PATH_CAP, a * b)
