"""P4-16 subset front end: lexer, parser, AST, types, printer."""

from repro.p4 import ast_nodes as ast
from repro.p4.errors import LexError, P4Error, ParseError, TypeCheckError
from repro.p4.lexer import tokenize
from repro.p4.parser import parse_expr, parse_program
from repro.p4.printer import print_expr, print_program, print_stmt
from repro.p4.types import (
    FieldInfo,
    Scope,
    TypeEnv,
    bit_width,
    lvalue_path,
    scope_for_params,
    type_of,
)
