"""AST for the P4-16 subset.

The shape mirrors the P4-16 grammar restricted to the constructs Flay's
analysis relies on: headers/structs, parsers with select-based state
machines and value sets, controls with actions and match-action tables,
straight-line apply blocks with if/else, and a small extern surface
(registers, counters, drop, checksums).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.p4.errors import SourcePos

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BitType:
    """``bit<N>``."""

    width: int

    def __str__(self) -> str:
        return f"bit<{self.width}>"


@dataclass(frozen=True)
class BoolType:
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class NamedType:
    """A reference to a typedef, header, or struct by name."""

    name: str

    def __str__(self) -> str:
        return self.name


Type = Union[BitType, BoolType, NamedType]

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntLit:
    value: int
    width: Optional[int] = None  # None = unsized literal
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class BoolLit:
    value: bool
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class Ident:
    name: str
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class Member:
    """``expr.name`` — header field access, ``.hit``, ``.isValid()``-target."""

    expr: "Expr"
    name: str
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class Slice:
    """``expr[hi:lo]``."""

    expr: "Expr"
    hi: int
    lo: int
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class Cast:
    """``(bit<N>) expr``."""

    type: Type
    expr: "Expr"
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class Unary:
    op: str  # one of ~ - !
    expr: "Expr"
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class Binary:
    op: str  # + - * & | ^ << >> ++ == != < <= > >= && ||
    left: "Expr"
    right: "Expr"
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class Ternary:
    cond: "Expr"
    then: "Expr"
    orelse: "Expr"
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class MethodCall:
    """``target.method(args)`` or a free function call (``target is None``)."""

    target: Optional["Expr"]
    method: str
    args: tuple
    pos: Optional[SourcePos] = field(default=None, compare=False)


Expr = Union[IntLit, BoolLit, Ident, Member, Slice, Cast, Unary, Binary, Ternary, MethodCall]

# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Block:
    statements: tuple

    def __iter__(self):
        return iter(self.statements)

    def __len__(self):
        return len(self.statements)


@dataclass(frozen=True)
class AssignStmt:
    lhs: Expr
    rhs: Expr
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class IfStmt:
    cond: Expr
    then: Block
    orelse: Optional[Block]
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class MethodCallStmt:
    call: MethodCall
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class VarDeclStmt:
    name: str
    type: Type
    init: Optional[Expr]
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class ExitStmt:
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class ReturnStmt:
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class SwitchCase:
    """One arm of ``switch (t.apply().action_run)``."""

    action: Optional[str]  # None = default arm
    body: Block
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class SwitchStmt:
    """``switch (table.apply().action_run) { action1: {...} ... }``."""

    table: str
    cases: tuple
    pos: Optional[SourcePos] = field(default=None, compare=False)


Stmt = Union[
    AssignStmt, IfStmt, MethodCallStmt, VarDeclStmt, ExitStmt, ReturnStmt, SwitchStmt
]

# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StructField:
    name: str
    type: Type


@dataclass(frozen=True)
class HeaderDecl:
    name: str
    fields: tuple  # of StructField
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class StructDecl:
    name: str
    fields: tuple  # of StructField


@dataclass(frozen=True)
class TypedefDecl:
    name: str
    type: Type


@dataclass(frozen=True)
class ConstDecl:
    name: str
    type: Type
    value: Expr


@dataclass(frozen=True)
class Param:
    direction: str  # "", "in", "out", "inout"
    type: Type
    name: str


@dataclass(frozen=True)
class ActionDecl:
    name: str
    params: tuple  # of Param
    body: Block
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class KeyElement:
    expr: Expr
    match_kind: str  # exact | ternary | lpm


@dataclass(frozen=True)
class ActionRef:
    name: str
    # Bound arguments for the default action, empty for table action lists.
    args: tuple = ()


@dataclass(frozen=True)
class TableDecl:
    name: str
    keys: tuple  # of KeyElement
    actions: tuple  # of ActionRef
    default_action: Optional[ActionRef]
    size: Optional[int] = None
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class InstantiationDecl:
    """``register<bit<32>>(1024) counts;`` and friends."""

    kind: str  # register | counter | meter | ...
    type_args: tuple  # of Type
    args: tuple  # of Expr
    name: str


@dataclass(frozen=True)
class ValueSetDecl:
    """``value_set<bit<16>>(4) pvs;`` — parser value set (PVS)."""

    name: str
    elem_type: Type
    size: int


@dataclass(frozen=True)
class ControlDecl:
    name: str
    params: tuple  # of Param
    locals: tuple  # of ActionDecl | TableDecl | InstantiationDecl | VarDeclStmt
    apply: Block
    pos: Optional[SourcePos] = field(default=None, compare=False)


# -- parsers --------------------------------------------------------------


@dataclass(frozen=True)
class SelectCaseKey:
    """One keyset expression in a select case.

    ``value``/``mask`` of ``None`` with ``is_default`` set means the
    ``default`` keyset; a ``value_set_name`` refers to a PVS.
    """

    value: Optional[Expr] = None
    mask: Optional[Expr] = None
    is_default: bool = False
    value_set_name: Optional[str] = None


@dataclass(frozen=True)
class SelectCase:
    keys: tuple  # of SelectCaseKey, one per select expression
    state: str
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class TransitionSelect:
    exprs: tuple  # of Expr
    cases: tuple  # of SelectCase


@dataclass(frozen=True)
class TransitionDirect:
    state: str


Transition = Union[TransitionSelect, TransitionDirect]

#: The distinguished accept/reject parser states.
ACCEPT = "accept"
REJECT = "reject"


@dataclass(frozen=True)
class ParserState:
    name: str
    statements: tuple  # of Stmt (extract calls, assignments)
    transition: Transition
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class ParserDecl:
    name: str
    params: tuple  # of Param
    locals: tuple  # of ValueSetDecl | VarDeclStmt
    states: tuple  # of ParserState
    pos: Optional[SourcePos] = field(default=None, compare=False)


@dataclass(frozen=True)
class PipelineDecl:
    """Simplified package instantiation: ``Pipeline(P(), Ig(), Eg()) main;``"""

    parser: str
    controls: tuple  # control names, in execution order


@dataclass(frozen=True)
class Program:
    declarations: tuple

    def find(self, name: str):
        """Look up a top-level declaration by name."""
        for decl in self.declarations:
            if getattr(decl, "name", None) == name:
                return decl
        raise KeyError(name)

    @property
    def pipeline(self) -> PipelineDecl:
        for decl in self.declarations:
            if isinstance(decl, PipelineDecl):
                return decl
        raise KeyError("program has no pipeline instantiation")

    def headers(self) -> list[HeaderDecl]:
        return [d for d in self.declarations if isinstance(d, HeaderDecl)]

    def structs(self) -> list[StructDecl]:
        return [d for d in self.declarations if isinstance(d, StructDecl)]

    def controls(self) -> list[ControlDecl]:
        return [d for d in self.declarations if isinstance(d, ControlDecl)]

    def parsers(self) -> list[ParserDecl]:
        return [d for d in self.declarations if isinstance(d, ParserDecl)]
