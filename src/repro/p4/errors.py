"""Diagnostics for the P4 front end.

All front-end errors root at :class:`repro.errors.FlayError`, carrying a
pipeline ``stage`` and an optional :class:`SourcePos`.  ``SourcePos``
itself now lives in :mod:`repro.errors` (the shared leaf module) and is
re-exported here for the many front-end callers.
"""

from __future__ import annotations

from repro.errors import (
    FlayError,
    STAGE_PARSE,
    STAGE_TYPECHECK,
    SourcePos,
)

__all__ = ["LexError", "P4Error", "ParseError", "SourcePos", "TypeCheckError"]


class P4Error(FlayError):
    """Base class for all front-end diagnostics."""

    default_stage = STAGE_PARSE

    def __init__(self, message: str, pos: SourcePos | None = None) -> None:
        super().__init__(message, pos=pos)


class LexError(P4Error):
    """Malformed token."""


class ParseError(P4Error):
    """Syntactically invalid program."""


class TypeCheckError(P4Error):
    """Semantically invalid program (unknown name, width mismatch, ...)."""

    default_stage = STAGE_TYPECHECK
