"""Diagnostics for the P4 front end."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourcePos:
    """A position in a source file (1-based line/column)."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


class P4Error(Exception):
    """Base class for all front-end diagnostics."""

    def __init__(self, message: str, pos: SourcePos | None = None) -> None:
        self.pos = pos
        if pos is not None:
            message = f"{pos}: {message}"
        super().__init__(message)


class LexError(P4Error):
    """Malformed token."""


class ParseError(P4Error):
    """Syntactically invalid program."""


class TypeCheckError(P4Error):
    """Semantically invalid program (unknown name, width mismatch, ...)."""
