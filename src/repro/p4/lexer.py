"""Tokenizer for the P4-16 subset.

Handles the lexical features our corpus programs use: identifiers, keywords,
decimal/hex integer literals with optional width prefixes (``8w0xFF``),
annotations (``@name("...")``, skipped), and both comment styles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.p4.errors import LexError, SourcePos

# Token kinds.
IDENT = "ident"
INT = "int"
PUNCT = "punct"
EOF = "eof"

KEYWORDS = frozenset(
    {
        "action", "actions", "apply", "bit", "bool", "const", "control",
        "default", "default_action", "else", "entries", "enum", "exit",
        "false", "header", "if", "in", "inout", "key", "out", "package",
        "parser", "return", "select", "size", "state", "struct", "switch",
        "table", "transition", "true", "typedef", "value_set",
    }
)

# Multi-character punctuation, longest first so maximal munch works.
_PUNCTUATION = [
    "&&&",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++",
    "(", ")", "{", "}", "[", "]", "<", ">", ";", ":", ",", ".",
    "=", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "?", "@",
]


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    pos: SourcePos
    # For INT tokens: the numeric value and the explicit width (or None).
    value: Optional[int] = None
    width: Optional[int] = None

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r} @ {self.pos})"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`LexError` on malformed input."""
    return list(_Lexer(source))


class _Lexer:
    def __init__(self, source: str) -> None:
        self.source = source
        self.index = 0
        self.line = 1
        self.column = 1

    def __iter__(self) -> Iterator[Token]:
        while True:
            token = self._next_token()
            yield token
            if token.kind == EOF:
                return

    def _pos(self) -> SourcePos:
        return SourcePos(self.line, self.column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.index < len(self.source) and self.source[self.index] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.index += 1

    def _peek(self, offset: int = 0) -> str:
        i = self.index + offset
        return self.source[i] if i < len(self.source) else ""

    def _skip_trivia(self) -> None:
        while self.index < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.index < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._pos()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.index >= len(self.source):
                        raise LexError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            elif ch == "#":
                # Preprocessor-style lines (e.g. #include) are ignored.
                while self.index < len(self.source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        pos = self._pos()
        if self.index >= len(self.source):
            return Token(EOF, "", pos)
        ch = self._peek()
        if ch.isalpha() or ch == "_":
            return self._lex_word(pos)
        if ch.isdigit():
            return self._lex_number(pos)
        if ch == '"':
            return self._lex_string(pos)
        for punct in _PUNCTUATION:
            if self.source.startswith(punct, self.index):
                self._advance(len(punct))
                return Token(PUNCT, punct, pos)
        raise LexError(f"unexpected character {ch!r}", pos)

    def _lex_word(self, pos: SourcePos) -> Token:
        start = self.index
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.index]
        return Token(IDENT, text, pos)

    def _lex_string(self, pos: SourcePos) -> Token:
        # Strings only appear inside annotations; return them as idents.
        self._advance()
        start = self.index
        while self._peek() != '"':
            if self.index >= len(self.source):
                raise LexError("unterminated string", pos)
            self._advance()
        text = self.source[start : self.index]
        self._advance()
        return Token(IDENT, text, pos)

    def _lex_number(self, pos: SourcePos) -> Token:
        start = self.index
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.index]
        # Width-prefixed literal: <width>w<value>, e.g. 8w0xFF or 9w1.
        if "w" in text:
            width_text, _, value_text = text.partition("w")
            try:
                width = int(width_text)
                value = _parse_int(value_text)
            except ValueError as exc:
                raise LexError(f"malformed literal {text!r}", pos) from exc
            return Token(INT, text, pos, value=value, width=width)
        try:
            value = _parse_int(text)
        except ValueError as exc:
            raise LexError(f"malformed literal {text!r}", pos) from exc
        return Token(INT, text, pos, value=value, width=None)


def _parse_int(text: str) -> int:
    text = text.replace("_", "")
    if text.lower().startswith("0x"):
        return int(text, 16)
    if text.lower().startswith("0b"):
        return int(text, 2)
    return int(text, 10)
