"""Recursive-descent parser for the P4-16 subset.

Entry point: :func:`parse_program`.  The grammar is the standard P4-16
grammar restricted to the constructs in :mod:`repro.p4.ast_nodes`; see that
module for the shape of the tree.
"""

from __future__ import annotations

from typing import Optional

from repro.p4 import ast_nodes as ast
from repro.p4.errors import ParseError
from repro.p4.lexer import EOF, IDENT, INT, PUNCT, Token, tokenize

#: Extern-like instantiations we recognize at control/parser scope.
INSTANTIATION_KINDS = frozenset(
    {"register", "counter", "direct_counter", "meter", "direct_meter", "action_profile"}
)


def parse_program(source: str) -> ast.Program:
    """Parse a full program (declaration sequence + pipeline instantiation)."""
    return _Parser(tokenize(source)).parse_program()


def parse_expr(source: str) -> ast.Expr:
    """Parse a standalone expression — handy in tests."""
    parser = _Parser(tokenize(source))
    expr = parser._expression()
    parser._expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token plumbing --------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        i = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != EOF:
            self.index += 1
        return token

    def _check(self, text: str) -> bool:
        return self._peek().text == text and self._peek().kind in (PUNCT, IDENT)

    def _accept(self, text: str) -> bool:
        if self._check(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> Token:
        token = self._peek()
        if token.text != text:
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.pos)
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind != IDENT:
            raise ParseError(f"expected identifier, found {token.text!r}", token.pos)
        return self._advance()

    def _expect_int(self) -> Token:
        token = self._peek()
        if token.kind != INT:
            raise ParseError(f"expected integer, found {token.text!r}", token.pos)
        return self._advance()

    def _expect_close_angle(self) -> None:
        """Consume one ``>``, splitting a ``>>`` token if necessary.

        Nested type arguments like ``register<bit<32>>`` lex their closing
        brackets as a single shift token; the grammar needs them one at a
        time (the same wrinkle C++ templates have).
        """
        token = self._peek()
        if token.text == ">>":
            self.tokens[self.index] = Token(PUNCT, ">", token.pos)
            return
        self._expect(">")

    def _expect_eof(self) -> None:
        token = self._peek()
        if token.kind != EOF:
            raise ParseError(f"trailing input starting at {token.text!r}", token.pos)

    def _skip_annotation(self) -> None:
        """Skip ``@name(...)`` style annotations."""
        while self._accept("@"):
            self._expect_ident()
            if self._accept("("):
                depth = 1
                while depth:
                    token = self._advance()
                    if token.kind == EOF:
                        raise ParseError("unterminated annotation", token.pos)
                    if token.text == "(":
                        depth += 1
                    elif token.text == ")":
                        depth -= 1

    # -- program ------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        decls: list = []
        while self._peek().kind != EOF:
            decls.append(self._declaration())
        return ast.Program(tuple(decls))

    def _declaration(self):
        self._skip_annotation()
        token = self._peek()
        if token.text == "header":
            return self._header_decl()
        if token.text == "struct":
            return self._struct_decl()
        if token.text == "typedef":
            return self._typedef_decl()
        if token.text == "const":
            return self._const_decl()
        if token.text == "parser":
            return self._parser_decl()
        if token.text == "control":
            return self._control_decl()
        if token.kind == IDENT:
            return self._pipeline_decl()
        raise ParseError(f"unexpected token {token.text!r} at top level", token.pos)

    # -- types ------------------------------------------------------------------------

    def _type(self) -> ast.Type:
        token = self._peek()
        if token.text == "bit":
            self._advance()
            self._expect("<")
            width = self._expect_int().value
            self._expect_close_angle()
            return ast.BitType(width)
        if token.text == "bool":
            self._advance()
            return ast.BoolType()
        name = self._expect_ident()
        return ast.NamedType(name.text)

    # -- simple declarations ------------------------------------------------------------

    def _field_list(self) -> tuple:
        fields: list[ast.StructField] = []
        self._expect("{")
        while not self._accept("}"):
            self._skip_annotation()
            field_type = self._type()
            name = self._expect_ident()
            self._expect(";")
            fields.append(ast.StructField(name.text, field_type))
        return tuple(fields)

    def _header_decl(self) -> ast.HeaderDecl:
        self._expect("header")
        name = self._expect_ident()
        return ast.HeaderDecl(name.text, self._field_list(), pos=name.pos)

    def _struct_decl(self) -> ast.StructDecl:
        self._expect("struct")
        name = self._expect_ident()
        return ast.StructDecl(name.text, self._field_list())

    def _typedef_decl(self) -> ast.TypedefDecl:
        self._expect("typedef")
        target = self._type()
        name = self._expect_ident()
        self._expect(";")
        return ast.TypedefDecl(name.text, target)

    def _const_decl(self) -> ast.ConstDecl:
        self._expect("const")
        const_type = self._type()
        name = self._expect_ident()
        self._expect("=")
        value = self._expression()
        self._expect(";")
        return ast.ConstDecl(name.text, const_type, value)

    def _pipeline_decl(self) -> ast.PipelineDecl:
        # <PackageName> ( <Name>(), <Name>(), ... ) main ;
        self._expect_ident()  # package name, e.g. V1Switch / Pipeline
        self._expect("(")
        stages: list[str] = []
        while not self._check(")"):
            stage = self._expect_ident()
            self._expect("(")
            self._expect(")")
            stages.append(stage.text)
            if not self._accept(","):
                break
        self._expect(")")
        self._expect_ident()  # instance name, conventionally `main`
        self._expect(";")
        if not stages:
            raise ParseError("pipeline instantiation needs at least a parser")
        return ast.PipelineDecl(parser=stages[0], controls=tuple(stages[1:]))

    # -- parameters ------------------------------------------------------------------------

    def _params(self) -> tuple:
        self._expect("(")
        params: list[ast.Param] = []
        while not self._check(")"):
            direction = ""
            if self._peek().text in ("in", "out", "inout"):
                direction = self._advance().text
            param_type = self._type()
            name = self._expect_ident()
            params.append(ast.Param(direction, param_type, name.text))
            if not self._accept(","):
                break
        self._expect(")")
        return tuple(params)

    # -- parser declarations ---------------------------------------------------------------

    def _parser_decl(self) -> ast.ParserDecl:
        self._expect("parser")
        name = self._expect_ident()
        params = self._params()
        self._expect("{")
        locals_: list = []
        states: list[ast.ParserState] = []
        while not self._accept("}"):
            self._skip_annotation()
            if self._check("value_set"):
                locals_.append(self._value_set_decl())
            elif self._check("state"):
                states.append(self._parser_state())
            else:
                token = self._peek()
                raise ParseError(
                    f"unexpected {token.text!r} in parser body", token.pos
                )
        return ast.ParserDecl(
            name.text, params, tuple(locals_), tuple(states), pos=name.pos
        )

    def _value_set_decl(self) -> ast.ValueSetDecl:
        self._expect("value_set")
        self._expect("<")
        elem_type = self._type()
        self._expect_close_angle()
        self._expect("(")
        size = self._expect_int().value
        self._expect(")")
        name = self._expect_ident()
        self._expect(";")
        return ast.ValueSetDecl(name.text, elem_type, size)

    def _parser_state(self) -> ast.ParserState:
        self._expect("state")
        name = self._expect_ident()
        self._expect("{")
        statements: list = []
        transition: ast.Transition = ast.TransitionDirect(ast.REJECT)
        while not self._accept("}"):
            if self._check("transition"):
                transition = self._transition()
            else:
                statements.append(self._statement())
        return ast.ParserState(
            name.text, tuple(statements), transition, pos=name.pos
        )

    def _transition(self) -> ast.Transition:
        self._expect("transition")
        if self._accept("select"):
            self._expect("(")
            exprs: list[ast.Expr] = [self._expression()]
            while self._accept(","):
                exprs.append(self._expression())
            self._expect(")")
            self._expect("{")
            cases: list[ast.SelectCase] = []
            while not self._accept("}"):
                cases.append(self._select_case(len(exprs)))
            return ast.TransitionSelect(tuple(exprs), tuple(cases))
        state = self._expect_ident()
        self._expect(";")
        return ast.TransitionDirect(state.text)

    def _select_case(self, arity: int) -> ast.SelectCase:
        case_pos = self._peek().pos
        keys: list[ast.SelectCaseKey]
        if self._accept("("):
            keys = [self._select_keyset()]
            while self._accept(","):
                keys.append(self._select_keyset())
            self._expect(")")
        else:
            keys = [self._select_keyset()]
        if len(keys) == 1 and keys[0].is_default and arity > 1:
            # A bare `default` covers the whole tuple.
            keys = [ast.SelectCaseKey(is_default=True) for _ in range(arity)]
        if len(keys) != arity:
            token = self._peek()
            raise ParseError(
                f"select case has {len(keys)} keysets, expected {arity}", token.pos
            )
        self._expect(":")
        state = self._expect_ident()
        self._expect(";")
        return ast.SelectCase(tuple(keys), state.text, pos=case_pos)

    def _select_keyset(self) -> ast.SelectCaseKey:
        token = self._peek()
        if token.text in ("default", "_"):
            self._advance()
            return ast.SelectCaseKey(is_default=True)
        if token.kind == IDENT:
            # A bare identifier keyset refers to a value set (PVS) unless it
            # is a named constant — the type checker resolves which.
            name = self._advance()
            return ast.SelectCaseKey(value_set_name=name.text)
        value = self._expression()
        mask: Optional[ast.Expr] = None
        if self._accept("&&&"):
            mask = self._expression()
        return ast.SelectCaseKey(value=value, mask=mask)

    # -- control declarations -------------------------------------------------------------------

    def _control_decl(self) -> ast.ControlDecl:
        self._expect("control")
        name = self._expect_ident()
        params = self._params()
        self._expect("{")
        locals_: list = []
        apply_block: Optional[ast.Block] = None
        while not self._accept("}"):
            self._skip_annotation()
            token = self._peek()
            if token.text == "action":
                locals_.append(self._action_decl())
            elif token.text == "table":
                locals_.append(self._table_decl())
            elif token.text == "apply":
                self._advance()
                apply_block = self._block()
            elif token.text in INSTANTIATION_KINDS:
                locals_.append(self._instantiation())
            elif token.text in ("bit", "bool") or (
                token.kind == IDENT and self._peek(1).kind == IDENT
            ):
                locals_.append(self._var_decl())
            else:
                raise ParseError(
                    f"unexpected {token.text!r} in control body", token.pos
                )
        if apply_block is None:
            raise ParseError(f"control {name.text!r} has no apply block", name.pos)
        return ast.ControlDecl(
            name.text, params, tuple(locals_), apply_block, pos=name.pos
        )

    def _action_decl(self) -> ast.ActionDecl:
        self._expect("action")
        name = self._expect_ident()
        params = self._params()
        body = self._block()
        return ast.ActionDecl(name.text, params, body, pos=name.pos)

    def _table_decl(self) -> ast.TableDecl:
        self._expect("table")
        name = self._expect_ident()
        self._expect("{")
        keys: tuple = ()
        actions: tuple = ()
        default_action: Optional[ast.ActionRef] = None
        size: Optional[int] = None
        while not self._accept("}"):
            prop = self._peek()
            if prop.text == "key":
                self._advance()
                self._expect("=")
                keys = self._table_keys()
            elif prop.text == "actions":
                self._advance()
                self._expect("=")
                actions = self._table_actions()
            elif prop.text in ("default_action", "default"):
                self._advance()
                self._expect("=")
                default_action = self._action_ref()
                self._expect(";")
            elif prop.text == "size":
                self._advance()
                self._expect("=")
                size = self._expect_int().value
                self._expect(";")
            else:
                raise ParseError(
                    f"unknown table property {prop.text!r}", prop.pos
                )
        return ast.TableDecl(
            name.text, keys, actions, default_action, size, pos=name.pos
        )

    def _table_keys(self) -> tuple:
        self._expect("{")
        keys: list[ast.KeyElement] = []
        while not self._accept("}"):
            expr = self._expression()
            self._expect(":")
            kind = self._expect_ident().text
            if kind not in ("exact", "ternary", "lpm"):
                raise ParseError(f"unknown match kind {kind!r}")
            self._expect(";")
            keys.append(ast.KeyElement(expr, kind))
        return tuple(keys)

    def _table_actions(self) -> tuple:
        self._expect("{")
        actions: list[ast.ActionRef] = []
        while not self._accept("}"):
            self._skip_annotation()
            name = self._expect_ident()
            self._expect(";")
            actions.append(ast.ActionRef(name.text))
        return tuple(actions)

    def _action_ref(self) -> ast.ActionRef:
        name = self._expect_ident()
        args: list[ast.Expr] = []
        if self._accept("("):
            while not self._check(")"):
                args.append(self._expression())
                if not self._accept(","):
                    break
            self._expect(")")
        return ast.ActionRef(name.text, tuple(args))

    def _instantiation(self) -> ast.InstantiationDecl:
        kind = self._expect_ident().text
        type_args: list[ast.Type] = []
        if self._accept("<"):
            type_args.append(self._type())
            while self._accept(","):
                type_args.append(self._type())
            self._expect_close_angle()
        self._expect("(")
        args: list[ast.Expr] = []
        while not self._check(")"):
            args.append(self._expression())
            if not self._accept(","):
                break
        self._expect(")")
        name = self._expect_ident()
        self._expect(";")
        return ast.InstantiationDecl(kind, tuple(type_args), tuple(args), name.text)

    def _var_decl(self) -> ast.VarDeclStmt:
        pos = self._peek().pos
        var_type = self._type()
        name = self._expect_ident()
        init: Optional[ast.Expr] = None
        if self._accept("="):
            init = self._expression()
        self._expect(";")
        return ast.VarDeclStmt(name.text, var_type, init, pos=pos)

    # -- statements -----------------------------------------------------------------------------

    def _block(self) -> ast.Block:
        self._expect("{")
        statements: list = []
        while not self._accept("}"):
            statements.append(self._statement())
        return ast.Block(tuple(statements))

    def _statement(self):
        token = self._peek()
        if token.text == "if":
            return self._if_statement()
        if token.text == "switch":
            return self._switch_statement()
        if token.text == "exit":
            self._advance()
            self._expect(";")
            return ast.ExitStmt(pos=token.pos)
        if token.text == "return":
            self._advance()
            self._expect(";")
            return ast.ReturnStmt(pos=token.pos)
        if token.text in ("bit", "bool"):
            return self._var_decl()
        if token.kind == IDENT and self._peek(1).kind == IDENT:
            return self._var_decl()
        # Assignment or method-call statement.
        expr = self._postfix_expression()
        if self._accept("="):
            rhs = self._expression()
            self._expect(";")
            return ast.AssignStmt(expr, rhs, pos=token.pos)
        if self._check("["):
            # Slice assignment: x[hi:lo] = rhs
            self._advance()
            hi = self._expect_int().value
            self._expect(":")
            lo = self._expect_int().value
            self._expect("]")
            self._expect("=")
            rhs = self._expression()
            self._expect(";")
            return ast.AssignStmt(ast.Slice(expr, hi, lo, pos=token.pos), rhs, pos=token.pos)
        self._expect(";")
        if not isinstance(expr, ast.MethodCall):
            raise ParseError("expression statement must be a call", token.pos)
        return ast.MethodCallStmt(expr, pos=token.pos)

    def _if_statement(self) -> ast.IfStmt:
        pos = self._expect("if").pos
        self._expect("(")
        cond = self._expression()
        self._expect(")")
        then = self._block_or_single()
        orelse: Optional[ast.Block] = None
        if self._accept("else"):
            if self._check("if"):
                orelse = ast.Block((self._if_statement(),))
            else:
                orelse = self._block_or_single()
        return ast.IfStmt(cond, then, orelse, pos=pos)

    def _block_or_single(self) -> ast.Block:
        if self._check("{"):
            return self._block()
        return ast.Block((self._statement(),))

    def _switch_statement(self) -> ast.SwitchStmt:
        pos = self._expect("switch").pos
        self._expect("(")
        table = self._expect_ident().text
        self._expect(".")
        self._expect("apply")
        self._expect("(")
        self._expect(")")
        self._expect(".")
        run = self._expect_ident()
        if run.text != "action_run":
            raise ParseError("switch scrutinee must be table.apply().action_run", run.pos)
        self._expect(")")
        self._expect("{")
        cases: list[ast.SwitchCase] = []
        while not self._accept("}"):
            case_pos = self._peek().pos
            if self._accept("default"):
                label: Optional[str] = None
            else:
                label = self._expect_ident().text
            self._expect(":")
            body = self._block()
            cases.append(ast.SwitchCase(label, body, pos=case_pos))
        return ast.SwitchStmt(table, tuple(cases), pos=pos)

    # -- expressions --------------------------------------------------------------------------------

    # Precedence levels, loosest to tightest.
    _BINARY_LEVELS = [
        ["||"],
        ["&&"],
        ["==", "!="],
        ["<", "<=", ">", ">="],
        ["|"],
        ["^"],
        ["&"],
        ["<<", ">>"],
        ["++"],
        ["+", "-"],
        ["*"],
    ]

    def _expression(self) -> ast.Expr:
        return self._ternary()

    def _ternary(self) -> ast.Expr:
        cond = self._binary(0)
        if self._accept("?"):
            then = self._expression()
            self._expect(":")
            orelse = self._expression()
            return ast.Ternary(cond, then, orelse)
        return cond

    def _binary(self, level: int) -> ast.Expr:
        if level >= len(self._BINARY_LEVELS):
            return self._unary()
        ops = self._BINARY_LEVELS[level]
        left = self._binary(level + 1)
        while True:
            token = self._peek()
            if token.kind == PUNCT and token.text in ops:
                # `>` closes type argument lists; inside expressions it is
                # always comparison in our subset, so no special case needed.
                self._advance()
                right = self._binary(level + 1)
                left = ast.Binary(token.text, left, right, pos=token.pos)
            else:
                return left

    def _unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == PUNCT and token.text in ("~", "-", "!"):
            self._advance()
            return ast.Unary(token.text, self._unary(), pos=token.pos)
        if token.text == "(" and self._peek(1).text in ("bit", "bool"):
            self._advance()
            cast_type = self._type()
            self._expect(")")
            return ast.Cast(cast_type, self._unary(), pos=token.pos)
        return self._postfix_expression()

    def _postfix_expression(self) -> ast.Expr:
        expr = self._primary()
        while True:
            token = self._peek()
            if token.text == ".":
                self._advance()
                name = self._expect_ident()
                if self._check("("):
                    args = self._call_args()
                    expr = ast.MethodCall(expr, name.text, args, pos=token.pos)
                else:
                    expr = ast.Member(expr, name.text, pos=token.pos)
            elif token.text == "[" and self._peek(1).kind == INT:
                self._advance()
                hi = self._expect_int().value
                self._expect(":")
                lo = self._expect_int().value
                self._expect("]")
                expr = ast.Slice(expr, hi, lo, pos=token.pos)
            else:
                return expr

    def _call_args(self) -> tuple:
        self._expect("(")
        args: list[ast.Expr] = []
        while not self._check(")"):
            args.append(self._expression())
            if not self._accept(","):
                break
        self._expect(")")
        return tuple(args)

    def _primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == INT:
            self._advance()
            return ast.IntLit(token.value, token.width, pos=token.pos)
        if token.text == "true":
            self._advance()
            return ast.BoolLit(True, pos=token.pos)
        if token.text == "false":
            self._advance()
            return ast.BoolLit(False, pos=token.pos)
        if token.text == "(":
            self._advance()
            expr = self._expression()
            self._expect(")")
            return expr
        if token.kind == IDENT:
            self._advance()
            if self._check("(") :
                args = self._call_args()
                return ast.MethodCall(None, token.text, args, pos=token.pos)
            return ast.Ident(token.text, pos=token.pos)
        raise ParseError(f"unexpected token {token.text!r} in expression", token.pos)
