"""Pretty-printer: AST → source text of the P4 subset.

``parse_program(print_program(p))`` round-trips (module equality on the
AST), which the golden tests rely on, and the specializer uses it to emit
the specialized program handed to the device compiler.
"""

from __future__ import annotations

from typing import Optional

from repro.p4 import ast_nodes as ast

_INDENT = "    "


def print_program(program: ast.Program) -> str:
    lines: list[str] = []
    for decl in program.declarations:
        lines.append(_print_decl(decl))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def print_expr(expr: ast.Expr) -> str:
    return _expr(expr)


def print_stmt(stmt: ast.Stmt, indent: int = 0) -> str:
    return _stmt(stmt, indent)


# ---------------------------------------------------------------------------


def _print_decl(decl) -> str:
    if isinstance(decl, ast.HeaderDecl):
        return _fields_decl("header", decl.name, decl.fields)
    if isinstance(decl, ast.StructDecl):
        return _fields_decl("struct", decl.name, decl.fields)
    if isinstance(decl, ast.TypedefDecl):
        return f"typedef {decl.type} {decl.name};"
    if isinstance(decl, ast.ConstDecl):
        return f"const {decl.type} {decl.name} = {_expr(decl.value)};"
    if isinstance(decl, ast.ParserDecl):
        return _print_parser(decl)
    if isinstance(decl, ast.ControlDecl):
        return _print_control(decl)
    if isinstance(decl, ast.PipelineDecl):
        stages = ", ".join(f"{s}()" for s in (decl.parser, *decl.controls))
        return f"Pipeline({stages}) main;"
    raise TypeError(f"cannot print declaration {decl!r}")


def _fields_decl(kind: str, name: str, fields: tuple) -> str:
    lines = [f"{kind} {name} {{"]
    for field in fields:
        lines.append(f"{_INDENT}{field.type} {field.name};")
    lines.append("}")
    return "\n".join(lines)


def _print_parser(decl: ast.ParserDecl) -> str:
    lines = [f"parser {decl.name}({_params(decl.params)}) {{"]
    for local in decl.locals:
        if isinstance(local, ast.ValueSetDecl):
            lines.append(
                f"{_INDENT}value_set<{local.elem_type}>({local.size}) {local.name};"
            )
        else:
            lines.append(_stmt(local, 1))
    for state in decl.states:
        lines.append(f"{_INDENT}state {state.name} {{")
        for stmt in state.statements:
            lines.append(_stmt(stmt, 2))
        lines.append(_transition(state.transition, 2))
        lines.append(f"{_INDENT}}}")
    lines.append("}")
    return "\n".join(lines)


def _transition(transition: ast.Transition, indent: int) -> str:
    pad = _INDENT * indent
    if isinstance(transition, ast.TransitionDirect):
        return f"{pad}transition {transition.state};"
    exprs = ", ".join(_expr(e) for e in transition.exprs)
    lines = [f"{pad}transition select({exprs}) {{"]
    for case in transition.cases:
        keys = ", ".join(_keyset(k) for k in case.keys)
        if len(case.keys) > 1:
            keys = f"({keys})"
        lines.append(f"{pad}{_INDENT}{keys}: {case.state};")
    lines.append(f"{pad}}}")
    return "\n".join(lines)


def _keyset(key: ast.SelectCaseKey) -> str:
    if key.is_default:
        return "default"
    if key.value_set_name is not None:
        return key.value_set_name
    if key.mask is not None:
        return f"{_expr(key.value)} &&& {_expr(key.mask)}"
    return _expr(key.value)


def _print_control(decl: ast.ControlDecl) -> str:
    lines = [f"control {decl.name}({_params(decl.params)}) {{"]
    for local in decl.locals:
        if isinstance(local, ast.ActionDecl):
            lines.append(
                f"{_INDENT}action {local.name}({_params(local.params)}) "
                + _block(local.body, 1).lstrip()
            )
        elif isinstance(local, ast.TableDecl):
            lines.append(_print_table(local, 1))
        elif isinstance(local, ast.InstantiationDecl):
            type_args = (
                "<" + ", ".join(str(t) for t in local.type_args) + ">"
                if local.type_args
                else ""
            )
            args = ", ".join(_expr(a) for a in local.args)
            lines.append(f"{_INDENT}{local.kind}{type_args}({args}) {local.name};")
        elif isinstance(local, ast.VarDeclStmt):
            lines.append(_stmt(local, 1))
        else:
            raise TypeError(f"cannot print control local {local!r}")
    lines.append(f"{_INDENT}apply " + _block(decl.apply, 1).lstrip())
    lines.append("}")
    return "\n".join(lines)


def _print_table(table: ast.TableDecl, indent: int) -> str:
    pad = _INDENT * indent
    inner = _INDENT * (indent + 1)
    inner2 = _INDENT * (indent + 2)
    lines = [f"{pad}table {table.name} {{"]
    if table.keys:
        lines.append(f"{inner}key = {{")
        for key in table.keys:
            lines.append(f"{inner2}{_expr(key.expr)}: {key.match_kind};")
        lines.append(f"{inner}}}")
    lines.append(f"{inner}actions = {{")
    for action in table.actions:
        lines.append(f"{inner2}{action.name};")
    lines.append(f"{inner}}}")
    if table.default_action is not None:
        lines.append(f"{inner}default_action = {_action_ref(table.default_action)};")
    if table.size is not None:
        lines.append(f"{inner}size = {table.size};")
    lines.append(f"{pad}}}")
    return "\n".join(lines)


def _action_ref(ref: ast.ActionRef) -> str:
    if ref.args:
        return f"{ref.name}({', '.join(_expr(a) for a in ref.args)})"
    return f"{ref.name}()"


def _params(params: tuple) -> str:
    parts = []
    for param in params:
        direction = f"{param.direction} " if param.direction else ""
        parts.append(f"{direction}{param.type} {param.name}")
    return ", ".join(parts)


def _block(block: ast.Block, indent: int) -> str:
    pad = _INDENT * indent
    lines = [f"{pad}{{"]
    for stmt in block.statements:
        lines.append(_stmt(stmt, indent + 1))
    lines.append(f"{pad}}}")
    return "\n".join(lines)


def _stmt(stmt, indent: int) -> str:
    pad = _INDENT * indent
    if isinstance(stmt, ast.AssignStmt):
        return f"{pad}{_expr(stmt.lhs)} = {_expr(stmt.rhs)};"
    if isinstance(stmt, ast.IfStmt):
        text = f"{pad}if ({_expr(stmt.cond)}) " + _block(stmt.then, indent).lstrip()
        if stmt.orelse is not None:
            text += " else " + _block(stmt.orelse, indent).lstrip()
        return text
    if isinstance(stmt, ast.MethodCallStmt):
        return f"{pad}{_expr(stmt.call)};"
    if isinstance(stmt, ast.VarDeclStmt):
        if stmt.init is not None:
            return f"{pad}{stmt.type} {stmt.name} = {_expr(stmt.init)};"
        return f"{pad}{stmt.type} {stmt.name};"
    if isinstance(stmt, ast.ExitStmt):
        return f"{pad}exit;"
    if isinstance(stmt, ast.ReturnStmt):
        return f"{pad}return;"
    if isinstance(stmt, ast.SwitchStmt):
        lines = [f"{pad}switch ({stmt.table}.apply().action_run) {{"]
        for case in stmt.cases:
            label = case.action if case.action is not None else "default"
            lines.append(
                f"{pad}{_INDENT}{label}: " + _block(case.body, indent + 1).lstrip()
            )
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    raise TypeError(f"cannot print statement {stmt!r}")


_PRECEDENCE = {
    "||": 1, "&&": 2,
    "==": 3, "!=": 3,
    "<": 4, "<=": 4, ">": 4, ">=": 4,
    "|": 5, "^": 6, "&": 7,
    "<<": 8, ">>": 8, "++": 9,
    "+": 10, "-": 10, "*": 11,
}


def _expr(expr, parent_prec: int = 0) -> str:
    if isinstance(expr, ast.IntLit):
        value = f"{expr.value:#x}" if expr.value >= 10 else str(expr.value)
        if expr.width is not None:
            return f"{expr.width}w{value}"
        return value
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.Ident):
        return expr.name
    if isinstance(expr, ast.Member):
        return f"{_expr(expr.expr, 99)}.{expr.name}"
    if isinstance(expr, ast.Slice):
        return f"{_expr(expr.expr, 99)}[{expr.hi}:{expr.lo}]"
    if isinstance(expr, ast.Cast):
        return f"({expr.type}) {_expr(expr.expr, 98)}"
    if isinstance(expr, ast.Unary):
        return f"{expr.op}{_expr(expr.expr, 98)}"
    if isinstance(expr, ast.Binary):
        prec = _PRECEDENCE[expr.op]
        text = (
            f"{_expr(expr.left, prec)} {expr.op} {_expr(expr.right, prec + 1)}"
        )
        if prec < parent_prec:
            return f"({text})"
        return text
    if isinstance(expr, ast.Ternary):
        text = f"{_expr(expr.cond, 1)} ? {_expr(expr.then)} : {_expr(expr.orelse)}"
        if parent_prec > 0:
            return f"({text})"
        return text
    if isinstance(expr, ast.MethodCall):
        args = ", ".join(_expr(a) for a in expr.args)
        if expr.target is not None:
            return f"{_expr(expr.target, 99)}.{expr.method}({args})"
        return f"{expr.method}({args})"
    raise TypeError(f"cannot print expression {expr!r}")
