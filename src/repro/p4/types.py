"""Type environment and expression typing for the P4 subset.

The analysis layers need two things from the type system: the *width* of
every expression (terms are width-indexed) and the *flattened field paths*
of the header/metadata structs (symbolic stores are keyed by dotted paths
like ``hdr.eth.dst``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Union

from repro.p4 import ast_nodes as ast
from repro.p4.errors import TypeCheckError


@dataclass(frozen=True)
class FieldInfo:
    """A flattened field: dotted path plus resolved width."""

    path: str
    width: int
    header: Optional[str] = None  # owning header instance path, if any


class TypeEnv:
    """Resolves names, typedefs, and field paths for one program."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.typedefs: dict[str, ast.Type] = {}
        self.headers: dict[str, ast.HeaderDecl] = {}
        self.structs: dict[str, ast.StructDecl] = {}
        self.constants: dict[str, int] = {}
        for decl in program.declarations:
            if isinstance(decl, ast.TypedefDecl):
                self.typedefs[decl.name] = decl.type
            elif isinstance(decl, ast.HeaderDecl):
                self.headers[decl.name] = decl
            elif isinstance(decl, ast.StructDecl):
                self.structs[decl.name] = decl
            elif isinstance(decl, ast.ConstDecl):
                self.constants[decl.name] = _const_value(decl, self)

    # -- type resolution -------------------------------------------------------

    def resolve(self, t: ast.Type) -> ast.Type:
        """Chase typedefs until a concrete type is reached."""
        seen: set[str] = set()
        while isinstance(t, ast.NamedType):
            if t.name in seen:
                raise TypeCheckError(f"typedef cycle through {t.name!r}")
            seen.add(t.name)
            if t.name in self.typedefs:
                t = self.typedefs[t.name]
            elif t.name in self.headers or t.name in self.structs:
                return t
            else:
                raise TypeCheckError(f"unknown type {t.name!r}")
        return t

    def width_of(self, t: ast.Type) -> int:
        resolved = self.resolve(t)
        if isinstance(resolved, ast.BitType):
            return resolved.width
        if isinstance(resolved, ast.BoolType):
            return 1
        raise TypeCheckError(f"type {t} has no scalar width")

    def is_header_type(self, t: ast.Type) -> bool:
        resolved = self.resolve(t)
        return isinstance(resolved, ast.NamedType) and resolved.name in self.headers

    def is_struct_type(self, t: ast.Type) -> bool:
        resolved = self.resolve(t)
        return isinstance(resolved, ast.NamedType) and resolved.name in self.structs

    def fields_of(self, t: ast.Type) -> tuple:
        resolved = self.resolve(t)
        if isinstance(resolved, ast.NamedType):
            if resolved.name in self.headers:
                return self.headers[resolved.name].fields
            if resolved.name in self.structs:
                return self.structs[resolved.name].fields
        raise TypeCheckError(f"type {t} has no fields")

    def member_type(self, t: ast.Type, field_name: str) -> ast.Type:
        for field in self.fields_of(t):
            if field.name == field_name:
                return field.type
        raise TypeCheckError(f"type {self.resolve(t)} has no field {field_name!r}")

    # -- flattening ---------------------------------------------------------------

    def flatten(self, prefix: str, t: ast.Type) -> Iterator[FieldInfo]:
        """Yield every scalar field under ``prefix`` of struct/header type ``t``.

        Header-typed subtrees also carry the owning header path so callers
        can associate fields with validity bits.
        """
        resolved = self.resolve(t)
        if isinstance(resolved, (ast.BitType, ast.BoolType)):
            yield FieldInfo(prefix, self.width_of(resolved))
            return
        if isinstance(resolved, ast.NamedType) and resolved.name in self.headers:
            for field in self.headers[resolved.name].fields:
                yield FieldInfo(
                    f"{prefix}.{field.name}", self.width_of(field.type), header=prefix
                )
            return
        if isinstance(resolved, ast.NamedType) and resolved.name in self.structs:
            for field in self.structs[resolved.name].fields:
                yield from self.flatten(f"{prefix}.{field.name}", field.type)
            return
        raise TypeCheckError(f"cannot flatten type {t}")

    def header_instances(self, prefix: str, t: ast.Type) -> Iterator[tuple[str, str]]:
        """Yield ``(instance_path, header_type_name)`` pairs under ``prefix``."""
        resolved = self.resolve(t)
        if isinstance(resolved, ast.NamedType):
            if resolved.name in self.headers:
                yield prefix, resolved.name
                return
            if resolved.name in self.structs:
                for field in self.structs[resolved.name].fields:
                    yield from self.header_instances(f"{prefix}.{field.name}", field.type)


class Scope:
    """Name → type bindings for one control/parser/action body."""

    def __init__(self, env: TypeEnv, parent: Optional["Scope"] = None) -> None:
        self.env = env
        self.parent = parent
        self.bindings: dict[str, ast.Type] = {}

    def bind(self, name: str, t: ast.Type) -> None:
        self.bindings[name] = t

    def lookup(self, name: str) -> ast.Type:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        raise TypeCheckError(f"unknown name {name!r}")

    def child(self) -> "Scope":
        return Scope(self.env, parent=self)


def scope_for_params(env: TypeEnv, params: tuple) -> Scope:
    scope = Scope(env)
    for param in params:
        scope.bind(param.name, param.type)
    return scope


def type_of(expr: ast.Expr, scope: Scope) -> ast.Type:
    """Infer the type of ``expr`` in ``scope``.

    Unsized integer literals get ``BitType(0)`` as a marker; callers that
    need a concrete width resolve it from context (assignment LHS, the
    other operand of a binary op, ...).
    """
    env = scope.env
    if isinstance(expr, ast.IntLit):
        return ast.BitType(expr.width or 0)
    if isinstance(expr, ast.BoolLit):
        return ast.BoolType()
    if isinstance(expr, ast.Ident):
        if expr.name in env.constants:
            return ast.BitType(0)
        return scope.lookup(expr.name)
    if isinstance(expr, ast.Member):
        base = type_of(expr.expr, scope)
        return env.member_type(base, expr.name)
    if isinstance(expr, ast.Slice):
        return ast.BitType(expr.hi - expr.lo + 1)
    if isinstance(expr, ast.Cast):
        return expr.type
    if isinstance(expr, ast.Unary):
        if expr.op == "!":
            return ast.BoolType()
        return type_of(expr.expr, scope)
    if isinstance(expr, ast.Binary):
        if expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
            return ast.BoolType()
        if expr.op == "++":
            left = env.width_of(type_of(expr.left, scope))
            right = env.width_of(type_of(expr.right, scope))
            return ast.BitType(left + right)
        left_t = type_of(expr.left, scope)
        if isinstance(left_t, ast.BitType) and left_t.width == 0:
            return type_of(expr.right, scope)
        return left_t
    if isinstance(expr, ast.Ternary):
        then_t = type_of(expr.then, scope)
        if isinstance(then_t, ast.BitType) and then_t.width == 0:
            return type_of(expr.orelse, scope)
        return then_t
    if isinstance(expr, ast.MethodCall):
        if expr.method in ("isValid", "hit", "miss"):
            return ast.BoolType()
        raise TypeCheckError(f"call {expr.method!r} has no value type")
    raise TypeCheckError(f"cannot type expression {expr!r}")


def bit_width(expr: ast.Expr, scope: Scope, context_width: int = 0) -> int:
    """Concrete bit width of ``expr``, using ``context_width`` for unsized
    literals and named constants."""
    t = type_of(expr, scope)
    if isinstance(t, ast.BoolType):
        return 1
    if isinstance(t, ast.BitType) and t.width == 0:
        if context_width <= 0:
            raise TypeCheckError(
                f"cannot infer width of unsized literal {expr!r} without context"
            )
        return context_width
    return scope.env.width_of(t)


def lvalue_path(expr: ast.Expr) -> str:
    """Dotted path of an lvalue (``hdr.eth.dst``)."""
    if isinstance(expr, ast.Ident):
        return expr.name
    if isinstance(expr, ast.Member):
        return f"{lvalue_path(expr.expr)}.{expr.name}"
    raise TypeCheckError(f"not an lvalue: {expr!r}")


def _const_value(decl: ast.ConstDecl, env: TypeEnv) -> int:
    expr = decl.value
    value = eval_const_expr(expr, env)
    if value is None:
        raise TypeCheckError(f"constant {decl.name!r} is not a compile-time value")
    return value


def eval_const_expr(expr: ast.Expr, env: TypeEnv) -> Optional[int]:
    """Evaluate a compile-time constant expression, or ``None`` if not one."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.BoolLit):
        return int(expr.value)
    if isinstance(expr, ast.Ident):
        return env.constants.get(expr.name)
    if isinstance(expr, ast.Unary):
        inner = eval_const_expr(expr.expr, env)
        if inner is None:
            return None
        if expr.op == "-":
            return -inner
        if expr.op == "~":
            return ~inner
        if expr.op == "!":
            return int(not inner)
    if isinstance(expr, ast.Binary):
        left = eval_const_expr(expr.left, env)
        right = eval_const_expr(expr.right, env)
        if left is None or right is None:
            return None
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "&": lambda a, b: a & b,
            "|": lambda a, b: a | b,
            "^": lambda a, b: a ^ b,
            "<<": lambda a, b: a << b,
            ">>": lambda a, b: a >> b,
        }
        if expr.op in ops:
            return ops[expr.op](left, right)
    return None
