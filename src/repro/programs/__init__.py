"""Evaluation program corpus: the paper's programs rebuilt in the P4 subset."""

from repro.programs import dash, fig3, fig5, middleblock, scion, sketches
from repro.programs import switch_kitchen_sink
from repro.programs.registry import (
    CORPUS,
    CorpusEntry,
    TABLE1_PROGRAMS,
    TABLE2_PROGRAMS,
    get,
    load,
)
