"""dash.p4 equivalent — the SONiC DASH overlay pipeline.

DASH (509 statements by the paper's count) is the SDN appliance pipeline:
direction lookup, ENI (elastic NIC) lookup, staged inbound/outbound ACL
groups, VNET routing, CA→PA address mapping, VXLAN encap and per-ENI
metering.  The staged ACLs and per-meter-bucket tables are generated, like
the upstream program's macro-expanded stages.
"""

from __future__ import annotations

HEADERS = """
header ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}

header ipv4_t {
    bit<4> version;
    bit<4> ihl;
    bit<8> diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<3> flags;
    bit<13> frag_offset;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> length;
    bit<16> checksum;
}

header tcp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<32> seq_no;
    bit<32> ack_no;
    bit<4> data_offset;
    bit<4> res;
    bit<8> flags;
    bit<16> window;
    bit<16> checksum;
    bit<16> urgent;
}

header vxlan_t {
    bit<8> flags;
    bit<24> reserved;
    bit<24> vni;
    bit<8> reserved2;
}

header inner_ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}

header inner_ipv4_t {
    bit<4> version;
    bit<4> ihl;
    bit<8> diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<3> flags;
    bit<13> frag_offset;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t ipv4;
    udp_t udp;
    tcp_t tcp;
    vxlan_t vxlan;
    inner_ethernet_t inner_ethernet;
    inner_ipv4_t inner_ipv4;
}

struct intrinsic_t {
    bit<9> ingress_port;
    bit<48> ingress_timestamp;
}

struct meta_t {
    bit<9> egress_port;
    bit<8> direction;
    bit<16> eni_id;
    bit<24> vnet_id;
    bit<24> dst_vnet_id;
    bit<8> acl_stage_done;
    bit<8> acl_verdict;
    bit<8> terminate_acl;
    bit<32> overlay_dst;
    bit<32> underlay_dst;
    bit<32> underlay_src;
    bit<24> encap_vni;
    bit<48> overlay_dmac;
    bit<8> routing_action;
    bit<16> meter_class;
    bit<16> meter_bucket;
    bit<8> dropped_by_meter;
    bit<16> l4_src_port;
    bit<16> l4_dst_port;
    bit<8> appliance_id;
}
"""

PARSER = """
parser DashParser(inout headers_t hdr, inout meta_t meta, inout intrinsic_t intr) {
    state start {
        pkt_extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            0x0800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt_extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            17: parse_udp;
            6: parse_tcp;
            default: accept;
        }
    }
    state parse_tcp {
        pkt_extract(hdr.tcp);
        transition accept;
    }
    state parse_udp {
        pkt_extract(hdr.udp);
        transition select(hdr.udp.dst_port) {
            4789: parse_vxlan;
            default: accept;
        }
    }
    state parse_vxlan {
        pkt_extract(hdr.vxlan);
        transition parse_inner_ethernet;
    }
    state parse_inner_ethernet {
        pkt_extract(hdr.inner_ethernet);
        transition select(hdr.inner_ethernet.ether_type) {
            0x0800: parse_inner_ipv4;
            default: accept;
        }
    }
    state parse_inner_ipv4 {
        pkt_extract(hdr.inner_ipv4);
        transition accept;
    }
}
"""


def _acl_stage(direction: str, stage: int) -> str:
    return f"""
    table acl_{direction}_stage{stage} {{
        key = {{
            hdr.inner_ipv4.src_addr: ternary;
            hdr.inner_ipv4.dst_addr: ternary;
            hdr.inner_ipv4.protocol: ternary;
            meta.l4_src_port: ternary;
            meta.l4_dst_port: ternary;
        }}
        actions = {{
            acl_permit;
            acl_permit_and_continue;
            acl_deny;
            acl_deny_and_continue;
        }}
        default_action = acl_deny();
        size = 1024;
    }}"""


def _acl_applies(direction: str, num_stages: int) -> str:
    parts = []
    for stage in range(num_stages):
        parts.append(f"""
            if (meta.terminate_acl == 0) {{
                acl_{direction}_stage{stage}.apply();
            }}""")
    return "\n".join(parts)


def _meter_section(num_buckets: int) -> tuple[str, str]:
    decls = []
    for b in range(num_buckets):
        decls.append(f"""
    table meter_bucket{b} {{
        key = {{
            meta.meter_class: exact;
        }}
        actions = {{
            meter_allow;
            meter_deny;
        }}
        default_action = meter_allow();
        size = 32;
    }}""")

    def arm(b: int) -> str:
        body = f"""
            meter_bucket{b}.apply();"""
        if b == num_buckets - 1:
            return f"""
        if (meta.meter_bucket == {b}) {{{body}
        }}"""
        return f"""
        if (meta.meter_bucket == {b}) {{{body}
        }} else {{{arm(b + 1)}
        }}"""

    return "\n".join(decls), arm(0) if num_buckets else ""


def _eni_section(num_enis: int) -> tuple[str, str]:
    """Per-ENI policy tables: QoS/bandwidth/flow-table configuration.

    The upstream DASH program carries substantial per-ENI state; each ENI
    slot here holds one policy table whose action programs several
    per-tenant attributes at once.
    """
    decls = []
    for e in range(num_enis):
        decls.append(f"""
    action set_eni{e}_policy(bit<16> bw_class, bit<16> flow_quota, bit<8> tcp_aging, bit<8> udp_aging, bit<16> mirror) {{
        meta.meter_class = bw_class;
        meta.meter_bucket = flow_quota;
        meta.acl_stage_done = tcp_aging;
        meta.dropped_by_meter = udp_aging;
        meta.l4_src_port = mirror;
    }}
    table eni{e}_policy {{
        key = {{
            meta.vnet_id: exact;
        }}
        actions = {{
            set_eni{e}_policy;
            noop;
        }}
        default_action = noop();
        size = 64;
    }}""")

    def arm(e: int) -> str:
        body = f"""
                eni{e}_policy.apply();"""
        if e == num_enis - 1:
            return f"""
            if (meta.eni_id == {e}) {{{body}
            }}"""
        return f"""
            if (meta.eni_id == {e}) {{{body}
            }} else {{{arm(e + 1)}
            }}"""

    applies = f"""
        if (meta.eni_id != 0) {{{arm(0) if num_enis else ""}
        }}"""
    return "\n".join(decls), applies


def _ingress(num_acl_stages: int, num_meter_buckets: int, num_enis: int) -> str:
    acl_decls = "\n".join(
        _acl_stage(direction, stage)
        for direction in ("outbound", "inbound")
        for stage in range(num_acl_stages)
    )
    meter_decls, meter_applies = _meter_section(num_meter_buckets)
    eni_decls, eni_applies = _eni_section(num_enis)
    return f"""
control DashIngress(inout headers_t hdr, inout meta_t meta, inout intrinsic_t intr) {{
    action drop() {{
        mark_to_drop();
    }}
    action noop() {{
    }}
    action set_direction(bit<8> direction) {{
        meta.direction = direction;
    }}
    action set_appliance(bit<8> appliance_id) {{
        meta.appliance_id = appliance_id;
    }}
    action set_eni(bit<16> eni_id, bit<24> vnet_id) {{
        meta.eni_id = eni_id;
        meta.vnet_id = vnet_id;
    }}
    action acl_permit() {{
        meta.acl_verdict = 1;
        meta.terminate_acl = 1;
    }}
    action acl_permit_and_continue() {{
        meta.acl_verdict = 1;
    }}
    action acl_deny() {{
        meta.acl_verdict = 0;
        meta.terminate_acl = 1;
        mark_to_drop();
    }}
    action acl_deny_and_continue() {{
        meta.acl_verdict = 0;
    }}
    action route_vnet(bit<24> dst_vnet_id, bit<16> meter_class) {{
        meta.dst_vnet_id = dst_vnet_id;
        meta.routing_action = 1;
        meta.meter_class = meter_class;
    }}
    action route_direct() {{
        meta.routing_action = 2;
    }}
    action route_drop() {{
        meta.routing_action = 0;
        mark_to_drop();
    }}
    action set_ca_pa_mapping(bit<32> underlay_dst, bit<48> overlay_dmac, bit<24> vni) {{
        meta.underlay_dst = underlay_dst;
        meta.overlay_dmac = overlay_dmac;
        meta.encap_vni = vni;
    }}
    action set_meter_bucket(bit<16> bucket) {{
        meta.meter_bucket = bucket;
    }}
    action meter_allow() {{
        meta.dropped_by_meter = 0;
    }}
    action meter_deny() {{
        meta.dropped_by_meter = 1;
        mark_to_drop();
    }}
    action tunnel_decap() {{
        meta.overlay_dst = hdr.inner_ipv4.dst_addr;
    }}

    table direction_lookup {{
        key = {{
            hdr.vxlan.vni: exact;
        }}
        actions = {{
            set_direction;
            drop;
        }}
        default_action = drop();
        size = 64;
    }}
    table appliance_table {{
        key = {{
            intr.ingress_port: ternary;
        }}
        actions = {{
            set_appliance;
            noop;
        }}
        default_action = noop();
        size = 8;
    }}
    table eni_lookup_from_vm {{
        key = {{
            hdr.inner_ethernet.src_addr: exact;
        }}
        actions = {{
            set_eni;
            drop;
        }}
        default_action = drop();
        size = 1024;
    }}
    table eni_lookup_to_vm {{
        key = {{
            hdr.inner_ethernet.dst_addr: exact;
        }}
        actions = {{
            set_eni;
            drop;
        }}
        default_action = drop();
        size = 1024;
    }}
    table outbound_routing {{
        key = {{
            meta.eni_id: exact;
            hdr.inner_ipv4.dst_addr: lpm;
        }}
        actions = {{
            route_vnet;
            route_direct;
            route_drop;
        }}
        default_action = route_drop();
        size = 32768;
    }}
    table outbound_ca_to_pa {{
        key = {{
            meta.dst_vnet_id: exact;
            hdr.inner_ipv4.dst_addr: exact;
        }}
        actions = {{
            set_ca_pa_mapping;
            drop;
        }}
        default_action = drop();
        size = 32768;
    }}
    table inbound_routing {{
        key = {{
            hdr.vxlan.vni: exact;
            hdr.ipv4.src_addr: ternary;
        }}
        actions = {{
            tunnel_decap;
            drop;
        }}
        default_action = drop();
        size = 4096;
    }}
    table vnet_table {{
        key = {{
            meta.vnet_id: exact;
        }}
        actions = {{
            noop;
            drop;
        }}
        default_action = drop();
        size = 1024;
    }}
    table meter_policy {{
        key = {{
            meta.eni_id: exact;
            hdr.inner_ipv4.dst_addr: ternary;
        }}
        actions = {{
            set_meter_bucket;
            noop;
        }}
        default_action = noop();
        size = 4096;
    }}
{acl_decls}
{meter_decls}
{eni_decls}

    apply {{
        if (hdr.tcp.isValid()) {{
            meta.l4_src_port = hdr.tcp.src_port;
            meta.l4_dst_port = hdr.tcp.dst_port;
        }} else {{
            if (hdr.udp.isValid()) {{
                meta.l4_src_port = hdr.udp.src_port;
                meta.l4_dst_port = hdr.udp.dst_port;
            }}
        }}
        appliance_table.apply();
        if (hdr.vxlan.isValid()) {{
            direction_lookup.apply();
            if (meta.direction == 1) {{
                eni_lookup_from_vm.apply();
                vnet_table.apply();
{eni_applies}
{_acl_applies("outbound", num_acl_stages)}
                if (meta.acl_verdict == 1) {{
                    outbound_routing.apply();
                    if (meta.routing_action == 1) {{
                        outbound_ca_to_pa.apply();
                        meter_policy.apply();
{meter_applies}
                    }}
                }}
            }} else {{
                eni_lookup_to_vm.apply();
                inbound_routing.apply();
{_acl_applies("inbound", num_acl_stages)}
            }}
        }}
    }}
}}
"""


def _egress() -> str:
    return """
control DashEgress(inout headers_t hdr, inout meta_t meta, inout intrinsic_t intr) {
    action noop() {
    }
    action vxlan_encap(bit<32> underlay_src, bit<9> port) {
        meta.underlay_src = underlay_src;
        meta.egress_port = port;
        hdr.ipv4.dst_addr = meta.underlay_dst;
        hdr.ipv4.src_addr = meta.underlay_src;
        hdr.vxlan.vni = meta.encap_vni;
        hdr.inner_ethernet.dst_addr = meta.overlay_dmac;
    }
    table underlay_source {
        key = {
            meta.appliance_id: exact;
        }
        actions = {
            vxlan_encap;
            noop;
        }
        default_action = noop();
        size = 8;
    }

    apply {
        if (meta.routing_action == 1) {
            underlay_source.apply();
            update_checksum(hdr.ipv4.hdr_checksum, hdr.ipv4.src_addr, hdr.ipv4.dst_addr, hdr.ipv4.ttl);
        }
    }
}
"""


def source(
    num_acl_stages: int = 6,
    num_meter_buckets: int = 27,
    num_enis: int = 40,
) -> str:
    return (
        HEADERS
        + PARSER
        + _ingress(num_acl_stages, num_meter_buckets, num_enis)
        + _egress()
        + "\nPipeline(DashParser(), DashIngress(), DashEgress()) main;\n"
    )
