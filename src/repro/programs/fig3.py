"""The paper's Fig. 3 program: one ternary table whose implementation
evolves (impl. A → D) as control-plane entries arrive."""

FIG3_SOURCE = """
header eth_t {
    bit<48> dst;
    bit<48> src;
    bit<16> type;
}

struct headers_t {
    eth_t eth;
}

struct meta_t {
    bit<8> unused;
}

parser Fig3Parser(inout headers_t hdr, inout meta_t meta) {
    state start {
        pkt_extract(hdr.eth);
        transition accept;
    }
}

control Fig3Ingress(inout headers_t hdr, inout meta_t meta) {
    action set(bit<16> type) {
        hdr.eth.type = type;
    }
    action drop() {
        mark_to_drop();
    }
    action noop() {
    }
    table eth_table {
        key = {
            hdr.eth.dst: ternary;
        }
        actions = {
            set;
            drop;
            noop;
        }
        default_action = noop();
        size = 512;
    }
    apply {
        eth_table.apply();
    }
}

Pipeline(Fig3Parser(), Fig3Ingress()) main;
"""


def source() -> str:
    return FIG3_SOURCE
