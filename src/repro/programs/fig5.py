"""The paper's Fig. 5 program: ``egress_port`` set through ``port_table``."""

FIG5_SOURCE = """
header eth_t {
    bit<48> dst;
    bit<48> src;
    bit<16> type;
}

struct headers_t {
    eth_t eth;
}

struct meta_t {
    bit<9> egress_port;
}

parser Fig5Parser(inout headers_t hdr, inout meta_t meta) {
    state start {
        pkt_extract(hdr.eth);
        transition accept;
    }
}

control Fig5Ingress(inout headers_t hdr, inout meta_t meta) {
    action set(bit<9> port_var) {
        meta.egress_port = port_var;
    }
    action noop() {
    }
    table port_table {
        key = {
            hdr.eth.dst: exact;
        }
        actions = {
            set;
            noop;
        }
        default_action = noop();
        size = 1024;
    }
    apply {
        meta.egress_port = 0;
        port_table.apply();
        hdr.eth.dst = meta.egress_port == 0 ? 48w0xAAAAAAAAAAAA : 48w0xBBBBBBBBBBBB;
    }
}

Pipeline(Fig5Parser(), Fig5Ingress()) main;
"""


def source() -> str:
    return FIG5_SOURCE
