"""middleblock.p4 equivalent — Google's SAI P4 middleblock model.

The paper uses this program (346 statements) for Table 3: its
**pre-ingress ACL** matches on many wide ternary fields at once, so the
precise control-plane encoding blows up as entries accumulate — the
worst case for Flay's update analysis and the motivation for the
overapproximation threshold.

Structure mirrors sonic-pins' ``middleblock.p4``: pre-ingress ACL (VRF
assignment), L3 admit, IPv4/IPv6 routing, WCMP groups, neighbor/router
interface tables, ingress/egress ACLs, and mirroring.
"""

from __future__ import annotations

HEADERS = """
header ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}

header ipv4_t {
    bit<4> version;
    bit<4> ihl;
    bit<6> dscp;
    bit<2> ecn;
    bit<16> total_len;
    bit<16> identification;
    bit<3> flags;
    bit<13> frag_offset;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

header ipv6_t {
    bit<4> version;
    bit<6> dscp;
    bit<2> ecn;
    bit<20> flow_label;
    bit<16> payload_len;
    bit<8> next_hdr;
    bit<8> hop_limit;
    bit<64> src_addr_hi;
    bit<64> src_addr_lo;
    bit<64> dst_addr_hi;
    bit<64> dst_addr_lo;
}

header icmp_t {
    bit<8> type;
    bit<8> code;
    bit<16> checksum;
}

header tcp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<32> seq_no;
    bit<32> ack_no;
    bit<4> data_offset;
    bit<4> res;
    bit<8> flags;
    bit<16> window;
    bit<16> checksum;
    bit<16> urgent;
}

header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> length;
    bit<16> checksum;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t ipv4;
    ipv6_t ipv6;
    icmp_t icmp;
    tcp_t tcp;
    udp_t udp;
}

struct intrinsic_t {
    bit<9> ingress_port;
    bit<48> ingress_timestamp;
}

struct meta_t {
    bit<9> egress_port;
    bit<16> vrf_id;
    bit<8> admit_to_l3;
    bit<16> nexthop_id;
    bit<16> wcmp_group_id;
    bit<8> wcmp_offset;
    bit<16> router_interface_id;
    bit<16> neighbor_id;
    bit<48> src_mac;
    bit<48> dst_mac;
    bit<8> acl_drop;
    bit<16> mirror_session_id;
    bit<8> marked_dscp;
    bit<16> l4_src_port;
    bit<16> l4_dst_port;
    bit<16> hash_value;
    bit<8> ttl_checked;
    bit<8> cpu_queue;
    bit<8> punt_reason;
    bit<16> policer_index;
    bit<8> port_profile;
    bit<8> tunnel_terminate;
    bit<16> tunnel_vrf;
}
"""

PARSER = """
parser MiddleblockParser(inout headers_t hdr, inout meta_t meta, inout intrinsic_t intr) {
    state start {
        pkt_extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            0x0800: parse_ipv4;
            0x86DD: parse_ipv6;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt_extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            1: parse_icmp;
            6: parse_tcp;
            17: parse_udp;
            default: accept;
        }
    }
    state parse_ipv6 {
        pkt_extract(hdr.ipv6);
        transition select(hdr.ipv6.next_hdr) {
            58: parse_icmp;
            6: parse_tcp;
            17: parse_udp;
            default: accept;
        }
    }
    state parse_icmp {
        pkt_extract(hdr.icmp);
        transition accept;
    }
    state parse_tcp {
        pkt_extract(hdr.tcp);
        transition accept;
    }
    state parse_udp {
        pkt_extract(hdr.udp);
        transition accept;
    }
}
"""



def _cpu_queue_section(num_queues: int) -> tuple[str, str]:
    """Per-CPU-queue punt policers (SAI QOS_QUEUE objects)."""
    decls = []
    for q in range(num_queues):
        decls.append(f"""
    table cpu_queue{q}_policer {{
        key = {{
            meta.punt_reason: exact;
        }}
        actions = {{
            set_policer;
            noop;
        }}
        default_action = noop();
        size = 16;
    }}""")

    def arm(q: int) -> str:
        body = f"""
                cpu_queue{q}_policer.apply();"""
        if q == num_queues - 1:
            return f"""
            if (meta.cpu_queue == {q}) {{{body}
            }}"""
        return f"""
            if (meta.cpu_queue == {q}) {{{body}
            }} else {{{arm(q + 1)}
            }}"""

    applies = f"""
        if (meta.punt_reason != 0) {{{arm(0) if num_queues else ""}
        }}"""
    return "\n".join(decls), applies


def _port_profile_section(num_profiles: int) -> tuple[str, str]:
    """Per-port-profile ingress configuration tables."""
    decls = []
    for p in range(num_profiles):
        decls.append(f"""
    table port_profile{p}_conf {{
        key = {{
            intr.ingress_port: exact;
        }}
        actions = {{
            set_port_profile;
            noop;
        }}
        default_action = noop();
        size = 32;
    }}""")

    def arm(p: int) -> str:
        body = f"""
            port_profile{p}_conf.apply();"""
        if p == num_profiles - 1:
            return f"""
        if (intr.ingress_port[8:5] == {p}) {{{body}
        }}"""
        return f"""
        if (intr.ingress_port[8:5] == {p}) {{{body}
        }} else {{{arm(p + 1)}
        }}"""

    return "\n".join(decls), arm(0) if num_profiles else ""


TUNNEL_TERM_SECTION = """
    action terminate_tunnel(bit<16> tunnel_vrf) {
        meta.tunnel_terminate = 1;
        meta.tunnel_vrf = tunnel_vrf;
    }
    action set_punt(bit<8> reason, bit<8> queue) {
        meta.punt_reason = reason;
        meta.cpu_queue = queue;
    }
    action set_policer(bit<16> index) {
        meta.policer_index = index;
    }
    action set_port_profile(bit<8> profile) {
        meta.port_profile = profile;
    }
    table ipv4_tunnel_termination {
        key = {
            hdr.ipv4.src_addr: ternary;
            hdr.ipv4.dst_addr: ternary;
            hdr.ipv4.protocol: ternary;
        }
        actions = {
            terminate_tunnel;
            noop;
        }
        default_action = noop();
        size = 128;
    }
    table acl_punt {
        key = {
            hdr.ethernet.ether_type: ternary;
            hdr.ipv4.dst_addr: ternary;
            hdr.icmp.type: ternary;
            meta.l4_dst_port: ternary;
        }
        actions = {
            set_punt;
            noop;
        }
        default_action = noop();
        size = 256;
    }
"""

TUNNEL_TERM_APPLY = """
        if (hdr.ipv4.isValid()) {
            ipv4_tunnel_termination.apply();
            if (meta.tunnel_terminate == 1) {
                meta.vrf_id = meta.tunnel_vrf;
            }
        }
        acl_punt.apply();
"""


def _ingress(num_cpu_queues: int, num_port_profiles: int) -> str:
    cpu_decls, cpu_applies = _cpu_queue_section(num_cpu_queues)
    port_decls, port_applies = _port_profile_section(num_port_profiles)
    return INGRESS_TEMPLATE.format(
        cpu_decls=cpu_decls,
        cpu_applies=cpu_applies,
        port_decls=port_decls,
        port_applies=port_applies,
        tunnel_section=TUNNEL_TERM_SECTION,
        tunnel_apply=TUNNEL_TERM_APPLY,
    )


INGRESS_TEMPLATE = """
control MiddleblockIngress(inout headers_t hdr, inout meta_t meta, inout intrinsic_t intr) {{
    action drop() {{
        mark_to_drop();
    }}
    action noop() {{
    }}
    action set_vrf(bit<16> vrf_id) {{
        meta.vrf_id = vrf_id;
    }}
    action admit_to_l3() {{
        meta.admit_to_l3 = 1;
    }}
    action set_nexthop_id(bit<16> nexthop_id) {{
        meta.nexthop_id = nexthop_id;
    }}
    action set_wcmp_group(bit<16> group_id) {{
        meta.wcmp_group_id = group_id;
    }}
    action set_nexthop(bit<16> router_interface_id, bit<16> neighbor_id) {{
        meta.router_interface_id = router_interface_id;
        meta.neighbor_id = neighbor_id;
    }}
    action set_dst_mac(bit<48> dst_mac) {{
        meta.dst_mac = dst_mac;
    }}
    action set_port_and_src_mac(bit<9> port, bit<48> src_mac) {{
        meta.egress_port = port;
        meta.src_mac = src_mac;
    }}
    action acl_copy(bit<16> session) {{
        meta.mirror_session_id = session;
    }}
    action acl_trap(bit<16> session) {{
        meta.mirror_session_id = session;
        mark_to_drop();
    }}
    action acl_forward() {{
        meta.acl_drop = 0;
    }}
    action acl_mirror(bit<16> session) {{
        meta.mirror_session_id = session;
    }}
    action acl_drop_action() {{
        meta.acl_drop = 1;
        mark_to_drop();
    }}
    action set_dscp(bit<8> dscp) {{
        meta.marked_dscp = dscp;
    }}

    table acl_pre_ingress {{
        key = {{
            hdr.ethernet.src_addr: ternary;
            hdr.ethernet.dst_addr: ternary;
            hdr.ipv4.dst_addr: ternary;
            hdr.ipv4.src_addr: ternary;
            hdr.ipv4.dscp: ternary;
            hdr.ipv4.protocol: ternary;
            intr.ingress_port: ternary;
        }}
        actions = {{
            set_vrf;
            noop;
        }}
        default_action = noop();
        size = 255;
    }}
    table l3_admit {{
        key = {{
            hdr.ethernet.dst_addr: ternary;
            intr.ingress_port: ternary;
        }}
        actions = {{
            admit_to_l3;
            noop;
        }}
        default_action = noop();
        size = 128;
    }}
    table ipv4_route {{
        key = {{
            meta.vrf_id: exact;
            hdr.ipv4.dst_addr: lpm;
        }}
        actions = {{
            set_nexthop_id;
            set_wcmp_group;
            drop;
        }}
        default_action = drop();
        size = 65536;
    }}
    table ipv6_route {{
        key = {{
            meta.vrf_id: exact;
            hdr.ipv6.dst_addr_hi: lpm;
        }}
        actions = {{
            set_nexthop_id;
            set_wcmp_group;
            drop;
        }}
        default_action = drop();
        size = 65536;
    }}
    table wcmp_group {{
        key = {{
            meta.wcmp_group_id: exact;
            meta.wcmp_offset: exact;
        }}
        actions = {{
            set_nexthop_id;
            noop;
        }}
        default_action = noop();
        size = 4096;
    }}
    table nexthop_table {{
        key = {{
            meta.nexthop_id: exact;
        }}
        actions = {{
            set_nexthop;
            drop;
        }}
        default_action = drop();
        size = 1024;
    }}
    table neighbor_table {{
        key = {{
            meta.router_interface_id: exact;
            meta.neighbor_id: exact;
        }}
        actions = {{
            set_dst_mac;
            drop;
        }}
        default_action = drop();
        size = 1024;
    }}
    table router_interface_table {{
        key = {{
            meta.router_interface_id: exact;
        }}
        actions = {{
            set_port_and_src_mac;
            drop;
        }}
        default_action = drop();
        size = 256;
    }}
    table acl_ingress {{
        key = {{
            hdr.ethernet.ether_type: ternary;
            hdr.ipv4.src_addr: ternary;
            hdr.ipv4.dst_addr: ternary;
            hdr.ipv4.ttl: ternary;
            meta.l4_src_port: ternary;
            meta.l4_dst_port: ternary;
            hdr.icmp.type: ternary;
        }}
        actions = {{
            acl_copy;
            acl_trap;
            acl_forward;
            acl_mirror;
            acl_drop_action;
        }}
        default_action = acl_forward();
        size = 512;
    }}
    table acl_wbb_ingress {{
        key = {{
            hdr.ipv4.ttl: ternary;
            hdr.ethernet.ether_type: ternary;
            hdr.ipv4.protocol: ternary;
        }}
        actions = {{
            acl_copy;
            acl_drop_action;
            noop;
        }}
        default_action = noop();
        size = 128;
    }}
{port_decls}
{cpu_decls}
{tunnel_section}
    action set_ecn(bit<2> ecn) {{
        hdr.ipv4.ecn = ecn;
    }}
    action set_member(bit<8> member) {{
        meta.port_profile = member;
    }}
    action rate_limit_punt(bit<16> index, bit<8> queue) {{
        meta.policer_index = index;
        meta.cpu_queue = queue;
    }}
    table ipv6_tunnel_termination {{
        key = {{
            hdr.ipv6.src_addr_hi: ternary;
            hdr.ipv6.dst_addr_hi: ternary;
            hdr.ipv6.next_hdr: ternary;
        }}
        actions = {{
            terminate_tunnel;
            noop;
        }}
        default_action = noop();
        size = 128;
    }}
    table ecn_marking {{
        key = {{
            hdr.ipv4.ecn: exact;
            hdr.ipv4.dscp: ternary;
        }}
        actions = {{
            set_ecn;
            noop;
        }}
        default_action = noop();
        size = 32;
    }}
    table vlan_membership {{
        key = {{
            intr.ingress_port: exact;
            hdr.ethernet.src_addr: exact;
        }}
        actions = {{
            set_member;
            drop;
        }}
        default_action = drop();
        size = 1024;
    }}
    table icmp_rate_limit {{
        key = {{
            hdr.icmp.type: exact;
            hdr.icmp.code: exact;
        }}
        actions = {{
            rate_limit_punt;
            noop;
        }}
        default_action = noop();
        size = 64;
    }}
    table acl_linkqual {{
        key = {{
            hdr.ethernet.ether_type: ternary;
            intr.ingress_port: ternary;
            hdr.ipv4.dscp: ternary;
        }}
        actions = {{
            acl_copy;
            acl_drop_action;
            noop;
        }}
        default_action = noop();
        size = 64;
    }}
    table dscp_remark {{
        key = {{
            hdr.ipv4.dscp: exact;
        }}
        actions = {{
            set_dscp;
            noop;
        }}
        default_action = noop();
        size = 64;
    }}

    apply {{
        if (hdr.tcp.isValid()) {{
            meta.l4_src_port = hdr.tcp.src_port;
            meta.l4_dst_port = hdr.tcp.dst_port;
        }} else {{
            if (hdr.udp.isValid()) {{
                meta.l4_src_port = hdr.udp.src_port;
                meta.l4_dst_port = hdr.udp.dst_port;
            }}
        }}
{port_applies}
        acl_pre_ingress.apply();
{tunnel_apply}
        l3_admit.apply();
        if (meta.admit_to_l3 == 1) {{
            if (hdr.ipv4.isValid()) {{
                if (hdr.ipv4.ttl <= 1) {{
                    drop();
                }} else {{
                    meta.ttl_checked = 1;
                    ipv4_route.apply();
                }}
            }} else {{
                if (hdr.ipv6.isValid()) {{
                    if (hdr.ipv6.hop_limit <= 1) {{
                        drop();
                    }} else {{
                        meta.ttl_checked = 1;
                        ipv6_route.apply();
                    }}
                }}
            }}
            if (meta.wcmp_group_id != 0) {{
                hash(meta.hash_value, hdr.ipv4.src_addr, hdr.ipv4.dst_addr, meta.l4_src_port, meta.l4_dst_port);
                meta.wcmp_offset = (bit<8>) meta.hash_value;
                wcmp_group.apply();
            }}
            if (meta.nexthop_id != 0) {{
                nexthop_table.apply();
                neighbor_table.apply();
                router_interface_table.apply();
                hdr.ethernet.src_addr = meta.src_mac;
                hdr.ethernet.dst_addr = meta.dst_mac;
                if (hdr.ipv4.isValid()) {{
                    hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
                }}
                if (hdr.ipv6.isValid()) {{
                    hdr.ipv6.hop_limit = hdr.ipv6.hop_limit - 1;
                }}
            }}
        }}
        acl_ingress.apply();
        acl_wbb_ingress.apply();
        vlan_membership.apply();
        acl_linkqual.apply();
        if (hdr.ipv6.isValid()) {{
            ipv6_tunnel_termination.apply();
            if (meta.tunnel_terminate == 1) {{
                meta.vrf_id = meta.tunnel_vrf;
            }}
        }}
        if (hdr.icmp.isValid()) {{
            icmp_rate_limit.apply();
        }}
        if (hdr.ipv4.isValid()) {{
            ecn_marking.apply();
        }}

        if (hdr.ipv4.isValid()) {{
            dscp_remark.apply();
        }}
{cpu_applies}
    }}
}}
"""

def _egress(num_sched_queues: int) -> str:
    decls = []
    for q in range(num_sched_queues):
        decls.append(f"""
    table sched_queue{q}_conf {{
        key = {{
            meta.egress_port: exact;
        }}
        actions = {{
            set_sched_weight;
            noop;
        }}
        default_action = noop();
        size = 32;
    }}""")

    def arm(q: int) -> str:
        body = f"""
            sched_queue{q}_conf.apply();"""
        if q == num_sched_queues - 1:
            return f"""
        if (meta.cpu_queue == {q}) {{{body}
        }}"""
        return f"""
        if (meta.cpu_queue == {q}) {{{body}
        }} else {{{arm(q + 1)}
        }}"""

    return EGRESS_TEMPLATE.format(
        sched_decls="\n".join(decls),
        sched_applies=arm(0) if num_sched_queues else "",
    )


EGRESS_TEMPLATE = """
control MiddleblockEgress(inout headers_t hdr, inout meta_t meta, inout intrinsic_t intr) {{
    action noop() {{
    }}
    action drop() {{
        mark_to_drop();
    }}
    action acl_egress_forward() {{
        meta.acl_drop = 0;
    }}
    action mirror_encap(bit<32> mirror_dst, bit<16> mirror_port) {{
        meta.mirror_session_id = mirror_port;
        meta.hash_value = (bit<16>) mirror_dst;
    }}

    action set_sched_weight(bit<8> weight) {{
        meta.port_profile = weight;
    }}
{sched_decls}
    table acl_egress {{
        key = {{
            hdr.ethernet.ether_type: ternary;
            hdr.ipv4.dst_addr: ternary;
            meta.egress_port: ternary;
        }}
        actions = {{
            acl_egress_forward;
            drop;
        }}
        default_action = acl_egress_forward();
        size = 128;
    }}
    table mirror_session_table {{
        key = {{
            meta.mirror_session_id: exact;
        }}
        actions = {{
            mirror_encap;
            noop;
        }}
        default_action = noop();
        size = 32;
    }}

    apply {{
        acl_egress.apply();
{sched_applies}
        if (meta.mirror_session_id != 0) {{
            mirror_session_table.apply();
        }}
        if (hdr.ipv4.isValid()) {{
            update_checksum(hdr.ipv4.hdr_checksum, hdr.ipv4.src_addr, hdr.ipv4.dst_addr, hdr.ipv4.ttl);
        }}
    }}
}}
"""


def source(
    num_cpu_queues: int = 32,
    num_port_profiles: int = 16,
    num_sched_queues: int = 28,
) -> str:
    return (
        HEADERS
        + PARSER
        + _ingress(num_cpu_queues, num_port_profiles)
        + _egress(num_sched_queues)
        + "\nPipeline(MiddleblockParser(), MiddleblockIngress(), MiddleblockEgress()) main;\n"
    )


#: The complex table Table 3 stresses.
PRE_INGRESS_ACL = "MiddleblockIngress.acl_pre_ingress"
