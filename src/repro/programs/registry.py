"""Program corpus registry: every evaluation program in one place."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.p4 import ast_nodes as ast
from repro.p4.parser import parse_program
from repro.programs import dash, fig3, fig5, middleblock, scion, sketches
from repro.programs import switch_kitchen_sink


@dataclass(frozen=True)
class CorpusEntry:
    """One evaluation program plus the paper's published reference numbers."""

    name: str
    source_fn: Callable[[], str]
    # Paper reference points (None where the paper reports none).
    paper_statements: Optional[int] = None
    paper_compile_seconds: Optional[float] = None  # Table 1 / Table 2
    paper_analysis_seconds: Optional[float] = None  # Table 2
    paper_update_ms: Optional[float] = None  # Table 2
    # Analysis options matching the paper's setup.
    skip_parser: bool = False

    def source(self) -> str:
        return self.source_fn()

    def parse(self) -> ast.Program:
        return parse_program(self.source_fn())


CORPUS: dict[str, CorpusEntry] = {
    "scion": CorpusEntry(
        name="scion",
        source_fn=scion.source,
        paper_statements=582,
        paper_compile_seconds=38.0,
        paper_analysis_seconds=2.0,
        paper_update_ms=90.0,
    ),
    "switch": CorpusEntry(
        name="switch",
        source_fn=switch_kitchen_sink.source,
        paper_statements=786,
        paper_compile_seconds=106.0,
        paper_analysis_seconds=9.0,
        paper_update_ms=90.0,
        skip_parser=True,  # §4.2: parser analysis skipped for switch.p4
    ),
    "middleblock": CorpusEntry(
        name="middleblock",
        source_fn=middleblock.source,
        paper_statements=346,
        paper_compile_seconds=2.0,
        paper_analysis_seconds=0.6,
        paper_update_ms=5.0,
    ),
    "dash": CorpusEntry(
        name="dash",
        source_fn=dash.source,
        paper_statements=509,
        paper_compile_seconds=2.0,
        paper_analysis_seconds=1.5,
        paper_update_ms=12.0,
    ),
    "beaucoup": CorpusEntry(
        name="beaucoup",
        source_fn=sketches.beaucoup_source,
        paper_compile_seconds=22.0,
    ),
    "accturbo": CorpusEntry(
        name="accturbo",
        source_fn=sketches.accturbo_source,
        paper_compile_seconds=28.0,
    ),
    "dta": CorpusEntry(
        name="dta",
        source_fn=sketches.dta_source,
        paper_compile_seconds=25.0,
    ),
    "fig3": CorpusEntry(name="fig3", source_fn=fig3.source),
    "fig5": CorpusEntry(name="fig5", source_fn=fig5.source),
}

#: Programs in the paper's Table 1 (bf-p4c compile times), in table order.
TABLE1_PROGRAMS = ("switch", "scion", "beaucoup", "accturbo", "dta")

#: Programs in the paper's Table 2 (Flay evaluation times), in table order.
TABLE2_PROGRAMS = ("scion", "switch", "middleblock", "dash")


def get(name: str) -> CorpusEntry:
    return CORPUS[name]


def load(name: str) -> ast.Program:
    return CORPUS[name].parse()
