"""SCION border router equivalent (the paper's main evaluation program).

The real artifact is the SCION P4 implementation for Tofino 2 (~1700 LoC,
582 statements by the paper's count) shipped with representative
control-plane configurations whose key property is: **IPv6 is unused**, so
all IPv6 program paths are dead until the control plane enables them.

This generator reproduces that structure: an Ethernet/IPv4/IPv6 underlay,
a SCION-like path header stack, parallel IPv4 and IPv6 processing chains
(forwarding, ACL, underlay rewrite), per-interface tables, hop-field
verification, and a service map.  ``num_interfaces`` scales the
per-interface sections so the statement count lands near the paper's.
"""

from __future__ import annotations

HEADERS = """
header ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}

header ipv4_t {
    bit<4> version;
    bit<4> ihl;
    bit<8> diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<3> flags;
    bit<13> frag_offset;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

header ipv6_t {
    bit<4> version;
    bit<8> traffic_class;
    bit<20> flow_label;
    bit<16> payload_len;
    bit<8> next_hdr;
    bit<8> hop_limit;
    bit<64> src_addr_hi;
    bit<64> src_addr_lo;
    bit<64> dst_addr_hi;
    bit<64> dst_addr_lo;
}

header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> length;
    bit<16> checksum;
}

header scion_common_t {
    bit<4> version;
    bit<8> qos;
    bit<20> flow_id;
    bit<8> next_hdr;
    bit<8> hdr_len;
    bit<16> payload_len;
    bit<8> path_type;
    bit<2> dst_type;
    bit<2> src_type;
    bit<4> rsv;
    bit<16> dst_isd;
    bit<48> dst_as;
    bit<16> src_isd;
    bit<48> src_as;
}

header scion_info_t {
    bit<8> flags;
    bit<8> rsv;
    bit<16> seg_id;
    bit<32> timestamp;
}

header scion_hop_t {
    bit<8> flags;
    bit<8> exp_time;
    bit<16> cons_ingress;
    bit<16> cons_egress;
    bit<48> mac;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t ipv4;
    ipv6_t ipv6;
    udp_t udp;
    scion_common_t scion;
    scion_info_t info0;
    scion_hop_t hop0;
    scion_hop_t hop1;
}

struct intrinsic_t {
    bit<9> ingress_port;
    bit<48> ingress_timestamp;
}

struct meta_t {
    bit<9> egress_port;
    bit<16> egress_interface;
    bit<16> ingress_interface;
    bit<8> underlay;
    bit<8> next_hop_valid;
    bit<48> hop_mac;
    bit<32> underlay_v4_next;
    bit<64> underlay_v6_next_hi;
    bit<64> underlay_v6_next_lo;
    bit<16> mtu;
    bit<8> bfd_session;
    bit<8> svc_redirect;
    bit<16> svc_port;
    bit<8> acl_verdict;
    bit<8> segment_switch;
    bit<8> ipv6_enabled;
    bit<16> path_digest;
}
"""

PARSER = """
parser ScionParser(inout headers_t hdr, inout meta_t meta, inout intrinsic_t intr) {
    state start {
        pkt_extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            0x0800: parse_ipv4;
            0x86DD: parse_ipv6;
            default: reject;
        }
    }
    state parse_ipv4 {
        pkt_extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            17: parse_udp;
            default: reject;
        }
    }
    state parse_ipv6 {
        pkt_extract(hdr.ipv6);
        transition select(hdr.ipv6.next_hdr) {
            17: parse_udp;
            default: reject;
        }
    }
    state parse_udp {
        pkt_extract(hdr.udp);
        transition select(hdr.udp.dst_port) {
            50000: parse_scion;
            default: accept;
        }
    }
    state parse_scion {
        pkt_extract(hdr.scion);
        transition select(hdr.scion.path_type) {
            1: parse_path;
            default: reject;
        }
    }
    state parse_path {
        pkt_extract(hdr.info0);
        pkt_extract(hdr.hop0);
        transition select(hdr.scion.hdr_len) {
            9: accept;
            default: parse_hop1;
        }
    }
    state parse_hop1 {
        pkt_extract(hdr.hop1);
        transition accept;
    }
}
"""


def _interface_actions(index: int) -> str:
    return f"""
    action set_underlay_v4_if{index}(bit<32> next_hop, bit<9> port) {{
        meta.underlay_v4_next = next_hop;
        meta.egress_port = port;
        meta.underlay = 4;
        meta.next_hop_valid = 1;
    }}
    action set_underlay_v6_if{index}(bit<64> next_hi, bit<64> next_lo, bit<9> port) {{
        meta.underlay_v6_next_hi = next_hi;
        meta.underlay_v6_next_lo = next_lo;
        meta.egress_port = port;
        meta.underlay = 6;
        meta.next_hop_valid = 1;
    }}
    table egress_if{index}_v4 {{
        key = {{
            meta.egress_interface: exact;
        }}
        actions = {{
            set_underlay_v4_if{index};
            drop;
        }}
        default_action = drop();
        size = 64;
    }}
    table egress_if{index}_v6 {{
        key = {{
            meta.egress_interface: exact;
        }}
        actions = {{
            set_underlay_v6_if{index};
            drop;
        }}
        default_action = drop();
        size = 64;
    }}"""


def _interface_applies(count: int) -> str:
    """An else-if dispatch over the segment switch — the arms are mutually
    exclusive, so their tables can share pipeline stages."""

    def arm(index: int) -> str:
        body = f"""
                if (hdr.ipv4.isValid()) {{
                    egress_if{index}_v4.apply();
                }} else {{
                    if (meta.ipv6_enabled == 1) {{
                        egress_if{index}_v6.apply();
                    }}
                }}"""
        if index == count - 1:
            return f"""
            if (meta.segment_switch == {index}) {{{body}
            }}"""
        return f"""
            if (meta.segment_switch == {index}) {{{body}
            }} else {{{arm(index + 1)}
            }}"""

    return arm(0) if count else ""


def _path_chain(depth: int, v6_depth: int) -> tuple[str, str]:
    """The SCION path-processing chain: ``depth`` sequential MAC/segment
    verification steps, plus ``v6_depth`` extra steps only taken when the
    control plane enables an IPv6 underlay.

    Each step matches on the running digest and rewrites it, so the steps
    carry match dependencies and occupy consecutive pipeline stages — this
    chain is what makes the program stage-bound, like the real SCION BR.
    """
    decls = ["""
    action advance_path(bit<16> digest) {
        meta.path_digest = digest;
    }"""]
    for j in range(depth + v6_depth):
        # The first step is keyed on the packet's hop-field MAC; later
        # steps consume the digest the previous step produced, which is
        # what chains them across pipeline stages.
        key = (
            "hdr.hop0.mac[15:0]: exact;"
            if j == 0
            else "meta.path_digest: exact;"
        )
        decls.append(f"""
    table path_step{j} {{
        key = {{
            {key}
        }}
        actions = {{
            advance_path;
            drop;
        }}
        default_action = drop();
        size = 128;
    }}""")
    common = "\n".join(
        f"            path_step{j}.apply();" for j in range(depth)
    )
    v6_steps = "\n".join(
        f"                path_step{j}.apply();" for j in range(depth, depth + v6_depth)
    )
    applies = f"""
{common}
            if (meta.ipv6_enabled == 1) {{
{v6_steps}
            }}"""
    return "\n".join(decls), applies


def _ingress(num_interfaces: int, chain_depth: int, v6_ext_depth: int) -> str:
    interface_actions = "\n".join(
        _interface_actions(i) for i in range(num_interfaces)
    )
    interface_applies = _interface_applies(num_interfaces)
    chain_decls, chain_applies = _path_chain(chain_depth, v6_ext_depth)
    return f"""
control ScionIngress(inout headers_t hdr, inout meta_t meta, inout intrinsic_t intr) {{
    action drop() {{
        mark_to_drop();
    }}
    action noop() {{
    }}
    action set_ingress_interface(bit<16> intf) {{
        meta.ingress_interface = intf;
    }}
    action set_egress_interface(bit<16> intf, bit<8> seg) {{
        meta.egress_interface = intf;
        meta.segment_switch = seg;
    }}
    action deliver_local_v4(bit<32> dst, bit<16> port) {{
        meta.underlay_v4_next = dst;
        meta.svc_port = port;
        meta.svc_redirect = 1;
    }}
    action deliver_local_v6(bit<64> dst_hi, bit<64> dst_lo, bit<16> port) {{
        meta.underlay_v6_next_hi = dst_hi;
        meta.underlay_v6_next_lo = dst_lo;
        meta.svc_port = port;
        meta.svc_redirect = 1;
    }}
    action permit() {{
        meta.acl_verdict = 1;
    }}
    action deny() {{
        meta.acl_verdict = 0;
        mark_to_drop();
    }}
    action set_bfd(bit<8> session) {{
        meta.bfd_session = session;
    }}
    action underlay_v4() {{
        meta.ipv6_enabled = 0;
    }}
    action underlay_v6() {{
        meta.ipv6_enabled = 1;
    }}

    table underlay_map {{
        key = {{
            hdr.ethernet.ether_type: exact;
        }}
        actions = {{
            underlay_v4;
            underlay_v6;
            drop;
        }}
        default_action = drop();
        size = 8;
    }}

    table ingress_interface_map {{
        key = {{
            intr.ingress_port: exact;
            hdr.udp.dst_port: exact;
        }}
        actions = {{
            set_ingress_interface;
            drop;
        }}
        default_action = drop();
        size = 128;
    }}
    table hop_forward {{
        key = {{
            hdr.hop0.cons_ingress: exact;
            hdr.hop0.cons_egress: exact;
        }}
        actions = {{
            set_egress_interface;
            drop;
        }}
        default_action = drop();
        size = 1024;
    }}
    table ipv4_forward {{
        key = {{
            hdr.ipv4.dst_addr: lpm;
        }}
        actions = {{
            deliver_local_v4;
            noop;
        }}
        default_action = noop();
        size = 4096;
    }}
    table ipv6_forward {{
        key = {{
            hdr.ipv6.dst_addr_hi: lpm;
        }}
        actions = {{
            deliver_local_v6;
            noop;
        }}
        default_action = noop();
        size = 4096;
    }}
    table acl_v4 {{
        key = {{
            hdr.ipv4.src_addr: ternary;
            hdr.ipv4.dst_addr: ternary;
            hdr.udp.src_port: ternary;
            hdr.udp.dst_port: ternary;
        }}
        actions = {{
            permit;
            deny;
        }}
        default_action = permit();
        size = 512;
    }}
    table acl_v6 {{
        key = {{
            hdr.ipv6.src_addr_hi: ternary;
            hdr.ipv6.dst_addr_hi: ternary;
            hdr.udp.dst_port: ternary;
        }}
        actions = {{
            permit;
            deny;
        }}
        default_action = permit();
        size = 512;
    }}
    table bfd_sessions {{
        key = {{
            meta.ingress_interface: exact;
        }}
        actions = {{
            set_bfd;
            noop;
        }}
        default_action = noop();
        size = 64;
    }}
    table svc_map {{
        key = {{
            hdr.scion.dst_as: exact;
        }}
        actions = {{
            set_egress_interface;
            noop;
        }}
        default_action = noop();
        size = 256;
    }}
{interface_actions}
{chain_decls}

    apply {{
        meta.acl_verdict = 1;
        underlay_map.apply();
        if (hdr.ipv4.isValid()) {{
            if (hdr.ipv4.ttl == 0) {{
                drop();
            }} else {{
                hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
                acl_v4.apply();
            }}
        }}
        if (meta.ipv6_enabled == 1) {{
            if (hdr.ipv6.isValid()) {{
                if (hdr.ipv6.hop_limit == 0) {{
                    drop();
                }} else {{
                    hdr.ipv6.hop_limit = hdr.ipv6.hop_limit - 1;
                    acl_v6.apply();
                }}
            }}
        }}
        if (meta.acl_verdict == 1) {{
            ingress_interface_map.apply();
            bfd_sessions.apply();
            if (hdr.scion.isValid()) {{
                hop_forward.apply();
                svc_map.apply();
                if (hdr.ipv4.isValid()) {{
                    ipv4_forward.apply();
                }}
                if (meta.ipv6_enabled == 1) {{
                    if (hdr.ipv6.isValid()) {{
                        ipv6_forward.apply();
                    }}
                }}
{chain_applies}
{interface_applies}
            }}
        }}
    }}
}}
"""


def _egress(num_interfaces: int) -> str:
    mac_tables = "\n".join(
        f"""
    table rewrite_mac_if{i} {{
        key = {{
            meta.egress_port: exact;
        }}
        actions = {{
            set_src_mac;
            noop;
        }}
        default_action = noop();
        size = 16;
    }}"""
        for i in range(num_interfaces)
    )
    def mac_arm(index: int) -> str:
        if index == num_interfaces - 1:
            return f"""
        if (meta.segment_switch == {index}) {{
            rewrite_mac_if{index}.apply();
        }}"""
        return f"""
        if (meta.segment_switch == {index}) {{
            rewrite_mac_if{index}.apply();
        }} else {{{mac_arm(index + 1)}
        }}"""

    mac_applies = mac_arm(0) if num_interfaces else ""
    return f"""
control ScionEgress(inout headers_t hdr, inout meta_t meta, inout intrinsic_t intr) {{
    action noop() {{
    }}
    action set_src_mac(bit<48> mac) {{
        hdr.ethernet.src_addr = mac;
    }}
    action set_next_mac(bit<48> mac) {{
        hdr.ethernet.dst_addr = mac;
    }}
    action set_mtu(bit<16> mtu) {{
        meta.mtu = mtu;
    }}
    table next_hop_mac_v4 {{
        key = {{
            meta.underlay_v4_next: exact;
        }}
        actions = {{
            set_next_mac;
            noop;
        }}
        default_action = noop();
        size = 256;
    }}
    table next_hop_mac_v6 {{
        key = {{
            meta.underlay_v6_next_hi: exact;
            meta.underlay_v6_next_lo: exact;
        }}
        actions = {{
            set_next_mac;
            noop;
        }}
        default_action = noop();
        size = 256;
    }}
    table mtu_table {{
        key = {{
            meta.egress_interface: exact;
        }}
        actions = {{
            set_mtu;
            noop;
        }}
        default_action = noop();
        size = 64;
    }}
{mac_tables}

    apply {{
        if (meta.next_hop_valid == 1) {{
            if (meta.underlay == 4) {{
                hdr.ipv4.src_addr = meta.underlay_v4_next;
                hdr.ipv4.dst_addr = meta.underlay_v4_next;
                next_hop_mac_v4.apply();
            }}
            if (meta.underlay == 6) {{
                hdr.ipv6.dst_addr_hi = meta.underlay_v6_next_hi;
                hdr.ipv6.dst_addr_lo = meta.underlay_v6_next_lo;
                next_hop_mac_v6.apply();
            }}
            mtu_table.apply();
{mac_applies}
            update_checksum(hdr.ipv4.hdr_checksum, hdr.ipv4.src_addr, hdr.ipv4.dst_addr, hdr.ipv4.ttl);
        }}
    }}
}}
"""


def source(
    num_interfaces: int = 25, chain_depth: int = 15, v6_ext_depth: int = 3
) -> str:
    """The full SCION border-router program text."""
    return (
        HEADERS
        + PARSER
        + _ingress(num_interfaces, chain_depth, v6_ext_depth)
        + _egress(num_interfaces)
        + "\nPipeline(ScionParser(), ScionIngress(), ScionEgress()) main;\n"
    )


def ipv4_config_tables(
    num_interfaces: int = 25, chain_depth: int = 15, v6_ext_depth: int = 3
) -> list[str]:
    """Tables the representative IPv4-only configuration populates."""
    tables = list(IPV4_CONFIG_TABLES)
    tables.extend(f"ScionIngress.path_step{j}" for j in range(chain_depth + v6_ext_depth))
    tables.extend(
        f"ScionIngress.egress_if{i}_v4" for i in range(num_interfaces)
    )
    tables.extend(
        f"ScionEgress.rewrite_mac_if{i}" for i in range(num_interfaces)
    )
    return tables


#: Table names an IPv4-only configuration populates (§4.2's supplied config).
IPV4_CONFIG_TABLES = (
    "ScionIngress.ingress_interface_map",
    "ScionIngress.hop_forward",
    "ScionIngress.ipv4_forward",
    "ScionIngress.acl_v4",
    "ScionIngress.svc_map",
    "ScionEgress.next_hop_mac_v4",
    "ScionEgress.mtu_table",
)

#: Tables only an IPv6-enabled configuration touches.
IPV6_ONLY_TABLES = (
    "ScionIngress.ipv6_forward",
    "ScionIngress.acl_v6",
    "ScionEgress.next_hop_mac_v6",
)
