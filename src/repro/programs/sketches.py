"""The Table 1 telemetry programs: Beaucoup, ACCTurbo, and DTA.

These are register/hash-heavy sketch programs (bf-p4c: 22 s, 28 s, 25 s).
We model their published structure:

* **Beaucoup** — multi-query coupon collector: per-query key extraction
  tables, one coupon draw per packet (hash → coupon), register-backed
  coupon tables and an activation threshold.
* **ACCTurbo** — online packet clustering for pulse-wave DDoS defense:
  sketch-based clustering of src/dst prefixes into a fixed set of
  clusters, per-cluster counters, and priority-based scheduling.
* **DTA** — Direct Telemetry Access: translates telemetry reports into
  RDMA-style writes; key-write/append primitives with per-primitive
  redundancy tables.
"""

from __future__ import annotations

_COMMON_HEADERS = """
header ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}

header ipv4_t {
    bit<4> version;
    bit<4> ihl;
    bit<8> diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<3> flags;
    bit<13> frag_offset;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> length;
    bit<16> checksum;
}

header tcp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<32> seq_no;
    bit<32> ack_no;
    bit<4> data_offset;
    bit<4> res;
    bit<8> flags;
    bit<16> window;
    bit<16> checksum;
    bit<16> urgent;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t ipv4;
    tcp_t tcp;
    udp_t udp;
}

struct intrinsic_t {
    bit<9> ingress_port;
    bit<48> ingress_timestamp;
}
"""

_COMMON_PARSER = """
parser {name}(inout headers_t hdr, inout meta_t meta, inout intrinsic_t intr) {{
    state start {{
        pkt_extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {{
            0x0800: parse_ipv4;
            default: accept;
        }}
    }}
    state parse_ipv4 {{
        pkt_extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {{
            6: parse_tcp;
            17: parse_udp;
            default: accept;
        }}
    }}
    state parse_tcp {{
        pkt_extract(hdr.tcp);
        transition accept;
    }}
    state parse_udp {{
        pkt_extract(hdr.udp);
        transition accept;
    }}
}}
"""


def beaucoup_source(num_queries: int = 8) -> str:
    meta = """
struct meta_t {
    bit<16> query_id;
    bit<32> coupon_index;
    bit<16> coupon_id;
    bit<8> coupon_hit;
    bit<32> collector_key;
    bit<32> coupon_word;
    bit<8> activated;
    bit<16> l4_dst_port;
}
"""
    query_tables = "\n".join(
        f"""
    table query{q}_keydef {{
        key = {{
            hdr.ipv4.protocol: exact;
            meta.l4_dst_port: ternary;
        }}
        actions = {{
            set_query;
            noop;
        }}
        default_action = noop();
        size = 16;
    }}"""
        for q in range(num_queries)
    )

    def arm(q: int) -> str:
        body = f"""
            query{q}_keydef.apply();"""
        if q == num_queries - 1:
            return f"""
        if (hdr.ipv4.ttl[{min(q, 7)}:{min(q, 7)}] == 1) {{{body}
        }}"""
        return f"""
        if (hdr.ipv4.ttl[{min(q, 7)}:{min(q, 7)}] == 1) {{{body}
        }} else {{{arm(q + 1)}
        }}"""

    ingress = f"""
control BeaucoupIngress(inout headers_t hdr, inout meta_t meta, inout intrinsic_t intr) {{
    register<bit<32>>(65536) coupon_table;
    register<bit<32>>(4096) activation_table;

    action noop() {{
    }}
    action set_query(bit<16> query_id, bit<16> coupon_id) {{
        meta.query_id = query_id;
        meta.coupon_id = coupon_id;
    }}
    action set_threshold(bit<32> threshold) {{
        meta.coupon_word = threshold;
    }}
    table coupon_draw {{
        key = {{
            meta.query_id: exact;
            meta.coupon_id: exact;
        }}
        actions = {{
            set_threshold;
            noop;
        }}
        default_action = noop();
        size = 256;
    }}
{query_tables}

    apply {{
        if (hdr.tcp.isValid()) {{
            meta.l4_dst_port = hdr.tcp.dst_port;
        }} else {{
            if (hdr.udp.isValid()) {{
                meta.l4_dst_port = hdr.udp.dst_port;
            }}
        }}
{arm(0)}
        if (meta.query_id != 0) {{
            hash(meta.coupon_index, hdr.ipv4.src_addr, hdr.ipv4.dst_addr, meta.query_id);
            coupon_draw.apply();
            coupon_table.read(meta.coupon_word, meta.coupon_index);
            meta.coupon_word = meta.coupon_word | 1;
            coupon_table.write(meta.coupon_index, meta.coupon_word);
            if (meta.coupon_word == 0xFFFFFFFF) {{
                meta.activated = 1;
                activation_table.write((bit<32>) meta.query_id, meta.coupon_word);
            }}
        }}
    }}
}}
"""
    return (
        _COMMON_HEADERS
        + meta
        + _COMMON_PARSER.format(name="BeaucoupParser")
        + ingress
        + "\nPipeline(BeaucoupParser(), BeaucoupIngress()) main;\n"
    )


def accturbo_source(num_clusters: int = 8) -> str:
    meta = """
struct meta_t {
    bit<8> cluster_id;
    bit<32> distance;
    bit<32> best_distance;
    bit<8> best_cluster;
    bit<32> src_prefix;
    bit<32> dst_prefix;
    bit<8> priority;
    bit<32> counter_value;
    bit<16> l4_dst_port;
}
"""
    cluster_sections = "\n".join(
        f"""
    register<bit<32>>(4) cluster{c}_center;
    register<bit<32>>(4) cluster{c}_count;
    action select_cluster{c}() {{
        meta.best_cluster = {c};
        meta.best_distance = meta.distance;
    }}
    table cluster{c}_ranges {{
        key = {{
            meta.src_prefix: ternary;
            meta.dst_prefix: ternary;
        }}
        actions = {{
            select_cluster{c};
            noop;
        }}
        default_action = noop();
        size = 4;
    }}"""
        for c in range(num_clusters)
    )
    cluster_applies = "\n".join(
        f"""
        cluster{c}_ranges.apply();
        cluster{c}_count.read(meta.counter_value, 0);
        cluster{c}_count.write(0, meta.counter_value + 1);"""
        for c in range(num_clusters)
    )
    ingress = f"""
control AccTurboIngress(inout headers_t hdr, inout meta_t meta, inout intrinsic_t intr) {{
    action noop() {{
    }}
    action set_priority(bit<8> priority) {{
        meta.priority = priority;
    }}
    action drop() {{
        mark_to_drop();
    }}
    table priority_schedule {{
        key = {{
            meta.best_cluster: exact;
        }}
        actions = {{
            set_priority;
            drop;
        }}
        default_action = set_priority(0);
        size = 16;
    }}
{cluster_sections}

    apply {{
        meta.src_prefix = hdr.ipv4.src_addr & 0xFFFFFF00;
        meta.dst_prefix = hdr.ipv4.dst_addr & 0xFFFFFF00;
        meta.best_distance = 0xFFFFFFFF;
{cluster_applies}
        priority_schedule.apply();
        if (meta.priority == 0) {{
            hdr.ipv4.diffserv = 0;
        }} else {{
            hdr.ipv4.diffserv = meta.priority;
        }}
    }}
}}
"""
    return (
        _COMMON_HEADERS
        + meta
        + _COMMON_PARSER.format(name="AccTurboParser")
        + ingress
        + "\nPipeline(AccTurboParser(), AccTurboIngress()) main;\n"
    )


def dta_source(num_slots: int = 4) -> str:
    meta = """
struct meta_t {
    bit<32> telemetry_key;
    bit<32> telemetry_value;
    bit<32> rdma_address;
    bit<32> slot_index;
    bit<8> primitive;
    bit<8> redundancy;
    bit<32> checksum_value;
    bit<16> collector_qp;
    bit<16> l4_dst_port;
}
"""
    slot_sections = "\n".join(
        f"""
    action set_slot{s}_base(bit<32> base, bit<16> qp) {{
        meta.rdma_address = base;
        meta.collector_qp = qp;
    }}
    table keywrite_slot{s} {{
        key = {{
            meta.slot_index: exact;
        }}
        actions = {{
            set_slot{s}_base;
            noop;
        }}
        default_action = noop();
        size = 64;
    }}"""
        for s in range(num_slots)
    )
    slot_applies = "\n".join(
        f"""
            if (meta.redundancy == {s}) {{
                keywrite_slot{s}.apply();
            }}"""
        for s in range(num_slots)
    )
    ingress = f"""
control DtaIngress(inout headers_t hdr, inout meta_t meta, inout intrinsic_t intr) {{
    register<bit<32>>(65536) append_buffer;
    register<bit<32>>(16) append_head;

    action noop() {{
    }}
    action set_primitive(bit<8> primitive, bit<8> redundancy) {{
        meta.primitive = primitive;
        meta.redundancy = redundancy;
    }}
    action drop() {{
        mark_to_drop();
    }}
    table primitive_select {{
        key = {{
            meta.l4_dst_port: exact;
            hdr.ipv4.protocol: exact;
        }}
        actions = {{
            set_primitive;
            drop;
        }}
        default_action = drop();
        size = 64;
    }}
{slot_sections}

    apply {{
        if (hdr.udp.isValid()) {{
            meta.l4_dst_port = hdr.udp.dst_port;
            meta.telemetry_key = hdr.ipv4.src_addr ^ hdr.ipv4.dst_addr;
            meta.telemetry_value = (bit<32>) hdr.ipv4.total_len;
            primitive_select.apply();
            if (meta.primitive == 1) {{
                hash(meta.slot_index, meta.telemetry_key, meta.redundancy);
{slot_applies}
                hash(meta.checksum_value, meta.telemetry_key, meta.telemetry_value);
            }} else {{
                if (meta.primitive == 2) {{
                    append_head.read(meta.slot_index, 0);
                    append_buffer.write(meta.slot_index, meta.telemetry_value);
                    append_head.write(0, meta.slot_index + 1);
                }}
            }}
        }}
    }}
}}
"""
    return (
        _COMMON_HEADERS
        + meta
        + _COMMON_PARSER.format(name="DtaParser")
        + ingress
        + "\nPipeline(DtaParser(), DtaIngress()) main;\n"
    )
