"""switch.p4 equivalent: the "kitchen-sink" data-center switch.

The paper's switch.p4 [66] captures the union of all features a DC switch
might need (786 statements by the paper's count, 106 s bf-p4c compile) —
the poster child for specialization because any one deployment uses only a
subset of features.  This generator builds the same shape: L2 switching,
VLAN, IPv4/IPv6 routing (host + LPM), ECMP next-hops, three ACL stages,
NAT, tunnel encap/decap, per-class QoS, storm control, and mirroring, with
the QoS/port sections scaled by ``num_qos_classes``/``num_port_groups``.
"""

from __future__ import annotations

HEADERS = """
header ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}

header vlan_t {
    bit<3> pcp;
    bit<1> dei;
    bit<12> vid;
    bit<16> ether_type;
}

header ipv4_t {
    bit<4> version;
    bit<4> ihl;
    bit<8> diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<3> flags;
    bit<13> frag_offset;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

header ipv6_t {
    bit<4> version;
    bit<8> traffic_class;
    bit<20> flow_label;
    bit<16> payload_len;
    bit<8> next_hdr;
    bit<8> hop_limit;
    bit<64> src_addr_hi;
    bit<64> src_addr_lo;
    bit<64> dst_addr_hi;
    bit<64> dst_addr_lo;
}

header tcp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<32> seq_no;
    bit<32> ack_no;
    bit<4> data_offset;
    bit<4> res;
    bit<8> flags;
    bit<16> window;
    bit<16> checksum;
    bit<16> urgent;
}

header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> length;
    bit<16> checksum;
}

header vxlan_t {
    bit<8> flags;
    bit<24> reserved;
    bit<24> vni;
    bit<8> reserved2;
}

struct headers_t {
    ethernet_t ethernet;
    vlan_t vlan;
    ipv4_t ipv4;
    ipv6_t ipv6;
    tcp_t tcp;
    udp_t udp;
    vxlan_t vxlan;
}

struct intrinsic_t {
    bit<9> ingress_port;
    bit<48> ingress_timestamp;
}

struct meta_t {
    bit<9> egress_port;
    bit<16> bd;
    bit<16> vrf;
    bit<16> nexthop_index;
    bit<16> ecmp_group;
    bit<8> ecmp_offset;
    bit<48> rewrite_smac;
    bit<48> rewrite_dmac;
    bit<8> l3_hit;
    bit<8> routed;
    bit<8> acl_deny;
    bit<8> nat_hit;
    bit<32> nat_src;
    bit<32> nat_dst;
    bit<16> nat_sport;
    bit<16> nat_dport;
    bit<8> tunnel_decap;
    bit<24> tunnel_vni;
    bit<8> qos_class;
    bit<8> qos_color;
    bit<16> mirror_session;
    bit<8> storm_drop;
    bit<16> l4_src_port;
    bit<16> l4_dst_port;
    bit<16> hash_value;
    bit<8> wred_drop;
    bit<8> pfc_pause;
    bit<16> mcast_group;
    bit<16> mcast_rid;
    bit<8> dtel_report;
    bit<32> dtel_latency;
    bit<8> encap_type;
    bit<32> tunnel_dst_ip;
    bit<32> tunnel_src_ip;
    bit<16> tunnel_l4_sport;
    bit<8> tunnel_ttl;
    bit<8> tunnel_dscp;
}
"""

PARSER = """
parser SwitchParser(inout headers_t hdr, inout meta_t meta, inout intrinsic_t intr) {
    state start {
        pkt_extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            0x8100: parse_vlan;
            0x0800: parse_ipv4;
            0x86DD: parse_ipv6;
            default: accept;
        }
    }
    state parse_vlan {
        pkt_extract(hdr.vlan);
        transition select(hdr.vlan.ether_type) {
            0x0800: parse_ipv4;
            0x86DD: parse_ipv6;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt_extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            6: parse_tcp;
            17: parse_udp;
            default: accept;
        }
    }
    state parse_ipv6 {
        pkt_extract(hdr.ipv6);
        transition select(hdr.ipv6.next_hdr) {
            6: parse_tcp;
            17: parse_udp;
            default: accept;
        }
    }
    state parse_tcp {
        pkt_extract(hdr.tcp);
        transition accept;
    }
    state parse_udp {
        pkt_extract(hdr.udp);
        transition select(hdr.udp.dst_port) {
            4789: parse_vxlan;
            default: accept;
        }
    }
    state parse_vxlan {
        pkt_extract(hdr.vxlan);
        transition accept;
    }
}
"""


def _qos_section(num_classes: int) -> tuple[str, str]:
    decls = []
    applies = []
    for c in range(num_classes):
        decls.append(f"""
    table qos_class{c}_policer {{
        key = {{
            meta.qos_class: exact;
            intr.ingress_port: exact;
        }}
        actions = {{
            set_color;
            noop;
        }}
        default_action = noop();
        size = 64;
    }}""")
    chain = "".join(
        f"""
            if (meta.qos_class == {c}) {{
                qos_class{c}_policer.apply();
            }}{" else {" if c < num_classes - 1 else ""}"""
        for c in range(num_classes)
    )
    chain += "\n" + "            }" * max(0, num_classes - 1)
    applies.append(chain)
    return "\n".join(decls), "\n".join(applies)


def _port_group_section(num_groups: int) -> tuple[str, str]:
    decls = []
    for g in range(num_groups):
        decls.append(f"""
    table storm_control_pg{g} {{
        key = {{
            intr.ingress_port: exact;
            hdr.ethernet.dst_addr: ternary;
        }}
        actions = {{
            storm_drop_action;
            noop;
        }}
        default_action = noop();
        size = 32;
    }}""")

    def arm(g: int) -> str:
        guard = f"intr.ingress_port[8:6] == {g}" if g < 8 else "true"
        body = f"""
                storm_control_pg{g}.apply();"""
        if g == num_groups - 1:
            return f"""
            if ({guard}) {{{body}
            }}"""
        return f"""
            if ({guard}) {{{body}
            }} else {{{arm(g + 1)}
            }}"""

    return "\n".join(decls), arm(0) if num_groups else ""




def _wred_section(num_classes: int) -> tuple[str, str]:
    """Per-class WRED/ECN marking tables (egress congestion management)."""
    decls = []
    for c in range(num_classes):
        decls.append(f"""
    table wred_class{c} {{
        key = {{
            meta.qos_color: exact;
            meta.egress_port: exact;
        }}
        actions = {{
            wred_mark;
            wred_drop_action;
            noop;
        }}
        default_action = noop();
        size = 32;
    }}""")

    def arm(c: int) -> str:
        body = f"""
            wred_class{c}.apply();"""
        if c == num_classes - 1:
            return f"""
        if (meta.qos_class == {c}) {{{body}
        }}"""
        return f"""
        if (meta.qos_class == {c}) {{{body}
        }} else {{{arm(c + 1)}
        }}"""

    return "\n".join(decls), arm(0) if num_classes else ""


def _pfc_section(num_priorities: int) -> tuple[str, str]:
    """Per-priority PFC pause state tables."""
    decls = []
    for p in range(num_priorities):
        decls.append(f"""
    table pfc_prio{p} {{
        key = {{
            meta.egress_port: exact;
        }}
        actions = {{
            set_pfc_pause;
            noop;
        }}
        default_action = noop();
        size = 64;
    }}""")

    def arm(p: int) -> str:
        body = f"""
            pfc_prio{p}.apply();"""
        if p == num_priorities - 1:
            return f"""
        if (meta.qos_class == {p}) {{{body}
        }}"""
        return f"""
        if (meta.qos_class == {p}) {{{body}
        }} else {{{arm(p + 1)}
        }}"""

    return "\n".join(decls), arm(0) if num_priorities else ""


def _tunnel_rewrite_section(num_types: int) -> tuple[str, str]:
    """Per-encap-type tunnel header rewrite (VXLAN/GRE/GENEVE/...)."""
    decls = []
    for t in range(num_types):
        decls.append(f"""
    action encap_rewrite_type{t}(bit<32> src_ip, bit<32> dst_ip, bit<16> sport, bit<8> ttl, bit<8> dscp) {{
        meta.tunnel_src_ip = src_ip;
        meta.tunnel_dst_ip = dst_ip;
        meta.tunnel_l4_sport = sport;
        meta.tunnel_ttl = ttl;
        meta.tunnel_dscp = dscp;
        meta.encap_type = {t};
    }}
    table tunnel_rewrite_type{t} {{
        key = {{
            meta.tunnel_vni: exact;
        }}
        actions = {{
            encap_rewrite_type{t};
            noop;
        }}
        default_action = noop();
        size = 512;
    }}""")

    def arm(t: int) -> str:
        body = f"""
            tunnel_rewrite_type{t}.apply();"""
        if t == num_types - 1:
            return f"""
        if (meta.encap_type == {t}) {{{body}
        }}"""
        return f"""
        if (meta.encap_type == {t}) {{{body}
        }} else {{{arm(t + 1)}
        }}"""

    return "\n".join(decls), arm(0) if num_types else ""


MULTICAST_SECTION = """
    action set_mcast_group(bit<16> group, bit<16> rid) {
        meta.mcast_group = group;
        meta.mcast_rid = rid;
    }
    table ipv4_multicast {
        key = {
            meta.vrf: exact;
            hdr.ipv4.dst_addr: exact;
        }
        actions = {
            set_mcast_group;
            noop;
        }
        default_action = noop();
        size = 4096;
    }
    table ipv6_multicast {
        key = {
            meta.vrf: exact;
            hdr.ipv6.dst_addr_hi: exact;
        }
        actions = {
            set_mcast_group;
            noop;
        }
        default_action = noop();
        size = 2048;
    }
    table mcast_rid_rewrite {
        key = {
            meta.mcast_rid: exact;
        }
        actions = {
            set_bd;
            noop;
        }
        default_action = noop();
        size = 4096;
    }
"""

MULTICAST_APPLY = """
        if (hdr.ipv4.isValid()) {
            if (hdr.ipv4.dst_addr[31:28] == 0xE) {
                ipv4_multicast.apply();
            }
        } else {
            if (hdr.ipv6.isValid()) {
                if (hdr.ipv6.dst_addr_hi[63:56] == 0xFF) {
                    ipv6_multicast.apply();
                }
            }
        }
        if (meta.mcast_group != 0) {
            mcast_rid_rewrite.apply();
        }
"""

DTEL_SECTION = """
    action dtel_enable(bit<8> mode) {
        meta.dtel_report = mode;
    }
    action dtel_quota(bit<32> latency_threshold) {
        meta.dtel_latency = latency_threshold;
    }
    table dtel_watchlist {
        key = {
            hdr.ipv4.src_addr: ternary;
            hdr.ipv4.dst_addr: ternary;
            meta.l4_dst_port: ternary;
        }
        actions = {
            dtel_enable;
            noop;
        }
        default_action = noop();
        size = 256;
    }
    table dtel_config {
        key = {
            meta.dtel_report: exact;
        }
        actions = {
            dtel_quota;
            noop;
        }
        default_action = noop();
        size = 16;
    }
"""

DTEL_APPLY = """
        if (hdr.ipv4.isValid()) {
            dtel_watchlist.apply();
            if (meta.dtel_report != 0) {
                dtel_config.apply();
                hash(meta.dtel_latency, intr.ingress_timestamp, meta.hash_value);
            }
        }
"""


def _ingress(num_qos_classes: int, num_port_groups: int, num_tunnel_types: int) -> str:
    qos_decls, qos_applies = _qos_section(num_qos_classes)
    storm_decls, storm_applies = _port_group_section(num_port_groups)
    pfc_decls, pfc_applies = _pfc_section(8)
    tunnel_decls, tunnel_applies = _tunnel_rewrite_section(num_tunnel_types)
    return f"""
control SwitchIngress(inout headers_t hdr, inout meta_t meta, inout intrinsic_t intr) {{
    action drop() {{
        mark_to_drop();
    }}
    action noop() {{
    }}
    action set_bd(bit<16> bd, bit<16> vrf) {{
        meta.bd = bd;
        meta.vrf = vrf;
    }}
    action smac_hit() {{
        noop();
    }}
    action smac_learn() {{
        meta.mirror_session = 250;
    }}
    action dmac_unicast(bit<9> port) {{
        meta.egress_port = port;
    }}
    action dmac_flood() {{
        meta.egress_port = 511;
    }}
    action set_nexthop(bit<16> index) {{
        meta.nexthop_index = index;
        meta.l3_hit = 1;
    }}
    action set_ecmp_group(bit<16> group) {{
        meta.ecmp_group = group;
        meta.l3_hit = 1;
    }}
    action select_nexthop(bit<16> index) {{
        meta.nexthop_index = index;
    }}
    action rewrite(bit<48> smac, bit<48> dmac, bit<9> port) {{
        meta.rewrite_smac = smac;
        meta.rewrite_dmac = dmac;
        meta.egress_port = port;
        meta.routed = 1;
    }}
    action acl_permit() {{
        meta.acl_deny = 0;
    }}
    action acl_deny_action() {{
        meta.acl_deny = 1;
        mark_to_drop();
    }}
    action nat_rewrite(bit<32> src, bit<32> dst, bit<16> sport, bit<16> dport) {{
        meta.nat_src = src;
        meta.nat_dst = dst;
        meta.nat_sport = sport;
        meta.nat_dport = dport;
        meta.nat_hit = 1;
    }}
    action tunnel_decap_action(bit<16> bd) {{
        meta.tunnel_decap = 1;
        meta.bd = bd;
    }}
    action tunnel_encap_action(bit<24> vni) {{
        meta.tunnel_vni = vni;
    }}
    action set_qos_class(bit<8> class_id) {{
        meta.qos_class = class_id;
    }}
    action set_color(bit<8> color) {{
        meta.qos_color = color;
    }}
    action storm_drop_action() {{
        meta.storm_drop = 1;
        mark_to_drop();
    }}
    action wred_mark(bit<8> mark) {{
        meta.wred_drop = mark;
    }}
    action wred_drop_action() {{
        meta.wred_drop = 1;
        mark_to_drop();
    }}
    action set_pfc_pause(bit<8> pause) {{
        meta.pfc_pause = pause;
    }}
    action set_mirror(bit<16> session) {{
        meta.mirror_session = session;
    }}

    table port_vlan_to_bd {{
        key = {{
            intr.ingress_port: exact;
            hdr.vlan.vid: exact;
        }}
        actions = {{
            set_bd;
            drop;
        }}
        default_action = drop();
        size = 4096;
    }}
    table smac_table {{
        key = {{
            meta.bd: exact;
            hdr.ethernet.src_addr: exact;
        }}
        actions = {{
            smac_hit;
            smac_learn;
        }}
        default_action = smac_learn();
        size = 16384;
    }}
    table dmac_table {{
        key = {{
            meta.bd: exact;
            hdr.ethernet.dst_addr: exact;
        }}
        actions = {{
            dmac_unicast;
            dmac_flood;
        }}
        default_action = dmac_flood();
        size = 16384;
    }}
    table ipv4_host {{
        key = {{
            meta.vrf: exact;
            hdr.ipv4.dst_addr: exact;
        }}
        actions = {{
            set_nexthop;
            set_ecmp_group;
            noop;
        }}
        default_action = noop();
        size = 32768;
    }}
    table ipv4_lpm {{
        key = {{
            meta.vrf: exact;
            hdr.ipv4.dst_addr: lpm;
        }}
        actions = {{
            set_nexthop;
            set_ecmp_group;
            noop;
        }}
        default_action = noop();
        size = 16384;
    }}
    table ipv6_host {{
        key = {{
            meta.vrf: exact;
            hdr.ipv6.dst_addr_hi: exact;
            hdr.ipv6.dst_addr_lo: exact;
        }}
        actions = {{
            set_nexthop;
            set_ecmp_group;
            noop;
        }}
        default_action = noop();
        size = 16384;
    }}
    table ipv6_lpm {{
        key = {{
            meta.vrf: exact;
            hdr.ipv6.dst_addr_hi: lpm;
        }}
        actions = {{
            set_nexthop;
            set_ecmp_group;
            noop;
        }}
        default_action = noop();
        size = 8192;
    }}
    table ecmp_select {{
        key = {{
            meta.ecmp_group: exact;
            meta.ecmp_offset: exact;
        }}
        actions = {{
            select_nexthop;
            noop;
        }}
        default_action = noop();
        size = 1024;
    }}
    table nexthop {{
        key = {{
            meta.nexthop_index: exact;
        }}
        actions = {{
            rewrite;
            drop;
        }}
        default_action = drop();
        size = 8192;
    }}
    table mac_acl {{
        key = {{
            hdr.ethernet.src_addr: ternary;
            hdr.ethernet.dst_addr: ternary;
            hdr.ethernet.ether_type: ternary;
        }}
        actions = {{
            acl_permit;
            acl_deny_action;
        }}
        default_action = acl_permit();
        size = 512;
    }}
    table ipv4_acl {{
        key = {{
            hdr.ipv4.src_addr: ternary;
            hdr.ipv4.dst_addr: ternary;
            hdr.ipv4.protocol: ternary;
            meta.l4_src_port: ternary;
            meta.l4_dst_port: ternary;
        }}
        actions = {{
            acl_permit;
            acl_deny_action;
            set_mirror;
        }}
        default_action = acl_permit();
        size = 1024;
    }}
    table ipv6_acl {{
        key = {{
            hdr.ipv6.src_addr_hi: ternary;
            hdr.ipv6.dst_addr_hi: ternary;
            hdr.ipv6.next_hdr: ternary;
            meta.l4_dst_port: ternary;
        }}
        actions = {{
            acl_permit;
            acl_deny_action;
        }}
        default_action = acl_permit();
        size = 512;
    }}
    table nat_table {{
        key = {{
            hdr.ipv4.src_addr: exact;
            hdr.ipv4.dst_addr: exact;
            meta.l4_src_port: exact;
            meta.l4_dst_port: exact;
        }}
        actions = {{
            nat_rewrite;
            noop;
        }}
        default_action = noop();
        size = 65536;
    }}
    table tunnel_decap_table {{
        key = {{
            hdr.vxlan.vni: exact;
        }}
        actions = {{
            tunnel_decap_action;
            noop;
        }}
        default_action = noop();
        size = 4096;
    }}
    table tunnel_encap_table {{
        key = {{
            meta.bd: exact;
            meta.egress_port: exact;
        }}
        actions = {{
            tunnel_encap_action;
            noop;
        }}
        default_action = noop();
        size = 4096;
    }}
    table qos_classify {{
        key = {{
            hdr.ipv4.diffserv: ternary;
            intr.ingress_port: ternary;
        }}
        actions = {{
            set_qos_class;
            noop;
        }}
        default_action = noop();
        size = 256;
    }}
{qos_decls}
{storm_decls}
{pfc_decls}
{tunnel_decls}
{MULTICAST_SECTION}
{DTEL_SECTION}

    apply {{
        if (hdr.tcp.isValid()) {{
            meta.l4_src_port = hdr.tcp.src_port;
            meta.l4_dst_port = hdr.tcp.dst_port;
        }} else {{
            if (hdr.udp.isValid()) {{
                meta.l4_src_port = hdr.udp.src_port;
                meta.l4_dst_port = hdr.udp.dst_port;
            }}
        }}
        port_vlan_to_bd.apply();
        mac_acl.apply();
{storm_applies}
        if (meta.storm_drop == 0) {{
            smac_table.apply();
            if (hdr.vxlan.isValid()) {{
                tunnel_decap_table.apply();
            }}
            if (hdr.ipv4.isValid()) {{
                ipv4_acl.apply();
                if (meta.acl_deny == 0) {{
                    if (ipv4_host.apply().miss) {{
                        ipv4_lpm.apply();
                    }}
                    nat_table.apply();
                    if (meta.nat_hit == 1) {{
                        hdr.ipv4.src_addr = meta.nat_src;
                        hdr.ipv4.dst_addr = meta.nat_dst;
                        meta.l4_src_port = meta.nat_sport;
                        meta.l4_dst_port = meta.nat_dport;
                    }}
                }}
            }} else {{
                if (hdr.ipv6.isValid()) {{
                    ipv6_acl.apply();
                    if (meta.acl_deny == 0) {{
                        if (ipv6_host.apply().miss) {{
                            ipv6_lpm.apply();
                        }}
                    }}
                }}
            }}
            if (meta.l3_hit == 1) {{
                hash(meta.hash_value, hdr.ethernet.src_addr, hdr.ethernet.dst_addr, meta.l4_src_port);
                meta.ecmp_offset = (bit<8>) meta.hash_value;
                if (meta.ecmp_group != 0) {{
                    ecmp_select.apply();
                }}
                nexthop.apply();
            }} else {{
                dmac_table.apply();
            }}
            if (meta.routed == 1) {{
                hdr.ethernet.src_addr = meta.rewrite_smac;
                hdr.ethernet.dst_addr = meta.rewrite_dmac;
                if (hdr.ipv4.isValid()) {{
                    hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
                }}
                if (hdr.ipv6.isValid()) {{
                    hdr.ipv6.hop_limit = hdr.ipv6.hop_limit - 1;
                }}
                tunnel_encap_table.apply();
            }}
            qos_classify.apply();
{qos_applies}
{pfc_applies}
{tunnel_applies}
{MULTICAST_APPLY}
{DTEL_APPLY}
        }}
    }}
}}
"""


def _egress(num_buffer_profiles: int, num_wred_classes: int) -> str:
    wred_decls, wred_applies = _wred_section(num_wred_classes)
    profile_decls = "\n".join(
        f"""
    table buffer_profile{b} {{
        key = {{
            meta.egress_port: exact;
            meta.qos_class: exact;
        }}
        actions = {{
            set_threshold;
            noop;
        }}
        default_action = noop();
        size = 64;
    }}"""
        for b in range(num_buffer_profiles)
    )

    def arm(b: int) -> str:
        body = f"""
            buffer_profile{b}.apply();"""
        if b == num_buffer_profiles - 1:
            return f"""
        if (meta.qos_color == {b}) {{{body}
        }}"""
        return f"""
        if (meta.qos_color == {b}) {{{body}
        }} else {{{arm(b + 1)}
        }}"""

    return f"""
control SwitchEgress(inout headers_t hdr, inout meta_t meta, inout intrinsic_t intr) {{
    action noop() {{
    }}
    action set_threshold(bit<16> threshold) {{
        meta.mirror_session = threshold;
    }}
    action checksum_fix() {{
        update_checksum(hdr.ipv4.hdr_checksum, hdr.ipv4.src_addr, hdr.ipv4.dst_addr, hdr.ipv4.ttl);
    }}
    action noop2() {{
    }}
    action wred_mark(bit<8> mark) {{
        meta.wred_drop = mark;
    }}
    action wred_drop_action() {{
        meta.wred_drop = 1;
        mark_to_drop();
    }}
{wred_decls}
{profile_decls}

    apply {{
{wred_applies}
{arm(0) if num_buffer_profiles else ""}
        if (hdr.ipv4.isValid()) {{
            checksum_fix();
        }}
    }}
}}
"""


def source(
    num_qos_classes: int = 36,
    num_port_groups: int = 26,
    num_buffer_profiles: int = 18,
    num_tunnel_types: int = 32,
    num_wred_classes: int = 34,
) -> str:
    return (
        HEADERS
        + PARSER
        + _ingress(num_qos_classes, num_port_groups, num_tunnel_types)
        + _egress(num_buffer_profiles, num_wred_classes)
        + "\nPipeline(SwitchParser(), SwitchIngress(), SwitchEgress()) main;\n"
    )
