"""Control-plane runtime: entries, P4Runtime-style semantics, fuzzer, traces."""

from repro.runtime.entries import (
    EntryError,
    ExactMatch,
    LpmMatch,
    Match,
    TableEntry,
    TernaryMatch,
    as_value_mask,
    match_covers,
    match_hits,
    validate_entry,
)
from repro.runtime.fuzzer import EntryFuzzer, ipv4_route_entries
from repro.runtime.semantics import (
    DEFAULT_OVERAPPROX_THRESHOLD,
    DELETE,
    INSERT,
    MODIFY,
    ControlPlaneState,
    TableAssignment,
    TableState,
    Update,
    ValueSetUpdate,
    encode_all,
    encode_table,
    encode_value_set,
    entry_match_term,
    match_term,
)
from repro.runtime.trace import (
    PACKET_ARRIVAL,
    POLICY_CHANGE,
    ROUTE_CHANGE,
    SOURCE_CHANGE,
    ClassStats,
    TraceEvent,
    control_plane_trace,
    generate_events,
    measure_classes,
)
