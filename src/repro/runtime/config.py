"""JSON control-plane configurations.

The on-disk format mirrors P4Runtime's table-entry structure::

    {
      "tables": {
        "Ingress.acl": [
          {"match": [{"ternary": ["0x0A000000", "0xFF000000"]}],
           "action": "deny", "args": [], "priority": 10},
          {"match": [{"exact": "0x0A000001"}],
           "action": "permit", "args": ["3"]}
        ],
        "Ingress.routes": [
          {"match": [{"lpm": ["10.0.0.0", 8]}], "action": "fwd", "args": [1]}
        ]
      },
      "value_sets": {"Prs.pvs": ["0x800", "0x86DD"]}
    }

Integers may be JSON numbers, hex strings, or dotted IPv4 quads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import FlayError, STAGE_RUNTIME
from repro.runtime.entries import ExactMatch, LpmMatch, TableEntry, TernaryMatch
from repro.runtime.semantics import INSERT, Update, ValueSetUpdate


class ConfigError(FlayError, ValueError):
    """Malformed configuration file."""

    default_stage = STAGE_RUNTIME


def parse_int(value) -> int:
    """Accept ints, hex/decimal strings, and dotted IPv4 quads."""
    if isinstance(value, bool):
        raise ConfigError(f"booleans are not numbers: {value!r}")
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        text = value.strip()
        if text.count(".") == 3:
            try:
                parts = [int(p) for p in text.split(".")]
            except ValueError as exc:
                raise ConfigError(f"bad IPv4 literal {value!r}") from exc
            if any(not 0 <= p <= 255 for p in parts):
                raise ConfigError(f"bad IPv4 literal {value!r}")
            return (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3]
        try:
            return int(text, 0)
        except ValueError as exc:
            raise ConfigError(f"bad integer literal {value!r}") from exc
    raise ConfigError(f"cannot parse {value!r} as an integer")


def _parse_match(spec) -> object:
    if not isinstance(spec, dict) or len(spec) != 1:
        raise ConfigError(f"match must be a single-key object, got {spec!r}")
    ((kind, payload),) = spec.items()
    if kind == "exact":
        return ExactMatch(parse_int(payload))
    if kind == "ternary":
        if not isinstance(payload, (list, tuple)) or len(payload) != 2:
            raise ConfigError("ternary match takes [value, mask]")
        return TernaryMatch(parse_int(payload[0]), parse_int(payload[1]))
    if kind == "lpm":
        if not isinstance(payload, (list, tuple)) or len(payload) != 2:
            raise ConfigError("lpm match takes [value, prefix_len]")
        return LpmMatch(parse_int(payload[0]), int(payload[1]))
    raise ConfigError(f"unknown match kind {kind!r}")


def _parse_entry(spec) -> TableEntry:
    if "action" not in spec:
        raise ConfigError(f"entry needs an action: {spec!r}")
    matches = tuple(_parse_match(m) for m in spec.get("match", []))
    args = tuple(parse_int(a) for a in spec.get("args", []))
    priority = int(spec.get("priority", 0))
    return TableEntry(matches, spec["action"], args, priority)


@dataclass
class Configuration:
    """A parsed control-plane configuration."""

    table_entries: dict = field(default_factory=dict)  # table → [TableEntry]
    value_sets: dict = field(default_factory=dict)  # pvs → tuple[int, ...]

    @property
    def entry_count(self) -> int:
        return sum(len(entries) for entries in self.table_entries.values())

    def updates(self) -> list:
        """The configuration as a flat update batch (INSERT order)."""
        updates: list = []
        for table, entries in self.table_entries.items():
            updates.extend(Update(table, INSERT, e) for e in entries)
        for name, values in self.value_sets.items():
            updates.append(ValueSetUpdate(name, tuple(values)))
        return updates


def loads(text: str) -> Configuration:
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"not valid JSON: {exc}") from exc
    if not isinstance(raw, dict):
        raise ConfigError("configuration must be a JSON object")
    config = Configuration()
    for table, entries in raw.get("tables", {}).items():
        if not isinstance(entries, list):
            raise ConfigError(f"entries for {table!r} must be a list")
        config.table_entries[table] = [_parse_entry(e) for e in entries]
    for name, values in raw.get("value_sets", {}).items():
        if not isinstance(values, list):
            raise ConfigError(f"value set {name!r} must be a list")
        config.value_sets[name] = tuple(parse_int(v) for v in values)
    unknown = set(raw) - {"tables", "value_sets"}
    if unknown:
        raise ConfigError(f"unknown configuration sections: {sorted(unknown)}")
    return config


def load(path: str) -> Configuration:
    try:
        with open(path) as handle:
            return loads(handle.read())
    except OSError as exc:
        raise ConfigError(f"cannot read configuration {path!r}: {exc}") from exc


def dumps(config: Configuration) -> str:
    """Serialize a configuration back to the JSON format."""
    raw: dict = {"tables": {}, "value_sets": {}}
    for table, entries in config.table_entries.items():
        out = []
        for entry in entries:
            matches = []
            for match in entry.matches:
                if isinstance(match, ExactMatch):
                    matches.append({"exact": hex(match.value)})
                elif isinstance(match, TernaryMatch):
                    matches.append({"ternary": [hex(match.value), hex(match.mask)]})
                else:
                    matches.append({"lpm": [hex(match.value), match.prefix_len]})
            out.append(
                {
                    "match": matches,
                    "action": entry.action,
                    "args": [hex(a) for a in entry.args],
                    "priority": entry.priority,
                }
            )
        raw["tables"][table] = out
    for name, values in config.value_sets.items():
        raw["value_sets"][name] = [hex(v) for v in values]
    return json.dumps(raw, indent=2)
