"""Control-plane table entries and match kinds (P4Runtime-style)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.analysis.model import TableInfo
from repro.errors import FlayError, STAGE_RUNTIME


class EntryError(FlayError, ValueError):
    """An entry is malformed or incompatible with its table."""

    default_stage = STAGE_RUNTIME


@dataclass(frozen=True)
class ExactMatch:
    value: int

    def key(self):
        return ("exact", self.value)


@dataclass(frozen=True)
class TernaryMatch:
    value: int
    mask: int

    def key(self):
        return ("ternary", self.value & self.mask, self.mask)

    def is_full_mask(self, width: int) -> bool:
        return self.mask == (1 << width) - 1

    def is_empty_mask(self) -> bool:
        return self.mask == 0


@dataclass(frozen=True)
class LpmMatch:
    value: int
    prefix_len: int

    def mask(self, width: int) -> int:
        if self.prefix_len == 0:
            return 0
        return ((1 << self.prefix_len) - 1) << (width - self.prefix_len)

    def key(self):
        return ("lpm", self.value, self.prefix_len)


Match = Union[ExactMatch, TernaryMatch, LpmMatch]


def as_value_mask(match: Match, width: int) -> tuple[int, int]:
    """View any match as a (value, mask) pair at the given key width."""
    full = (1 << width) - 1
    if isinstance(match, ExactMatch):
        return match.value & full, full
    if isinstance(match, TernaryMatch):
        return match.value & full, match.mask & full
    if isinstance(match, LpmMatch):
        mask = match.mask(width)
        return match.value & mask, mask
    raise EntryError(f"unknown match type {match!r}")


def match_covers(outer: Match, inner: Match, width: int) -> bool:
    """Does ``outer`` match every key ``inner`` matches?

    Used for the eclipse rule: a lower-priority entry fully covered by a
    higher-priority one can never fire and is omitted from the assignment
    set (§4.1 "Control-plane assignments").
    """
    outer_value, outer_mask = as_value_mask(outer, width)
    inner_value, inner_mask = as_value_mask(inner, width)
    if outer_mask & ~inner_mask:
        return False  # outer cares about a bit inner leaves free
    return (outer_value & outer_mask) == (inner_value & outer_mask)


def match_hits(match: Match, key_value: int, width: int) -> bool:
    """Concrete lookup: does ``key_value`` satisfy this match?"""
    value, mask = as_value_mask(match, width)
    return (key_value & mask) == (value & mask)


@dataclass(frozen=True)
class TableEntry:
    """One installed entry: match per key, the action to run, its data."""

    matches: tuple  # of Match, one per table key
    action: str
    args: tuple = ()  # action data, one int per action parameter
    priority: int = 0  # higher wins (ternary tables)

    def match_key(self):
        """The identity of this entry for insert/modify/delete purposes.

        P4Runtime keys entries by their match fields (and priority for
        ternary); the action is payload.
        """
        return (tuple(m.key() for m in self.matches), self.priority)


def validate_entry(info: TableInfo, entry: TableEntry) -> None:
    """Check an entry against the table's schema; raises :class:`EntryError`."""
    if len(entry.matches) != len(info.keys):
        raise EntryError(
            f"table {info.name} has {len(info.keys)} keys, "
            f"entry has {len(entry.matches)}"
        )
    for match, key in zip(entry.matches, info.keys):
        limit = 1 << key.width
        if isinstance(match, ExactMatch):
            if key.match_kind not in ("exact", "ternary", "lpm"):
                raise EntryError(f"exact match on {key.match_kind} key")
            if not 0 <= match.value < limit:
                raise EntryError(f"value {match.value:#x} out of range for {key.width} bits")
        elif isinstance(match, TernaryMatch):
            if key.match_kind != "ternary":
                raise EntryError(f"ternary match on {key.match_kind} key")
            if not 0 <= match.value < limit or not 0 <= match.mask < limit:
                raise EntryError("ternary value/mask out of range")
        elif isinstance(match, LpmMatch):
            if key.match_kind != "lpm":
                raise EntryError(f"lpm match on {key.match_kind} key")
            if not 0 <= match.prefix_len <= key.width:
                raise EntryError(f"prefix length {match.prefix_len} out of range")
            if not 0 <= match.value < limit:
                raise EntryError("lpm value out of range")
        else:
            raise EntryError(f"unknown match type {match!r}")
    if entry.action not in info.action_codes:
        raise EntryError(f"table {info.name} has no action {entry.action!r}")
    params = info.action_params.get(entry.action, [])
    if len(entry.args) != len(params):
        raise EntryError(
            f"action {entry.action!r} takes {len(params)} args, got {len(entry.args)}"
        )
    for value, param in zip(entry.args, params):
        if not 0 <= value < (1 << param.width):
            raise EntryError(
                f"arg {param.name}={value:#x} out of range for {param.width} bits"
            )
    needs_priority = any(
        isinstance(m, TernaryMatch) for m in entry.matches
    )
    if needs_priority and entry.priority < 0:
        raise EntryError("ternary entries need a non-negative priority")
