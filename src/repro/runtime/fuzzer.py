"""Control-plane configuration fuzzer (the paper's ControlPlaneSmith role).

Generates valid, unique table entries for any table in a data-plane model —
used by the burst experiments (§4.2: "We use a fuzzer to generate 1000
unique IPv4 entries") and by the property tests as a workload source.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

from repro.analysis.model import DataPlaneModel, TableInfo
from repro.runtime.entries import ExactMatch, LpmMatch, TableEntry, TernaryMatch
from repro.runtime.semantics import DELETE, INSERT, MODIFY, Update


class EntryFuzzer:
    """Seeded generator of valid entries for the tables of one model."""

    def __init__(self, model: DataPlaneModel, seed: int = 0) -> None:
        self.model = model
        self.rng = random.Random(seed)

    def entry(
        self,
        table: str,
        action: Optional[str] = None,
        priority: Optional[int] = None,
    ) -> TableEntry:
        """One random valid entry for ``table``."""
        info = self.model.table(table)
        matches = tuple(self._match(key.match_kind, key.width) for key in info.keys)
        if action is None:
            choices = info.action_order or [info.default_action]
            action = self.rng.choice(choices)
        params = info.action_params.get(action, [])
        args = tuple(self.rng.randrange(1 << p.width) for p in params)
        if priority is None:
            needs_priority = any(isinstance(m, TernaryMatch) for m in matches)
            priority = self.rng.randrange(1, 1 << 16) if needs_priority else 0
        return TableEntry(matches, action, args, priority)

    def unique_entries(
        self, table: str, count: int, action: Optional[str] = None
    ) -> list[TableEntry]:
        """``count`` entries with pairwise-distinct match keys."""
        seen: set = set()
        entries: list[TableEntry] = []
        attempts = 0
        while len(entries) < count:
            attempts += 1
            if attempts > count * 100:
                raise RuntimeError(
                    f"could not generate {count} unique entries for {table}"
                )
            entry = self.entry(table, action=action)
            key = entry.match_key()
            if key in seen:
                continue
            seen.add(key)
            entries.append(entry)
        return entries

    def representative_updates(
        self, table: str, per_action: int = 2
    ) -> list[Update]:
        """INSERT updates exercising *every* action of the table.

        This is the shape of a real deployment config: all of a table's
        actions appear in some entry, so the specializer keeps the table
        general (no action can be dead-code-eliminated away).
        """
        info = self.model.table(table)
        updates: list[Update] = []
        seen: set = set()
        actions = info.action_order or [info.default_action]
        for action in actions:
            produced = 0
            attempts = 0
            while produced < per_action:
                attempts += 1
                if attempts > per_action * 200:
                    raise RuntimeError(
                        f"could not generate entries for {table}/{action}"
                    )
                entry = self.entry(table, action=action)
                key = entry.match_key()
                if key in seen:
                    continue
                seen.add(key)
                updates.append(Update(info.name, INSERT, entry))
                produced += 1
        return updates

    def insert_burst(
        self, table: str, count: int, action: Optional[str] = None
    ) -> list[Update]:
        """A burst of unique INSERT updates, the §4.2 workload shape."""
        info = self.model.table(table)
        return [
            Update(info.name, INSERT, entry)
            for entry in self.unique_entries(table, count, action=action)
        ]

    def update_stream(
        self,
        tables: Optional[list[str]] = None,
        count: int = 50,
        modify_fraction: float = 0.2,
        delete_fraction: float = 0.2,
    ) -> list[Update]:
        """A mixed insert/modify/delete stream, valid against evolving state.

        Tracks the entries it has inserted per table so that every MODIFY
        and DELETE targets a live match key — the stream can be replayed
        against a fresh :class:`ControlPlaneState` without ``EntryError``.
        Used by the engine equivalence fuzz tests as a realistic workload.

        Liveness is tracked per *canonical* table: a table requested under
        both its local and qualified name used to get two independent live
        maps, so a skewed modify/delete mix could revisit a match key the
        other alias had already inserted (or deleted) and emit an invalid
        update.  Fractions are clamped to [0, 1] and normalized when their
        sum exceeds 1, so a skewed mix biases the stream instead of
        silently starving one operation kind.
        """
        if tables is not None:
            names: list[str] = []
            for requested in tables:
                canonical = self.model.table(requested).name
                if canonical not in names:
                    names.append(canonical)
        else:
            names = sorted(self.model.tables)
        if not names:
            return []
        modify_fraction = min(max(modify_fraction, 0.0), 1.0)
        delete_fraction = min(max(delete_fraction, 0.0), 1.0)
        total = modify_fraction + delete_fraction
        if total > 1.0:
            modify_fraction /= total
            delete_fraction /= total
        live: dict[str, dict] = {name: {} for name in names}
        updates: list[Update] = []
        while len(updates) < count:
            table = self.rng.choice(names)
            info = self.model.table(table)
            installed = live[table]
            roll = self.rng.random()
            if installed and roll < delete_fraction:
                key = self.rng.choice(sorted(installed))
                updates.append(Update(info.name, DELETE, installed.pop(key)))
            elif installed and roll < delete_fraction + modify_fraction:
                key = self.rng.choice(sorted(installed))
                old = installed[key]
                replacement = self.entry(table, priority=old.priority)
                replacement = TableEntry(
                    old.matches, replacement.action, replacement.args, old.priority
                )
                installed[key] = replacement
                updates.append(Update(info.name, MODIFY, replacement))
            else:
                entry = self.entry(table)
                key = entry.match_key()
                if key in installed:
                    continue
                installed[key] = entry
                updates.append(Update(info.name, INSERT, entry))
        return updates

    # -- match generators ----------------------------------------------------

    def _match(self, kind: str, width: int):
        if kind == "exact":
            return ExactMatch(self.rng.randrange(1 << width))
        if kind == "lpm":
            prefix_len = self.rng.randint(1, width)
            value = self.rng.randrange(1 << width)
            mask = ((1 << prefix_len) - 1) << (width - prefix_len)
            return LpmMatch(value & mask, prefix_len)
        if kind == "ternary":
            value = self.rng.randrange(1 << width)
            # Bias towards structured masks (prefix-like), like real ACLs.
            style = self.rng.random()
            if style < 0.4:
                mask = (1 << width) - 1  # exact-as-ternary
            elif style < 0.8:
                prefix_len = self.rng.randint(1, width)
                mask = ((1 << prefix_len) - 1) << (width - prefix_len)
            else:
                mask = self.rng.randrange(1 << width)
            return TernaryMatch(value & mask, mask)
        raise ValueError(f"unknown match kind {kind!r}")


def ipv4_route_entries(
    model: DataPlaneModel,
    table: str,
    count: int,
    action: str,
    seed: int = 0,
) -> Iterator[TableEntry]:
    """Realistic-looking unique IPv4 LPM routes (24-ish bit prefixes)."""
    rng = random.Random(seed)
    info = model.table(table)
    seen: set = set()
    produced = 0
    while produced < count:
        prefix_len = rng.choice([8, 16, 20, 22, 24, 24, 24, 28, 32])
        value = rng.randrange(1 << 32)
        mask = ((1 << prefix_len) - 1) << (32 - prefix_len)
        matches = []
        for key in info.keys:
            if key.match_kind == "lpm" and key.width == 32:
                matches.append(LpmMatch(value & mask, prefix_len))
            elif key.match_kind == "exact":
                matches.append(ExactMatch(rng.randrange(1 << key.width)))
            else:
                matches.append(TernaryMatch(0, 0))
        params = info.action_params.get(action, [])
        args = tuple(rng.randrange(1 << p.width) for p in params)
        entry = TableEntry(tuple(matches), action, args)
        key_id = entry.match_key()
        if key_id in seen:
            continue
        seen.add(key_id)
        produced += 1
        yield entry
