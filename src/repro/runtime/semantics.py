"""Control-plane semantics: entry stores + the entry→assignment encoder.

This is the right half of Flay's Fig. 4.  A :class:`ControlPlaneState`
holds the installed entries (P4Runtime insert/modify/delete semantics,
priority ordering, eclipse elision).  The encoder turns one table's entries
into *control-plane assignments*: terms, over the table's key symbols, that
are substituted for the table's control symbols (action selector, hit bit,
action parameters).

Past :data:`DEFAULT_OVERAPPROX_THRESHOLD` entries the encoder
*overapproximates* (§4.1): each control symbol is replaced by a fresh
unconstrained data-plane symbol — "assume the entries cover every action
and parameter" — which makes update processing O(1) in the entry count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analysis.model import DataPlaneModel, TableInfo, ValueSetInfo
from repro.runtime.entries import (
    EntryError,
    ExactMatch,
    LpmMatch,
    Match,
    TableEntry,
    TernaryMatch,
    as_value_mask,
    match_covers,
    validate_entry,
)
from repro.smt import terms as T
from repro.smt.terms import Term

DEFAULT_OVERAPPROX_THRESHOLD = 100

# Update operations (P4Runtime names).
INSERT = "insert"
MODIFY = "modify"
DELETE = "delete"


@dataclass(frozen=True)
class Update:
    """One control-plane update targeting a table."""

    table: str  # qualified or local table name
    op: str  # insert | modify | delete
    entry: TableEntry

    def describe(self) -> str:
        return f"{self.op} {self.table} {self.entry.action}{self.entry.args}"


@dataclass(frozen=True)
class ValueSetUpdate:
    """Reconfigure a parser value set to exactly ``values``."""

    value_set: str
    values: tuple


class TableState:
    """Installed entries of one table, keyed P4Runtime-style."""

    def __init__(self, info: TableInfo) -> None:
        self.info = info
        self._entries: dict[object, TableEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[TableEntry]:
        return list(self._entries.values())

    def apply(self, op: str, entry: TableEntry) -> None:
        validate_entry(self.info, entry)
        key = entry.match_key()
        if op == INSERT:
            if key in self._entries:
                raise EntryError(f"duplicate entry in {self.info.name}: {key}")
            self._entries[key] = entry
        elif op == MODIFY:
            if key not in self._entries:
                raise EntryError(f"no such entry in {self.info.name}: {key}")
            self._entries[key] = entry
        elif op == DELETE:
            if key not in self._entries:
                raise EntryError(f"no such entry in {self.info.name}: {key}")
            del self._entries[key]
        else:
            raise EntryError(f"unknown update op {op!r}")

    def clear(self) -> None:
        self._entries.clear()

    # -- ordering & eclipse ----------------------------------------------------

    def ordered_entries(self) -> list[TableEntry]:
        """Entries in match-precedence order (first match wins)."""
        entries = self.entries()
        if any(isinstance(m, TernaryMatch) for e in entries for m in e.matches):
            entries.sort(key=lambda e: -e.priority)
        elif any(isinstance(m, LpmMatch) for e in entries for m in e.matches):
            entries.sort(key=lambda e: -self._total_prefix(e))
        return entries

    @staticmethod
    def _total_prefix(entry: TableEntry) -> int:
        return sum(
            m.prefix_len for m in entry.matches if isinstance(m, LpmMatch)
        )

    def active_entries(self) -> list[TableEntry]:
        """Ordered entries with eclipsed (never-firing) entries elided."""
        ordered = self.ordered_entries()
        widths = self.info.key_widths()
        active: list[TableEntry] = []
        for entry in ordered:
            eclipsed = any(
                all(
                    match_covers(prev_m, m, w)
                    for prev_m, m, w in zip(prev.matches, entry.matches, widths)
                )
                for prev in active
            )
            if not eclipsed:
                active.append(entry)
        return active


class ControlPlaneState:
    """All tables' entries + value-set configurations for one program."""

    def __init__(self, model: DataPlaneModel) -> None:
        self.model = model
        self.tables: dict[str, TableState] = {
            name: TableState(info) for name, info in model.tables.items()
        }
        self.value_sets: dict[str, tuple] = {
            name: () for name in model.value_sets
        }
        self.update_count = 0

    def table_state(self, name: str) -> TableState:
        info = self.model.table(name)
        return self.tables[info.name]

    def apply_update(self, update: Update) -> TableInfo:
        state = self.table_state(update.table)
        state.apply(update.op, update.entry)
        self.update_count += 1
        return state.info

    def apply_value_set_update(self, update: ValueSetUpdate) -> ValueSetInfo:
        info = self.model.value_set(update.value_set)
        if len(update.values) > info.size:
            raise EntryError(
                f"value set {info.name} holds {info.size} values, "
                f"got {len(update.values)}"
            )
        self.value_sets[info.name] = tuple(update.values)
        self.update_count += 1
        return info


# ---------------------------------------------------------------------------
# Entry → assignment encoding
# ---------------------------------------------------------------------------


@dataclass
class TableAssignment:
    """The control-plane assignment for one table.

    ``mapping`` sends each of the table's control symbols to a term over
    the table's key symbols (data-plane).  ``overapproximated`` tables map
    their symbols to fresh unconstrained symbols instead.
    """

    table: str
    mapping: dict[Term, Term]
    entry_count: int
    overapproximated: bool


def match_term(match: Match, key: Term, width: int) -> Term:
    """The condition under which ``key`` satisfies ``match``."""
    value, mask = as_value_mask(match, width)
    full = (1 << width) - 1
    if mask == full:
        return T.eq(key, T.bv_const(value, width))
    if mask == 0:
        return T.TRUE
    return T.eq(
        T.bv_and(key, T.bv_const(mask, width)),
        T.bv_const(value & mask, width),
    )


def entry_match_term(info: TableInfo, entry: TableEntry) -> Term:
    conds = [
        match_term(match, key.term, key.width)
        for match, key in zip(entry.matches, info.keys)
    ]
    return T.bool_and(*conds)


def encode_table(
    info: TableInfo,
    state: TableState,
    threshold: Optional[int] = DEFAULT_OVERAPPROX_THRESHOLD,
) -> TableAssignment:
    """Build the control-plane assignment for ``info`` from its entries."""
    if threshold is not None and len(state) > threshold:
        # Past the threshold we never look at individual entries again —
        # that's what makes overapproximated update processing O(1).
        return _overapproximate(info, len(state))
    entries = state.active_entries()

    sel_width = TableInfo.SELECTOR_WIDTH
    default_code = info.action_codes.get(info.default_action, 0)
    matches = [(entry, entry_match_term(info, entry)) for entry in entries]

    # Action selector: first matching entry's action, else the default.
    selector: Term = T.bv_const(default_code, sel_width)
    for entry, cond in reversed(matches):
        code = info.action_codes[entry.action]
        selector = T.ite(cond, T.bv_const(code, sel_width), selector)

    # Hit bit: 1 iff any entry matches.
    if matches:
        any_match = T.bool_or(*[cond for _, cond in matches])
        hit: Term = T.ite(any_match, T.bv_const(1, 1), T.bv_const(0, 1))
    else:
        hit = T.bv_const(0, 1)

    mapping: dict[Term, Term] = {
        info.selector_var: selector,
        info.hit_var: hit,
    }

    # Per-action parameters: the winning matching entry's action data.
    for action_name, params in info.action_params.items():
        relevant = [
            (entry, cond) for entry, cond in matches if entry.action == action_name
        ]
        for index, param in enumerate(params):
            if action_name == info.default_action and index < len(info.default_args):
                fallback_value = info.default_args[index] or 0
            else:
                fallback_value = 0
            value: Term = T.bv_const(fallback_value, param.width)
            for entry, cond in reversed(relevant):
                value = T.ite(cond, T.bv_const(entry.args[index], param.width), value)
            mapping[param.var] = value

    return TableAssignment(
        table=info.name,
        mapping=mapping,
        entry_count=len(state),
        overapproximated=False,
    )


def _overapproximate(info: TableInfo, entry_count: int) -> TableAssignment:
    """Map every control symbol of the table to `*any*` (a fresh symbol)."""
    mapping: dict[Term, Term] = {
        info.selector_var: T.fresh_data_var(f"{info.name}.action!any", TableInfo.SELECTOR_WIDTH),
        info.hit_var: T.fresh_data_var(f"{info.name}.hit!any", 1),
    }
    for params in info.action_params.values():
        for param in params:
            mapping[param.var] = T.fresh_data_var(f"{param.var.name}!any", param.width)
    return TableAssignment(
        table=info.name,
        mapping=mapping,
        entry_count=entry_count,
        overapproximated=True,
    )


def encode_value_set(info: ValueSetInfo, values: Iterable[int]) -> dict[Term, Term]:
    """Assignment for a parser value set: fill slots, mark the rest invalid."""
    values = list(values)
    if len(values) > info.size:
        raise EntryError(f"too many values for value set {info.name}")
    mapping: dict[Term, Term] = {}
    for i in range(info.size):
        if i < len(values):
            mapping[info.valid_vars[i]] = T.bv_const(1, 1)
            mapping[info.value_vars[i]] = T.bv_const(values[i], info.width)
        else:
            mapping[info.valid_vars[i]] = T.bv_const(0, 1)
            mapping[info.value_vars[i]] = T.bv_const(0, info.width)
    return mapping


def encode_all(
    model: DataPlaneModel,
    state: ControlPlaneState,
    threshold: Optional[int] = DEFAULT_OVERAPPROX_THRESHOLD,
) -> dict[Term, Term]:
    """Full substitution map for every table and value set in the program."""
    mapping: dict[Term, Term] = {}
    for name, info in model.tables.items():
        assignment = encode_table(info, state.tables[name], threshold)
        mapping.update(assignment.mapping)
    for name, info in model.value_sets.items():
        mapping.update(encode_value_set(info, state.value_sets[name]))
    return mapping
