"""Control-plane semantics: entry stores + the entry→assignment encoder.

This is the right half of Flay's Fig. 4.  A :class:`ControlPlaneState`
holds the installed entries (P4Runtime insert/modify/delete semantics,
priority ordering, eclipse elision).  The encoder turns one table's entries
into *control-plane assignments*: terms, over the table's key symbols, that
are substituted for the table's control symbols (action selector, hit bit,
action parameters).

Past :data:`DEFAULT_OVERAPPROX_THRESHOLD` entries the encoder
*overapproximates* (§4.1): each control symbol is replaced by a fresh
unconstrained data-plane symbol — "assume the entries cover every action
and parameter" — which makes update processing O(1) in the entry count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analysis.model import DataPlaneModel, TableInfo, ValueSetInfo
from repro.ir.metrics import CacheCounter
from repro.runtime.entries import (
    EntryError,
    ExactMatch,
    LpmMatch,
    Match,
    TableEntry,
    TernaryMatch,
    as_value_mask,
    match_covers,
    validate_entry,
)
from repro.smt import terms as T
from repro.smt.terms import Term

DEFAULT_OVERAPPROX_THRESHOLD = 100

# Update operations (P4Runtime names).
INSERT = "insert"
MODIFY = "modify"
DELETE = "delete"


@dataclass(frozen=True)
class Update:
    """One control-plane update targeting a table."""

    table: str  # qualified or local table name
    op: str  # insert | modify | delete
    entry: TableEntry

    def describe(self) -> str:
        return f"{self.op} {self.table} {self.entry.action}{self.entry.args}"


@dataclass(frozen=True)
class ValueSetUpdate:
    """Reconfigure a parser value set to exactly ``values``."""

    value_set: str
    values: tuple


class TableState:
    """Installed entries of one table, keyed P4Runtime-style.

    The eclipse-elided active list is cached and maintained *incrementally*:
    an INSERT splices the new entry into the cached list (a bisect on the
    precedence key plus one coverage sweep, O(n)) instead of recomputing the
    O(n²) elision from scratch — the dominant cost of precise update
    processing on large tables.  Deletes of active entries and match-mode
    changes fall back to a full lazy recompute; everything else keeps the
    cache.  The splice is exact because :func:`match_covers` is transitive
    per field: when the new entry evicts a previously-active entry, every
    entry that old eclipser was hiding is hidden by the new entry too.
    """

    def __init__(self, info: TableInfo, counter: Optional[CacheCounter] = None) -> None:
        self.info = info
        self.counter = counter if counter is not None else CacheCounter("active-entries")
        self._entries: dict[object, TableEntry] = {}
        # Cached eclipse-elided active list (None = needs full recompute)
        # and the per-mode entry counts that decide the precedence order.
        self._active: Optional[list[TableEntry]] = []
        self._n_ternary = 0
        self._n_lpm = 0
        # Optional match-space decision diagram (smt/fdd.py), attached by
        # the verdict gate and maintained through :meth:`apply`/:meth:`clear`.
        self.fdd = None
        # Monotone content revision: bumped by every successful apply()
        # and clear().  Structural caches (the table-verdict memo, the
        # gate's lazy-harvest retry signature) key on it to observe
        # content changes without hashing entries per query.
        self._revision = 0
        self._digest_revision = -1
        self._digest: tuple = ()

    def __len__(self) -> int:
        return len(self._entries)

    def revision(self) -> int:
        return self._revision

    def structural_digest(self) -> tuple:
        """The active-entry tuple, memoized per revision.

        This is the structural identity the table-verdict memo keys on:
        two states with equal digests produce identical selector/hit
        encodings and identical const-param analyses (both are functions
        of the eclipse-elided active list alone).
        """
        if self._digest_revision != self._revision:
            self._digest = tuple(self.active_entries())
            self._digest_revision = self._revision
        return self._digest

    def entries(self) -> list[TableEntry]:
        return list(self._entries.values())

    def apply(self, op: str, entry: TableEntry) -> None:
        self._apply_op(op, entry)
        self._revision += 1
        fdd = self.fdd
        if fdd is None:
            return
        # Maintain the diagram incrementally: an insert into key space the
        # diagram currently maps to MISS is a single exact overwrite (the
        # disjoint-update common case); everything else defers to a lazy
        # rebuild from the active list on the next gate consultation.
        if op == INSERT:
            cubes = fdd.entry_cubes(entry)
            if cubes is None or not fdd.fast_insert(
                cubes, fdd.leaf(entry.action, entry.args)
            ):
                fdd.mark_dirty()
        else:
            fdd.mark_dirty()

    def _apply_op(self, op: str, entry: TableEntry) -> None:
        validate_entry(self.info, entry)
        key = entry.match_key()
        if op == INSERT:
            if key in self._entries:
                raise EntryError(f"duplicate entry in {self.info.name}: {key}")
            mode_before = self._mode()
            self._entries[key] = entry
            self._count_entry(entry, +1)
            if self._active is None:
                return
            if self._mode() != mode_before:
                # Precedence order of *existing* entries changed.
                self._invalidate_active()
            else:
                self._splice_insert(entry)
        elif op == MODIFY:
            old = self._entries.get(key)
            if old is None:
                raise EntryError(f"no such entry in {self.info.name}: {key}")
            self._entries[key] = entry
            # Same match key → same matches and priority → the eclipse
            # structure is untouched; swap the entry in place if active.
            if self._active is not None:
                for i, existing in enumerate(self._active):
                    if existing is old:
                        self._active[i] = entry
                        break
        elif op == DELETE:
            old = self._entries.get(key)
            if old is None:
                raise EntryError(f"no such entry in {self.info.name}: {key}")
            mode_before = self._mode()
            del self._entries[key]
            self._count_entry(old, -1)
            if self._active is None:
                return
            if self._mode() != mode_before or any(
                existing is old for existing in self._active
            ):
                # An active entry may have been hiding others; recompute.
                self._invalidate_active()
            # Deleting an eclipsed entry cannot un-eclipse anything.
        else:
            raise EntryError(f"unknown update op {op!r}")

    def clear(self) -> None:
        self._entries.clear()
        self._active = []
        self._n_ternary = 0
        self._n_lpm = 0
        self._revision += 1
        if self.fdd is not None:
            self.fdd.reset()

    # -- ordering & eclipse ----------------------------------------------------

    def _count_entry(self, entry: TableEntry, delta: int) -> None:
        if any(isinstance(m, TernaryMatch) for m in entry.matches):
            self._n_ternary += delta
        if any(isinstance(m, LpmMatch) for m in entry.matches):
            self._n_lpm += delta

    def _mode(self) -> str:
        if self._n_ternary:
            return "ternary"
        if self._n_lpm:
            return "lpm"
        return "exact"

    def _invalidate_active(self) -> None:
        if self._active is not None:
            self._active = None
            self.counter.invalidate()

    def ordered_entries(self) -> list[TableEntry]:
        """Entries in match-precedence order (first match wins)."""
        entries = self.entries()
        mode = self._mode()
        if mode == "ternary":
            entries.sort(key=lambda e: -e.priority)
        elif mode == "lpm":
            entries.sort(key=lambda e: -self._total_prefix(e))
        return entries

    @staticmethod
    def _total_prefix(entry: TableEntry) -> int:
        return sum(
            m.prefix_len for m in entry.matches if isinstance(m, LpmMatch)
        )

    def _covers(self, outer: TableEntry, inner: TableEntry, widths) -> bool:
        return all(
            match_covers(om, im, w)
            for om, im, w in zip(outer.matches, inner.matches, widths)
        )

    def _splice_insert(self, entry: TableEntry) -> None:
        """Maintain the cached active list across one INSERT, in O(n).

        The freshly-inserted entry sorts *after* every existing entry with
        an equal precedence key (the sort is stable and dict insertion
        order puts new keys last), so its position among the actives is the
        first index with a strictly lower-precedence key.
        """
        active = self._active
        assert active is not None
        mode = self._mode()
        if mode == "ternary":
            sort_key = lambda e: -e.priority  # noqa: E731
        elif mode == "lpm":
            sort_key = lambda e: -self._total_prefix(e)  # noqa: E731
        else:
            sort_key = lambda e: 0  # noqa: E731  (insertion order)
        new_key = sort_key(entry)
        pos = len(active)
        for i, existing in enumerate(active):
            if sort_key(existing) > new_key:
                pos = i
                break
        widths = self.info.key_widths()
        if any(self._covers(prev, entry, widths) for prev in active[:pos]):
            return  # the new entry is born eclipsed
        survivors = [e for e in active[pos:] if not self._covers(entry, e, widths)]
        self._active = active[:pos] + [entry] + survivors

    def active_entries(self) -> list[TableEntry]:
        """Ordered entries with eclipsed (never-firing) entries elided."""
        if self._active is not None:
            self.counter.hit()
            return list(self._active)
        self.counter.miss()
        ordered = self.ordered_entries()
        widths = self.info.key_widths()
        active: list[TableEntry] = []
        for entry in ordered:
            eclipsed = any(
                self._covers(prev, entry, widths) for prev in active
            )
            if not eclipsed:
                active.append(entry)
        self._active = active
        return list(active)


class ControlPlaneState:
    """All tables' entries + value-set configurations for one program."""

    def __init__(self, model: DataPlaneModel) -> None:
        self.model = model
        self.active_counter = CacheCounter("active-entries")
        self.tables: dict[str, TableState] = {
            name: TableState(info, counter=self.active_counter)
            for name, info in model.tables.items()
        }
        self.value_sets: dict[str, tuple] = {
            name: () for name in model.value_sets
        }
        self.update_count = 0

    def table_state(self, name: str) -> TableState:
        info = self.model.table(name)
        return self.tables[info.name]

    def apply_update(self, update: Update) -> TableInfo:
        state = self.table_state(update.table)
        state.apply(update.op, update.entry)
        self.update_count += 1
        return state.info

    def apply_value_set_update(self, update: ValueSetUpdate) -> ValueSetInfo:
        info = self.model.value_set(update.value_set)
        if len(update.values) > info.size:
            raise EntryError(
                f"value set {info.name} holds {info.size} values, "
                f"got {len(update.values)}"
            )
        self.value_sets[info.name] = tuple(update.values)
        self.update_count += 1
        return info


# ---------------------------------------------------------------------------
# Entry → assignment encoding
# ---------------------------------------------------------------------------


@dataclass
class TableAssignment:
    """The control-plane assignment for one table.

    ``mapping`` sends each of the table's control symbols to a term over
    the table's key symbols (data-plane).  ``overapproximated`` tables map
    their symbols to fresh unconstrained symbols instead.
    """

    table: str
    mapping: dict[Term, Term]
    entry_count: int
    overapproximated: bool


def match_term(match: Match, key: Term, width: int) -> Term:
    """The condition under which ``key`` satisfies ``match``."""
    value, mask = as_value_mask(match, width)
    full = (1 << width) - 1
    if mask == full:
        return T.eq(key, T.bv_const(value, width))
    if mask == 0:
        return T.TRUE
    return T.eq(
        T.bv_and(key, T.bv_const(mask, width)),
        T.bv_const(value & mask, width),
    )


def entry_match_term(info: TableInfo, entry: TableEntry) -> Term:
    conds = [
        match_term(match, key.term, key.width)
        for match, key in zip(entry.matches, info.keys)
    ]
    return T.bool_and(*conds)


def encode_table(
    info: TableInfo,
    state: TableState,
    threshold: Optional[int] = DEFAULT_OVERAPPROX_THRESHOLD,
) -> TableAssignment:
    """Build the control-plane assignment for ``info`` from its entries."""
    if threshold is not None and len(state) > threshold:
        # Past the threshold we never look at individual entries again —
        # that's what makes overapproximated update processing O(1).
        return _overapproximate(info, len(state))
    entries = state.active_entries()

    sel_width = TableInfo.SELECTOR_WIDTH
    default_code = info.action_codes.get(info.default_action, 0)
    matches = [(entry, entry_match_term(info, entry)) for entry in entries]

    # Action selector: first matching entry's action, else the default.
    selector: Term = T.bv_const(default_code, sel_width)
    for entry, cond in reversed(matches):
        code = info.action_codes[entry.action]
        selector = T.ite(cond, T.bv_const(code, sel_width), selector)

    # Hit bit: 1 iff any entry matches.
    if matches:
        any_match = T.bool_or(*[cond for _, cond in matches])
        hit: Term = T.ite(any_match, T.bv_const(1, 1), T.bv_const(0, 1))
    else:
        hit = T.bv_const(0, 1)

    mapping: dict[Term, Term] = {
        info.selector_var: selector,
        info.hit_var: hit,
    }

    # Per-action parameters: the winning matching entry's action data.
    for action_name, params in info.action_params.items():
        relevant = [
            (entry, cond) for entry, cond in matches if entry.action == action_name
        ]
        for index, param in enumerate(params):
            if action_name == info.default_action and index < len(info.default_args):
                fallback_value = info.default_args[index] or 0
            else:
                fallback_value = 0
            value: Term = T.bv_const(fallback_value, param.width)
            for entry, cond in reversed(relevant):
                value = T.ite(cond, T.bv_const(entry.args[index], param.width), value)
            mapping[param.var] = value

    return TableAssignment(
        table=info.name,
        mapping=mapping,
        entry_count=len(state),
        overapproximated=False,
    )


def _overapproximate(info: TableInfo, entry_count: int) -> TableAssignment:
    """Map every control symbol of the table to `*any*` (an unconstrained symbol).

    The `*any*` symbols are *stable* — deterministic names, not fresh ones.
    An unconstrained symbol's only meaning is "anything", so reuse is
    semantically free, and it makes re-encoding an overapproximated table a
    hash-consed no-op: the incremental pipeline sees the identical
    assignment and invalidates nothing (overapproximated updates are O(1)
    end to end, not just at encode time).
    """
    mapping: dict[Term, Term] = {
        info.selector_var: T.data_var(f"{info.name}.action!any", TableInfo.SELECTOR_WIDTH),
        info.hit_var: T.data_var(f"{info.name}.hit!any", 1),
    }
    for params in info.action_params.values():
        for param in params:
            mapping[param.var] = T.data_var(f"{param.var.name}!any", param.width)
    return TableAssignment(
        table=info.name,
        mapping=mapping,
        entry_count=entry_count,
        overapproximated=True,
    )


def encode_value_set(info: ValueSetInfo, values: Iterable[int]) -> dict[Term, Term]:
    """Assignment for a parser value set: fill slots, mark the rest invalid."""
    values = list(values)
    if len(values) > info.size:
        raise EntryError(f"too many values for value set {info.name}")
    mapping: dict[Term, Term] = {}
    for i in range(info.size):
        if i < len(values):
            mapping[info.valid_vars[i]] = T.bv_const(1, 1)
            mapping[info.value_vars[i]] = T.bv_const(values[i], info.width)
        else:
            mapping[info.valid_vars[i]] = T.bv_const(0, 1)
            mapping[info.value_vars[i]] = T.bv_const(0, info.width)
    return mapping


def encode_all(
    model: DataPlaneModel,
    state: ControlPlaneState,
    threshold: Optional[int] = DEFAULT_OVERAPPROX_THRESHOLD,
) -> dict[Term, Term]:
    """Full substitution map for every table and value set in the program."""
    mapping: dict[Term, Term] = {}
    for name, info in model.tables.items():
        assignment = encode_table(info, state.tables[name], threshold)
        mapping.update(assignment.mapping)
    for name, info in model.value_sets.items():
        mapping.update(encode_value_set(info, state.value_sets[name]))
    return mapping
