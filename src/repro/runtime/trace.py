"""Synthetic input-change traces for the Fig. 1 experiment.

Fig. 1 of the paper is qualitative: the inputs to a network program change
at rates spanning ~15 orders of magnitude — program source (days/weeks),
control-plane policy (hours/days), routes/NAT/firewall state (seconds,
bursty), and packets (nanoseconds).  This module generates event traces
with those characteristics so the Fig. 1 bench can *measure* the spread
(mean inter-arrival per class, burstiness) instead of just asserting it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator


def _rng(seed: int, *scope: object) -> random.Random:
    """A seeded generator whose stream is stable across runs and platforms.

    Seeding with ``(seed, kind).__hash__()`` — the historical scheme —
    leaks Python's per-process string-hash randomization into the trace:
    the same seed produced *different* traces between interpreter runs
    unless ``PYTHONHASHSEED`` happened to be pinned.  Fleet replay
    correctness (same trace on every switch, every run, every machine)
    needs real determinism, so scope the seed with a string instead:
    ``random.Random`` hashes ``str`` seeds with SHA-512, which is
    platform- and process-independent.
    """
    return random.Random(":".join(str(part) for part in (seed, *scope)))

# Canonical input classes, ordered from slowest- to fastest-changing.
SOURCE_CHANGE = "data-plane-source"
POLICY_CHANGE = "control-plane-policy"
ROUTE_CHANGE = "routing-nat-firewall"
PACKET_ARRIVAL = "packets"

#: Mean inter-arrival time in seconds per class (order-of-magnitude
#: figures consistent with the paper's Fig. 1 axis).
DEFAULT_MEAN_INTERVALS = {
    SOURCE_CHANGE: 7 * 24 * 3600.0,  # days–weeks
    POLICY_CHANGE: 24 * 3600.0,  # ~daily
    ROUTE_CHANGE: 5.0,  # seconds, and bursty
    PACKET_ARRIVAL: 100e-9,  # ~100 ns at 10M pps
}


@dataclass(frozen=True)
class TraceEvent:
    time: float  # seconds since trace start
    kind: str
    burst_id: int = 0


@dataclass
class ClassStats:
    kind: str
    count: int
    mean_interval: float
    cv_interval: float  # coefficient of variation; >1 indicates bursts

    @property
    def rate_hz(self) -> float:
        return 1.0 / self.mean_interval if self.mean_interval else math.inf


def generate_events(
    kind: str,
    duration: float,
    mean_interval: float,
    burst_size: int = 1,
    burst_spread: float = 0.0,
    seed: int = 0,
) -> Iterator[TraceEvent]:
    """Poisson arrivals; each arrival optionally fans into a burst.

    Routing-table updates arrive in bursts of hundreds of rules within a
    few seconds (§1, citing SWIFT/B4) — model that with ``burst_size`` > 1
    and a small ``burst_spread``.
    """
    rng = _rng(seed, kind)
    now = 0.0
    burst_id = 0
    while True:
        now += rng.expovariate(1.0 / mean_interval)
        if now >= duration:
            return
        burst_id += 1
        yield TraceEvent(now, kind, burst_id)
        for _ in range(burst_size - 1):
            offset = rng.uniform(0, burst_spread) if burst_spread else 0.0
            if now + offset < duration:
                yield TraceEvent(now + offset, kind, burst_id)


def control_plane_trace(
    duration: float = 3600.0,
    route_burst_size: int = 200,
    seed: int = 0,
) -> list[TraceEvent]:
    """One hour of mixed control-plane activity (no packets)."""
    events: list[TraceEvent] = []
    events.extend(
        generate_events(
            POLICY_CHANGE, duration, DEFAULT_MEAN_INTERVALS[POLICY_CHANGE], seed=seed
        )
    )
    events.extend(
        generate_events(
            ROUTE_CHANGE,
            duration,
            60.0,  # one routing event per minute on average...
            burst_size=route_burst_size,  # ...each a burst of rules
            burst_spread=2.0,
            seed=seed,
        )
    )
    events.sort(key=lambda e: e.time)
    return events


@dataclass(frozen=True)
class FleetEvent:
    """One switch's share of a (possibly network-wide) churn burst."""

    time: float  # seconds since trace start, at this switch
    switch: int
    kind: str
    burst_id: int
    #: Switches the burst reached, in arrival order (origin first).  The
    #: same tuple is carried by every member event of one burst, so a
    #: consumer can recover the correlation structure without a join.
    members: tuple = ()


def fleet_trace(
    switches: int,
    duration: float = 600.0,
    mean_interval: float = 60.0,
    correlation: float = 0.7,
    propagation_spread: float = 2.0,
    kind: str = ROUTE_CHANGE,
    seed: int = 0,
) -> list[FleetEvent]:
    """Cross-switch correlated churn: one BGP-style burst, many switches.

    The paper's fleet premise is that control-plane churn is *correlated*
    across a network: a route flap does not update one switch, it sweeps
    through every switch whose RIB carries the prefix.  Bursts arrive as a
    Poisson process (``mean_interval``); each burst originates at one
    switch and reaches every other switch independently with probability
    ``correlation``, delayed by a small propagation jitter (uniform in
    ``[0, propagation_spread]``) — ``correlation=0`` degenerates to
    independent per-switch churn, ``correlation=1`` to lockstep fleet-wide
    recompile storms.

    Deterministic: the same arguments produce the same trace on every
    run and platform (see :func:`_rng`).  Events are returned sorted by
    ``(time, switch)``.
    """
    if switches <= 0:
        raise ValueError("fleet_trace needs at least one switch")
    if not 0.0 <= correlation <= 1.0:
        raise ValueError(f"correlation must be in [0, 1], got {correlation}")
    rng = _rng(seed, "fleet", kind, switches)
    events: list[FleetEvent] = []
    now = 0.0
    burst_id = 0
    while True:
        now += rng.expovariate(1.0 / mean_interval)
        if now >= duration:
            break
        burst_id += 1
        origin = rng.randrange(switches)
        arrivals: list[tuple[float, int]] = [(now, origin)]
        for switch in range(switches):
            if switch == origin:
                continue
            if rng.random() < correlation:
                delay = rng.uniform(0.0, propagation_spread)
                if now + delay < duration:
                    arrivals.append((now + delay, switch))
        arrivals.sort()
        members = tuple(switch for _, switch in arrivals)
        for time_at, switch in arrivals:
            events.append(FleetEvent(time_at, switch, kind, burst_id, members))
    events.sort(key=lambda e: (e.time, e.switch))
    return events


def measure_classes(
    duration: float = 3600.0, seed: int = 0, packet_sample: int = 10_000
) -> list[ClassStats]:
    """Per-class rate statistics over a synthetic trace (the Fig. 1 rows).

    Packets are sampled (simulating a full hour of ns-scale arrivals is
    pointless); the other classes are generated in full.
    """
    stats: list[ClassStats] = []
    specs = [
        (SOURCE_CHANGE, 90 * 24 * 3600.0, 1, 0.0, None),
        (POLICY_CHANGE, 30 * 24 * 3600.0, 1, 0.0, None),
        (ROUTE_CHANGE, duration, 200, 2.0, None),
        (PACKET_ARRIVAL, None, 1, 0.0, packet_sample),
    ]
    for kind, span, burst, spread, sample in specs:
        mean = DEFAULT_MEAN_INTERVALS[kind]
        if sample is not None:
            # Sample `sample` packet inter-arrivals directly.
            rng = _rng(seed, kind)
            intervals = [rng.expovariate(1.0 / mean) for _ in range(sample)]
        else:
            events = list(
                generate_events(
                    kind,
                    span,
                    60.0 if kind == ROUTE_CHANGE else mean,
                    burst_size=burst,
                    burst_spread=spread,
                    seed=seed,
                )
            )
            events.sort(key=lambda e: e.time)
            times = [e.time for e in events]
            intervals = [b - a for a, b in zip(times, times[1:])]
        if not intervals:
            continue
        n = len(intervals)
        mean_iv = sum(intervals) / n
        var = sum((x - mean_iv) ** 2 for x in intervals) / n
        cv = math.sqrt(var) / mean_iv if mean_iv else 0.0
        stats.append(ClassStats(kind, n + 1, mean_iv, cv))
    return stats
