"""Symbolic expression engine — the reproduction's stand-in for Z3.

Public surface:

* :mod:`repro.smt.terms` — hash-consed bitvector/boolean terms with the
  paper's two symbol kinds (data-plane ``@x@``, control-plane ``|x|``),
* :mod:`repro.smt.simplify` — constant folding / CSE / strength reduction,
* :mod:`repro.smt.substitute` — the e-matching-style substitution engine,
* :mod:`repro.smt.interval` — interval abstract domain for fast pre-checks,
* :mod:`repro.smt.cnf` / :mod:`repro.smt.sat` — bit-blasting and
  incremental CDCL (assumptions, clause learning, restarts),
* :mod:`repro.smt.session` — persistent assumption-probing solver session,
* :mod:`repro.smt.solver` — the layered QF_BV decision facade,
* :mod:`repro.smt.arena` — flat-array term/clause arenas (picklable
  transport for the process-pool batch executor, and the storage behind
  the CDCL core's clause database).
"""

from repro.smt.arena import ClauseArena, TermArena
from repro.smt.sat import SatStats, SolverBudgetExceeded
from repro.smt.session import SolverSession
from repro.smt.simplify import simplify
from repro.smt.solver import SatResult, Solver, SolverStats
from repro.smt.substitute import (
    DeltaSubstitution,
    Substitution,
    substitute,
    substitute_names,
    variable_dependencies,
)
from repro.smt.terms import (
    FALSE,
    TRUE,
    Term,
    TermFactory,
    add,
    bool_and,
    bool_const,
    bool_not,
    bool_or,
    bool_var,
    bv_and,
    bv_const,
    bv_not,
    bv_or,
    bv_xor,
    concat,
    control_var,
    control_variables,
    data_var,
    data_variables,
    eq,
    evaluate,
    extract,
    fresh_data_var,
    implies,
    ite,
    lshr,
    mul,
    ne,
    neg,
    shl,
    sub,
    to_string,
    ule,
    ult,
    variables,
)
