"""Flat-array arenas for terms and CNF clauses.

The object-graph kernels (:mod:`repro.smt.terms`, :mod:`repro.smt.sat`)
are pointer-chasing Python structures: fast enough under the warm-path
caches, but impossible to ship across a process boundary (``Term``
deliberately refuses to pickle — its identity *is* its cache key) and
unfriendly to the CPU cache.  This module provides the array-native
mirror of both:

* :class:`TermArena` — hash-consed terms stored as parallel arrays
  (op code, width, child indices, payload) with index-based interning.
  A node index plays the role a ``Term`` object plays elsewhere:
  structural equality is index equality.  ``encode``/``decode`` convert
  between the two worlds; decoding re-interns through the (immortal)
  default factory, so every identity invariant the caches rely on is
  re-established on the way back in.  The arena itself is picklable —
  it carries no ``Term`` references across the wire — which is what
  lets the process-pool batch executor ship Term-valued results home.
  Array-native ``substitute``/``simplify`` walkers mirror the
  object-graph passes rule for rule, so arena-resident pipelines never
  have to materialize objects mid-flight.

* :class:`ClauseArena` — CNF clauses as one flat literal buffer plus
  per-clause offset/length/flag arrays.  The CDCL core keeps watch
  lists as lists of integer clause references into this arena, so
  propagation walks contiguous ``array('i')`` slices instead of
  ``Clause`` objects, and a solver snapshot is a handful of arrays —
  cheap to copy for :meth:`fork` and trivially picklable.

Determinism note: indices are assigned in first-intern order, so two
runs that build the same terms in the same order get the same arena
byte-for-byte.  The batch scheduler only ever encodes inside one
conflict group (deterministic work list) and decodes in anchor order,
so process-pool results are byte-identical to the in-process path.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Optional

from repro.smt import terms as T
from repro.smt.terms import Term

# ---------------------------------------------------------------------------
# Op codes: small ints mirroring the OP_* string tags, in a fixed order
# (the order is part of the pickle format — append only).
# ---------------------------------------------------------------------------

_OPS = (
    T.OP_BVCONST, T.OP_BOOLCONST, T.OP_DATA_VAR, T.OP_CONTROL_VAR,
    T.OP_BOOLVAR,
    T.OP_ADD, T.OP_SUB, T.OP_MUL, T.OP_AND, T.OP_OR, T.OP_XOR,
    T.OP_NOT, T.OP_NEG, T.OP_SHL, T.OP_LSHR, T.OP_CONCAT, T.OP_EXTRACT,
    T.OP_ITE, T.OP_EQ, T.OP_ULT, T.OP_ULE, T.OP_BAND, T.OP_BOR, T.OP_BNOT,
)
OP_CODE = {op: code for code, op in enumerate(_OPS)}
OP_NAME = {code: op for code, op in enumerate(_OPS)}

(
    _BVCONST, _BOOLCONST, _DATA_VAR, _CONTROL_VAR, _BOOLVAR,
    _ADD, _SUB, _MUL, _AND, _OR, _XOR,
    _NOT, _NEG, _SHL, _LSHR, _CONCAT, _EXTRACT,
    _ITE, _EQ, _ULT, _ULE, _BAND, _BOR, _BNOT,
) = range(len(_OPS))

_CONSTS = (_BVCONST, _BOOLCONST)
_VARS = (_DATA_VAR, _CONTROL_VAR, _BOOLVAR)
#: Commutative binary ops whose args the arena stores index-sorted
#: (mirrors the factory's id-sorted canonical order; decode re-sorts).
_COMM_BIN = frozenset(
    {_ADD, _MUL, _AND, _OR, _XOR, _EQ}
)
_NARY = frozenset({_BAND, _BOR})


class TermArena:
    """Hash-consed terms as parallel arrays, addressed by integer index.

    The arena is self-contained and picklable: op codes, widths, child
    indices, and leaf payloads (ints, bools, variable-name strings, and
    ``(hi, lo)`` extract bounds) round-trip through ``pickle`` exactly.
    Process-local state (the id-keyed encode memo and the decoded-Term
    cache) is dropped on pickling and rebuilt lazily.

    Identity invariant: ``arena.decode(arena.encode(t)) is t`` for any
    term ``t`` built through the default factory, in this process or
    any other — decode rebuilds bottom-up through the factory
    constructors, which re-establish the canonical (id-ordered)
    argument order and re-intern every node.
    """

    def __init__(self) -> None:
        self._op = array("b")
        self._width = array("q")
        self._first = array("q")  # offset into _args
        self._nargs = array("q")
        self._args = array("q")  # flattened child indices
        self._payload: list = []  # leaf data / extract bounds; None inside
        self._intern: dict[tuple, int] = {}
        # Process-local caches (not pickled).
        self._encode_memo: dict[int, int] = {}
        self._terms: list = []  # idx -> decoded Term (default factory)

    def __len__(self) -> int:
        return len(self._op)

    # -- pickling -----------------------------------------------------------

    def __getstate__(self):
        return {
            "op": self._op,
            "width": self._width,
            "first": self._first,
            "nargs": self._nargs,
            "args": self._args,
            "payload": self._payload,
        }

    def __setstate__(self, state) -> None:
        self._op = state["op"]
        self._width = state["width"]
        self._first = state["first"]
        self._nargs = state["nargs"]
        self._args = state["args"]
        self._payload = state["payload"]
        self._encode_memo = {}
        self._terms = [None] * len(self._op)
        self._intern = {}
        for idx in range(len(self._op)):
            self._intern[self._key(idx)] = idx

    def _key(self, idx: int) -> tuple:
        return (
            self._op[idx],
            self.args(idx),
            self._width[idx],
            self._payload[idx],
        )

    # -- node accessors -----------------------------------------------------

    def op(self, idx: int) -> int:
        """The node's op *code* (see :data:`OP_CODE`)."""
        return self._op[idx]

    def op_name(self, idx: int) -> str:
        return OP_NAME[self._op[idx]]

    def width(self, idx: int) -> int:
        return self._width[idx]

    def args(self, idx: int) -> tuple:
        first = self._first[idx]
        return tuple(self._args[first:first + self._nargs[idx]])

    def payload(self, idx: int):
        return self._payload[idx]

    def is_const(self, idx: int) -> bool:
        return self._op[idx] in _CONSTS

    def is_var(self, idx: int) -> bool:
        return self._op[idx] in _VARS

    def const_value(self, idx: int) -> Optional[int]:
        """The node's concrete value if constant (bools as 0/1), else None."""
        code = self._op[idx]
        if code == _BVCONST:
            return self._payload[idx]
        if code == _BOOLCONST:
            return int(self._payload[idx])
        return None

    # -- construction -------------------------------------------------------

    def _mk(self, code: int, args: tuple, width: int, payload=None) -> int:
        if code in _COMM_BIN and args[1] < args[0]:
            args = (args[1], args[0])
        elif code in _NARY:
            args = tuple(sorted(args))
        key = (code, args, width, payload)
        idx = self._intern.get(key)
        if idx is not None:
            return idx
        idx = len(self._op)
        self._op.append(code)
        self._width.append(width)
        self._first.append(len(self._args))
        self._nargs.append(len(args))
        self._args.extend(args)
        self._payload.append(payload)
        self._terms.append(None)
        self._intern[key] = idx
        return idx

    def bv_const(self, value: int, width: int) -> int:
        return self._mk(_BVCONST, (), width, value & ((1 << width) - 1))

    def bool_const(self, value: bool) -> int:
        return self._mk(_BOOLCONST, (), 0, bool(value))

    @property
    def true(self) -> int:
        return self.bool_const(True)

    @property
    def false(self) -> int:
        return self.bool_const(False)

    def bool_not(self, a: int) -> int:
        return self._mk(_BNOT, (a,), 0)

    def bool_and(self, parts: Iterable[int]) -> int:
        parts = tuple(parts)
        if not parts:
            return self.bool_const(True)
        if len(parts) == 1:
            return parts[0]
        return self._mk(_BAND, parts, 0)

    def bool_or(self, parts: Iterable[int]) -> int:
        parts = tuple(parts)
        if not parts:
            return self.bool_const(False)
        if len(parts) == 1:
            return parts[0]
        return self._mk(_BOR, parts, 0)

    def extract(self, a: int, hi: int, lo: int) -> int:
        return self._mk(_EXTRACT, (a,), hi - lo + 1, (hi, lo))

    # -- encode / decode ----------------------------------------------------

    def encode(self, term: Term) -> int:
        """Intern ``term``'s whole DAG; return the root's index."""
        memo = self._encode_memo
        root = memo.get(id(term))
        if root is not None:
            return root
        stack: list[tuple[Term, bool]] = [(term, False)]
        while stack:
            node, expanded = stack.pop()
            if id(node) in memo:
                continue
            if not expanded:
                stack.append((node, True))
                for child in node.args:
                    if id(child) not in memo:
                        stack.append((child, False))
                continue
            args = tuple(memo[id(child)] for child in node.args)
            idx = self._mk(OP_CODE[node.op], args, node.width, node.payload)
            memo[id(node)] = idx
            # Pin the decoded-Term cache too: keeps a strong reference to
            # ``node`` (so the id key can never alias a recycled address,
            # even for terms from short-lived private factories) and makes
            # the decode of anything we encoded free.
            if self._terms[idx] is None:
                self._terms[idx] = node
        return memo[id(term)]

    def decode(self, root: int) -> Term:
        """Rebuild the term at ``root`` through the default factory.

        Bottom-up through the factory constructors, so canonical argument
        order and hash-consing identity are re-established — the result
        ``is`` the term that would have been built in-process.
        """
        terms = self._terms
        if terms[root] is not None:
            return terms[root]
        stack: list[tuple[int, bool]] = [(root, False)]
        while stack:
            idx, expanded = stack.pop()
            if terms[idx] is not None:
                continue
            if not expanded:
                stack.append((idx, True))
                first = self._first[idx]
                for child in self._args[first:first + self._nargs[idx]]:
                    if terms[child] is None:
                        stack.append((child, False))
                continue
            terms[idx] = self._build(idx)
        return terms[root]

    def _build(self, idx: int) -> Term:
        code = self._op[idx]
        payload = self._payload[idx]
        width = self._width[idx]
        terms = self._terms
        first = self._first[idx]
        args = [terms[c] for c in self._args[first:first + self._nargs[idx]]]
        f = T.DEFAULT_FACTORY
        if code == _BVCONST:
            return f.bv_const(payload, width)
        if code == _BOOLCONST:
            return f.bool_const(payload)
        if code == _DATA_VAR:
            return f.data_var(payload, width)
        if code == _CONTROL_VAR:
            return f.control_var(payload, width)
        if code == _BOOLVAR:
            return f.bool_var(payload)
        if code == _EXTRACT:
            hi, lo = payload
            return f.extract(args[0], hi, lo)
        if code == _BAND:
            return f.bool_and(*args)
        if code == _BOR:
            return f.bool_or(*args)
        builder = _DECODE_BUILDERS[code]
        return builder(f, *args)

    # -- substitution -------------------------------------------------------

    def substitute(self, root: int, mapping: dict) -> int:
        """Replace variable nodes per ``mapping`` (index → index).

        Pure structural substitution (no simplification), mirroring
        :func:`repro.smt.substitute.substitute`.  Replacements must have
        the same sort and width as the variables they stand in for.
        """
        memo: dict[int, int] = dict(mapping)
        stack: list[tuple[int, bool]] = [(root, False)]
        while stack:
            idx, expanded = stack.pop()
            if idx in memo:
                continue
            nargs = self._nargs[idx]
            if nargs == 0:
                memo[idx] = idx
                continue
            first = self._first[idx]
            children = self._args[first:first + nargs]
            if not expanded:
                stack.append((idx, True))
                for child in children:
                    if child not in memo:
                        stack.append((child, False))
                continue
            new_args = tuple(memo[c] for c in children)
            if new_args == tuple(children):
                memo[idx] = idx
            else:
                memo[idx] = self._mk(
                    self._op[idx], new_args, self._width[idx],
                    self._payload[idx],
                )
        return memo[root]

    # -- simplification -----------------------------------------------------

    def simplify(self, root: int, memo: Optional[dict] = None) -> int:
        """Array-native mirror of :func:`repro.smt.simplify.simplify`.

        Same rule set, same bottom-up worklist, same memo discipline
        (keyed on node index instead of ``id``).  Guaranteed agreement:
        ``decode(arena.simplify(i)) is simplify(decode(i))``.
        """
        if memo is None:
            memo = {}
        stack: list[tuple[int, bool]] = [(root, False)]
        while stack:
            idx, expanded = stack.pop()
            if idx in memo:
                continue
            if not expanded:
                stack.append((idx, True))
                first = self._first[idx]
                for child in self._args[first:first + self._nargs[idx]]:
                    if child not in memo:
                        stack.append((child, False))
                continue
            first = self._first[idx]
            new_args = tuple(
                memo[c]
                for c in self._args[first:first + self._nargs[idx]]
            )
            memo[idx] = self._rewrite(idx, new_args, memo)
        return memo[root]

    def _rebuild(self, idx: int, args: tuple) -> int:
        if args == self.args(idx):
            return idx
        return self._mk(self._op[idx], args, self._width[idx],
                        self._payload[idx])

    def _fold(self, idx: int, args: tuple) -> int:
        """Constant-fold an all-constant node (mirrors ``_eval_node``)."""
        code = self._op[idx]
        width = self._width[idx]
        mask = (1 << width) - 1 if width else 1
        vals = [self.const_value(a) for a in args]
        if code == _ADD:
            value = (vals[0] + vals[1]) & mask
        elif code == _SUB:
            value = (vals[0] - vals[1]) & mask
        elif code == _MUL:
            value = (vals[0] * vals[1]) & mask
        elif code == _AND:
            value = vals[0] & vals[1]
        elif code == _OR:
            value = vals[0] | vals[1]
        elif code == _XOR:
            value = vals[0] ^ vals[1]
        elif code == _NOT:
            value = ~vals[0] & mask
        elif code == _NEG:
            value = (-vals[0]) & mask
        elif code == _SHL:
            value = (vals[0] << vals[1]) & mask if vals[1] < width else 0
        elif code == _LSHR:
            value = (vals[0] >> vals[1]) if vals[1] < width else 0
        elif code == _CONCAT:
            value = (vals[0] << self._width[args[1]]) | vals[1]
        elif code == _EXTRACT:
            hi, lo = self._payload[idx]
            value = (vals[0] >> lo) & ((1 << (hi - lo + 1)) - 1)
        elif code == _ITE:
            value = vals[1] if vals[0] else vals[2]
        elif code == _EQ:
            value = int(vals[0] == vals[1])
        elif code == _ULT:
            value = int(vals[0] < vals[1])
        elif code == _ULE:
            value = int(vals[0] <= vals[1])
        elif code == _BAND:
            value = int(all(vals))
        elif code == _BOR:
            value = int(any(vals))
        elif code == _BNOT:
            value = int(not vals[0])
        else:
            raise T.SortError(f"cannot fold op code {code}")
        if width:
            return self.bv_const(value, width)
        return self.bool_const(bool(value))

    def _rewrite(self, idx: int, args: tuple, memo: dict) -> int:
        if not args:
            return idx
        if all(self.is_const(a) for a in args):
            return self._fold(idx, args)
        handler = _ARENA_RULES.get(self._op[idx])
        if handler is not None:
            result = handler(self, idx, args, memo)
            if result is not None:
                return result
        return self._rebuild(idx, args)

    def _is_zero(self, idx: int) -> bool:
        return self._op[idx] == _BVCONST and self._payload[idx] == 0

    def _is_one(self, idx: int) -> bool:
        return self._op[idx] == _BVCONST and self._payload[idx] == 1

    def _is_ones(self, idx: int) -> bool:
        return (
            self._op[idx] == _BVCONST
            and self._payload[idx] == (1 << self._width[idx]) - 1
        )


def _init_decode_builders() -> dict:
    f = T.TermFactory  # unbound methods: called as builder(factory, *args)
    return {
        _ADD: f.add,
        _SUB: f.sub,
        _MUL: f.mul,
        _AND: f.bv_and,
        _OR: f.bv_or,
        _XOR: f.bv_xor,
        _NOT: f.bv_not,
        _NEG: f.neg,
        _SHL: f.shl,
        _LSHR: f.lshr,
        _CONCAT: f.concat,
        _ITE: f.ite,
        _EQ: f.eq,
        _ULT: f.ult,
        _ULE: f.ule,
        _BNOT: f.bool_not,
    }


_DECODE_BUILDERS = _init_decode_builders()


# ---------------------------------------------------------------------------
# Array-native rewrite rules (rule-for-rule port of simplify._RULES)
# ---------------------------------------------------------------------------


def _ar_add(arena, idx, args, memo):
    a, b = args
    if arena._is_zero(a):
        return b
    if arena._is_zero(b):
        return a
    return None


def _ar_sub(arena, idx, args, memo):
    a, b = args
    if arena._is_zero(b):
        return a
    if a == b:
        return arena.bv_const(0, arena._width[idx])
    return None


def _ar_mul(arena, idx, args, memo):
    a, b = args
    width = arena._width[idx]
    for x, y in ((a, b), (b, a)):
        if arena._is_zero(x):
            return arena.bv_const(0, width)
        if arena._is_one(x):
            return y
        if arena._op[x] == _BVCONST:
            value = arena._payload[x]
            if value and (value & (value - 1)) == 0:
                shift = value.bit_length() - 1
                return arena._mk(
                    _SHL, (y, arena.bv_const(shift, width)), width
                )
    return None


def _ar_bvand(arena, idx, args, memo):
    a, b = args
    if a == b:
        return a
    width = arena._width[idx]
    for x, y in ((a, b), (b, a)):
        if arena._is_zero(x):
            return arena.bv_const(0, width)
        if arena._is_ones(x):
            return y
    return None


def _ar_bvor(arena, idx, args, memo):
    a, b = args
    if a == b:
        return a
    width = arena._width[idx]
    for x, y in ((a, b), (b, a)):
        if arena._is_zero(x):
            return y
        if arena._is_ones(x):
            return arena.bv_const((1 << width) - 1, width)
    return None


def _ar_bvxor(arena, idx, args, memo):
    a, b = args
    if a == b:
        return arena.bv_const(0, arena._width[idx])
    for x, y in ((a, b), (b, a)):
        if arena._is_zero(x):
            return y
    return None


def _ar_bvnot(arena, idx, args, memo):
    (a,) = args
    if arena._op[a] == _NOT:
        return arena.args(a)[0]
    return None


def _ar_shift(arena, idx, args, memo):
    a, b = args
    width = arena._width[idx]
    if arena._is_zero(b):
        return a
    if arena._is_zero(a):
        return arena.bv_const(0, width)
    if arena._op[b] == _BVCONST and arena._payload[b] >= width:
        return arena.bv_const(0, width)
    return None


def _ar_extract(arena, idx, args, memo):
    (a,) = args
    hi, lo = arena._payload[idx]
    if lo == 0 and hi == arena._width[a] - 1:
        return a
    if arena._op[a] == _EXTRACT:
        inner_hi, inner_lo = arena._payload[a]
        return arena.extract(arena.args(a)[0], inner_lo + hi, inner_lo + lo)
    if arena._op[a] == _CONCAT:
        left, right = arena.args(a)
        right_width = arena._width[right]
        if hi < right_width:
            return arena.simplify(arena.extract(right, hi, lo), memo)
        if lo >= right_width:
            return arena.simplify(
                arena.extract(left, hi - right_width, lo - right_width), memo
            )
    return None


def _ar_ite(arena, idx, args, memo):
    cond, then, orelse = args
    width = arena._width[idx]
    if arena._op[cond] == _BOOLCONST:
        return then if arena._payload[cond] else orelse
    if then == orelse:
        return then
    if arena._op[cond] == _BNOT:
        return arena._mk(_ITE, (arena.args(cond)[0], orelse, then), width)
    if width == 0:
        if arena._op[then] == _BOOLCONST:
            if arena._payload[then]:
                return arena.simplify(arena.bool_or((cond, orelse)), memo)
            return arena.simplify(
                arena.bool_and((arena.bool_not(cond), orelse)), memo
            )
        if arena._op[orelse] == _BOOLCONST:
            if arena._payload[orelse]:
                return arena.simplify(
                    arena.bool_or((arena.bool_not(cond), then)), memo
                )
            return arena.simplify(arena.bool_and((cond, then)), memo)
    if arena._op[then] == _ITE and arena.args(then)[0] == cond:
        return arena.simplify(
            arena._mk(_ITE, (cond, arena.args(then)[1], orelse), width), memo
        )
    if arena._op[orelse] == _ITE and arena.args(orelse)[0] == cond:
        return arena.simplify(
            arena._mk(_ITE, (cond, then, arena.args(orelse)[2]), width), memo
        )
    return None


def _ar_eq(arena, idx, args, memo):
    a, b = args
    if a == b:
        return arena.true
    if (
        arena._width[a] > 0
        and arena.is_const(a)
        and arena.is_const(b)
    ):
        return arena.bool_const(arena._payload[a] == arena._payload[b])
    for x, y in ((a, b), (b, a)):
        if arena._op[x] == _ITE and arena.is_const(y):
            cond, then, orelse = arena.args(x)
            if arena.is_const(then) and arena.is_const(orelse):
                then_hit = arena._payload[then] == arena._payload[y]
                else_hit = arena._payload[orelse] == arena._payload[y]
                if then_hit and else_hit:
                    return arena.true
                if then_hit:
                    return cond
                if else_hit:
                    return arena.simplify(arena.bool_not(cond), memo)
                return arena.false
    return None


def _ar_ult(arena, idx, args, memo):
    a, b = args
    if a == b:
        return arena.false
    if arena._is_zero(b):
        return arena.false
    if arena._is_zero(a):
        zero = arena.bv_const(0, arena._width[b])
        return arena.simplify(
            arena.bool_not(arena._mk(_EQ, (b, zero), 0)), memo
        )
    return None


def _ar_ule(arena, idx, args, memo):
    a, b = args
    if a == b:
        return arena.true
    if arena._is_zero(a):
        return arena.true
    if arena._is_ones(b):
        return arena.true
    return None


def _ar_band(arena, idx, args, memo):
    flat: list = []
    seen: set = set()
    for arg in args:
        parts = arena.args(arg) if arena._op[arg] == _BAND else (arg,)
        for part in parts:
            if arena._op[part] == _BOOLCONST:
                if not arena._payload[part]:
                    return arena.false
                continue
            if part in seen:
                continue
            seen.add(part)
            flat.append(part)
    negated = {arena.args(p)[0] for p in flat if arena._op[p] == _BNOT}
    if any(p in negated for p in flat if arena._op[p] != _BNOT):
        return arena.false
    if not flat:
        return arena.true
    if len(flat) == 1:
        return flat[0]
    return arena.bool_and(flat)


def _ar_bor(arena, idx, args, memo):
    flat: list = []
    seen: set = set()
    for arg in args:
        parts = arena.args(arg) if arena._op[arg] == _BOR else (arg,)
        for part in parts:
            if arena._op[part] == _BOOLCONST:
                if arena._payload[part]:
                    return arena.true
                continue
            if part in seen:
                continue
            seen.add(part)
            flat.append(part)
    negated = {arena.args(p)[0] for p in flat if arena._op[p] == _BNOT}
    if any(p in negated for p in flat if arena._op[p] != _BNOT):
        return arena.true
    if not flat:
        return arena.false
    if len(flat) == 1:
        return flat[0]
    return arena.bool_or(flat)


def _ar_bnot(arena, idx, args, memo):
    (a,) = args
    if arena._op[a] == _BNOT:
        return arena.args(a)[0]
    if arena._op[a] == _BOOLCONST:
        return arena.bool_const(not arena._payload[a])
    return None


_ARENA_RULES = {
    _ADD: _ar_add,
    _SUB: _ar_sub,
    _MUL: _ar_mul,
    _AND: _ar_bvand,
    _OR: _ar_bvor,
    _XOR: _ar_bvxor,
    _NOT: _ar_bvnot,
    _SHL: _ar_shift,
    _LSHR: _ar_shift,
    _EXTRACT: _ar_extract,
    _ITE: _ar_ite,
    _EQ: _ar_eq,
    _ULT: _ar_ult,
    _ULE: _ar_ule,
    _BAND: _ar_band,
    _BOR: _ar_bor,
    _BNOT: _ar_bnot,
}


# ---------------------------------------------------------------------------
# ClauseArena — flat clause storage for the CDCL core
# ---------------------------------------------------------------------------


class ClauseArena:
    """CNF clauses in one contiguous literal buffer.

    A clause is an integer reference (*cref*): its literals live at
    ``lits[start[cref] : start[cref] + size[cref]]``.  Watch-list order,
    learned flags, activities, and the dead mask are parallel arrays, so
    the whole clause database copies with six array copies (``fork``)
    and pickles without touching a single Python object per clause.

    The CDCL solver's two-watched-literal scheme swaps the watched
    literals into slots 0/1 *in place*, exactly as the object core did
    with ``Clause.lits`` — positions within a clause's slice are
    mutable, the slice boundaries never change.
    """

    __slots__ = ("lits", "start", "size", "learned", "dead", "activity")

    def __init__(self) -> None:
        self.lits = array("i")
        self.start = array("q")
        self.size = array("i")
        self.learned = bytearray()
        self.dead = bytearray()
        self.activity = array("d")

    def __len__(self) -> int:
        return len(self.start)

    def add(self, literals, learned: bool = False) -> int:
        """Append a clause; returns its cref."""
        cref = len(self.start)
        self.start.append(len(self.lits))
        self.size.append(len(literals))
        self.lits.extend(literals)
        self.learned.append(1 if learned else 0)
        self.dead.append(0)
        self.activity.append(0.0)
        return cref

    def clause(self, cref: int) -> list:
        """The clause's literals, as a fresh list."""
        first = self.start[cref]
        return self.lits[first:first + self.size[cref]].tolist()

    def shrink(self, cref: int, new_size: int) -> None:
        """Drop trailing literals (root-level clause strengthening)."""
        self.size[cref] = new_size

    def copy(self) -> "ClauseArena":
        twin = ClauseArena.__new__(ClauseArena)
        twin.lits = array("i", self.lits)
        twin.start = array("q", self.start)
        twin.size = array("i", self.size)
        twin.learned = bytearray(self.learned)
        twin.dead = bytearray(self.dead)
        twin.activity = array("d", self.activity)
        return twin

    def __getstate__(self):
        return (
            self.lits, self.start, self.size,
            self.learned, self.dead, self.activity,
        )

    def __setstate__(self, state) -> None:
        (
            self.lits, self.start, self.size,
            self.learned, self.dead, self.activity,
        ) = state
