"""Bit-blasting terms to CNF (Tseitin encoding).

Turns a boolean :class:`~repro.smt.terms.Term` into clauses for the DPLL
solver.  Every bitvector term becomes a vector of SAT literals (LSB first);
every boolean term becomes a single literal.  Gates use the standard Tseitin
encodings, arithmetic uses ripple-carry, and shifts by non-constant amounts
use a barrel shifter — everything a P4 program's expressions can contain.
"""

from __future__ import annotations

from array import array
from typing import Optional

from repro.ir.metrics import CacheCounter
from repro.smt import terms as T
from repro.smt.sat import SatSolver
from repro.smt.terms import Term


class BitBlaster:
    """Shared encoding context: one solver, memoized term encodings."""

    def __init__(self, solver: Optional[SatSolver] = None) -> None:
        self.solver = solver if solver is not None else SatSolver()
        self._bool_memo: dict[int, int] = {}
        self._bv_memo: dict[int, list[int]] = {}
        self._true_lit: Optional[int] = None
        self._var_bits: dict[str, list[int]] = {}
        self._bool_vars: dict[str, int] = {}

    # -- constants ------------------------------------------------------------

    def true_lit(self) -> int:
        if self._true_lit is None:
            self._true_lit = self.solver.new_var()
            self.solver.add_clause([self._true_lit])
        return self._true_lit

    def false_lit(self) -> int:
        return -self.true_lit()

    def _const_lit(self, value: bool) -> int:
        return self.true_lit() if value else self.false_lit()

    # -- gates ------------------------------------------------------------------

    def _and_gate(self, a: int, b: int) -> int:
        out = self.solver.new_var()
        self.solver.add_clause([-out, a])
        self.solver.add_clause([-out, b])
        self.solver.add_clause([out, -a, -b])
        return out

    def _or_gate(self, a: int, b: int) -> int:
        out = self.solver.new_var()
        self.solver.add_clause([out, -a])
        self.solver.add_clause([out, -b])
        self.solver.add_clause([-out, a, b])
        return out

    def _xor_gate(self, a: int, b: int) -> int:
        out = self.solver.new_var()
        self.solver.add_clause([-out, a, b])
        self.solver.add_clause([-out, -a, -b])
        self.solver.add_clause([out, -a, b])
        self.solver.add_clause([out, a, -b])
        return out

    def _mux_gate(self, sel: int, then: int, orelse: int) -> int:
        """out = sel ? then : orelse."""
        out = self.solver.new_var()
        self.solver.add_clause([-sel, -then, out])
        self.solver.add_clause([-sel, then, -out])
        self.solver.add_clause([sel, -orelse, out])
        self.solver.add_clause([sel, orelse, -out])
        return out

    def _and_many(self, lits: list[int]) -> int:
        if not lits:
            return self.true_lit()
        out = lits[0]
        for lit in lits[1:]:
            out = self._and_gate(out, lit)
        return out

    def _or_many(self, lits: list[int]) -> int:
        if not lits:
            return self.false_lit()
        out = lits[0]
        for lit in lits[1:]:
            out = self._or_gate(out, lit)
        return out

    def _full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        s = self._xor_gate(self._xor_gate(a, b), cin)
        carry = self._or_gate(
            self._and_gate(a, b),
            self._and_gate(cin, self._xor_gate(a, b)),
        )
        return s, carry

    def _adder(self, a: list[int], b: list[int], cin: int) -> list[int]:
        out: list[int] = []
        carry = cin
        for abit, bbit in zip(a, b):
            s, carry = self._full_adder(abit, bbit, carry)
            out.append(s)
        return out

    # -- encoding --------------------------------------------------------------

    def encode_bool(self, term: Term) -> int:
        """Literal that is true iff ``term`` is true."""
        if not term.is_bool:
            raise T.SortError("encode_bool expects a boolean term")
        cached = self._bool_memo.get(id(term))
        if cached is not None:
            return cached
        lit = self._encode_bool_node(term)
        self._bool_memo[id(term)] = lit
        return lit

    def encode_bv(self, term: Term) -> list[int]:
        """Literal vector (LSB first) equal to ``term``."""
        if not term.is_bv:
            raise T.SortError("encode_bv expects a bitvector term")
        cached = self._bv_memo.get(id(term))
        if cached is not None:
            return cached
        bits = self._encode_bv_node(term)
        if len(bits) != term.width:
            raise AssertionError(
                f"blasted {term.op} to {len(bits)} bits, expected {term.width}"
            )
        self._bv_memo[id(term)] = bits
        return bits

    def _encode_bool_node(self, term: Term) -> int:
        op = term.op
        if op == T.OP_BOOLCONST:
            return self._const_lit(term.payload)
        if op == T.OP_BOOLVAR:
            lit = self._bool_vars.get(term.payload)
            if lit is None:
                lit = self.solver.new_var()
                self._bool_vars[term.payload] = lit
            return lit
        if op == T.OP_BNOT:
            return -self.encode_bool(term.args[0])
        if op == T.OP_BAND:
            return self._and_many([self.encode_bool(a) for a in term.args])
        if op == T.OP_BOR:
            return self._or_many([self.encode_bool(a) for a in term.args])
        if op == T.OP_EQ:
            a, b = term.args
            if a.is_bool:
                la, lb = self.encode_bool(a), self.encode_bool(b)
                return -self._xor_gate(la, lb)
            return self._bv_eq(self.encode_bv(a), self.encode_bv(b))
        if op == T.OP_ULT:
            return self._bv_ult(self.encode_bv(term.args[0]), self.encode_bv(term.args[1]))
        if op == T.OP_ULE:
            return -self._bv_ult(self.encode_bv(term.args[1]), self.encode_bv(term.args[0]))
        if op == T.OP_ITE:
            sel = self.encode_bool(term.args[0])
            return self._mux_gate(
                sel, self.encode_bool(term.args[1]), self.encode_bool(term.args[2])
            )
        raise T.SortError(f"cannot bit-blast boolean op {op!r}")

    def _bv_eq(self, a: list[int], b: list[int]) -> int:
        diffs = [self._xor_gate(x, y) for x, y in zip(a, b)]
        return -self._or_many(diffs)

    def _bv_ult(self, a: list[int], b: list[int]) -> int:
        # MSB-down comparison: lt_i = (~a_i & b_i) | (a_i == b_i) & lt_{i-1}
        lt = self.false_lit()
        for abit, bbit in zip(a, b):  # LSB first: fold from LSB upward
            eq_bit = -self._xor_gate(abit, bbit)
            lt = self._or_gate(
                self._and_gate(-abit, bbit),
                self._and_gate(eq_bit, lt),
            )
        return lt

    def _var_bit_vector(self, name: str, width: int) -> list[int]:
        bits = self._var_bits.get(name)
        if bits is None:
            bits = [self.solver.new_var() for _ in range(width)]
            self._var_bits[name] = bits
        if len(bits) != width:
            raise T.SortError(
                f"variable {name!r} used at widths {len(bits)} and {width}"
            )
        return bits

    def _encode_bv_node(self, term: Term) -> list[int]:
        op = term.op
        width = term.width
        if op == T.OP_BVCONST:
            return [
                self._const_lit(bool((term.payload >> i) & 1)) for i in range(width)
            ]
        if op in (T.OP_DATA_VAR, T.OP_CONTROL_VAR):
            return self._var_bit_vector(term.payload, width)
        if op == T.OP_AND:
            a, b = (self.encode_bv(x) for x in term.args)
            return [self._and_gate(x, y) for x, y in zip(a, b)]
        if op == T.OP_OR:
            a, b = (self.encode_bv(x) for x in term.args)
            return [self._or_gate(x, y) for x, y in zip(a, b)]
        if op == T.OP_XOR:
            a, b = (self.encode_bv(x) for x in term.args)
            return [self._xor_gate(x, y) for x, y in zip(a, b)]
        if op == T.OP_NOT:
            return [-x for x in self.encode_bv(term.args[0])]
        if op == T.OP_ADD:
            a, b = (self.encode_bv(x) for x in term.args)
            return self._adder(a, b, self.false_lit())
        if op == T.OP_SUB:
            a, b = (self.encode_bv(x) for x in term.args)
            return self._adder(a, [-x for x in b], self.true_lit())
        if op == T.OP_NEG:
            a = self.encode_bv(term.args[0])
            zeros = [self.false_lit()] * width
            return self._adder(zeros, [-x for x in a], self.true_lit())
        if op == T.OP_MUL:
            return self._encode_mul(term)
        if op == T.OP_SHL:
            return self._encode_shift(term, left=True)
        if op == T.OP_LSHR:
            return self._encode_shift(term, left=False)
        if op == T.OP_CONCAT:
            left, right = term.args
            return self.encode_bv(right) + self.encode_bv(left)
        if op == T.OP_EXTRACT:
            hi, lo = term.payload
            return self.encode_bv(term.args[0])[lo : hi + 1]
        if op == T.OP_ITE:
            sel = self.encode_bool(term.args[0])
            then = self.encode_bv(term.args[1])
            orelse = self.encode_bv(term.args[2])
            return [self._mux_gate(sel, t, e) for t, e in zip(then, orelse)]
        raise T.SortError(f"cannot bit-blast bitvector op {op!r}")

    def _encode_mul(self, term: Term) -> list[int]:
        a = self.encode_bv(term.args[0])
        b = self.encode_bv(term.args[1])
        width = term.width
        acc = [self.false_lit()] * width
        for i in range(width):
            partial = [self.false_lit()] * i + [
                self._and_gate(a[j], b[i]) for j in range(width - i)
            ]
            acc = self._adder(acc, partial, self.false_lit())
        return acc

    def _encode_shift(self, term: Term, left: bool) -> list[int]:
        value = self.encode_bv(term.args[0])
        amount_term = term.args[1]
        width = term.width
        if amount_term.op == T.OP_BVCONST:
            shift = amount_term.payload
            if shift >= width:
                return [self.false_lit()] * width
            if left:
                return [self.false_lit()] * shift + value[: width - shift]
            return value[shift:] + [self.false_lit()] * shift
        # Barrel shifter over the log2(width)+1 relevant amount bits.
        amount = self.encode_bv(amount_term)
        stages = max(1, (width - 1).bit_length())
        current = value
        for stage in range(stages):
            shift = 1 << stage
            sel = amount[stage] if stage < len(amount) else self.false_lit()
            if left:
                shifted = [self.false_lit()] * shift + current[: width - shift]
            else:
                shifted = current[shift:] + [self.false_lit()] * shift
            current = [
                self._mux_gate(sel, s, c) for s, c in zip(shifted, current)
            ]
        # Amounts >= width produce zero: if any high amount bit set, zero out.
        high_bits = amount[stages:]
        if high_bits:
            any_high = self._or_many(list(high_bits))
            zero = self.false_lit()
            current = [self._mux_gate(any_high, zero, c) for c in current]
        return current


class _Fragment:
    """The Tseitin cone of one term: its own gate clauses + child cones.

    Clause literals live in one flat ``array('i')`` with prefix end
    offsets instead of a list of lists: fragments are written once during
    encoding and then shared read-only across every encoder fork and
    session, so the compact layout cuts per-clause object overhead and
    keeps cone streaming cache-friendly (and cheaply picklable).
    """

    __slots__ = ("_lits", "_ends", "children", "out")

    def __init__(self) -> None:
        self._lits = array("i")
        self._ends = array("q")  # end offset of each clause in _lits
        self.children: list["_Fragment"] = []
        self.out = None  # literal (bool terms) or literal vector (bv terms)

    def append_clause(self, clause: list[int]) -> None:
        self._lits.extend(clause)
        self._ends.append(len(self._lits))

    @property
    def clauses(self):
        """The fragment's clauses, yielded as literal lists."""
        lits = self._lits
        start = 0
        for end in self._ends:
            yield lits[start:end].tolist()
            start = end


class _FragmentSink:
    """Duck-typed stand-in for :class:`SatSolver` during shared encoding.

    Allocates variables from a process-stable counter and routes emitted
    clauses to the fragment currently being encoded (``owner._sink``).
    """

    def __init__(self, owner: "FragmentBitBlaster") -> None:
        self._owner = owner
        self._num_vars = 0

    def new_var(self) -> int:
        self._num_vars += 1
        return self._num_vars

    def add_clause(self, lits) -> None:
        self._owner._record(list(lits))

    @property
    def num_vars(self) -> int:
        return self._num_vars


class FragmentBitBlaster(BitBlaster):
    """A bit-blaster whose encodings persist *across* queries.

    The plain :class:`BitBlaster` memoizes per-solver-instance: a fresh
    query pays the full Tseitin cost again even for subterms it has
    already encoded.  This subclass records, per hash-consed term, the
    CNF *fragment* the term contributed (its own gate clauses plus
    references to its children's fragments) against a global variable
    numbering.  A query then only encodes the subterms it has never seen
    — bit-blasting cost scales with the delta — and replays the root's
    cone of clauses into a throw-away solver via :meth:`cone_clauses`.

    Cones stay dense: solving a small query never drags in clauses from
    unrelated earlier queries, so DPLL budgets behave exactly as they
    would with a fresh encoding.
    """

    def __init__(self, counter: Optional[CacheCounter] = None) -> None:
        super().__init__(solver=_FragmentSink(self))
        self.counter = counter if counter is not None else CacheCounter("cnf")
        self._stack: list[_Fragment] = []
        self._bool_frags: dict[Term, _Fragment] = {}
        self._bv_frags: dict[Term, _Fragment] = {}
        # Top-level encode calls, in order (``(is_bool, term)``, first call
        # per term only).  Encoding is a deterministic structural recursion
        # over hash-consed terms, so replaying this log into a fresh
        # blaster — :func:`replay_encoder` — reproduces the variable
        # numbering and fragment graph *exactly*.  That replayability is
        # what makes a :class:`~repro.smt.session.SolverSession` snapshot
        # restorable in a process that no longer has the original encoder.
        self._roots: list[tuple[bool, Term]] = []
        self._root_set: set[tuple[bool, Term]] = set()
        # The shared true-literal and its defining clause live in a
        # preamble included in every cone (a plain BitBlaster would emit
        # it inside whichever fragment happened to be open first).
        self._true_lit = self.solver.new_var()
        self._preamble: list[list[int]] = [[self._true_lit]]

    @property
    def var_count(self) -> int:
        return self.solver.num_vars

    @property
    def fragment_count(self) -> int:
        """Distinct Tseitin fragments encoded so far (dedup observability)."""
        return len(self._bool_frags) + len(self._bv_frags)

    def encode_roots(self) -> list[tuple[bool, Term]]:
        """The top-level encode log (is_bool, term), in call order."""
        return list(self._roots)

    def _log_root(self, is_bool: bool, term: Term) -> None:
        # Only genuinely top-level calls shape the allocation order; a
        # repeat (or a root already encoded as some other root's subterm)
        # is a numbering no-op, so logging its first top-level occurrence
        # is enough to replay the exact variable sequence.
        if not self._stack:
            key = (is_bool, term)
            if key not in self._root_set:
                self._root_set.add(key)
                self._roots.append(key)

    def _record(self, clause: list[int]) -> None:
        if self._stack:
            self._stack[-1].append_clause(clause)
        else:
            self._preamble.append(clause)

    def _encode_fragment(self, term: Term, cache: dict, encode_node):
        frag = cache.get(term)
        if frag is not None:
            self.counter.hit()
            if self._stack:
                self._stack[-1].children.append(frag)
            return frag.out
        self.counter.miss()
        frag = _Fragment()
        if self._stack:
            self._stack[-1].children.append(frag)
        self._stack.append(frag)
        try:
            frag.out = encode_node(term)
        finally:
            self._stack.pop()
        cache[term] = frag
        return frag.out

    def encode_bool(self, term: Term) -> int:
        if not term.is_bool:
            raise T.SortError("encode_bool expects a boolean term")
        self._log_root(True, term)
        return self._encode_fragment(term, self._bool_frags, self._encode_bool_node)

    def encode_bv(self, term: Term) -> list[int]:
        if not term.is_bv:
            raise T.SortError("encode_bv expects a bitvector term")
        self._log_root(False, term)
        bits = self._encode_fragment(term, self._bv_frags, self._encode_bv_node)
        if len(bits) != term.width:
            raise AssertionError(
                f"blasted {term.op} to {len(bits)} bits, expected {term.width}"
            )
        return bits

    def fork(self, counter: Optional[CacheCounter] = None) -> "FragmentBitBlaster":
        """A private copy for one batch worker slice.

        Fragment objects are immutable once encoded, so the fork shares
        them and copies only the lookup tables and the variable counter.
        Fragments encoded after the fork allocate from each side's own
        counter — the same numbers can mean different things across forks,
        which is why sessions only exchange clauses over pre-fork
        variables (see :meth:`repro.smt.session.SolverSession.fork`).
        """
        twin = FragmentBitBlaster(counter)
        twin.solver._num_vars = self.solver.num_vars
        twin._true_lit = self._true_lit
        twin._var_bits = dict(self._var_bits)
        twin._bool_vars = dict(self._bool_vars)
        twin._bool_frags = dict(self._bool_frags)
        twin._bv_frags = dict(self._bv_frags)
        twin._preamble = list(self._preamble)
        twin._roots = list(self._roots)
        twin._root_set = set(self._root_set)
        return twin

    def cone_clauses(self, term: Term) -> list[list[int]]:
        """All clauses (global numbering) in the Tseitin cone of ``term``."""
        frag = self._bool_frags.get(term) if term.is_bool else self._bv_frags.get(term)
        if frag is None:
            raise KeyError(f"term has not been encoded: {term!r}")
        clauses = list(self._preamble)
        seen: set[int] = set()
        stack = [frag]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            clauses.extend(node.clauses)
            stack.extend(node.children)
        return clauses

    def decode_model(self, term: Term, model: dict[int, bool]) -> dict[str, int]:
        """Values for ``term``'s variables under a global-numbered model."""
        values: dict[str, int] = {}
        for var in T.variables(term):
            if var.is_bool:
                lit = self._bool_vars.get(var.name)
                values[var.name] = int(model.get(lit, False)) if lit else 0
                continue
            bits = self._var_bits.get(var.name)
            if bits is None:
                values[var.name] = 0
                continue
            values[var.name] = sum(
                (1 << i) for i, lit in enumerate(bits) if model.get(lit, False)
            )
        return values


def replay_encoder(
    roots: list[tuple[bool, Term]],
    counter: Optional[CacheCounter] = None,
) -> FragmentBitBlaster:
    """Rebuild a :class:`FragmentBitBlaster` from an encode-root log.

    Encoding is a pure structural recursion, so replaying the same roots
    in the same order reproduces the original's variable numbering and
    fragment graph exactly — the precondition
    :meth:`~repro.smt.session.SolverSession.restore` places on its
    encoder.  Used by the warm-state snapshot layer to resurrect a
    session's encoder in a process that never ran the original queries.
    """
    encoder = FragmentBitBlaster(counter)
    for is_bool, term in roots:
        if is_bool:
            encoder.encode_bool(term)
        else:
            encoder.encode_bv(term)
    return encoder


def roots_compatible(
    encoder: FragmentBitBlaster, roots: list[tuple[bool, Term]]
) -> bool:
    """Does ``encoder`` present the fragment graph ``roots`` describes?

    True iff ``roots`` is a prefix of the encoder's own root log (term
    comparison is identity — both sides intern through the default
    factory).  Fragment numbering is append-only, so an encoder that has
    encoded *more* roots since the log was taken still presents every
    fragment/variable the log's session knew, unchanged — a shared-store
    encoder extended by sibling switches stays attachable.
    """
    log = encoder._roots
    if len(log) < len(roots):
        return False
    return all(log[i] == root for i, root in enumerate(roots))


def assert_term(blaster: BitBlaster, term: Term) -> None:
    """Constrain the solver so that ``term`` must be true."""
    blaster.solver.add_clause([blaster.encode_bool(term)])


def model_values(blaster: BitBlaster, term: Term) -> dict[str, int]:
    """Decode the last SAT model into values for ``term``'s variables."""
    model = blaster.solver.model()
    if model is None:
        raise ValueError("no model available (last result was not SAT)")
    values: dict[str, int] = {}
    for var in T.variables(term):
        if var.is_bool:
            lit = blaster._bool_vars.get(var.name)
            values[var.name] = int(model.get(lit, False)) if lit else 0
            continue
        bits = blaster._var_bits.get(var.name)
        if bits is None:
            values[var.name] = 0
            continue
        values[var.name] = sum(
            (1 << i) for i, lit in enumerate(bits) if model.get(lit, False)
        )
    return values
