"""Forwarding decision diagrams over a table's match keys.

A :class:`TableFdd` represents one table's *match function* — the map
from concrete key values to the winning entry's ``(action, args)`` pair
(or MISS) — as a reduced, ordered decision diagram in the style of the
NetKAT compiler's FDDs:

* **ordered** — interior nodes test key indices in the table's declared
  key order, strictly increasing along every path (a key nobody
  distinguishes on is simply skipped);
* **edge-labelled by intervals** — each node carries a partition of its
  key's domain ``[0, 2^width)`` into closed intervals, one child per
  interval, so a lookup is a bisect per level instead of a bit per level;
* **reduced** — adjacent intervals with the same child are merged and a
  node whose edges all lead to one child collapses into that child;
* **hash-consed** — nodes and leaves are interned per diagram, so
  structurally equal subdiagrams are pointer-equal and leaf identity is
  stable across rebuilds of the same table.

The diagram is built by folding :meth:`TableFdd.overwrite` over the
table's eclipse-elided active entries in *reverse* precedence order —
each overwrite paints the entry's match region with its leaf, so the
final diagram gives every key point to its first-match winner, exactly
like the ite chains :func:`repro.runtime.semantics.encode_table` folds
(same entry list, same direction).

Ternary masks with many free bits interleaved among cared bits explode
the interval decomposition.  Such an entry no longer makes the whole
diagram opaque: only that entry degrades, into an **opaque interior
band** (:class:`FddBand`) — its decomposable keys are still painted as
precise intervals, and on the undecomposable keys the band covers the
full domain and wraps whatever decision sits underneath, so every other
entry (and every other key of *this* entry) keeps its interval diagram.
Point lookups through a band stay **exact**: deciding whether one
concrete key point matches a ``value``/``mask`` pair is trivial — only
the region's interval decomposition blew up — so :meth:`TableFdd.lookup`
tests the band's entry against the point and either returns that entry's
interned leaf or falls through to the wrapped decision.  First-match
precedence is preserved structurally: entries are painted in reverse
precedence order, a higher-precedence precise entry overwrites the band
in its exact region, and a higher-precedence fuzzy entry shades another
band on top.  Only *region* queries (:meth:`TableFdd.fast_insert`'s
disjointness probe) treat a band as an unknown decision and decline.

Only the hard caps make a diagram fully opaque now (``root() is None``):
more than :data:`MAX_ENTRIES` active entries, or more than
:data:`MAX_BANDS` band-degraded entries in one rebuild.  Opacity is per
rebuild, not permanent: deleting the offending entries brings the
diagram back.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Optional

#: Per-match interval-decomposition cap.  2**8 covers every mask over
#: keys up to 9 cared-free interleavings; wilder masks go opaque.
MAX_INTERVALS = 256
#: Active-entry cap per rebuild; beyond this the table is overapproximated
#: upstream anyway, so a precise diagram would never be consulted.
MAX_ENTRIES = 2048
#: Band-degraded entries tolerated per rebuild.  Each band on a lookup
#: path costs one mask test; a table where *most* entries are wild would
#: pay a linear scan per lookup, so past this many the diagram goes fully
#: opaque instead.
MAX_BANDS = 64


class FddLeaf:
    """Terminal decision: the winning ``(action, args)`` pair, or MISS.

    Interned per :class:`TableFdd`; compare with ``is``.
    """

    __slots__ = ("action", "args")

    def __init__(self, action: Optional[str], args: tuple) -> None:
        self.action = action  # None = MISS
        self.args = args

    @property
    def is_miss(self) -> bool:
        return self.action is None

    def __repr__(self) -> str:
        if self.action is None:
            return "FddLeaf(MISS)"
        return f"FddLeaf({self.action}{self.args})"


class FddNode:
    """Interior node: tests key ``index`` against an interval partition.

    ``edges`` is a tuple of ``(hi, child)`` pairs whose ``hi`` bounds are
    strictly increasing and end at the key domain's maximum: edge ``i``
    covers ``(edges[i-1].hi, edges[i].hi]`` (from 0 for the first).
    Interned per :class:`TableFdd`; compare with ``is``.
    """

    __slots__ = ("index", "edges", "_his")

    def __init__(self, index: int, edges: tuple) -> None:
        self.index = index
        self.edges = edges
        self._his = [hi for hi, _child in edges]

    def child_at(self, value: int):
        return self.edges[bisect_right(self._his, value - 1)][1]

    def __repr__(self) -> str:
        return f"FddNode(k{self.index}, {len(self.edges)} edges)"


class FddBand:
    """Opaque interior band: one undecomposable entry shading a region.

    ``key`` is the entry's canonical content — ``(action, args,
    ((value, mask), ...))`` with one normalised value/mask pair per match
    key — and ``child`` is the decision underneath (a leaf or another
    band, never an interior node: bands are painted at terminal
    positions only).  A point covered by the band resolves to the
    band's entry when the point matches every value/mask pair, else to
    ``child``'s decision.  Interned per :class:`TableFdd` on
    ``(key, id(child))``; compare with ``is``.
    """

    __slots__ = ("key", "child")

    def __init__(self, key: tuple, child) -> None:
        self.key = key
        self.child = child

    def matches(self, key_values) -> bool:
        """Exact point membership in the entry's true match region."""
        return all(
            point & mask == value
            for point, (value, mask) in zip(key_values, self.key[2])
        )

    def __repr__(self) -> str:
        return f"FddBand({self.key[0]}{self.key[1]} over {self.child!r})"


def mask_intervals(value: int, mask: int, width: int) -> Optional[list]:
    """The match region ``{k | k & mask == value & mask}`` as intervals.

    Returns a sorted list of disjoint, merged ``(lo, hi)`` pairs covering
    the region, or ``None`` when the decomposition would exceed
    :data:`MAX_INTERVALS` (heavily interleaved masks).
    """
    full = (1 << width) - 1
    mask &= full
    value &= mask
    if mask == 0:
        return [(0, full)]
    low = (mask & -mask).bit_length() - 1  # lowest cared bit
    free_above = [b for b in range(low, width) if not (mask >> b) & 1]
    if 1 << len(free_above) > MAX_INTERVALS:
        return None
    run = (1 << low) - 1  # the contiguous free run below the cared bits
    points = []
    for bits in range(1 << len(free_above)):
        v = value
        for j, pos in enumerate(free_above):
            if (bits >> j) & 1:
                v |= 1 << pos
        points.append(v)
    points.sort()
    intervals: list = []
    for lo in points:
        hi = lo + run
        if intervals and intervals[-1][1] + 1 == lo:
            intervals[-1] = (intervals[-1][0], hi)
        else:
            intervals.append((lo, hi))
    return intervals


class TableFdd:
    """The decision diagram of one table, with interned nodes and leaves.

    The intern tables live on the diagram and survive rebuilds, which is
    what makes leaf identity a stable fingerprint: two rebuilds that give
    some key point the same winner hand out the *same* leaf object.
    """

    def __init__(self, widths: list) -> None:
        self.widths = list(widths)
        self._leaves: dict = {}
        self._nodes: dict = {}
        self._bands: dict = {}
        self.miss = self.leaf(None, ())
        self._root = self.miss  # empty table: MISS everywhere
        self._dirty = False
        self._opaque = False
        self._banded = False
        # Maintenance counters (surfaced through GateStats).
        self.fast_ops = 0
        self.rebuilds = 0

    # -- interning -----------------------------------------------------------

    def leaf(self, action: Optional[str], args: tuple) -> FddLeaf:
        key = (action, args)
        found = self._leaves.get(key)
        if found is None:
            found = FddLeaf(action, args)
            self._leaves[key] = found
        return found

    def node(self, index: int, edges: list):
        """Intern ``(index, edges)`` after reduction (merge + collapse)."""
        merged: list = []
        for hi, child in edges:
            if merged and merged[-1][1] is child:
                merged[-1] = (hi, child)
            else:
                merged.append((hi, child))
        if len(merged) == 1:
            return merged[0][1]
        key = (index, tuple((hi, id(child)) for hi, child in merged))
        found = self._nodes.get(key)
        if found is None:
            found = FddNode(index, tuple(merged))
            self._nodes[key] = found
        return found

    def band(self, key: tuple, child) -> FddBand:
        ikey = (key, id(child))
        found = self._bands.get(ikey)
        if found is None:
            found = FddBand(key, child)
            self._bands[ikey] = found
        return found

    # -- state-change notifications ------------------------------------------

    def fast_insert(self, cubes: list, leaf: FddLeaf) -> bool:
        """Try the disjoint-insert fast path; returns True on success.

        When the inserted entry's region is currently all-MISS the insert
        commutes with precedence — no existing entry matches anywhere in
        the region, so the new entry wins exactly its region regardless
        of priorities — and a single overwrite keeps the diagram exact.
        Anything else (overlap, opacity, or an already-dirty diagram)
        returns False and the caller marks the diagram dirty instead.
        """
        if self._dirty or self._opaque:
            return False
        if self._region_decisions(cubes) != {self.miss}:
            return False
        self._root = self.overwrite(self._root, cubes, leaf)
        self.fast_ops += 1
        return True

    def mark_dirty(self) -> None:
        self._dirty = True

    def reset(self) -> None:
        """The table was cleared: back to MISS everywhere."""
        self._root = self.miss
        self._dirty = False
        self._opaque = False
        self._banded = False

    # -- building ------------------------------------------------------------

    def entry_cubes(self, entry) -> Optional[list]:
        """Per-key interval lists for one entry, or None when undecomposable."""
        from repro.runtime.entries import as_value_mask

        cubes: list = []
        for match, width in zip(entry.matches, self.widths):
            value, mask = as_value_mask(match, width)
            intervals = mask_intervals(value, mask, width)
            if intervals is None:
                return None
            cubes.append(intervals)
        return cubes

    def entry_cubes_degraded(self, entry) -> tuple:
        """``(cubes, fuzzy)``: like :meth:`entry_cubes`, but an
        undecomposable key gets the full-domain interval (the region is
        *overapproximated* on that key) and ``fuzzy`` flips True."""
        from repro.runtime.entries import as_value_mask

        cubes: list = []
        fuzzy = False
        for match, width in zip(entry.matches, self.widths):
            value, mask = as_value_mask(match, width)
            intervals = mask_intervals(value, mask, width)
            if intervals is None:
                intervals = [(0, (1 << width) - 1)]
                fuzzy = True
            cubes.append(intervals)
        return cubes, fuzzy

    def entry_band_key(self, entry) -> tuple:
        """The canonical content key a band carries for ``entry``."""
        from repro.runtime.entries import as_value_mask

        pairs: list = []
        for match, width in zip(entry.matches, self.widths):
            value, mask = as_value_mask(match, width)
            mask &= (1 << width) - 1
            pairs.append((value & mask, mask))
        return (entry.action, entry.args, tuple(pairs))

    def rebuild(self, active_entries: list) -> None:
        """Recompute the diagram from the eclipse-elided active list."""
        self.rebuilds += 1
        self._dirty = False
        self._opaque = False
        self._banded = False
        if len(active_entries) > MAX_ENTRIES:
            self._root = None
            self._opaque = True
            return
        root = self.miss
        bands = 0
        for entry in reversed(active_entries):
            cubes, fuzzy = self.entry_cubes_degraded(entry)
            if fuzzy:
                bands += 1
                if bands > MAX_BANDS:
                    self._root = None
                    self._opaque = True
                    return
                root = self.shade(root, cubes, self.entry_band_key(entry))
            else:
                root = self.overwrite(
                    root, cubes, self.leaf(entry.action, entry.args)
                )
        self._banded = bands > 0
        self._root = root

    def root(self, state=None):
        """Current root, rebuilding lazily; None while opaque.

        ``state`` is the owning :class:`~repro.runtime.semantics.TableState`
        (needed only when dirty, to fetch the active entries).
        """
        if self._dirty:
            if state is None:
                return None
            self.rebuild(state.active_entries())
        return self._root

    def overwrite(self, node, cubes: list, leaf: FddLeaf, index: int = 0):
        """Paint the region described by ``cubes[index:]`` with ``leaf``."""
        return self._paint(node, cubes, lambda _old: leaf, index)

    def shade(self, node, cubes: list, key: tuple, index: int = 0):
        """Wrap every terminal in the region in a band carrying ``key``.

        Used for fuzzy entries: the region is the entry's match-region
        *overapproximation*, and the band keeps the decision underneath
        reachable for points the entry doesn't actually match.
        """
        return self._paint(node, cubes, lambda old: self.band(key, old), index)

    def _paint(self, node, cubes: list, terminal, index: int):
        """Apply ``terminal`` to every decision inside the ``cubes`` region.

        At ``index == len(cubes)`` every interior key has been traversed,
        so ``node`` is a terminal (leaf or band) — ``terminal`` maps it to
        its replacement.
        """
        if index == len(cubes):
            return terminal(node)
        intervals = cubes[index]
        full = (1 << self.widths[index]) - 1
        if intervals == [(0, full)]:
            # Don't-care on this key: recurse through (or past) it.
            if isinstance(node, FddNode) and node.index == index:
                return self.node(
                    index,
                    [
                        (hi, self._paint(child, cubes, terminal, index + 1))
                        for hi, child in node.edges
                    ],
                )
            return self._paint(node, cubes, terminal, index + 1)
        if isinstance(node, FddNode) and node.index == index:
            return self.node(
                index, self._paint_edges(node.edges, intervals, cubes, terminal, index)
            )
        # ``node`` ignores this key: manufacture a node splitting on it.
        base_edges = [(full, node)]
        return self.node(
            index, self._paint_edges(base_edges, intervals, cubes, terminal, index)
        )

    def _paint_edges(
        self, edges, intervals: list, cubes: list, terminal, index: int
    ) -> list:
        """Split ``edges`` on ``intervals``; inside them recurse, outside keep."""
        out: list = []
        pending = list(intervals)
        lo = 0
        for hi, child in edges:
            seg_lo = lo
            while pending and pending[0][0] <= hi:
                ilo, ihi = pending[0]
                ilo = max(ilo, seg_lo)
                ihi_clamped = min(ihi, hi)
                if ilo > seg_lo:
                    out.append((ilo - 1, child))
                out.append(
                    (ihi_clamped, self._paint(child, cubes, terminal, index + 1))
                )
                seg_lo = ihi_clamped + 1
                if ihi <= hi:
                    pending.pop(0)
                else:
                    break  # interval continues into the next edge
            if seg_lo <= hi:
                out.append((hi, child))
            lo = hi + 1
        return out

    # -- queries -------------------------------------------------------------

    def lookup(self, key_values) -> Optional[FddLeaf]:
        """The winning leaf at one concrete key point; None while opaque.

        Exact even through bands: a band's entry either matches the
        point (trivial value/mask test — only the *interval* form of the
        region blew up) and wins, or the point falls through to the
        wrapped decision.
        """
        node = self._root
        if node is None or self._dirty:
            return None
        while not isinstance(node, FddLeaf):
            if isinstance(node, FddNode):
                node = node.child_at(key_values[node.index])
            elif node.matches(key_values):
                return self.leaf(node.key[0], node.key[1])
            else:
                node = node.child
        return node

    def _region_decisions(self, cubes: list, node=None) -> set:
        """Every leaf reachable from the region described by ``cubes``."""
        if node is None:
            node = self._root
        out: set = set()
        stack = [node]
        while stack:
            node = stack.pop()
            if not isinstance(node, FddNode):
                # Region membership can't see through a band (that's the
                # part that blew up), so a band counts as an unknown
                # decision — never equal to {miss}, so fast_insert
                # declines and the caller rebuilds.
                out.add(node)
                continue
            intervals = cubes[node.index]
            lo = 0
            for hi, child in node.edges:
                if any(ilo <= hi and lo <= ihi for ilo, ihi in intervals):
                    stack.append(child)
                lo = hi + 1
        return out

    # -- invariants (for the property tests) ---------------------------------

    def check_invariants(self, node=None) -> int:
        """Verify ordered/reduced/canonical structure; returns node count."""
        if node is None:
            node = self._root
        if node is None:
            return 0
        seen: set = set()
        stack = [(node, -1)]
        while stack:
            current, min_index = stack.pop()
            if isinstance(current, FddLeaf):
                assert self._leaves.get((current.action, current.args)) is current, (
                    "leaf not interned"
                )
                continue
            if isinstance(current, FddBand):
                assert self._bands.get((current.key, id(current.child))) is current, (
                    "band not interned"
                )
                assert not isinstance(current.child, FddNode), (
                    "band over an interior node"
                )
                assert len(current.key[2]) == len(self.widths), (
                    "band key arity mismatch"
                )
                stack.append((current.child, min_index))
                continue
            assert current.index > min_index, "key order violated"
            assert current.index < len(self.widths), "key index out of range"
            full = (1 << self.widths[current.index]) - 1
            assert current.edges[-1][0] == full, "edges must cover the domain"
            assert len(current.edges) >= 2, "unreduced single-edge node"
            prev_hi = -1
            prev_child = None
            for hi, child in current.edges:
                assert hi > prev_hi, "edge bounds must increase"
                assert child is not prev_child, "adjacent equal children unmerged"
                prev_hi, prev_child = hi, child
            key = (current.index, tuple((hi, id(c)) for hi, c in current.edges))
            assert self._nodes.get(key) is current, "node not interned"
            if id(current) in seen:
                continue
            seen.add(id(current))
            for _hi, child in current.edges:
                stack.append((child, current.index))
        return len(seen)

    def node_count(self) -> int:
        root = self._root
        if root is None or isinstance(root, FddLeaf):
            return 0
        seen: set = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if not isinstance(node, FddNode) or id(node) in seen:
                continue
            seen.add(id(node))
            for _hi, child in node.edges:
                stack.append(child)
        return len(seen)


__all__ = [
    "FddBand",
    "FddLeaf",
    "FddNode",
    "MAX_BANDS",
    "MAX_ENTRIES",
    "MAX_INTERVALS",
    "TableFdd",
    "mask_intervals",
]
