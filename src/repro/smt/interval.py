"""Unsigned-interval abstract interpretation over terms.

A cheap pre-check used by the solver facade: most executability queries in
network programs compare fields against constants, and an interval sweep
decides them without bit-blasting.  The paper's "100 ms per update" budget
depends on most queries being answered by fast paths like this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.smt import terms as T
from repro.smt.terms import Term


@dataclass(frozen=True)
class Interval:
    """A closed unsigned interval [lo, hi] of values a term may take."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def intersects(self, other: "Interval") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi


# Tri-state results for boolean terms under the abstraction.
DEFINITELY_TRUE = "true"
DEFINITELY_FALSE = "false"
UNKNOWN = "unknown"


def _full(width: int) -> Interval:
    return Interval(0, (1 << width) - 1)


def eval_interval(term: Term, memo: Optional[dict[int, Interval]] = None) -> Interval:
    """Interval of possible values of a bitvector term (free vars = full range)."""
    if not term.is_bv:
        raise T.SortError("eval_interval expects a bitvector term")
    if memo is None:
        memo = {}
    cached = memo.get(id(term))
    if cached is not None:
        return cached
    # Iterative post-order so deeply nested entry-match chains don't blow
    # the Python stack; boolean subterms are evaluated into the same memo.
    for node in T.iter_dag(term):
        if id(node) in memo:
            continue
        if node.is_bv:
            memo[id(node)] = _interval_node(node, memo)
        else:
            memo[id(node)] = _bool_node(node, memo)
    return memo[id(term)]


def _interval_node(node: Term, memo) -> Interval:
    op = node.op
    width = node.width
    mask = (1 << width) - 1
    if op == T.OP_BVCONST:
        return Interval(node.payload, node.payload)
    if op in (T.OP_DATA_VAR, T.OP_CONTROL_VAR):
        return _full(width)
    if op == T.OP_ADD:
        a = memo[id(node.args[0])]
        b = memo[id(node.args[1])]
        if a.hi + b.hi <= mask:
            return Interval(a.lo + b.lo, a.hi + b.hi)
        return _full(width)
    if op == T.OP_SUB:
        a = memo[id(node.args[0])]
        b = memo[id(node.args[1])]
        if a.lo - b.hi >= 0:
            return Interval(a.lo - b.hi, a.hi - b.lo)
        return _full(width)
    if op == T.OP_AND:
        a = memo[id(node.args[0])]
        b = memo[id(node.args[1])]
        return Interval(0, min(a.hi, b.hi))
    if op == T.OP_OR:
        a = memo[id(node.args[0])]
        b = memo[id(node.args[1])]
        return Interval(max(a.lo, b.lo), mask if a.hi | b.hi else 0)
    if op == T.OP_LSHR:
        a = memo[id(node.args[0])]
        b = memo[id(node.args[1])]
        if b.is_point and b.lo < width:
            return Interval(a.lo >> b.lo, a.hi >> b.lo)
        return Interval(0, a.hi)
    if op == T.OP_SHL:
        a = memo[id(node.args[0])]
        b = memo[id(node.args[1])]
        if b.is_point and b.lo < width and a.hi << b.lo <= mask:
            return Interval(a.lo << b.lo, a.hi << b.lo)
        return _full(width)
    if op == T.OP_EXTRACT:
        hi, lo = node.payload
        inner = memo[id(node.args[0])]
        if inner.hi < (1 << (hi + 1)) and lo == 0:
            return Interval(inner.lo & ((1 << (hi + 1)) - 1), inner.hi)
        return _full(width)
    if op == T.OP_CONCAT:
        a = memo[id(node.args[0])]
        b = memo[id(node.args[1])]
        lo_width = node.args[1].width
        return Interval((a.lo << lo_width) | b.lo, (a.hi << lo_width) | b.hi)
    if op == T.OP_ITE:
        cond = memo[id(node.args[0])]
        if cond == DEFINITELY_TRUE:
            return memo[id(node.args[1])]
        if cond == DEFINITELY_FALSE:
            return memo[id(node.args[2])]
        a = memo[id(node.args[1])]
        b = memo[id(node.args[2])]
        return Interval(min(a.lo, b.lo), max(a.hi, b.hi))
    # mul, xor, not, neg: give up precisely but stay sound.
    return _full(width)


def eval_bool(term: Term, memo: Optional[dict[int, Interval]] = None) -> str:
    """Tri-state evaluation of a boolean term under the interval abstraction."""
    if not term.is_bool:
        raise T.SortError("eval_bool expects a boolean term")
    if memo is None:
        memo = {}
    cached = memo.get(id(term))
    if cached is not None:
        return cached
    for node in T.iter_dag(term):
        if id(node) in memo:
            continue
        if node.is_bv:
            memo[id(node)] = _interval_node(node, memo)
        else:
            memo[id(node)] = _bool_node(node, memo)
    return memo[id(term)]


def _bool_node(term: Term, memo) -> str:
    op = term.op
    if op == T.OP_BOOLCONST:
        return DEFINITELY_TRUE if term.payload else DEFINITELY_FALSE
    if op == T.OP_BOOLVAR:
        return UNKNOWN
    if op == T.OP_BNOT:
        inner = memo[id(term.args[0])]
        if inner == DEFINITELY_TRUE:
            return DEFINITELY_FALSE
        if inner == DEFINITELY_FALSE:
            return DEFINITELY_TRUE
        return UNKNOWN
    if op == T.OP_BAND:
        results = [memo[id(a)] for a in term.args]
        if DEFINITELY_FALSE in results:
            return DEFINITELY_FALSE
        if all(r == DEFINITELY_TRUE for r in results):
            return DEFINITELY_TRUE
        return UNKNOWN
    if op == T.OP_BOR:
        results = [memo[id(a)] for a in term.args]
        if DEFINITELY_TRUE in results:
            return DEFINITELY_TRUE
        if all(r == DEFINITELY_FALSE for r in results):
            return DEFINITELY_FALSE
        return UNKNOWN
    if op == T.OP_EQ:
        a, b = term.args
        if a.is_bool:
            ra, rb = memo[id(a)], memo[id(b)]
            if UNKNOWN in (ra, rb):
                return UNKNOWN
            return DEFINITELY_TRUE if ra == rb else DEFINITELY_FALSE
        ia, ib = memo[id(a)], memo[id(b)]
        if not ia.intersects(ib):
            return DEFINITELY_FALSE
        if ia.is_point and ib.is_point and ia.lo == ib.lo:
            return DEFINITELY_TRUE
        return UNKNOWN
    if op == T.OP_ULT:
        ia = memo[id(term.args[0])]
        ib = memo[id(term.args[1])]
        if ia.hi < ib.lo:
            return DEFINITELY_TRUE
        if ia.lo >= ib.hi:
            return DEFINITELY_FALSE
        return UNKNOWN
    if op == T.OP_ULE:
        ia = memo[id(term.args[0])]
        ib = memo[id(term.args[1])]
        if ia.hi <= ib.lo:
            return DEFINITELY_TRUE
        if ia.lo > ib.hi:
            return DEFINITELY_FALSE
        return UNKNOWN
    if op == T.OP_ITE:
        cond = memo[id(term.args[0])]
        if cond == DEFINITELY_TRUE:
            return memo[id(term.args[1])]
        if cond == DEFINITELY_FALSE:
            return memo[id(term.args[2])]
        ra = memo[id(term.args[1])]
        rb = memo[id(term.args[2])]
        if ra == rb and ra != UNKNOWN:
            return ra
        return UNKNOWN
    raise T.SortError(f"unknown boolean operator {op!r}")
