"""An incremental CDCL SAT solver with solve-under-assumptions.

This replaces the original one-shot chronological-backtracking DPLL.  The
queries Flay asks (branch executability / constancy of the bit-blasted
program formula under a control-plane assignment) arrive as a *stream* of
closely-related CNFs, so the solver is built around the incremental
interface Z3 gives the paper's prototype:

* clauses may be added at any time (:meth:`SatSolver.add_clause`) and the
  clause database — including everything *learned* — persists across
  :meth:`SatSolver.solve` calls;
* :meth:`SatSolver.solve` takes ``assumptions``: literals that hold for
  this call only.  A query is phrased as a fresh *activation literal*
  guarding its root assertion, so probing a query never poisons the
  database for the next one;
* conflict analysis is first-UIP with learned-clause recording and
  non-chronological backjumping, decisions use an EVSIDS activity heap
  with phase saving, restarts follow the Luby sequence, and the learned
  database is periodically reduced by clause activity.

Variables are positive integers; literals are non-zero integers where a
negative literal is the negation of its absolute value — the DIMACS
convention, unchanged from the DPLL this module used to hold.

The clause database lives in a :class:`~repro.smt.arena.ClauseArena`:
clauses are integer references (*crefs*) into one flat literal buffer,
watch lists are lists of crefs, and the propagation loop walks
contiguous ``array('i')`` storage instead of per-clause objects.  That
makes :meth:`SatSolver.fork` a handful of array copies, and
:meth:`SatSolver.snapshot` a picklable blob — the enabler for the batch
scheduler's process-pool executor and for warm-state persistence.

The search budget is counted in **conflicts**, not decisions: CDCL makes
decisions nearly free (a heap pop plus propagation) while each conflict
pays for analysis and a learned clause, so conflicts are the honest unit
of work.  Exceeding ``max_conflicts`` raises :class:`SolverBudgetExceeded`
and leaves the solver reusable (the partial trail is undone, learned
clauses are kept).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.smt.arena import ClauseArena

SAT = "sat"
UNSAT = "unsat"

_RESCALE_LIMIT = 1e100
_NO_REASON = -1


class SolverBudgetExceeded(RuntimeError):
    """The conflict budget ran out before the search concluded."""


@dataclass
class SatStats:
    """Cumulative search counters, across every :meth:`SatSolver.solve`."""

    solves: int = 0
    decisions: int = 0
    conflicts: int = 0
    propagations: int = 0
    learned: int = 0
    deleted: int = 0
    restarts: int = 0

    def snapshot(self) -> "SatStats":
        return SatStats(
            self.solves,
            self.decisions,
            self.conflicts,
            self.propagations,
            self.learned,
            self.deleted,
            self.restarts,
        )

    def since(self, baseline: "SatStats") -> "SatStats":
        return SatStats(
            self.solves - baseline.solves,
            self.decisions - baseline.decisions,
            self.conflicts - baseline.conflicts,
            self.propagations - baseline.propagations,
            self.learned - baseline.learned,
            self.deleted - baseline.deleted,
            self.restarts - baseline.restarts,
        )

    def add(self, other: "SatStats") -> None:
        self.solves += other.solves
        self.decisions += other.decisions
        self.conflicts += other.conflicts
        self.propagations += other.propagations
        self.learned += other.learned
        self.deleted += other.deleted
        self.restarts += other.restarts


def luby(i: int) -> int:
    """The i-th term (1-based) of the Luby restart sequence (1,1,2,1,1,2,4,…)."""
    size, seq = 1, 0
    while size < i:
        seq += 1
        size = 2 * size + 1
    i -= 1  # 0-based offset into the subsequence of length ``size``
    while size - 1 != i:
        size = (size - 1) // 2
        seq -= 1
        i %= size
    return 1 << seq


class SatSolver:
    """Incremental CDCL over a persistent arena-backed clause database."""

    RESTART_BASE = 64  # conflicts before the first Luby restart

    def __init__(self) -> None:
        self.stats = SatStats()
        self._arena = ClauseArena()
        self._clauses: list[int] = []  # problem-clause crefs
        self._learned: list[int] = []  # learned-clause crefs
        self._num_vars = 0
        self._ok = True  # False once the database is unconditionally UNSAT
        self._model: Optional[dict[int, bool]] = None
        # Raw assignment snapshot from the last SAT answer; the model dict
        # is materialized lazily (probes rarely read more than a few vars).
        self._model_assign: Optional[list] = None
        # Per-variable state, index 0 unused.
        self._assign: list[Optional[bool]] = [None]
        self._level: list[int] = [0]
        self._reason: list[int] = [_NO_REASON]  # cref, or _NO_REASON
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [False]  # saved polarity; default False
        # Trail.
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        # Two-watched-literal scheme: watches[lit] holds the crefs of the
        # clauses currently watching ``lit``; they are visited when
        # ``lit`` becomes false.
        self._watches: dict[int, list[int]] = {}
        # EVSIDS decision heap (max-heap via negated activity, with stale
        # entries skipped lazily on pop).
        self._heap: list[tuple[float, int]] = []
        # Resume point for the linear decision sweep: variables below the
        # hint are known assigned, so a conflict-free solve over a large
        # database assigns its variables in one O(n) pass instead of
        # restarting the scan at 1 for every decision.
        self._sweep_hint = 1
        # True while a decide_vars-scoped solve runs: scoped probes never
        # consult the decision heap, so backtracking skips the heap pushes.
        self._scoped = False
        # Dead-literal bookkeeping for arena compaction.  Forked solvers
        # never compact: a session fork marks inherited learned clauses by
        # cref, and compaction would renumber them.
        self._dead_lits = 0
        self._compactable = True
        self._var_inc = 1.0
        self._var_decay = 1.0 / 0.95
        self._cla_inc = 1.0
        self._cla_decay = 1.0 / 0.999
        self._max_learnts = 4000.0
        self._learnt_growth = 1.3

    # -- variable / clause management -----------------------------------------

    def new_var(self) -> int:
        self._num_vars += 1
        self._assign.append(None)
        self._level.append(0)
        self._reason.append(_NO_REASON)
        self._activity.append(0.0)
        self._phase.append(False)
        return self._num_vars

    def _ensure_var(self, var: int) -> None:
        while self._num_vars < var:
            self.new_var()

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    @property
    def num_learned(self) -> int:
        return len(self._learned)

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a problem clause.  Legal at any time between solves.

        Mutating the clause set invalidates the cached model from a prior
        ``SAT`` answer — :meth:`model` returns ``None`` until the next
        successful :meth:`solve`.
        """
        self._model = None
        self._model_assign = None
        if not self._ok:
            return  # already unconditionally UNSAT; nothing can fix that
        seen: set[int] = set()
        filtered: list[int] = []
        for lit in lits:
            if lit == 0:
                raise ValueError("literal 0 is reserved")
            if -lit in seen:
                return  # tautology: clause is always satisfied
            if lit in seen:
                continue
            seen.add(lit)
            filtered.append(lit)
            self._ensure_var(abs(lit))
        # Incremental adds land while the trail holds root-level facts:
        # drop literals already false at level 0, stop if one is true.
        self._backtrack(0)
        reduced: list[int] = []
        for lit in filtered:
            val = self._value(lit)
            if val is True:
                return  # satisfied at the root level already
            if val is None:
                reduced.append(lit)
        if not reduced:
            self._ok = False
            return
        if len(reduced) == 1:
            if not self._assert_root(reduced[0]):
                self._ok = False
            return
        self._attach(self._arena.add(reduced))

    def _attach(self, cref: int) -> None:
        arena = self._arena
        base = arena.start[cref]
        for lit in (arena.lits[base], arena.lits[base + 1]):
            self._watches.setdefault(lit, []).append(cref)
        if arena.learned[cref]:
            self._learned.append(cref)
        else:
            self._clauses.append(cref)

    def _assert_root(self, lit: int) -> bool:
        """Enqueue a root-level fact and propagate; False on conflict."""
        val = self._value(lit)
        if val is False:
            return False
        if val is None:
            self._enqueue(lit, _NO_REASON)
        return self._propagate() == _NO_REASON

    # -- assignment primitives -------------------------------------------------

    def _value(self, lit: int) -> Optional[bool]:
        val = self._assign[abs(lit)]
        if val is None:
            return None
        return val if lit > 0 else not val

    def _enqueue(self, lit: int, reason: int) -> None:
        var = abs(lit)
        self._assign[var] = lit > 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _backtrack(self, level: int) -> None:
        """Undo the trail down to ``level``, saving phases."""
        if self._decision_level() <= level:
            return
        mark = self._trail_lim[level]
        assign, phase, reason = self._assign, self._phase, self._reason
        heap, activity = self._heap, self._activity
        scoped = self._scoped  # scoped probes never consult the heap
        for i in range(len(self._trail) - 1, mark - 1, -1):
            lit = self._trail[i]
            var = lit if lit > 0 else -lit
            phase[var] = lit > 0
            assign[var] = None
            reason[var] = _NO_REASON
            if not scoped:
                heapq.heappush(heap, (-activity[var], var))
        del self._trail[mark:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)
        self._sweep_hint = 1

    # -- propagation -----------------------------------------------------------

    def _propagate(self) -> int:
        """Unit propagation; returns the conflicting cref, or _NO_REASON.

        The watch-repair loop is inlined with local bindings and walks the
        arena's flat literal buffer — this is the solver's innermost loop,
        and per-probe latency in the session's warm path is dominated by
        it.
        """
        trail = self._trail
        assign = self._assign
        watches = self._watches
        arena = self._arena
        alits = arena.lits
        astart = arena.start
        asize = arena.size
        trail_lim_len = len(self._trail_lim)
        propagated = 0
        conflict = _NO_REASON
        while self._qhead < len(trail):
            lit = trail[self._qhead]
            self._qhead += 1
            propagated += 1
            falsified = -lit
            watching = watches.get(falsified)
            if not watching:
                continue
            kept: list[int] = []
            for index, cref in enumerate(watching):
                base = astart[cref]
                if alits[base] == falsified:
                    alits[base], alits[base + 1] = alits[base + 1], alits[base]
                other = alits[base]
                ovar = other if other > 0 else -other
                oval = assign[ovar]
                if oval is not None and oval == (other > 0):
                    kept.append(cref)  # satisfied: keep the watch
                    continue
                end = base + asize[cref]
                for i in range(base + 2, end):
                    wlit = alits[i]
                    wval = assign[wlit if wlit > 0 else -wlit]
                    if wval is None or wval == (wlit > 0):
                        alits[base + 1], alits[i] = alits[i], alits[base + 1]
                        watchers = watches.get(wlit)
                        if watchers is None:
                            watches[wlit] = [cref]
                        else:
                            watchers.append(cref)
                        break
                else:
                    # No replacement: unit on `other`, or conflicting.
                    kept.append(cref)
                    if oval is None:
                        assign[ovar] = other > 0
                        self._level[ovar] = trail_lim_len
                        self._reason[ovar] = cref
                        trail.append(other)
                    else:
                        kept.extend(watching[index + 1 :])
                        conflict = cref
                        break
            watches[falsified] = kept
            if conflict != _NO_REASON:
                self._qhead = len(trail)
                break
        self.stats.propagations += propagated
        return conflict

    # -- activities ------------------------------------------------------------

    def _bump_var(self, var: int) -> None:
        act = self._activity[var] + self._var_inc
        self._activity[var] = act
        if act > _RESCALE_LIMIT:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
            act = self._activity[var]
        if self._assign[var] is None:
            heapq.heappush(self._heap, (-act, var))

    def _bump_clause(self, cref: int) -> None:
        activity = self._arena.activity
        activity[cref] += self._cla_inc
        if activity[cref] > _RESCALE_LIMIT:
            for c in self._learned:
                activity[c] *= 1e-100
            self._cla_inc *= 1e-100

    def _pick_branch(self) -> Optional[int]:
        heap = self._heap
        assign = self._assign
        while heap:
            neg_act, var = heapq.heappop(heap)
            if assign[var] is None and -neg_act >= self._activity[var]:
                return var if self._phase[var] else -var
        # Heap exhausted (fresh vars never pushed, or stale entries only):
        # linear sweep, resumed where the last one stopped.
        for var in range(self._sweep_hint, self._num_vars + 1):
            if assign[var] is None:
                self._sweep_hint = var + 1
                return var if self._phase[var] else -var
        self._sweep_hint = self._num_vars + 1
        return None

    # -- conflict analysis -----------------------------------------------------

    def _clause_lits(self, cref: int) -> list[int]:
        arena = self._arena
        base = arena.start[cref]
        return arena.lits[base:base + arena.size[cref]].tolist()

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """First-UIP analysis: (learned clause, backjump level).

        The learned clause's first literal is the asserting literal (the
        UIP, negated); the second — when present — carries the highest
        remaining decision level, which is where the solver backjumps to.
        """
        learned: list[int] = [0]  # slot 0: the asserting literal
        seen: set[int] = set()
        counter = 0  # unresolved literals at the current decision level
        current = self._decision_level()
        reason_lits: Optional[list[int]] = self._clause_lits(conflict)
        skip: Optional[int] = None  # the literal already resolved on
        index = len(self._trail)
        while True:
            if reason_lits is None:  # decision variable: no antecedent
                raise AssertionError("reached a decision without finding the UIP")
            for lit in reason_lits:
                if lit == skip:
                    continue
                var = abs(lit)
                if var in seen or self._level[var] == 0:
                    continue
                seen.add(var)
                self._bump_var(var)
                if self._level[var] >= current:
                    counter += 1
                else:
                    learned.append(lit)
            # Walk the trail backwards to the next marked literal.
            while True:
                index -= 1
                if abs(self._trail[index]) in seen:
                    break
            uip = self._trail[index]
            var = abs(uip)
            seen.remove(var)
            counter -= 1
            if counter == 0:
                learned[0] = -uip
                break
            antecedent = self._reason[var]
            if antecedent != _NO_REASON and self._arena.learned[antecedent]:
                self._bump_clause(antecedent)
            reason_lits = (
                self._clause_lits(antecedent)
                if antecedent != _NO_REASON
                else None
            )
            skip = uip
        # Cheap self-subsumption: drop literals whose reason is fully marked.
        learned = self._minimize(learned, seen_roots=set(abs(l) for l in learned))
        if len(learned) == 1:
            return learned, 0
        # Move the highest-level remaining literal into slot 1.
        best = 1
        for i in range(2, len(learned)):
            if self._level[abs(learned[i])] > self._level[abs(learned[best])]:
                best = i
        learned[1], learned[best] = learned[best], learned[1]
        return learned, self._level[abs(learned[1])]

    def _minimize(self, learned: list[int], seen_roots: set[int]) -> list[int]:
        """Drop a literal when its whole reason is already in the clause."""
        kept = [learned[0]]
        arena = self._arena
        alits, astart, asize = arena.lits, arena.start, arena.size
        for lit in learned[1:]:
            reason = self._reason[abs(lit)]
            if reason == _NO_REASON:
                kept.append(lit)
                continue
            base = astart[reason]
            if all(
                other == -lit
                or abs(other) in seen_roots
                or self._level[abs(other)] == 0
                for other in alits[base:base + asize[reason]]
            ):
                continue  # implied by the rest of the clause
            kept.append(lit)
        return kept

    def _record_learned(self, lits: list[int]) -> None:
        self.stats.learned += 1
        if len(lits) == 1:
            self._enqueue(lits[0], _NO_REASON)
            return
        cref = self._arena.add(lits, learned=True)
        self._arena.activity[cref] = self._cla_inc
        self._attach(cref)
        self._enqueue(lits[0], cref)

    def _reduce_db(self) -> None:
        """Halve the learned set, keeping active and locked clauses."""
        arena = self._arena
        activity = arena.activity
        locked = {r for r in self._reason if r != _NO_REASON}
        self._learned.sort(key=activity.__getitem__)
        keep_from = len(self._learned) // 2
        threshold = self._cla_inc / max(1, len(self._learned))
        survivors: list[int] = []
        removed: set[int] = set()
        for i, cref in enumerate(self._learned):
            useful = i >= keep_from or activity[cref] > threshold
            if arena.size[cref] <= 2 or cref in locked or useful:
                survivors.append(cref)
            else:
                removed.add(cref)
        if not removed:
            return
        self.stats.deleted += len(removed)
        self._learned = survivors
        for cref in removed:
            arena.dead[cref] = 1
            self._dead_lits += arena.size[cref]
        for lit, watching in self._watches.items():
            self._watches[lit] = [c for c in watching if c not in removed]

    def _compact(self) -> None:
        """Rebuild the arena without dead rows, renumbering every cref.

        Only ever called between solves, at decision level 0, and never on
        a forked solver (a session fork pins inherited learned clauses by
        cref — see :meth:`fork`).
        """
        arena = self._arena
        fresh = ClauseArena()
        remap: dict[int, int] = {}
        for group in (self._clauses, self._learned):
            for cref in group:
                new = fresh.add(
                    self._clause_lits(cref), learned=bool(arena.learned[cref])
                )
                fresh.activity[new] = arena.activity[cref]
                remap[cref] = new
        self._arena = fresh
        self._clauses = [remap[c] for c in self._clauses]
        self._learned = [remap[c] for c in self._learned]
        self._watches = {
            lit: [remap[c] for c in watching]
            for lit, watching in self._watches.items()
        }
        self._reason = [
            remap[r] if r != _NO_REASON else _NO_REASON for r in self._reason
        ]
        self._dead_lits = 0

    # -- the solve loop --------------------------------------------------------

    def solve(
        self,
        assumptions: Optional[Sequence[int]] = None,
        max_conflicts: Optional[int] = None,
        max_decisions: Optional[int] = None,
        decide_vars: Optional[Sequence[int]] = None,
    ) -> str:
        """CDCL search.  Returns ``SAT`` or ``UNSAT``.

        ``assumptions`` hold for this call only: ``UNSAT`` then means
        "unsatisfiable together with the assumptions".  ``max_conflicts``
        bounds the search (``max_decisions`` is accepted as a legacy alias
        for the same budget); exceeding it raises
        :class:`SolverBudgetExceeded` with the solver left reusable, so
        callers can fall back to an overapproximation rather than stall
        the update path.

        ``decide_vars`` restricts the decision procedure to the given
        variables: once they (and the assumptions) are all assigned and
        propagation quiesces without conflict, the answer is ``SAT``
        *without* assigning the rest of the database.  This is only sound
        when the caller guarantees every clause not fully covered by
        ``decide_vars`` is extendable from any such partial assignment —
        the solver-session discipline, where all other clauses are acyclic
        Tseitin definitions (evaluate the unassigned gates bottom-up),
        activation guards (satisfiable by ``act = false``), or learned
        consequences of those.  The model then covers only the assigned
        variables.  ``None`` keeps the classic full-assignment behaviour.
        """
        budget = max_conflicts if max_conflicts is not None else max_decisions
        assumptions = list(assumptions) if assumptions else []
        for lit in assumptions:
            if lit == 0:
                raise ValueError("assumption literal must be non-zero")
            self._ensure_var(abs(lit))
        self._model = None
        self._model_assign = None
        self.stats.solves += 1
        if not self._ok:
            return UNSAT
        self._backtrack(0)
        if (
            self._compactable
            and self._dead_lits * 2 > len(self._arena.lits)
            and self._dead_lits > 4096
        ):
            self._compact()
        if self._propagate() != _NO_REASON:
            self._ok = False
            return UNSAT
        try:
            self._scoped = decide_vars is not None
            result = self._search(assumptions, budget, decide_vars)
        finally:
            self._backtrack(0)
            self._scoped = False
        return result

    def _search(
        self,
        assumptions: list[int],
        budget: Optional[int],
        decide_vars: Optional[Sequence[int]] = None,
    ) -> str:
        conflicts_this_call = 0
        restart_number = 0
        restart_limit = self.RESTART_BASE * luby(1)
        conflicts_since_restart = 0
        decide_idx = 0  # scan position in decide_vars; reset on backtrack
        while True:
            conflict = self._propagate()
            if conflict != _NO_REASON:
                self.stats.conflicts += 1
                conflicts_this_call += 1
                conflicts_since_restart += 1
                if self._decision_level() <= len(assumptions):
                    # Conflict under the assumptions (or at the root):
                    # UNSAT for this call; root-level conflicts poison the
                    # database permanently.
                    if self._decision_level() == 0 or self._conflict_at_root(
                        conflict, assumptions
                    ):
                        self._ok = False
                    return UNSAT
                if budget is not None and conflicts_this_call > budget:
                    raise SolverBudgetExceeded(
                        f"exceeded {budget} conflicts"
                    )
                learned, back_level = self._analyze(conflict)
                self._backtrack(max(back_level, self._assumption_level(learned)))
                self._record_learned(learned)
                self._var_inc *= self._var_decay
                self._cla_inc *= self._cla_decay
                decide_idx = 0
                continue
            if conflicts_since_restart >= restart_limit:
                self.stats.restarts += 1
                restart_number += 1
                restart_limit = self.RESTART_BASE * luby(restart_number + 1)
                conflicts_since_restart = 0
                self._backtrack(len(assumptions) if self._decision_level() else 0)
                decide_idx = 0
                continue
            if len(self._learned) >= self._max_learnts:
                self._reduce_db()
                self._max_learnts *= self._learnt_growth
            if decide_vars is None:
                lit = self._next_decision(assumptions)
            else:
                lit, decide_idx = self._next_scoped_decision(
                    assumptions, decide_vars, decide_idx
                )
            if lit is None:
                # Snapshot the raw assignment (C-speed copy); the model
                # dict is materialized lazily in :meth:`model`.
                self._model_assign = self._assign.copy()
                return SAT
            if lit is UNSAT:  # an assumption is already falsified
                return UNSAT
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, _NO_REASON)

    def _next_decision(self, assumptions: list[int]):
        """Next decision literal: pending assumptions first, then VSIDS."""
        while self._decision_level() < len(assumptions):
            lit = assumptions[self._decision_level()]
            val = self._value(lit)
            if val is False:
                return UNSAT
            if val is True:
                # Already implied: open an empty level so level counting
                # still maps level i ↔ assumption i.
                self._trail_lim.append(len(self._trail))
                continue
            return lit
        return self._pick_branch()

    def _next_scoped_decision(
        self, assumptions: list[int], decide_vars: Sequence[int], idx: int
    ):
        """Decision restricted to ``decide_vars``: ``(lit, next_idx)``.

        Returns ``(None, idx)`` once every scoped variable is assigned —
        the partial-assignment SAT claim of ``solve(decide_vars=...)``."""
        while self._decision_level() < len(assumptions):
            lit = assumptions[self._decision_level()]
            val = self._value(lit)
            if val is False:
                return UNSAT, idx
            if val is True:
                self._trail_lim.append(len(self._trail))
                continue
            return lit, idx
        assign = self._assign
        phase = self._phase
        n = len(decide_vars)
        while idx < n:
            var = decide_vars[idx]
            idx += 1
            if assign[var] is None:
                return (var if phase[var] else -var), idx
        return None, idx

    def _assumption_level(self, learned: list[int]) -> int:
        """Assumption decisions may not be undone by a backjump to 0 while
        deeper assumption levels still hold facts the clause relies on."""
        return 0

    def _conflict_at_root(self, conflict: int, assumptions: list[int]) -> bool:
        """True when the conflict holds independently of the assumptions."""
        return all(
            self._level[abs(lit)] == 0 for lit in self._clause_lits(conflict)
        )

    def model(self) -> Optional[dict[int, bool]]:
        """Variable assignment from the last ``SAT`` answer.

        Invalidated by any :meth:`add_clause` since that answer.
        """
        if self._model is None and self._model_assign is not None:
            self._model = {
                var: value
                for var, value in enumerate(self._model_assign)
                if var and value is not None
            }
        return self._model

    def value_of(self, var: int) -> Optional[bool]:
        """One variable's value from the last ``SAT`` answer (no dict
        materialization — the cheap path for model decoding)."""
        snapshot = self._model_assign
        if snapshot is None or not 0 < var < len(snapshot):
            return None
        return snapshot[var]

    # -- forking (batch-scheduler worker sessions) ----------------------------

    def fork(self) -> "SatSolver":
        """An independent copy sharing no mutable state.

        The fork starts with the same problem and learned clauses, variable
        activities, and saved phases; budgets and statistics start fresh.
        Crefs are preserved (the arena is copied wholesale), so a session
        can mark the inherited learned clauses by cref — which is also why
        forks never compact their arena.  Used by the batch scheduler to
        hand each worker slice a warm private solver.
        """
        self._backtrack(0)
        twin = SatSolver()
        twin._arena = self._arena.copy()
        twin._clauses = list(self._clauses)
        twin._learned = list(self._learned)
        twin._num_vars = self._num_vars
        twin._ok = self._ok
        twin._assign = list(self._assign)
        twin._level = list(self._level)
        twin._reason = [_NO_REASON] * len(self._reason)
        twin._activity = list(self._activity)
        twin._phase = list(self._phase)
        twin._trail = list(self._trail)
        twin._qhead = len(twin._trail)
        twin._dead_lits = self._dead_lits
        twin._compactable = False
        twin._var_inc = self._var_inc
        twin._cla_inc = self._cla_inc
        twin._max_learnts = self._max_learnts
        twin._rebuild_watches()
        return twin

    def _rebuild_watches(self) -> None:
        """Watch the first two literals of every live clause, in database
        order — the deterministic layout a freshly-loaded solver has."""
        watches: dict[int, list[int]] = {}
        arena = self._arena
        alits, astart = arena.lits, arena.start
        for group in (self._clauses, self._learned):
            for cref in group:
                base = astart[cref]
                for lit in (alits[base], alits[base + 1]):
                    bucket = watches.get(lit)
                    if bucket is None:
                        watches[lit] = [cref]
                    else:
                        bucket.append(cref)
        self._watches = watches

    # -- snapshot / restore (process-pool transport, warm persistence) ---------

    def snapshot(self) -> dict:
        """A picklable blob of the full solver state, at decision level 0.

        Everything semantic is captured: the clause arena, variable
        assignments/levels (the root trail), activities, phases, and the
        EVSIDS/learnt-size parameters.  Watches and the decision heap are
        derived state and are rebuilt on :meth:`restore`.
        """
        self._backtrack(0)
        return {
            "arena": self._arena.copy(),
            "clauses": list(self._clauses),
            "learned": list(self._learned),
            "num_vars": self._num_vars,
            "ok": self._ok,
            "assign": list(self._assign),
            "level": list(self._level),
            "activity": list(self._activity),
            "phase": list(self._phase),
            "trail": list(self._trail),
            "dead_lits": self._dead_lits,
            "var_inc": self._var_inc,
            "cla_inc": self._cla_inc,
            "max_learnts": self._max_learnts,
        }

    @classmethod
    def restore(cls, blob: dict) -> "SatSolver":
        """Rebuild a solver from a :meth:`snapshot` blob."""
        twin = cls()
        twin._arena = blob["arena"].copy()
        twin._clauses = list(blob["clauses"])
        twin._learned = list(blob["learned"])
        twin._num_vars = blob["num_vars"]
        twin._ok = blob["ok"]
        twin._assign = list(blob["assign"])
        twin._level = list(blob["level"])
        twin._reason = [_NO_REASON] * len(twin._assign)
        twin._activity = list(blob["activity"])
        twin._phase = list(blob["phase"])
        twin._trail = list(blob["trail"])
        twin._qhead = len(twin._trail)
        twin._dead_lits = blob["dead_lits"]
        twin._var_inc = blob["var_inc"]
        twin._cla_inc = blob["cla_inc"]
        twin._max_learnts = blob["max_learnts"]
        twin._rebuild_watches()
        return twin

    def learned_clauses(self) -> list[list[int]]:
        """Snapshots of the current learned clauses (for session export)."""
        return [self._clause_lits(cref) for cref in self._learned]

    def import_learned(self, clauses: Iterable[Sequence[int]]) -> int:
        """Install externally learned clauses (logical consequences only).

        Returns how many clauses were installed.  Used when folding a
        worker session's learned clauses back into the shared session —
        the clauses must be consequences of this solver's database, which
        holds for any clause a fork learned over pre-fork variables.
        """
        count = 0
        for lits in clauses:
            if not self._ok:
                break
            self._backtrack(0)
            reduced: list[int] = []
            satisfied = False
            for lit in lits:
                if abs(lit) > self._num_vars:
                    reduced = []
                    satisfied = True  # unknown variable: skip the clause
                    break
                val = self._value(lit)
                if val is True:
                    satisfied = True
                    break
                if val is None:
                    reduced.append(lit)
            if satisfied:
                continue
            if not reduced:
                self._ok = False
                break
            if len(reduced) == 1:
                if not self._assert_root(reduced[0]):
                    self._ok = False
                count += 1
                continue
            self._attach(self._arena.add(reduced, learned=True))
            self.stats.learned += 1
            count += 1
        return count
