"""A small DPLL SAT solver with two-watched-literal propagation.

The queries Flay needs (branch executability under a concrete control-plane
assignment) bit-blast into modest CNF formulas, so a clean DPLL with watched
literals and a static activity heuristic is plenty.  Variables are positive
integers; literals are non-zero integers where a negative literal is the
negation of its absolute value — the DIMACS convention.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

SAT = "sat"
UNSAT = "unsat"


class SolverBudgetExceeded(RuntimeError):
    """The decision budget ran out before the search concluded."""


class Clause:
    __slots__ = ("lits",)

    def __init__(self, lits: Sequence[int]) -> None:
        self.lits = list(lits)


class SatSolver:
    """DPLL over a clause set added with :meth:`add_clause`."""

    def __init__(self) -> None:
        self._clauses: list[Clause] = []
        self._num_vars = 0
        self._trivially_unsat = False
        self._model: Optional[dict[int, bool]] = None

    def new_var(self) -> int:
        self._num_vars += 1
        return self._num_vars

    def add_clause(self, lits: Iterable[int]) -> None:
        seen: set[int] = set()
        filtered: list[int] = []
        for lit in lits:
            if lit == 0:
                raise ValueError("literal 0 is reserved")
            if -lit in seen:
                return  # tautology: clause is always satisfied
            if lit in seen:
                continue
            seen.add(lit)
            filtered.append(lit)
            self._num_vars = max(self._num_vars, abs(lit))
        if not filtered:
            self._trivially_unsat = True
            return
        self._clauses.append(Clause(filtered))

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    def solve(self, max_decisions: Optional[int] = None) -> str:
        """Run DPLL.  Returns ``SAT`` or ``UNSAT``.

        ``max_decisions`` bounds the search; exceeding it raises
        :class:`SolverBudgetExceeded` so callers can fall back to an
        overapproximation rather than stall the update path.
        """
        if self._trivially_unsat:
            self._model = None
            return UNSAT
        search = _Search(self._clauses, self._num_vars, max_decisions)
        result = search.run()
        self._model = search.model() if result == SAT else None
        return result

    def model(self) -> Optional[dict[int, bool]]:
        """Variable assignment from the last ``SAT`` answer."""
        return self._model


class _Search:
    """One DPLL search over a fixed clause set."""

    def __init__(
        self,
        clauses: list[Clause],
        num_vars: int,
        max_decisions: Optional[int],
    ) -> None:
        self.num_vars = num_vars
        self.max_decisions = max_decisions
        self.assignment: list[Optional[bool]] = [None] * (num_vars + 1)
        self.trail: list[int] = []
        self.trail_marks: list[int] = []
        self.decision_stack: list[int] = []
        self.queue_start = 0
        self.watches: dict[int, list[Clause]] = {}
        self.units: list[int] = []
        self.activity = [0.0] * (num_vars + 1)
        for clause in clauses:
            if len(clause.lits) == 1:
                self.units.append(clause.lits[0])
            else:
                for lit in clause.lits[:2]:
                    self.watches.setdefault(lit, []).append(clause)
            for lit in clause.lits:
                self.activity[abs(lit)] += 1.0 / len(clause.lits)

    def _value(self, lit: int) -> Optional[bool]:
        val = self.assignment[abs(lit)]
        if val is None:
            return None
        return val if lit > 0 else not val

    def _assign(self, lit: int) -> None:
        self.assignment[abs(lit)] = lit > 0
        self.trail.append(lit)

    def _propagate(self) -> bool:
        """Unit propagation from the trail queue; False on conflict."""
        while self.queue_start < len(self.trail):
            lit = self.trail[self.queue_start]
            self.queue_start += 1
            falsified = -lit
            watching = self.watches.get(falsified)
            if not watching:
                continue
            kept: list[Clause] = []
            conflict = False
            for index, clause in enumerate(watching):
                keep, ok = self._update_watch(clause, falsified)
                if keep:
                    kept.append(clause)
                if not ok:
                    kept.extend(watching[index + 1 :])
                    conflict = True
                    break
            self.watches[falsified] = kept
            if conflict:
                self.queue_start = len(self.trail)
                return False
        return True

    def _update_watch(self, clause: Clause, falsified: int) -> tuple[bool, bool]:
        """Repair a clause whose watched literal became false.

        Returns ``(keep_watching_falsified, no_conflict)``.
        """
        lits = clause.lits
        if lits[0] == falsified:
            lits[0], lits[1] = lits[1], lits[0]
        other = lits[0]
        if self._value(other) is True:
            return True, True
        for i in range(2, len(lits)):
            if self._value(lits[i]) is not False:
                lits[1], lits[i] = lits[i], lits[1]
                self.watches.setdefault(lits[1], []).append(clause)
                return False, True
        # No replacement watch: clause is unit on `other`, or conflicting.
        if self._value(other) is False:
            return True, False
        self._assign(other)
        return True, True

    def run(self) -> str:
        for lit in self.units:
            val = self._value(lit)
            if val is False:
                return UNSAT
            if val is None:
                self._assign(lit)
        if not self._propagate():
            return UNSAT
        decisions = 0
        while True:
            var = self._pick_branch()
            if var is None:
                return SAT
            decisions += 1
            if self.max_decisions is not None and decisions > self.max_decisions:
                raise SolverBudgetExceeded(f"exceeded {self.max_decisions} decisions")
            if not self._decide(var):
                if not self._resolve_conflict():
                    return UNSAT

    def _pick_branch(self) -> Optional[int]:
        best_var, best_act = 0, -1.0
        for var in range(1, self.num_vars + 1):
            if self.assignment[var] is None and self.activity[var] > best_act:
                best_var, best_act = var, self.activity[var]
        return best_var or None

    def _decide(self, lit: int) -> bool:
        """Push a decision level assigning ``lit``; propagate."""
        self.trail_marks.append(len(self.trail))
        self.decision_stack.append(lit)
        self._assign(lit)
        return self._propagate()

    def _resolve_conflict(self) -> bool:
        """Chronological backtracking: flip the deepest untried decision."""
        while True:
            flipped = self._pop_level()
            if flipped is None:
                return False
            if self._decide(flipped):
                return True

    def _pop_level(self) -> Optional[int]:
        while self.trail_marks:
            mark = self.trail_marks.pop()
            decided = self.decision_stack.pop()
            while len(self.trail) > mark:
                undone = self.trail.pop()
                self.assignment[abs(undone)] = None
            self.queue_start = len(self.trail)
            if decided > 0:
                return -decided  # positive polarity was tried first
        return None

    def model(self) -> dict[int, bool]:
        return {
            var: bool(self.assignment[var])
            for var in range(1, self.num_vars + 1)
            if self.assignment[var] is not None
        }
