"""A persistent solver session: the program CNF stays loaded across queries.

This is the piece that makes the solver *incremental the way the paper
uses Z3* (§4): instead of replaying each query's Tseitin cone into a
throw-away solver, a :class:`SolverSession` owns one long-lived
:class:`~repro.smt.sat.SatSolver` and streams each query's *new* CNF
fragments into it exactly once.  A query's root assertion is guarded by a
per-term **activation literal** ``act`` via the clause ``(¬act ∨ root)``,
and the query itself becomes ``solve(assumptions=[act])`` — so the clause
database, including every clause the CDCL core *learned* while answering
earlier queries, keeps pruning the search for all later ones.

Soundness of the sharing: every clause in the database is either part of
some query's Tseitin cone (a definitional extension — each gate variable
has a unique acyclic definition, so adding it never constrains existing
variables) or an activation guard (satisfiable by ``act = false``
regardless of everything else).  Any clause learned from such a database
is therefore a logical consequence of the definitions alone, which is why
learned clauses are valid for every future query and why a batch worker's
fork can export what it learned back to the shared session
(:meth:`fork` / :meth:`export_learned` / :meth:`absorb`).
"""

from __future__ import annotations

from typing import Optional

from repro.smt import terms as T
from repro.smt.cnf import FragmentBitBlaster
from repro.smt.sat import SAT, SatSolver
from repro.smt.terms import Term


class SolverSession:
    """One persistent assumption-probing solver over a fragment encoder.

    The session keeps a *dense* local variable numbering (queries touch an
    arbitrary subset of the encoder's global numbering), a record of which
    CNF fragments are already loaded, and the activation literal of every
    term ever probed.  ``probe`` cost is therefore proportional to the
    query's *new* fragments plus search — the shared program formula is
    blasted and loaded once, not per verdict.
    """

    def __init__(
        self,
        encoder: FragmentBitBlaster,
        solver: Optional[SatSolver] = None,
    ) -> None:
        self.encoder = encoder
        self.sat = solver if solver is not None else SatSolver()
        self._local: dict[int, int] = {}  # encoder var → session var
        self._loaded: set[int] = set()  # id(fragment) already streamed in
        self._preamble_loaded = 0
        self._activations: dict[Term, int] = {}
        # Per-term cone variables (session numbering): the decision scope
        # of a probe — everything outside it is definitional and gets
        # evaluated, not searched.
        self._cone_vars: dict[Term, list[int]] = {}
        # Fork bookkeeping (None on a root session).  Inherited learned
        # clauses are marked by cref: the fork copies the parent's clause
        # arena wholesale, so everything below the mark existed pre-fork
        # (and forked solvers never compact, so crefs stay stable).
        self._forked_from: Optional[int] = None
        self._fork_var_mark = 0
        self._inherited_cref_mark = 0

    # -- loading ---------------------------------------------------------------

    def _localize(self, lit: int) -> int:
        var = lit if lit > 0 else -lit
        mapped = self._local.get(var)
        if mapped is None:
            mapped = self.sat.new_var()
            self._local[var] = mapped
        return mapped if lit > 0 else -mapped

    def _load_clause(self, clause: list[int]) -> None:
        self.sat.add_clause([self._localize(lit) for lit in clause])

    def _load_cone(self, term: Term) -> None:
        """Stream the not-yet-loaded fragments of ``term``'s cone."""
        preamble = self.encoder._preamble
        for clause in preamble[self._preamble_loaded :]:
            self._load_clause(clause)
        self._preamble_loaded = len(preamble)
        frag = (
            self.encoder._bool_frags.get(term)
            if term.is_bool
            else self.encoder._bv_frags.get(term)
        )
        if frag is None:
            raise KeyError(f"term has not been encoded: {term!r}")
        stack = [frag]
        loaded = self._loaded
        while stack:
            node = stack.pop()
            if id(node) in loaded:
                continue
            loaded.add(id(node))
            for clause in node.clauses:
                self._load_clause(clause)
            stack.extend(node.children)

    def activation(self, term: Term) -> int:
        """The session literal that, assumed true, asserts ``term``."""
        act = self._activations.get(term)
        if act is None:
            root = self.encoder.encode_bool(term)
            self._load_cone(term)
            act = self.sat.new_var()
            self.sat.add_clause([-act, self._localize(root)])
            self._activations[term] = act
            self._cone_vars[term] = self._collect_cone_vars(term)
        return act

    def _collect_cone_vars(self, term: Term) -> list[int]:
        """Every session variable in ``term``'s cone, in load order.

        This is the probe's decision scope: assigning exactly these (plus
        the activation literal) yields a quiesced partial assignment that
        extends to a full model, because everything else in the database
        is an acyclic Tseitin definition, an activation guard, or a
        learned consequence — see ``SatSolver.solve(decide_vars=...)``.
        """
        frag = (
            self.encoder._bool_frags.get(term)
            if term.is_bool
            else self.encoder._bv_frags.get(term)
        )
        seen: set[int] = set()
        cone: list[int] = []
        local = self._local
        stack = [frag]
        visited: set[int] = set()
        while stack:
            node = stack.pop()
            if id(node) in visited:
                continue
            visited.add(id(node))
            for clause in node.clauses:
                for lit in clause:
                    var = local[lit if lit > 0 else -lit]
                    if var not in seen:
                        seen.add(var)
                        cone.append(var)
            stack.extend(node.children)
        return cone

    # -- querying --------------------------------------------------------------

    def probe(self, term: Term, max_conflicts: Optional[int] = None) -> bool:
        """Is ``term`` satisfiable?  One assumption probe; raises
        :class:`~repro.smt.sat.SolverBudgetExceeded` past the budget."""
        act = self.activation(term)
        return (
            self.sat.solve(
                assumptions=[act],
                max_conflicts=max_conflicts,
                decide_vars=self._cone_vars[term],
            )
            == SAT
        )

    def model_values(self, term: Term) -> dict[str, int]:
        """Values for ``term``'s variables from the last ``SAT`` probe."""
        values: dict[str, int] = {}
        for var in T.variables(term):
            if var.is_bool:
                lit = self.encoder._bool_vars.get(var.name)
                mapped = self._local.get(lit) if lit else None
                values[var.name] = (
                    int(bool(self.sat.value_of(mapped))) if mapped else 0
                )
                continue
            bits = self.encoder._var_bits.get(var.name)
            if bits is None:
                values[var.name] = 0
                continue
            value = 0
            for i, bit in enumerate(bits):
                mapped = self._local.get(bit)
                if mapped is not None and self.sat.value_of(mapped):
                    value |= 1 << i
            values[var.name] = value
        return values

    # -- sizing (observability) ------------------------------------------------

    @property
    def loaded_fragments(self) -> int:
        return len(self._loaded)

    @property
    def probed_terms(self) -> int:
        return len(self._activations)

    # -- batch-worker forking --------------------------------------------------

    def fork(self, encoder: FragmentBitBlaster) -> "SolverSession":
        """A private warm copy for one batch worker slice.

        The fork starts with the parent's full clause database (problem
        and learned), variable map, and activation literals, against the
        worker's own encoder fork (fragment objects are shared, so
        fragment identity — and with it :attr:`_loaded` — stays valid).
        """
        twin = SolverSession(encoder, solver=self.sat.fork())
        twin._local = dict(self._local)
        twin._loaded = set(self._loaded)
        twin._preamble_loaded = self._preamble_loaded
        twin._activations = dict(self._activations)
        twin._cone_vars = dict(self._cone_vars)
        twin._forked_from = id(self)
        twin._fork_var_mark = twin.sat.num_vars
        twin._inherited_cref_mark = len(twin.sat._arena)
        return twin

    def export_learned(self) -> list[list[int]]:
        """Clauses this fork learned that the parent session can reuse.

        Only clauses over pre-fork variables qualify: those variables mean
        the same thing in both sessions, and everything added post-fork
        (cone definitions, activation guards) is a conservative extension,
        so the clause is a consequence of the parent's own database.
        """
        vmark = self._fork_var_mark
        cmark = self._inherited_cref_mark
        exported = []
        for cref in self.sat._learned:
            if cref < cmark:
                continue  # inherited from the parent at fork time
            lits = self.sat._clause_lits(cref)
            if all(-vmark <= lit <= vmark for lit in lits):
                exported.append(lits)
        return exported

    def absorb(self, fork: "SolverSession") -> int:
        """Fold a fork's exported learned clauses back; returns the count."""
        if fork._forked_from != id(self):
            return 0
        return self.sat.import_learned(fork.export_learned())

    def import_exported(self, clauses: list) -> int:
        """Install clause lists a fork exported in *another process*.

        The identity handshake :meth:`absorb` performs is meaningless
        across a process boundary (the fork object never crosses it), so
        the process-pool merge path sends :meth:`export_learned`'s plain
        literal lists and folds them in here.  Soundness is the same
        argument as :meth:`absorb`: exported clauses range over pre-fork
        variables only, so they are consequences of this very database.
        """
        return self.sat.import_learned(clauses)

    # -- snapshot / restore (picklable warm state) -----------------------------

    def snapshot(self) -> dict:
        """A picklable blob of the warm session state.

        Contains the SAT core snapshot plus the session's bookkeeping;
        Term-keyed tables (activation literals, cone scopes) ride in a
        :class:`~repro.smt.arena.TermArena`, since terms themselves refuse
        to pickle.  Restore against the *same* encoder (or a fork of it,
        or a process-image copy) with :meth:`restore`.
        """
        from repro.smt.arena import TermArena

        arena = TermArena()
        return {
            "sat": self.sat.snapshot(),
            "local": dict(self._local),
            "preamble_loaded": self._preamble_loaded,
            "terms": arena,
            "activations": [
                (arena.encode(term), act)
                for term, act in self._activations.items()
            ],
            "cone_vars": [
                (arena.encode(term), list(cone))
                for term, cone in self._cone_vars.items()
            ],
        }

    @classmethod
    def restore(
        cls, encoder: FragmentBitBlaster, blob: dict
    ) -> "SolverSession":
        """Rebuild a warm session from a :meth:`snapshot` blob.

        ``encoder`` must present the same fragment graph the snapshotted
        session was built against (the identical object, a fork sharing
        its fragments, or the deterministic re-encoding of the same
        program): the loaded-fragment set is reconstructed by walking the
        cones of every restored activation term.
        """
        arena = blob["terms"]
        twin = cls(encoder, solver=SatSolver.restore(blob["sat"]))
        twin._local = dict(blob["local"])
        twin._preamble_loaded = blob["preamble_loaded"]
        twin._activations = {
            arena.decode(idx): act for idx, act in blob["activations"]
        }
        twin._cone_vars = {
            arena.decode(idx): list(cone) for idx, cone in blob["cone_vars"]
        }
        # Re-derive the loaded-fragment set: everything reachable from an
        # activation term's cone was streamed in before the snapshot.
        for term in twin._activations:
            frag = (
                encoder._bool_frags.get(term)
                if term.is_bool
                else encoder._bv_frags.get(term)
            )
            if frag is None:
                continue
            stack = [frag]
            while stack:
                node = stack.pop()
                if id(node) in twin._loaded:
                    continue
                twin._loaded.add(id(node))
                stack.extend(node.children)
        return twin
