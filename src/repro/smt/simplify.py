"""Algebraic simplification of terms.

This is the workhorse of Flay's partial evaluation: after control-plane
assignments are substituted into a data-plane expression, ``simplify``
decides whether the expression collapses to a constant (→ the program point
can be specialized) or still depends on data-plane input.

The pass is a bottom-up rewriter with memoization over the hash-consed DAG.
It implements the three preprocessing steps the paper names (§4.1
"Processing updates quickly"): constant folding, common-subexpression
elimination (free, via hash-consing), and strength reduction.

:meth:`repro.smt.arena.TermArena.simplify` mirrors this rule set over the
flat-array term representation; any rule added here must be added there
too (``decode(arena.simplify(i)) is simplify(decode(i))`` is a tested
invariant — see ``tests/smt/test_arena.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.smt import terms as T
from repro.smt.terms import Term


def simplify(term: Term, memo: Optional[dict[int, Term]] = None) -> Term:
    """Return an equivalent, simpler term.

    A shared ``memo`` (keyed by ``id``) may be passed when simplifying many
    expressions that share structure — e.g. all program points of one
    program — which is exactly Flay's batched update-analysis path.
    """
    if memo is None:
        memo = {}
    # Iterative worklist to avoid Python recursion limits on the deeply
    # nested entry-match expressions produced by large tables.
    stack: list[tuple[Term, bool]] = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in memo:
            continue
        if not expanded:
            stack.append((node, True))
            for child in node.args:
                if id(child) not in memo:
                    stack.append((child, False))
            continue
        new_args = tuple(memo[id(child)] for child in node.args)
        memo[id(node)] = _rewrite(node, new_args)
    return memo[id(term)]


def is_constant(term: Term) -> bool:
    """True when ``term`` is (already) a literal constant."""
    return term.is_const


def constant_value(term: Term) -> Optional[int]:
    """The concrete value of ``term`` if it is a constant, else ``None``."""
    if term.op == T.OP_BVCONST:
        return term.payload
    if term.op == T.OP_BOOLCONST:
        return int(term.payload)
    return None


# ---------------------------------------------------------------------------
# Rewrite rules
# ---------------------------------------------------------------------------


def _rebuild(node: Term, args: tuple) -> Term:
    """Rebuild ``node`` with simplified ``args`` (no rule fired)."""
    if args == node.args:
        return node
    op = node.op
    f = T.DEFAULT_FACTORY
    if op == T.OP_ADD:
        return f.add(*args)
    if op == T.OP_SUB:
        return f.sub(*args)
    if op == T.OP_MUL:
        return f.mul(*args)
    if op == T.OP_AND:
        return f.bv_and(*args)
    if op == T.OP_OR:
        return f.bv_or(*args)
    if op == T.OP_XOR:
        return f.bv_xor(*args)
    if op == T.OP_NOT:
        return f.bv_not(*args)
    if op == T.OP_NEG:
        return f.neg(*args)
    if op == T.OP_SHL:
        return f.shl(*args)
    if op == T.OP_LSHR:
        return f.lshr(*args)
    if op == T.OP_CONCAT:
        return f.concat(*args)
    if op == T.OP_EXTRACT:
        hi, lo = node.payload
        return f.extract(args[0], hi, lo)
    if op == T.OP_ITE:
        return f.ite(*args)
    if op == T.OP_EQ:
        return f.eq(*args)
    if op == T.OP_ULT:
        return f.ult(*args)
    if op == T.OP_ULE:
        return f.ule(*args)
    if op == T.OP_BAND:
        return f.bool_and(*args)
    if op == T.OP_BOR:
        return f.bool_or(*args)
    if op == T.OP_BNOT:
        return f.bool_not(*args)
    raise T.SortError(f"cannot rebuild {op!r}")


def _all_const(args: tuple) -> bool:
    return all(a.is_const for a in args)


def _fold(node: Term, args: tuple) -> Term:
    """Constant-fold an all-constant node via the evaluation oracle."""
    rebuilt = _rebuild(node, args)
    value = T.evaluate(rebuilt, {})
    if rebuilt.is_bool:
        return T.bool_const(bool(value))
    return T.bv_const(value, rebuilt.width)


def _rewrite(node: Term, args: tuple) -> Term:
    op = node.op
    if not node.args:
        return node
    if _all_const(args):
        return _fold(node, args)

    handler = _RULES.get(op)
    if handler is not None:
        result = handler(node, args)
        if result is not None:
            return result
    return _rebuild(node, args)


def _is_zero(t: Term) -> bool:
    return t.op == T.OP_BVCONST and t.payload == 0


def _is_ones(t: Term) -> bool:
    return t.op == T.OP_BVCONST and t.payload == (1 << t.width) - 1


def _is_one(t: Term) -> bool:
    return t.op == T.OP_BVCONST and t.payload == 1


def _rw_add(node: Term, args: tuple) -> Optional[Term]:
    a, b = args
    if _is_zero(a):
        return b
    if _is_zero(b):
        return a
    return None


def _rw_sub(node: Term, args: tuple) -> Optional[Term]:
    a, b = args
    if _is_zero(b):
        return a
    if a is b:
        return T.bv_const(0, node.width)
    return None


def _rw_mul(node: Term, args: tuple) -> Optional[Term]:
    a, b = args
    for x, y in ((a, b), (b, a)):
        if _is_zero(x):
            return T.bv_const(0, node.width)
        if _is_one(x):
            return y
        # Strength reduction: multiply by a power of two becomes a shift.
        if x.op == T.OP_BVCONST and x.payload and (x.payload & (x.payload - 1)) == 0:
            shift = x.payload.bit_length() - 1
            return T.shl(y, T.bv_const(shift, node.width))
    return None


def _rw_bvand(node: Term, args: tuple) -> Optional[Term]:
    a, b = args
    if a is b:
        return a
    for x, y in ((a, b), (b, a)):
        if _is_zero(x):
            return T.bv_const(0, node.width)
        if _is_ones(x):
            return y
    return None


def _rw_bvor(node: Term, args: tuple) -> Optional[Term]:
    a, b = args
    if a is b:
        return a
    for x, y in ((a, b), (b, a)):
        if _is_zero(x):
            return y
        if _is_ones(x):
            return T.bv_const((1 << node.width) - 1, node.width)
    return None


def _rw_bvxor(node: Term, args: tuple) -> Optional[Term]:
    a, b = args
    if a is b:
        return T.bv_const(0, node.width)
    for x, y in ((a, b), (b, a)):
        if _is_zero(x):
            return y
    return None


def _rw_bvnot(node: Term, args: tuple) -> Optional[Term]:
    (a,) = args
    if a.op == T.OP_NOT:
        return a.args[0]
    return None


def _rw_shift(node: Term, args: tuple) -> Optional[Term]:
    a, b = args
    if _is_zero(b):
        return a
    if _is_zero(a):
        return T.bv_const(0, node.width)
    if b.op == T.OP_BVCONST and b.payload >= node.width:
        return T.bv_const(0, node.width)
    return None


def _rw_extract(node: Term, args: tuple) -> Optional[Term]:
    (a,) = args
    hi, lo = node.payload
    if lo == 0 and hi == a.width - 1:
        return a
    if a.op == T.OP_EXTRACT:
        inner_hi, inner_lo = a.payload
        return T.extract(a.args[0], inner_lo + hi, inner_lo + lo)
    if a.op == T.OP_CONCAT:
        left, right = a.args
        if hi < right.width:
            return simplify(T.extract(right, hi, lo))
        if lo >= right.width:
            return simplify(T.extract(left, hi - right.width, lo - right.width))
    return None


def _rw_ite(node: Term, args: tuple) -> Optional[Term]:
    cond, then, orelse = args
    if cond.op == T.OP_BOOLCONST:
        return then if cond.payload else orelse
    if then is orelse:
        return then
    if cond.op == T.OP_BNOT:
        return T.ite(cond.args[0], orelse, then)
    if node.is_bool:
        # ite(c, true, e) == c or e;  ite(c, t, false) == c and t, etc.
        if then.op == T.OP_BOOLCONST:
            if then.payload:
                return simplify(T.bool_or(cond, orelse))
            return simplify(T.bool_and(T.bool_not(cond), orelse))
        if orelse.op == T.OP_BOOLCONST:
            if orelse.payload:
                return simplify(T.bool_or(T.bool_not(cond), then))
            return simplify(T.bool_and(cond, then))
    # Collapse ite chains with identical conditions:
    # ite(c, ite(c, a, _), e) -> ite(c, a, e)
    if then.op == T.OP_ITE and then.args[0] is cond:
        return simplify(T.ite(cond, then.args[1], orelse))
    if orelse.op == T.OP_ITE and orelse.args[0] is cond:
        return simplify(T.ite(cond, then, orelse.args[2]))
    return None


def _rw_eq(node: Term, args: tuple) -> Optional[Term]:
    a, b = args
    if a is b:
        return T.TRUE
    if a.is_bv and a.is_const and b.is_const:
        return T.bool_const(a.payload == b.payload)
    # eq(ite(c, k1, k2), k) with constant branches folds to c / !c / false.
    for x, y in ((a, b), (b, a)):
        if x.op == T.OP_ITE and y.is_const:
            cond, then, orelse = x.args
            if then.is_const and orelse.is_const:
                then_hit = then.payload == y.payload
                else_hit = orelse.payload == y.payload
                if then_hit and else_hit:
                    return T.TRUE
                if then_hit:
                    return cond
                if else_hit:
                    return simplify(T.bool_not(cond))
                return T.FALSE
    return None


def _rw_ult(node: Term, args: tuple) -> Optional[Term]:
    a, b = args
    if a is b:
        return T.FALSE
    if _is_zero(b):
        return T.FALSE
    if _is_zero(a):
        return simplify(T.bool_not(T.eq(b, T.bv_const(0, b.width))))
    return None


def _rw_ule(node: Term, args: tuple) -> Optional[Term]:
    a, b = args
    if a is b:
        return T.TRUE
    if _is_zero(a):
        return T.TRUE
    if _is_ones(b):
        return T.TRUE
    return None


def _rw_band(node: Term, args: tuple) -> Optional[Term]:
    flat: list[Term] = []
    seen: set[int] = set()
    for arg in args:
        parts = arg.args if arg.op == T.OP_BAND else (arg,)
        for part in parts:
            if part.op == T.OP_BOOLCONST:
                if not part.payload:
                    return T.FALSE
                continue
            if id(part) in seen:
                continue
            seen.add(id(part))
            flat.append(part)
    # x && !x  ->  false
    negated = {id(p.args[0]) for p in flat if p.op == T.OP_BNOT}
    if any(id(p) in negated for p in flat if p.op != T.OP_BNOT):
        return T.FALSE
    if not flat:
        return T.TRUE
    if len(flat) == 1:
        return flat[0]
    return T.bool_and(*flat)


def _rw_bor(node: Term, args: tuple) -> Optional[Term]:
    flat: list[Term] = []
    seen: set[int] = set()
    for arg in args:
        parts = arg.args if arg.op == T.OP_BOR else (arg,)
        for part in parts:
            if part.op == T.OP_BOOLCONST:
                if part.payload:
                    return T.TRUE
                continue
            if id(part) in seen:
                continue
            seen.add(id(part))
            flat.append(part)
    negated = {id(p.args[0]) for p in flat if p.op == T.OP_BNOT}
    if any(id(p) in negated for p in flat if p.op != T.OP_BNOT):
        return T.TRUE
    if not flat:
        return T.FALSE
    if len(flat) == 1:
        return flat[0]
    return T.bool_or(*flat)


def _rw_bnot(node: Term, args: tuple) -> Optional[Term]:
    (a,) = args
    if a.op == T.OP_BNOT:
        return a.args[0]
    if a.op == T.OP_BOOLCONST:
        return T.bool_const(not a.payload)
    return None


_RULES = {
    T.OP_ADD: _rw_add,
    T.OP_SUB: _rw_sub,
    T.OP_MUL: _rw_mul,
    T.OP_AND: _rw_bvand,
    T.OP_OR: _rw_bvor,
    T.OP_XOR: _rw_bvxor,
    T.OP_NOT: _rw_bvnot,
    T.OP_SHL: _rw_shift,
    T.OP_LSHR: _rw_shift,
    T.OP_EXTRACT: _rw_extract,
    T.OP_ITE: _rw_ite,
    T.OP_EQ: _rw_eq,
    T.OP_ULT: _rw_ult,
    T.OP_ULE: _rw_ule,
    T.OP_BAND: _rw_band,
    T.OP_BOR: _rw_bor,
    T.OP_BNOT: _rw_bnot,
}
