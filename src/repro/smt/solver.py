"""Solver facade: the QF_BV decision procedure Flay's queries sit on.

Layered fast paths, in the order Flay needs them to keep update analysis
within its ~100 ms budget (§4.1):

1. algebraic simplification (often decides the query outright),
2. interval abstract interpretation (cheap sound pre-check),
3. bit-blasting + DPLL (complete, used only when the fast paths punt).

Two cross-update caches sit on top (the "Once" cost paid once):

* a **result memo** keyed on the hash-consed simplified term — identical
  residual terms across updates never reach the DPLL loop twice, and
* a **CNF fragment cache** (:class:`~repro.smt.cnf.FragmentBitBlaster`)
  that reuses Tseitin encodings of shared subterms across queries, so
  bit-blasting cost scales with the delta rather than the full expression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.metrics import CacheCounter
from repro.smt import interval, sat, terms as T
from repro.smt.cnf import BitBlaster, FragmentBitBlaster, assert_term, model_values
from repro.smt.sat import SatSolver
from repro.smt.simplify import simplify
from repro.smt.terms import Term


@dataclass
class SolverStats:
    """Where queries were decided — used by the ablation benchmarks."""

    by_simplify: int = 0
    by_interval: int = 0
    by_sat: int = 0
    by_cache: int = 0  # answered from the cross-update result memo

    @property
    def total(self) -> int:
        return self.by_simplify + self.by_interval + self.by_sat + self.by_cache


@dataclass
class SatResult:
    """Outcome of a satisfiability check."""

    satisfiable: bool
    model: Optional[dict[str, int]] = None


class Solver:
    """Decides satisfiability/validity of boolean terms over bitvectors."""

    #: Reset the shared encoder past this many allocated SAT variables —
    #: a generation bump that bounds fragment-cache memory.  The result
    #: memo survives resets (its entries stay correct forever).
    ENCODER_VAR_LIMIT = 500_000

    def __init__(
        self,
        use_interval_precheck: bool = True,
        max_decisions: Optional[int] = 2_000_000,
        share_encodings: bool = True,
    ) -> None:
        self.use_interval_precheck = use_interval_precheck
        self.max_decisions = max_decisions
        self.share_encodings = share_encodings
        self.stats = SolverStats()
        self.cache_counter = CacheCounter("solver-memo")
        self.cnf_counter = CacheCounter("cnf-fragments")
        self.generation = 0
        self._results: dict[Term, SatResult] = {}
        self._encoder = FragmentBitBlaster(self.cnf_counter)

    def invalidate_caches(self) -> None:
        """Drop the result memo and fragment cache (generation bump)."""
        self.generation += 1
        self.cache_counter.invalidate(len(self._results))
        self._results.clear()
        self._encoder = FragmentBitBlaster(self.cnf_counter)

    def check_sat(self, term: Term) -> SatResult:
        """Is there an assignment making ``term`` true?"""
        if not term.is_bool:
            raise T.SortError("check_sat expects a boolean term")
        simplified = simplify(term)
        if simplified.op == T.OP_BOOLCONST:
            self.stats.by_simplify += 1
            return SatResult(bool(simplified.payload), {} if simplified.payload else None)
        cached = self._results.get(simplified)
        if cached is not None:
            self.stats.by_cache += 1
            self.cache_counter.hit()
            return cached
        self.cache_counter.miss()
        if self.use_interval_precheck:
            verdict = interval.eval_bool(simplified)
            if verdict == interval.DEFINITELY_FALSE:
                self.stats.by_interval += 1
                result = SatResult(False)
                self._results[simplified] = result
                return result
            # DEFINITELY_TRUE means *every* assignment satisfies it → SAT.
            if verdict == interval.DEFINITELY_TRUE:
                self.stats.by_interval += 1
                result = SatResult(True, {})
                self._results[simplified] = result
                return result
        self.stats.by_sat += 1
        result = self._check_sat_blasted(simplified)
        # A blown decision budget raises out of the call above and is
        # deliberately *not* cached: a later query under a bigger budget
        # must be free to try again.
        self._results[simplified] = result
        return result

    def _check_sat_blasted(self, simplified: Term) -> SatResult:
        if not self.share_encodings:
            blaster = BitBlaster()
            assert_term(blaster, simplified)
            outcome = blaster.solver.solve(max_decisions=self.max_decisions)
            if outcome == sat.UNSAT:
                return SatResult(False)
            return SatResult(True, model_values(blaster, simplified))
        if self._encoder.var_count > self.ENCODER_VAR_LIMIT:
            self.cnf_counter.invalidate()
            self._encoder = FragmentBitBlaster(self.cnf_counter)
        encoder = self._encoder
        root = encoder.encode_bool(simplified)
        # Replay the root's cone into a throw-away solver with a dense
        # local numbering, so search cost stays proportional to the cone.
        solver = SatSolver()
        local: dict[int, int] = {}

        def localize(lit: int) -> int:
            var = lit if lit > 0 else -lit
            mapped = local.get(var)
            if mapped is None:
                mapped = solver.new_var()
                local[var] = mapped
            return mapped if lit > 0 else -mapped

        for clause in encoder.cone_clauses(simplified):
            solver.add_clause([localize(lit) for lit in clause])
        solver.add_clause([localize(root)])
        outcome = solver.solve(max_decisions=self.max_decisions)
        if outcome == sat.UNSAT:
            return SatResult(False)
        model = solver.model() or {}
        global_model = {var: model.get(mapped, False) for var, mapped in local.items()}
        return SatResult(True, encoder.decode_model(simplified, global_model))

    def is_valid(self, term: Term) -> bool:
        """Does ``term`` hold under every assignment?"""
        return not self.check_sat(T.bool_not(term)).satisfiable

    def prove_equal(self, a: Term, b: Term) -> bool:
        """Are ``a`` and ``b`` semantically equal for all inputs?

        This is the behaviour-change check at the heart of the incremental
        pipeline: the old and new expression at a program point are equal
        iff the control-plane update did not change that point's semantics.
        """
        if a is b:
            self.stats.by_simplify += 1
            return True
        if a.is_bool != b.is_bool or a.width != b.width:
            return False
        sa, sb = simplify(a), simplify(b)
        if sa is sb:
            self.stats.by_simplify += 1
            return True
        return self.is_valid(T.eq(sa, sb))

    def find_constant(self, term: Term) -> Optional[int]:
        """If ``term`` has the same value under every assignment, return it.

        This implements Flay's second query type: "can we replace this
        program variable with a constant?".  Simplification handles the
        overwhelmingly common case; the solver closes the gap (e.g. masked
        expressions that fold semantically but not syntactically).
        """
        simplified = simplify(term)
        value = _literal_value(simplified)
        if value is not None:
            self.stats.by_simplify += 1
            return value
        if not T.variables(simplified):
            # Closed but unsimplified (shouldn't happen); evaluate directly.
            return T.evaluate(simplified, {})
        # Get a candidate value from one model, then prove uniqueness.
        if simplified.is_bool:
            if not self.check_sat(simplified).satisfiable:
                return 0
            if not self.check_sat(T.bool_not(simplified)).satisfiable:
                return 1
            return None
        # Probe: evaluate under the all-zeros assignment to get a candidate.
        zeros = {var.name: 0 for var in T.variables(simplified)}
        candidate = T.evaluate(simplified, zeros)
        candidate_term = T.bv_const(candidate, simplified.width)
        if self.is_valid(T.eq(simplified, candidate_term)):
            return candidate
        return None


def _literal_value(term: Term) -> Optional[int]:
    if term.op == T.OP_BVCONST:
        return term.payload
    if term.op == T.OP_BOOLCONST:
        return int(term.payload)
    return None
