"""Solver facade: the QF_BV decision procedure Flay's queries sit on.

Layered fast paths, in the order Flay needs them to keep update analysis
within its ~100 ms budget (§4.1):

1. algebraic simplification (often decides the query outright),
2. interval abstract interpretation (cheap sound pre-check),
3. bit-blasting + incremental CDCL (complete, used when the fast paths punt).

Two cross-update caches sit on top (the "Once" cost paid once):

* a **result memo** keyed on the hash-consed simplified term — identical
  residual terms across updates never reach the SAT core twice, and
* a **CNF fragment cache** (:class:`~repro.smt.cnf.FragmentBitBlaster`)
  that reuses Tseitin encodings of shared subterms across queries, so
  bit-blasting cost scales with the delta rather than the full expression.

Below both sits the **solver session** (:class:`~repro.smt.session.SolverSession`):
one persistent CDCL instance per solver into which every query's cone is
streamed exactly once and probed under an activation-literal assumption —
the incremental-solving discipline the paper gets from Z3.  Clauses the
CDCL core learns while answering one update's queries keep pruning the
search for every later update.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.ir.metrics import CacheCounter
from repro.smt import interval, sat, terms as T
from repro.smt.cnf import BitBlaster, FragmentBitBlaster, assert_term, model_values
from repro.smt.sat import SatSolver, SatStats
from repro.smt.session import SolverSession
from repro.smt.simplify import simplify
from repro.smt.terms import Term


@dataclass
class SolverStats:
    """Where queries were decided, and what the SAT core spent on them.

    The ``by_*`` counters are the layered-fast-path ablation surface; the
    search counters (one :class:`~repro.smt.sat.SatStats`) plus the probe
    latency record are the solver-health surface the ``--stats`` CLI flag
    and the benchmark JSON report.
    """

    by_simplify: int = 0
    by_interval: int = 0
    by_sat: int = 0
    by_cache: int = 0  # answered from the cross-update result memo
    # SAT-core observability.
    probes: int = 0  # queries that actually reached the SAT core
    probe_us_total: float = 0.0
    search: SatStats = field(default_factory=SatStats)
    probe_latencies_us: list = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.by_simplify + self.by_interval + self.by_sat + self.by_cache

    def probe_latency_us(self, quantile: float) -> float:
        """Per-probe latency percentile (0.5 → p50, 0.99 → p99), in µs."""
        latencies = sorted(self.probe_latencies_us)
        if not latencies:
            return 0.0
        index = min(len(latencies) - 1, int(quantile * len(latencies)))
        return latencies[index]

    def snapshot(self) -> "SolverStats":
        """A frozen copy (latency list elided), for before/after deltas."""
        return SolverStats(
            by_simplify=self.by_simplify,
            by_interval=self.by_interval,
            by_sat=self.by_sat,
            by_cache=self.by_cache,
            probes=self.probes,
            probe_us_total=self.probe_us_total,
            search=self.search.snapshot(),
        )

    def since(self, baseline: "SolverStats") -> "SolverStats":
        return SolverStats(
            by_simplify=self.by_simplify - baseline.by_simplify,
            by_interval=self.by_interval - baseline.by_interval,
            by_sat=self.by_sat - baseline.by_sat,
            by_cache=self.by_cache - baseline.by_cache,
            probes=self.probes - baseline.probes,
            probe_us_total=self.probe_us_total - baseline.probe_us_total,
            search=self.search.since(baseline.search),
        )

    def absorb(self, other: "SolverStats") -> None:
        """Fold another stats record into this one (batch-worker merge)."""
        self.by_simplify += other.by_simplify
        self.by_interval += other.by_interval
        self.by_sat += other.by_sat
        self.by_cache += other.by_cache
        self.probes += other.probes
        self.probe_us_total += other.probe_us_total
        self.search.add(other.search)
        self.probe_latencies_us.extend(other.probe_latencies_us)

    def describe(self) -> str:
        """Multi-line counter report for the ``--stats`` CLI flag."""
        s = self.search
        lines = [
            (
                f"queries: {self.total} "
                f"(simplify {self.by_simplify}, interval {self.by_interval}, "
                f"sat {self.by_sat}, memo {self.by_cache})"
            ),
            (
                f"probes: {self.probes} "
                f"(p50 {self.probe_latency_us(0.5):.0f} us, "
                f"p99 {self.probe_latency_us(0.99):.0f} us, "
                f"total {self.probe_us_total / 1000:.1f} ms)"
            ),
            (
                f"search: {s.decisions} decisions, {s.conflicts} conflicts, "
                f"{s.propagations} propagations, {s.restarts} restarts"
            ),
            f"clauses: {s.learned} learned, {s.deleted} deleted",
        ]
        return "\n".join(lines)


@dataclass
class SatResult:
    """Outcome of a satisfiability check."""

    satisfiable: bool
    model: Optional[dict[str, int]] = None


class Solver:
    """Decides satisfiability/validity of boolean terms over bitvectors."""

    #: Reset the shared encoder past this many allocated SAT variables —
    #: a generation bump that bounds fragment-cache (and session clause
    #: database) memory.  The result memo survives resets (its entries
    #: stay correct forever).
    ENCODER_VAR_LIMIT = 500_000

    def __init__(
        self,
        use_interval_precheck: bool = True,
        max_conflicts: Optional[int] = 100_000,
        share_encodings: bool = True,
        incremental: bool = True,
    ) -> None:
        self.use_interval_precheck = use_interval_precheck
        self.max_conflicts = max_conflicts
        self.share_encodings = share_encodings
        #: ``False`` falls back to the cone-replay architecture (each query
        #: solved by a throw-away solver over its replayed cone) — kept as
        #: the ablation baseline for the incremental-session benchmarks.
        self.incremental = incremental
        self.stats = SolverStats()
        self.cache_counter = CacheCounter("solver-memo")
        self.cnf_counter = CacheCounter("cnf-fragments")
        self.generation = 0
        self._results: dict[Term, SatResult] = {}
        self._encoder = FragmentBitBlaster(self.cnf_counter)
        self._session = SolverSession(self._encoder)
        #: Set by :meth:`adopt_shared`: the encoder is owned by a shared
        #: store, so the var-limit generation reset must never swap it out
        #: from under the other solvers attached to it.
        self._encoder_pinned = False

    # Legacy name: the budget used to be counted in decisions.  CDCL makes
    # decisions nearly free; conflicts are the honest unit of work.
    @property
    def max_decisions(self) -> Optional[int]:
        return self.max_conflicts

    @max_decisions.setter
    def max_decisions(self, value: Optional[int]) -> None:
        self.max_conflicts = value

    @property
    def session(self) -> SolverSession:
        return self._session

    def _reset_encoder(self) -> None:
        self._encoder = FragmentBitBlaster(self.cnf_counter)
        self._session = SolverSession(self._encoder)
        self._encoder_pinned = False

    def invalidate_caches(self) -> None:
        """Drop the result memo, fragment cache, and solver session."""
        self.generation += 1
        self.cache_counter.invalidate(len(self._results))
        self._results.clear()
        self._reset_encoder()

    def check_sat(self, term: Term) -> SatResult:
        """Is there an assignment making ``term`` true?"""
        if not term.is_bool:
            raise T.SortError("check_sat expects a boolean term")
        simplified = simplify(term)
        if simplified.op == T.OP_BOOLCONST:
            self.stats.by_simplify += 1
            return SatResult(bool(simplified.payload), {} if simplified.payload else None)
        cached = self._results.get(simplified)
        if cached is not None:
            self.stats.by_cache += 1
            self.cache_counter.hit()
            return cached
        self.cache_counter.miss()
        if self.use_interval_precheck:
            verdict = interval.eval_bool(simplified)
            if verdict == interval.DEFINITELY_FALSE:
                self.stats.by_interval += 1
                result = SatResult(False)
                self._results[simplified] = result
                return result
            # DEFINITELY_TRUE means *every* assignment satisfies it → SAT.
            if verdict == interval.DEFINITELY_TRUE:
                self.stats.by_interval += 1
                result = SatResult(True, {})
                self._results[simplified] = result
                return result
        self.stats.by_sat += 1
        result = self._check_sat_blasted(simplified)
        # A blown conflict budget raises out of the call above and is
        # deliberately *not* cached: a later query under a bigger budget
        # must be free to try again.
        self._results[simplified] = result
        return result

    def _check_sat_blasted(self, simplified: Term) -> SatResult:
        start = time.perf_counter()
        try:
            if not self.share_encodings:
                return self._solve_fresh(simplified)
            if (
                not self._encoder_pinned
                and self._encoder.var_count > self.ENCODER_VAR_LIMIT
            ):
                self.cnf_counter.invalidate()
                self._reset_encoder()
            if self.incremental:
                return self._solve_session(simplified)
            return self._solve_replay(simplified)
        finally:
            elapsed_us = (time.perf_counter() - start) * 1e6
            self.stats.probes += 1
            self.stats.probe_us_total += elapsed_us
            self.stats.probe_latencies_us.append(elapsed_us)

    def _solve_session(self, simplified: Term) -> SatResult:
        """One assumption probe against the persistent session."""
        session = self._session
        before = session.sat.stats.snapshot()
        try:
            satisfiable = session.probe(
                simplified, max_conflicts=self.max_conflicts
            )
        finally:
            self.stats.search.add(session.sat.stats.since(before))
        if not satisfiable:
            return SatResult(False)
        return SatResult(True, session.model_values(simplified))

    def _solve_fresh(self, simplified: Term) -> SatResult:
        """Fresh per-query encoding and solver (``share_encodings=False``)."""
        blaster = BitBlaster()
        assert_term(blaster, simplified)
        try:
            outcome = blaster.solver.solve(max_conflicts=self.max_conflicts)
        finally:
            self.stats.search.add(blaster.solver.stats)
        if outcome == sat.UNSAT:
            return SatResult(False)
        return SatResult(True, model_values(blaster, simplified))

    def _solve_replay(self, simplified: Term) -> SatResult:
        """Cone replay into a throw-away solver (the pre-session baseline:
        shared encodings, but every query pays a fresh search)."""
        encoder = self._encoder
        root = encoder.encode_bool(simplified)
        solver = SatSolver()
        local: dict[int, int] = {}

        def localize(lit: int) -> int:
            var = lit if lit > 0 else -lit
            mapped = local.get(var)
            if mapped is None:
                mapped = solver.new_var()
                local[var] = mapped
            return mapped if lit > 0 else -mapped

        for clause in encoder.cone_clauses(simplified):
            solver.add_clause([localize(lit) for lit in clause])
        solver.add_clause([localize(root)])
        try:
            outcome = solver.solve(max_conflicts=self.max_conflicts)
        finally:
            self.stats.search.add(solver.stats)
        if outcome == sat.UNSAT:
            return SatResult(False)
        model = solver.model() or {}
        global_model = {var: model.get(mapped, False) for var, mapped in local.items()}
        return SatResult(True, encoder.decode_model(simplified, global_model))

    # -- shared-store adoption -------------------------------------------------

    def adopt_shared(
        self,
        encoder: FragmentBitBlaster,
        session: Optional[SolverSession] = None,
        results: Optional[dict[Term, SatResult]] = None,
    ) -> None:
        """Attach this solver to store-owned warm state.

        ``encoder`` (and optionally ``session`` and the result memo) come
        from a fleet shared store; every cache involved is a pure function
        of hash-consed terms, so sharing them across engine instances is
        sound as long as access is serialized (the fleet simulator is a
        single-threaded discrete-event loop).  The encoder is pinned:
        generation resets are disabled so sibling solvers never see their
        fragment numbering invalidated.
        """
        self._encoder = encoder
        self._session = session if session is not None else SolverSession(encoder)
        if results is not None:
            self._results = results
        self._encoder_pinned = True

    # -- batch-worker forking --------------------------------------------------

    def fork_slice(self) -> "Solver":
        """A private warm view for one batch worker slice.

        The fork gets its own encoder (sharing the parent's immutable
        fragments) and its own session pre-loaded with the parent's
        clause database — including everything learned so far — so each
        worker probes warm.  Nothing mutable is shared; the anchor-order
        merge folds the fork's stats and exportable learned clauses back
        via :meth:`absorb_fork`.
        """
        twin = Solver(
            use_interval_precheck=self.use_interval_precheck,
            max_conflicts=self.max_conflicts,
            share_encodings=self.share_encodings,
            incremental=self.incremental,
        )
        twin.generation = self.generation
        if self.share_encodings:
            twin._encoder = self._encoder.fork(twin.cnf_counter)
            if self.incremental:
                twin._session = self._session.fork(twin._encoder)
            else:
                twin._session = SolverSession(twin._encoder)
        return twin

    def absorb_fork(self, fork: "Solver") -> int:
        """Fold a fork's query/search stats and learned clauses back.

        Returns the number of learned clauses imported into the shared
        session (0 when the fork's session is unrelated or incremental
        solving is off).
        """
        self.stats.absorb(fork.stats)
        if self.share_encodings and self.incremental:
            return self._session.absorb(fork._session)
        return 0

    # -- higher-level queries --------------------------------------------------

    def is_valid(self, term: Term) -> bool:
        """Does ``term`` hold under every assignment?"""
        return not self.check_sat(T.bool_not(term)).satisfiable

    def prove_equal(self, a: Term, b: Term) -> bool:
        """Are ``a`` and ``b`` semantically equal for all inputs?

        This is the behaviour-change check at the heart of the incremental
        pipeline: the old and new expression at a program point are equal
        iff the control-plane update did not change that point's semantics.
        """
        if a is b:
            self.stats.by_simplify += 1
            return True
        if a.is_bool != b.is_bool or a.width != b.width:
            return False
        sa, sb = simplify(a), simplify(b)
        if sa is sb:
            self.stats.by_simplify += 1
            return True
        return self.is_valid(T.eq(sa, sb))

    def find_constant(self, term: Term) -> Optional[int]:
        """If ``term`` has the same value under every assignment, return it.

        This implements Flay's second query type: "can we replace this
        program variable with a constant?".  Simplification handles the
        overwhelmingly common case; the solver closes the gap (e.g. masked
        expressions that fold semantically but not syntactically).
        """
        simplified = simplify(term)
        value = _literal_value(simplified)
        if value is not None:
            self.stats.by_simplify += 1
            return value
        if not T.variables(simplified):
            # Closed but unsimplified (shouldn't happen); evaluate directly.
            return T.evaluate(simplified, {})
        # Get a candidate value from one model, then prove uniqueness.
        if simplified.is_bool:
            if not self.check_sat(simplified).satisfiable:
                return 0
            if not self.check_sat(T.bool_not(simplified)).satisfiable:
                return 1
            return None
        # Probe: evaluate under the all-zeros assignment to get a candidate.
        zeros = {var.name: 0 for var in T.variables(simplified)}
        candidate = T.evaluate(simplified, zeros)
        candidate_term = T.bv_const(candidate, simplified.width)
        if self.is_valid(T.eq(simplified, candidate_term)):
            return candidate
        return None


def _literal_value(term: Term) -> Optional[int]:
    if term.op == T.OP_BVCONST:
        return term.payload
    if term.op == T.OP_BOOLCONST:
        return int(term.payload)
    return None
