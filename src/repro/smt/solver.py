"""Solver facade: the QF_BV decision procedure Flay's queries sit on.

Layered fast paths, in the order Flay needs them to keep update analysis
within its ~100 ms budget (§4.1):

1. algebraic simplification (often decides the query outright),
2. interval abstract interpretation (cheap sound pre-check),
3. bit-blasting + DPLL (complete, used only when the fast paths punt).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.smt import interval, sat, terms as T
from repro.smt.cnf import BitBlaster, assert_term, model_values
from repro.smt.simplify import simplify
from repro.smt.terms import Term


@dataclass
class SolverStats:
    """Where queries were decided — used by the ablation benchmarks."""

    by_simplify: int = 0
    by_interval: int = 0
    by_sat: int = 0

    @property
    def total(self) -> int:
        return self.by_simplify + self.by_interval + self.by_sat


@dataclass
class SatResult:
    """Outcome of a satisfiability check."""

    satisfiable: bool
    model: Optional[dict[str, int]] = None


class Solver:
    """Decides satisfiability/validity of boolean terms over bitvectors."""

    def __init__(
        self,
        use_interval_precheck: bool = True,
        max_decisions: Optional[int] = 2_000_000,
    ) -> None:
        self.use_interval_precheck = use_interval_precheck
        self.max_decisions = max_decisions
        self.stats = SolverStats()

    def check_sat(self, term: Term) -> SatResult:
        """Is there an assignment making ``term`` true?"""
        if not term.is_bool:
            raise T.SortError("check_sat expects a boolean term")
        simplified = simplify(term)
        if simplified.op == T.OP_BOOLCONST:
            self.stats.by_simplify += 1
            return SatResult(bool(simplified.payload), {} if simplified.payload else None)
        if self.use_interval_precheck:
            verdict = interval.eval_bool(simplified)
            if verdict == interval.DEFINITELY_FALSE:
                self.stats.by_interval += 1
                return SatResult(False)
            # DEFINITELY_TRUE means *every* assignment satisfies it → SAT.
            if verdict == interval.DEFINITELY_TRUE:
                self.stats.by_interval += 1
                return SatResult(True, {})
        self.stats.by_sat += 1
        blaster = BitBlaster()
        assert_term(blaster, simplified)
        outcome = blaster.solver.solve(max_decisions=self.max_decisions)
        if outcome == sat.UNSAT:
            return SatResult(False)
        return SatResult(True, model_values(blaster, simplified))

    def is_valid(self, term: Term) -> bool:
        """Does ``term`` hold under every assignment?"""
        return not self.check_sat(T.bool_not(term)).satisfiable

    def prove_equal(self, a: Term, b: Term) -> bool:
        """Are ``a`` and ``b`` semantically equal for all inputs?

        This is the behaviour-change check at the heart of the incremental
        pipeline: the old and new expression at a program point are equal
        iff the control-plane update did not change that point's semantics.
        """
        if a is b:
            self.stats.by_simplify += 1
            return True
        if a.is_bool != b.is_bool or a.width != b.width:
            return False
        sa, sb = simplify(a), simplify(b)
        if sa is sb:
            self.stats.by_simplify += 1
            return True
        return self.is_valid(T.eq(sa, sb))

    def find_constant(self, term: Term) -> Optional[int]:
        """If ``term`` has the same value under every assignment, return it.

        This implements Flay's second query type: "can we replace this
        program variable with a constant?".  Simplification handles the
        overwhelmingly common case; the solver closes the gap (e.g. masked
        expressions that fold semantically but not syntactically).
        """
        simplified = simplify(term)
        value = _literal_value(simplified)
        if value is not None:
            self.stats.by_simplify += 1
            return value
        if not T.variables(simplified):
            # Closed but unsimplified (shouldn't happen); evaluate directly.
            return T.evaluate(simplified, {})
        # Get a candidate value from one model, then prove uniqueness.
        if simplified.is_bool:
            if not self.check_sat(simplified).satisfiable:
                return 0
            if not self.check_sat(T.bool_not(simplified)).satisfiable:
                return 1
            return None
        # Probe: evaluate under the all-zeros assignment to get a candidate.
        zeros = {var.name: 0 for var in T.variables(simplified)}
        candidate = T.evaluate(simplified, zeros)
        candidate_term = T.bv_const(candidate, simplified.width)
        if self.is_valid(T.eq(simplified, candidate_term)):
            return candidate
        return None


def _literal_value(term: Term) -> Optional[int]:
    if term.op == T.OP_BVCONST:
        return term.payload
    if term.op == T.OP_BOOLCONST:
        return int(term.payload)
    return None
