"""Substitution of control-plane assignments into data-plane expressions.

This plays the role Z3's e-matching plays in Flay (§4.1): given a data-plane
expression whose control-plane symbols act as placeholders, replace each
placeholder with the term encoding the active control-plane assignment, then
simplify.  Substitution is memoized over the shared DAG, so substituting
into the hundreds of program points of one program touches each unique
subterm once.

:meth:`repro.smt.arena.TermArena.substitute` is the array-native mirror of
this pass (same structural rules, memo keyed on node index instead of
``id``), used when the term already lives in an arena — e.g. inside a
process-pool batch worker.  The two must agree node for node; the arena
property tests pin that.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.ir.metrics import CacheCounter
from repro.smt import terms as T
from repro.smt.simplify import simplify
from repro.smt.terms import Term

#: Process-wide memo: term → frozenset of variable names occurring in it.
#: Pure function of the (immutable) term, shared across all substitutions;
#: keyed on the Term itself so the cache owns strong references.
_VAR_DEPS: dict[Term, frozenset] = {}

_EMPTY_DEPS: frozenset = frozenset()


def variable_dependencies(term: Term) -> frozenset:
    """Names of all variable leaves reachable from ``term`` (memoized).

    This is the dependency oracle behind delta substitution: a memoized
    substitution result for ``term`` only goes stale when the mapping of
    one of these names changes.
    """
    cached = _VAR_DEPS.get(term)
    if cached is not None:
        return cached
    stack: list[tuple[Term, bool]] = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if node in _VAR_DEPS:
            continue
        if not expanded:
            stack.append((node, True))
            for child in node.args:
                if child not in _VAR_DEPS:
                    stack.append((child, False))
            continue
        if node.is_var:
            deps: frozenset = frozenset((node.payload,))
        elif not node.args:
            deps = _EMPTY_DEPS
        else:
            child_deps = [_VAR_DEPS[arg] for arg in node.args]
            deps = child_deps[0]
            for extra in child_deps[1:]:
                if not (extra <= deps):
                    deps = deps | extra
        _VAR_DEPS[node] = deps
    return _VAR_DEPS[term]


class Substitution:
    """A reusable variable→term mapping with a shared memo table.

    Reusing one ``Substitution`` across all program points of a program is
    the incremental trick: expressions share structure, and the memo makes
    the shared parts free after the first substitution.
    """

    def __init__(self, mapping: Mapping[Term, Term]) -> None:
        for var, replacement in mapping.items():
            if not var.is_var:
                raise T.SortError(f"substitution key {var!r} is not a variable")
            if var.width != replacement.width:
                raise T.SortError(
                    f"substituting {replacement!r} (width {replacement.width}) "
                    f"for {var!r} (width {var.width})"
                )
        self._mapping = {id(var): replacement for var, replacement in mapping.items()}
        self._memo: dict[int, Term] = dict(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)

    def apply(self, term: Term) -> Term:
        """Replace mapped variables throughout ``term`` (no simplification)."""
        memo = self._memo
        stack: list[tuple[Term, bool]] = [(term, False)]
        while stack:
            node, expanded = stack.pop()
            if id(node) in memo:
                continue
            if not node.args:
                memo[id(node)] = node
                continue
            if not expanded:
                stack.append((node, True))
                for child in node.args:
                    if id(child) not in memo:
                        stack.append((child, False))
                continue
            new_args = tuple(memo[id(child)] for child in node.args)
            memo[id(node)] = _rebuild_with_args(node, new_args)
        return memo[id(term)]


class DeltaSubstitution:
    """A long-lived substitution whose memo survives mapping updates.

    This is the cross-update reuse layer of the incremental pipeline
    (the "Once" cost paid once): one instance lives for the lifetime of an
    :class:`~repro.core.incremental.IncrementalSpecializer`, and a
    control-plane update only invalidates the memo entries whose subterm
    mentions a control symbol whose assignment actually changed.  All
    other entries — in practice the overwhelming majority of every program
    point's DAG — are reused by identity.

    Internally the memo (``term → substituted term``) is paired with a
    dependency index (``variable name → memo keys that mention it``)
    built from :func:`variable_dependencies` during :meth:`apply`.
    :meth:`set_many` diffs the new assignments against the old ones by
    term identity (hash-consing makes semantically-identical re-encodings
    the same object) and drops exactly the dependent entries.

    The memo keys interned :class:`Term` objects directly (their hash is
    the precomputed structural hash and equality is identity, so lookups
    cost the same as the historical ``id()`` keying) — which is what
    makes the memo *exportable*: a snapshot can walk ``_memo.items()``
    and ship both sides through a
    :class:`~repro.smt.arena.TermArena`, something ``id``-keyed entries
    could never recover the key term for.
    """

    def __init__(
        self,
        mapping: Mapping[Term, Term],
        counter: Optional[CacheCounter] = None,
    ) -> None:
        self.counter = counter if counter is not None else CacheCounter("substitution")
        self._mapping: dict[Term, Term] = {}
        self._memo: dict[Term, Term] = {}
        self._index: dict[str, set[Term]] = {}
        self.set_many(mapping)

    def __len__(self) -> int:
        return len(self._mapping)

    @property
    def memo_size(self) -> int:
        return len(self._memo)

    @staticmethod
    def _check(var: Term, replacement: Term) -> None:
        if not var.is_var:
            raise T.SortError(f"substitution key {var!r} is not a variable")
        if var.width != replacement.width:
            raise T.SortError(
                f"substituting {replacement!r} (width {replacement.width}) "
                f"for {var!r} (width {var.width})"
            )

    def set_many(self, mapping: Mapping[Term, Term]) -> int:
        """Install new assignments; returns the number of memo entries dropped.

        Assignments identical (by term identity) to the current ones are
        no-ops — the common case when an overapproximated table is
        re-encoded, or a batch re-touches an unchanged table — so a
        forwarded update stream invalidates nothing.
        """
        changed_names: list[str] = []
        changed_vars: list[Term] = []
        for var, replacement in mapping.items():
            self._check(var, replacement)
            if self._mapping.get(var) is replacement:
                continue
            self._mapping[var] = replacement
            changed_vars.append(var)
            changed_names.append(var.payload)
        stale: set[Term] = set()
        for name in changed_names:
            stale |= self._index.pop(name, set())
        memo = self._memo
        dropped = 0
        for term in stale:
            if memo.pop(term, None) is not None:
                dropped += 1
        # (Re-)seed the memo with the variables' own entries last, so the
        # invalidation sweep above cannot clobber a fresh assignment.
        for var in changed_vars:
            memo[var] = self._mapping[var]
            self._index.setdefault(var.payload, set()).add(var)
        self.counter.invalidate(dropped)
        return dropped

    def fork_slice(self) -> "SubstitutionSlice":
        """A copy-on-write worker view over this substitution's memo."""
        return SubstitutionSlice(self)

    def absorb(self, piece: "SubstitutionSlice") -> int:
        """Fold a worker slice's mapping + memo delta back in; see
        :class:`SubstitutionSlice`.  Returns the grafted entry count."""
        return _absorb_slice(self, piece)

    def apply(self, term: Term) -> Term:
        """Replace mapped variables throughout ``term`` (no simplification)."""
        memo = self._memo
        index = self._index
        if term in memo:
            self.counter.hit()
            return memo[term]
        self.counter.miss()
        stack: list[tuple[Term, bool]] = [(term, False)]
        while stack:
            node, expanded = stack.pop()
            if node in memo:
                continue
            if not node.args:
                memo[node] = node
                if node.is_var:
                    index.setdefault(node.payload, set()).add(node)
                continue
            if not expanded:
                stack.append((node, True))
                for child in node.args:
                    if child not in memo:
                        stack.append((child, False))
                continue
            new_args = tuple(memo[child] for child in node.args)
            memo[node] = _rebuild_with_args(node, new_args)
            for name in variable_dependencies(node):
                index.setdefault(name, set()).add(node)
        return memo[term]

    # -- snapshot export / import ----------------------------------------------

    def export_state(self, arena) -> dict:
        """A picklable blob of the mapping, memo, and dependency index.

        Every term (keys and values alike) rides in ``arena`` (a
        :class:`~repro.smt.arena.TermArena`); :meth:`import_state`
        re-interns them through the receiving process's default factory,
        so identity-based invalidation keeps working after a restore.
        """
        return {
            "mapping": [
                (arena.encode(var), arena.encode(replacement))
                for var, replacement in self._mapping.items()
            ],
            "memo": [
                (arena.encode(key), arena.encode(value))
                for key, value in self._memo.items()
            ],
            "index": {
                name: [arena.encode(term) for term in terms]
                for name, terms in self._index.items()
            },
        }

    def import_state(self, arena, blob: dict) -> int:
        """Install an :meth:`export_state` blob; returns the memo size.

        The blob replaces this substitution's mapping/memo/index
        wholesale — callers restore into a freshly constructed (empty)
        instance.
        """
        self._mapping = {
            arena.decode(var): arena.decode(replacement)
            for var, replacement in blob["mapping"]
        }
        self._memo = {
            arena.decode(key): arena.decode(value) for key, value in blob["memo"]
        }
        self._index = {
            name: {arena.decode(idx) for idx in indices}
            for name, indices in blob["index"].items()
        }
        return len(self._memo)


class SubstitutionSlice:
    """A copy-on-write view of a :class:`DeltaSubstitution` for one worker.

    The batch scheduler runs independent conflict groups on a worker pool;
    every worker needs the warm substitution memo (the cross-update asset)
    but must not mutate it while siblings read it.  A slice layers a
    private memo, index, and mapping over read-only views of the shared
    ones:

    * reads check the private memo first, then the shared memo — unless
      the shared entry was *shadowed* by this slice's own ``set_many``
      (its subterm depends on a control symbol this group re-assigned);
    * writes (new mapping entries, freshly computed memo entries) go to
      the private layer only.

    After the pool joins, :meth:`DeltaSubstitution.absorb` folds the
    private layer back into the shared substitution on the main thread —
    groups touch disjoint control symbols, so grafted entries can never
    disagree with another group's.
    """

    def __init__(self, shared: "DeltaSubstitution") -> None:
        self._shared = shared
        self._memo: dict[Term, Term] = {}
        self._index: dict[str, set[Term]] = {}
        self._mapping: dict[Term, Term] = {}
        self._shadowed: set[Term] = set()
        self.counter = CacheCounter("substitution")

    @property
    def delta_size(self) -> int:
        return len(self._memo)

    def _lookup(self, term: Term) -> Optional[Term]:
        found = self._memo.get(term)
        if found is not None:
            return found
        if term in self._shadowed:
            return None
        return self._shared._memo.get(term)

    def set_many(self, mapping: Mapping[Term, Term]) -> int:
        """Install this group's assignments without touching shared state."""
        changed_names: list[str] = []
        changed_vars: list[Term] = []
        for var, replacement in mapping.items():
            DeltaSubstitution._check(var, replacement)
            current = self._mapping.get(var)
            if current is None:
                current = self._shared._mapping.get(var)
            if current is replacement:
                continue
            self._mapping[var] = replacement
            changed_vars.append(var)
            changed_names.append(var.payload)
        dropped = 0
        for name in changed_names:
            for term in self._index.pop(name, set()):
                if self._memo.pop(term, None) is not None:
                    dropped += 1
            shared_stale = self._shared._index.get(name)
            if shared_stale:
                self._shadowed |= shared_stale
        for var in changed_vars:
            self._memo[var] = self._mapping[var]
            self._index.setdefault(var.payload, set()).add(var)
        self.counter.invalidate(dropped)
        return dropped

    def apply(self, term: Term) -> Term:
        """Replace mapped variables throughout ``term`` (no simplification)."""
        cached = self._lookup(term)
        if cached is not None:
            self.counter.hit()
            return cached
        self.counter.miss()
        memo = self._memo
        index = self._index
        stack: list[tuple[Term, bool]] = [(term, False)]
        while stack:
            node, expanded = stack.pop()
            if self._lookup(node) is not None:
                continue
            if not node.args:
                memo[node] = node
                if node.is_var:
                    index.setdefault(node.payload, set()).add(node)
                continue
            if not expanded:
                stack.append((node, True))
                for child in node.args:
                    if self._lookup(child) is None:
                        stack.append((child, False))
                continue
            new_args = tuple(self._lookup(child) for child in node.args)
            memo[node] = _rebuild_with_args(node, new_args)
            for name in variable_dependencies(node):
                index.setdefault(name, set()).add(node)
        return self._lookup(term)


def _absorb_slice(shared: "DeltaSubstitution", piece: SubstitutionSlice) -> int:
    """Fold one worker slice back into the shared substitution.

    Ordering matters: ``set_many`` first drops the shared entries the
    slice shadowed (they depend on symbols the group re-assigned), then
    the slice's private entries — computed *after* the new assignments —
    are grafted in their place.  Returns the number of grafted entries.
    """
    shared.set_many(piece._mapping)
    memo = shared._memo
    grafted = 0
    for key, term in piece._memo.items():
        if key not in memo:
            memo[key] = term
            grafted += 1
    for name, keys in piece._index.items():
        shared._index.setdefault(name, set()).update(keys)
    shared.counter.hit(piece.counter.hits)
    shared.counter.miss(piece.counter.misses)
    shared.counter.invalidate(piece.counter.invalidations)
    return grafted


def _rebuild_with_args(node: Term, args: tuple) -> Term:
    if args == node.args:
        return node
    f = T.DEFAULT_FACTORY
    op = node.op
    builders = {
        T.OP_ADD: f.add, T.OP_SUB: f.sub, T.OP_MUL: f.mul,
        T.OP_AND: f.bv_and, T.OP_OR: f.bv_or, T.OP_XOR: f.bv_xor,
        T.OP_NOT: f.bv_not, T.OP_NEG: f.neg,
        T.OP_SHL: f.shl, T.OP_LSHR: f.lshr, T.OP_CONCAT: f.concat,
        T.OP_ITE: f.ite, T.OP_EQ: f.eq, T.OP_ULT: f.ult, T.OP_ULE: f.ule,
        T.OP_BAND: f.bool_and, T.OP_BOR: f.bool_or, T.OP_BNOT: f.bool_not,
    }
    if op == T.OP_EXTRACT:
        hi, lo = node.payload
        return f.extract(args[0], hi, lo)
    builder = builders.get(op)
    if builder is None:
        raise T.SortError(f"cannot substitute under {op!r}")
    return builder(*args)


def substitute(
    term: Term,
    mapping: Mapping[Term, Term],
    simplify_result: bool = True,
    memo: Optional[dict[int, Term]] = None,
) -> Term:
    """One-shot substitution helper.

    ``substitute(expr, {ctrl_var: assignment_term})`` is the core move of a
    specialization query: the result collapsing to a constant means the
    program point's behaviour is fully determined by the control plane.
    """
    result = Substitution(mapping).apply(term)
    if simplify_result:
        result = simplify(result, memo=memo)
    return result


def substitute_names(
    term: Term,
    named: Mapping[str, Term],
    simplify_result: bool = True,
) -> Term:
    """Substitute by variable *name*, resolving widths from the term itself."""
    mapping: dict[Term, Term] = {}
    for var in T.variables(term):
        replacement = named.get(var.name)
        if replacement is not None:
            mapping[var] = replacement
    return substitute(term, mapping, simplify_result=simplify_result)
