"""Substitution of control-plane assignments into data-plane expressions.

This plays the role Z3's e-matching plays in Flay (§4.1): given a data-plane
expression whose control-plane symbols act as placeholders, replace each
placeholder with the term encoding the active control-plane assignment, then
simplify.  Substitution is memoized over the shared DAG, so substituting
into the hundreds of program points of one program touches each unique
subterm once.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.smt import terms as T
from repro.smt.simplify import simplify
from repro.smt.terms import Term


class Substitution:
    """A reusable variable→term mapping with a shared memo table.

    Reusing one ``Substitution`` across all program points of a program is
    the incremental trick: expressions share structure, and the memo makes
    the shared parts free after the first substitution.
    """

    def __init__(self, mapping: Mapping[Term, Term]) -> None:
        for var, replacement in mapping.items():
            if not var.is_var:
                raise T.SortError(f"substitution key {var!r} is not a variable")
            if var.width != replacement.width:
                raise T.SortError(
                    f"substituting {replacement!r} (width {replacement.width}) "
                    f"for {var!r} (width {var.width})"
                )
        self._mapping = {id(var): replacement for var, replacement in mapping.items()}
        self._memo: dict[int, Term] = dict(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)

    def apply(self, term: Term) -> Term:
        """Replace mapped variables throughout ``term`` (no simplification)."""
        memo = self._memo
        stack: list[tuple[Term, bool]] = [(term, False)]
        while stack:
            node, expanded = stack.pop()
            if id(node) in memo:
                continue
            if not node.args:
                memo[id(node)] = node
                continue
            if not expanded:
                stack.append((node, True))
                for child in node.args:
                    if id(child) not in memo:
                        stack.append((child, False))
                continue
            new_args = tuple(memo[id(child)] for child in node.args)
            memo[id(node)] = _rebuild_with_args(node, new_args)
        return memo[id(term)]


def _rebuild_with_args(node: Term, args: tuple) -> Term:
    if args == node.args:
        return node
    f = T.DEFAULT_FACTORY
    op = node.op
    builders = {
        T.OP_ADD: f.add, T.OP_SUB: f.sub, T.OP_MUL: f.mul,
        T.OP_AND: f.bv_and, T.OP_OR: f.bv_or, T.OP_XOR: f.bv_xor,
        T.OP_NOT: f.bv_not, T.OP_NEG: f.neg,
        T.OP_SHL: f.shl, T.OP_LSHR: f.lshr, T.OP_CONCAT: f.concat,
        T.OP_ITE: f.ite, T.OP_EQ: f.eq, T.OP_ULT: f.ult, T.OP_ULE: f.ule,
        T.OP_BAND: f.bool_and, T.OP_BOR: f.bool_or, T.OP_BNOT: f.bool_not,
    }
    if op == T.OP_EXTRACT:
        hi, lo = node.payload
        return f.extract(args[0], hi, lo)
    builder = builders.get(op)
    if builder is None:
        raise T.SortError(f"cannot substitute under {op!r}")
    return builder(*args)


def substitute(
    term: Term,
    mapping: Mapping[Term, Term],
    simplify_result: bool = True,
    memo: Optional[dict[int, Term]] = None,
) -> Term:
    """One-shot substitution helper.

    ``substitute(expr, {ctrl_var: assignment_term})`` is the core move of a
    specialization query: the result collapsing to a constant means the
    program point's behaviour is fully determined by the control plane.
    """
    result = Substitution(mapping).apply(term)
    if simplify_result:
        result = simplify(result, memo=memo)
    return result


def substitute_names(
    term: Term,
    named: Mapping[str, Term],
    simplify_result: bool = True,
) -> Term:
    """Substitute by variable *name*, resolving widths from the term itself."""
    mapping: dict[Term, Term] = {}
    for var in T.variables(term):
        replacement = named.get(var.name)
        if replacement is not None:
            mapping[var] = replacement
    return substitute(term, mapping, simplify_result=simplify_result)
